#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"

namespace rtdvs {
namespace {

KernelTaskParams Task(const char* name, double period, double wcet,
                      double fraction = 1.0) {
  KernelTaskParams params;
  params.name = name;
  params.period_ms = period;
  params.wcet_ms = wcet;
  params.exec_model = std::make_unique<ConstantFractionModel>(fraction);
  return params;
}

TEST(Kernel, RunsPeriodicTasksWithoutMisses) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  EXPECT_GE(kernel.RegisterTask(Task("a", 20.0, 4.0, 0.7)), 0);
  EXPECT_GE(kernel.RegisterTask(Task("b", 50.0, 10.0, 0.5)), 0);
  kernel.RunUntil(2000.0);
  KernelReport report = kernel.Report();
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_EQ(report.releases, 100 + 40);
  EXPECT_GT(report.completions, 130);
  EXPECT_FALSE(report.cpu_crashed);
  EXPECT_GT(report.avg_system_watts, 7.0);   // above the board floor
  EXPECT_LT(report.avg_system_watts, 27.3);  // below max load
}

TEST(Kernel, EnergyOrderingMatchesThePaper) {
  // Identical task sets under plain EDF vs ccEDF: the DVS policy must use
  // less system energy (the per-task models are deterministic constants,
  // so both kernels see the exact same workload).
  auto run = [](const char* policy_id) {
    Kernel kernel(KernelOptions{});
    kernel.LoadPolicy(MakePolicy(policy_id));
    kernel.RegisterTask(Task("a", 20.0, 5.0, 0.8));
    kernel.RegisterTask(Task("b", 100.0, 20.0, 0.6));
    kernel.RunUntil(5000.0);
    KernelReport report = kernel.Report();
    EXPECT_EQ(report.deadline_misses, 0) << policy_id;
    return report.avg_system_watts;
  };
  double edf_watts = run("edf");
  double cc_watts = run("cc_edf");
  double la_watts = run("la_edf");
  EXPECT_LT(cc_watts, edf_watts);
  EXPECT_LT(la_watts, edf_watts);
}

TEST(Kernel, AdmissionControlRejectsOverload) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  EXPECT_GE(kernel.RegisterTask(Task("big", 10.0, 7.0)), 0);
  // A second 70%-utilization task cannot be admitted under EDF.
  EXPECT_EQ(kernel.RegisterTask(Task("big2", 10.0, 7.0)), -1);
  EXPECT_EQ(kernel.num_tasks(), 1);
  EXPECT_EQ(kernel.Report().rejected_admissions, 1);
}

TEST(Kernel, AdmissionControlCanBeDisabled) {
  KernelOptions options;
  options.admission_control = false;
  Kernel kernel(options);
  kernel.LoadPolicy(MakePolicy("edf"));
  EXPECT_GE(kernel.RegisterTask(Task("big", 10.0, 7.0)), 0);
  EXPECT_GE(kernel.RegisterTask(Task("big2", 10.0, 7.0)), 0);
  kernel.RunUntil(200.0);
  EXPECT_GT(kernel.Report().deadline_misses, 0);  // overload, as requested
}

TEST(Kernel, DeferredFirstReleaseWaitsForInflightDeadlines) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("la_edf"));
  kernel.RegisterTask(Task("long", 100.0, 30.0, 1.0));
  kernel.RunUntil(10.0);  // mid-invocation of "long" (deadline at 100)
  int late = kernel.RegisterTask(Task("late", 25.0, 5.0));
  ASSERT_GE(late, 0);
  auto first_release = kernel.FirstReleaseMs(late);
  ASSERT_TRUE(first_release.has_value());
  EXPECT_NEAR(*first_release, 100.0, 1e-9);
  kernel.RunUntil(500.0);
  EXPECT_EQ(kernel.Report().deadline_misses, 0);
  // After its first release the deferral query no longer applies.
  EXPECT_FALSE(kernel.FirstReleaseMs(late).has_value());
}

TEST(Kernel, ImmediateReleaseWhenNothingInFlight) {
  KernelOptions options;
  options.defer_first_release = true;
  Kernel kernel(options);
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  int handle = kernel.RegisterTask(Task("only", 10.0, 2.0));
  EXPECT_NEAR(*kernel.FirstReleaseMs(handle), 0.0, 1e-9);
}

TEST(Kernel, PolicyHotSwapKeepsTasksRunning) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  kernel.RegisterTask(Task("a", 10.0, 3.0, 0.5));
  kernel.RunUntil(1000.0);
  ASSERT_TRUE(kernel.procfs().Write("/proc/rtdvs/policy", "cc_rm"));
  EXPECT_EQ(*kernel.procfs().Read("/proc/rtdvs/policy"), "ccRM\n");
  kernel.RunUntil(2000.0);
  KernelReport report = kernel.Report();
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_EQ(report.releases, 200);
}

TEST(Kernel, ProcfsRejectsUnknownPolicy) {
  Kernel kernel(KernelOptions{});
  EXPECT_FALSE(kernel.procfs().Write("/proc/rtdvs/policy", "not_a_policy"));
  EXPECT_EQ(*kernel.procfs().Read("/proc/rtdvs/policy"), "(none)\n");
}

TEST(Kernel, ProcfsTaskRegistration) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  EXPECT_TRUE(kernel.procfs().Write("/proc/rtdvs/tasks", "register video 40 8 0.75"));
  EXPECT_TRUE(kernel.procfs().Write("/proc/rtdvs/tasks", "register audio 10 1"));
  EXPECT_EQ(kernel.num_tasks(), 2);
  std::string listing = *kernel.procfs().Read("/proc/rtdvs/tasks");
  EXPECT_NE(listing.find("video"), std::string::npos);
  EXPECT_NE(listing.find("audio"), std::string::npos);
  EXPECT_TRUE(kernel.procfs().Write("/proc/rtdvs/tasks", "unregister 0"));
  EXPECT_EQ(kernel.num_tasks(), 1);
  // Malformed commands are rejected.
  EXPECT_FALSE(kernel.procfs().Write("/proc/rtdvs/tasks", "register broken"));
  EXPECT_FALSE(kernel.procfs().Write("/proc/rtdvs/tasks", "register x 10 20"));
  EXPECT_FALSE(kernel.procfs().Write("/proc/rtdvs/tasks", "unregister 99"));
  EXPECT_FALSE(kernel.procfs().Write("/proc/rtdvs/tasks", ""));
}

TEST(Kernel, UnregisterRemapsRemainingTasks) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  int a = kernel.RegisterTask(Task("a", 10.0, 1.0));
  int b = kernel.RegisterTask(Task("b", 20.0, 2.0));
  kernel.RunUntil(100.0);
  EXPECT_TRUE(kernel.UnregisterTask(a));
  EXPECT_FALSE(kernel.UnregisterTask(a));  // already gone
  kernel.RunUntil(300.0);
  EXPECT_EQ(kernel.Report().deadline_misses, 0);
  EXPECT_EQ(kernel.num_tasks(), 1);
  EXPECT_TRUE(kernel.UnregisterTask(b));
  kernel.RunUntil(400.0);  // empty system idles without crashing
  EXPECT_FALSE(kernel.Report().cpu_crashed);
}

TEST(Kernel, TransitionHaltsAreAccounted) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("cc_edf"));
  kernel.RegisterTask(Task("a", 10.0, 5.0, 0.3));  // big gap between wc and actual
  kernel.RunUntil(1000.0);
  KernelReport report = kernel.Report();
  EXPECT_GT(report.voltage_transitions + report.frequency_transitions, 0);
  EXPECT_GT(report.transition_halt_ms, 0.0);
  EXPECT_EQ(report.deadline_misses, 0);
}

TEST(Kernel, StatsFileReflectsCounters) {
  Kernel kernel(KernelOptions{});
  kernel.LoadPolicy(MakePolicy("edf"));
  kernel.RegisterTask(Task("a", 10.0, 2.0));
  kernel.RunUntil(105.0);
  std::string stats = *kernel.procfs().Read("/proc/rtdvs/stats");
  EXPECT_NE(stats.find("releases 11"), std::string::npos) << stats;
  EXPECT_NE(stats.find("misses 0"), std::string::npos);
}

TEST(Kernel, NoPolicyFallsBackToFullSpeedEdf) {
  Kernel kernel(KernelOptions{});  // no LoadPolicy call
  kernel.RegisterTask(Task("a", 10.0, 2.0));
  kernel.RunUntil(500.0);
  EXPECT_EQ(kernel.Report().deadline_misses, 0);
  EXPECT_DOUBLE_EQ(kernel.cpu().frequency_mhz(), 550.0);
}

TEST(KernelDeathTest, RunUntilMustNotGoBackwards) {
  Kernel kernel(KernelOptions{});
  kernel.RunUntil(100.0);
  EXPECT_DEATH(kernel.RunUntil(50.0), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
