#include "src/kernel/procfs.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(ProcFs, ReadWriteRoundTrip) {
  ProcFs fs;
  std::string stored = "initial";
  fs.RegisterFile(
      "/proc/x", [&stored] { return stored; },
      [&stored](const std::string& data) {
        stored = data;
        return true;
      });
  EXPECT_EQ(fs.Read("/proc/x"), "initial");
  EXPECT_TRUE(fs.Write("/proc/x", "updated"));
  EXPECT_EQ(fs.Read("/proc/x"), "updated");
}

TEST(ProcFs, MissingFileFailsGracefully) {
  ProcFs fs;
  EXPECT_FALSE(fs.Read("/proc/nope").has_value());
  EXPECT_FALSE(fs.Write("/proc/nope", "x"));
  EXPECT_FALSE(fs.Exists("/proc/nope"));
}

TEST(ProcFs, ReadOnlyAndWriteOnlyFiles) {
  ProcFs fs;
  fs.RegisterFile("/proc/ro", [] { return std::string("data"); }, nullptr);
  fs.RegisterFile("/proc/wo", nullptr, [](const std::string&) { return true; });
  EXPECT_EQ(fs.Read("/proc/ro"), "data");
  EXPECT_FALSE(fs.Write("/proc/ro", "x"));
  EXPECT_TRUE(fs.Write("/proc/wo", "x"));
  EXPECT_FALSE(fs.Read("/proc/wo").has_value());
}

TEST(ProcFs, WriteHandlerCanReject) {
  ProcFs fs;
  fs.RegisterFile("/proc/strict", nullptr,
                  [](const std::string& data) { return data == "ok"; });
  EXPECT_TRUE(fs.Write("/proc/strict", "ok"));
  EXPECT_FALSE(fs.Write("/proc/strict", "bad"));
}

TEST(ProcFs, ListAndUnregister) {
  ProcFs fs;
  fs.RegisterFile("/proc/a", [] { return std::string(); }, nullptr);
  fs.RegisterFile("/proc/b", [] { return std::string(); }, nullptr);
  EXPECT_EQ(fs.ListFiles(), (std::vector<std::string>{"/proc/a", "/proc/b"}));
  fs.UnregisterFile("/proc/a");
  EXPECT_FALSE(fs.Exists("/proc/a"));
  EXPECT_TRUE(fs.Exists("/proc/b"));
}

TEST(ProcFsDeathTest, DuplicateAndUnknownPathsAbort) {
  ProcFs fs;
  fs.RegisterFile("/proc/a", nullptr, nullptr);
  EXPECT_DEATH(fs.RegisterFile("/proc/a", nullptr, nullptr), "already registered");
  EXPECT_DEATH(fs.UnregisterFile("/proc/zzz"), "not registered");
}

}  // namespace
}  // namespace rtdvs
