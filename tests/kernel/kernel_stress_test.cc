// Stress/fuzz tests of the kernel runtime: random interleavings of task
// registration/unregistration, policy hot-swaps, procfs traffic and time
// advancement must never corrupt accounting or crash the simulated CPU.
// Also reproduces §4.3 observation 1 (the cold first invocation).
#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/policy.h"
#include "src/kernel/kernel.h"
#include "src/rt/exec_time_model.h"
#include "src/sim/simulator.h"
#include "src/util/random.h"

namespace rtdvs {
namespace {

TEST(KernelStress, RandomLifecycleFuzz) {
  Pcg32 rng(0x57e55);
  const char* policies[] = {"edf",    "rm",     "static_edf", "static_rm",
                            "cc_edf", "cc_rm",  "la_edf",     "stat_edf"};
  for (int round = 0; round < 5; ++round) {
    Kernel kernel(KernelOptions{});
    std::vector<int> handles;
    double now = 0;
    for (int step = 0; step < 120; ++step) {
      switch (rng.NextBounded(6)) {
        case 0: {  // register a random task
          KernelTaskParams params;
          params.name = "fuzz";
          params.period_ms = rng.UniformDouble(5.0, 200.0);
          params.wcet_ms = rng.UniformDouble(0.05, 0.4) * params.period_ms;
          params.exec_model =
              std::make_unique<UniformFractionModel>(0.0, 1.0);
          int handle = kernel.RegisterTask(std::move(params));
          if (handle >= 0) {
            handles.push_back(handle);
          }
          break;
        }
        case 1: {  // unregister a random task
          if (!handles.empty()) {
            size_t index = rng.NextBounded(static_cast<uint32_t>(handles.size()));
            EXPECT_TRUE(kernel.UnregisterTask(handles[index]));
            handles.erase(handles.begin() + static_cast<long>(index));
          }
          break;
        }
        case 2: {  // hot-swap the policy (sometimes unload entirely)
          if (rng.NextBounded(8) == 0) {
            kernel.LoadPolicy(nullptr);
          } else {
            kernel.LoadPolicy(MakePolicy(policies[rng.NextBounded(8)]));
          }
          break;
        }
        case 3: {  // procfs traffic
          (void)kernel.procfs().Read("/proc/rtdvs/tasks");
          (void)kernel.procfs().Read("/proc/rtdvs/stats");
          (void)kernel.procfs().Read("/proc/powernow/ctl");
          break;
        }
        default: {  // advance time
          now += rng.UniformDouble(1.0, 150.0);
          kernel.RunUntil(now);
          break;
        }
      }
    }
    kernel.RunUntil(now + 500.0);
    KernelReport report = kernel.Report();
    EXPECT_FALSE(report.cpu_crashed);
    // Time accounting must close: busy + idle + halts == elapsed.
    EXPECT_NEAR(report.busy_ms + report.idle_ms + report.transition_halt_ms,
                report.now_ms, 1e-6);
    EXPECT_GE(report.completions, 0);
    EXPECT_LE(report.completions, report.releases);
    // The power meter covered the whole run.
    EXPECT_NEAR(kernel.power_meter().DurationMs(), report.now_ms, 1e-6);
  }
}

TEST(KernelStress, ColdFirstInvocationOverrunIsTransient) {
  // §4.3 observation 1: "the very first invocation of a task may overrun
  // its specified computing time bound ... caused by 'cold' processor and
  // operating system state. ... On subsequent invocations, the state is
  // 'warm', and this problem disappears."
  //
  // Firm-deadline semantics (drop the tardy invocation at its deadline)
  // isolate the transient: with continue-late semantics an overrun breaks
  // condition C2 outright and a tight set can lag indefinitely, because
  // work beyond the declared worst case is invisible to every policy's
  // bookkeeping — which is precisely why the paper calls the bound a
  // CONDITION, not a suggestion.
  TaskSet tasks({{"a", 10.0, 4.0, 0.0}, {"b", 20.0, 7.0, 0.0}});
  auto policy = MakePolicy("la_edf");
  ColdStartModel model(std::make_unique<ConstantFractionModel>(0.95), 1.6,
                       /*allow_overrun=*/true);
  SimOptions options;
  options.horizon_ms = 10'000.0;
  options.miss_policy = MissPolicy::kAbortJob;
  SimResult result =
      RunSimulation(tasks, MachineSpec::K6TwoPointFour(), *policy, model, options);
  // The cold start produced at least one miss, and only around t=0: every
  // miss event sits inside the first two hyperperiods.
  EXPECT_GT(result.deadline_misses, 0);
  EXPECT_LE(result.deadline_misses, 4);
  // Warm steady state is miss-free: rerun without the cold factor.
  auto policy2 = MakePolicy("la_edf");
  ConstantFractionModel warm(0.95);
  SimResult warm_result =
      RunSimulation(tasks, MachineSpec::K6TwoPointFour(), *policy2, warm, options);
  EXPECT_EQ(warm_result.deadline_misses, 0);
}

}  // namespace
}  // namespace rtdvs
