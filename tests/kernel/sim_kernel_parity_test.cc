// Cross-substrate parity: the Table 2/3 worked example run through both the
// event-driven Simulator (src/sim) and the prototype Kernel (src/kernel)
// must agree, policy by policy, now that both hosts compose the same engine
// components (ContextBuilder / EnergyAccountant / SpeedController).
//
// Calibration that makes the two substrates directly comparable:
//   * machine: the kernel's exported K6-2+ spec on the sim side, so both
//     pick from the identical operating points;
//   * switching: wcet_pad_ms = 0 and ideal_transitions = true on the kernel,
//     switch_time_ms = 0 on the sim — no halts on either side;
//   * power: floor_w = 0, screen/disk off, cpu_active_max_w = 4000 with
//     V_max = 2.0 V makes kernel watts = 1000 * f_norm * V^2, so metered
//     joules equal the sim's normalized energy unit (work * V^2 at
//     energy_coefficient = 1).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/kernel/kernel.h"
#include "src/kernel/powernow_module.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

// One hyperperiod of the Table 2 task set (periods 8, 10, 14 ms).
constexpr double kHorizonMs = 280.0;

// Table 3 fractions per task: T1 used 2 then 1 of C=3, T2 used 1 then 1 of
// C=3, T3 used 1 of C=1 every time (TableFractionModel repeats the last
// column for later invocations).
const std::vector<std::vector<double>>& Table3Fractions() {
  static const std::vector<std::vector<double>> kRows = {
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}};
  return kRows;
}

SimResult RunOnSimulator(const std::string& policy_id) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy(policy_id);
  TableFractionModel model(Table3Fractions());
  SimOptions options;
  options.horizon_ms = kHorizonMs;
  options.idle_level = 0.0;
  options.energy_coefficient = 1.0;
  options.switch_time_ms = 0.0;
  return RunSimulation(tasks, PowerNowModule::ExportedMachineSpec(), *policy,
                       model, options);
}

KernelReport RunOnKernel(const std::string& policy_id) {
  KernelOptions options;
  options.power.floor_w = 0.0;
  options.power.screen_on = false;
  options.power.disk_spinning = false;
  options.power.cpu_active_max_w = 4000.0;
  options.wcet_pad_ms = 0.0;
  options.ideal_transitions = true;
  Kernel kernel(options);
  kernel.LoadPolicy(MakePolicy(policy_id));
  const TaskSet tasks = TaskSet::PaperExample();
  for (int id = 0; id < tasks.size(); ++id) {
    const Task& task = tasks.task(id);
    KernelTaskParams params;
    params.name = task.name;
    params.period_ms = task.period_ms;
    params.wcet_ms = task.wcet_ms;
    // The kernel hands task_id = 0 to per-task models: give each task its
    // own single-row table.
    params.exec_model = std::make_unique<TableFractionModel>(
        std::vector<std::vector<double>>{Table3Fractions()[static_cast<size_t>(id)]});
    EXPECT_GE(kernel.RegisterTask(std::move(params)), 0) << task.name;
  }
  kernel.RunUntil(kHorizonMs);
  KernelReport report = kernel.Report();
  EXPECT_FALSE(report.cpu_crashed) << policy_id;
  return report;
}

class SimKernelParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SimKernelParityTest, WorkedExampleAgrees) {
  const std::string& policy_id = GetParam();
  SimResult sim = RunOnSimulator(policy_id);
  KernelReport kernel = RunOnKernel(policy_id);

  EXPECT_EQ(kernel.releases, sim.releases);
  EXPECT_EQ(kernel.completions, sim.completions);
  EXPECT_EQ(kernel.deadline_misses, sim.deadline_misses);
  EXPECT_EQ(kernel.deadline_misses, 0);

  // Same segments on both substrates: the wall-clock partition and the
  // executed work agree to rounding, and with the calibrated power model
  // the metered joules equal the simulator's normalized energy.
  EXPECT_NEAR(kernel.busy_ms, sim.busy_ms, 1e-9);
  EXPECT_NEAR(kernel.idle_ms, sim.idle_ms, 1e-9);
  EXPECT_NEAR(kernel.transition_halt_ms, sim.switching_ms, 1e-9);
  EXPECT_NEAR(kernel.total_work_executed, sim.total_work_executed, 1e-9);
  EXPECT_NEAR(kernel.total_joules, sim.total_energy(), 1e-9)
      << policy_id << ": " << sim.Summary();
}

INSTANTIATE_TEST_SUITE_P(AllPaperPolicies, SimKernelParityTest,
                         ::testing::ValuesIn(AllPaperPolicyIds()),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

}  // namespace
}  // namespace rtdvs
