#include "src/kernel/powernow_module.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(PowerNowModule, MapsFrequencyToLowestStableVoltage) {
  K6Cpu cpu;
  PowerNowModule module(&cpu, nullptr);
  ASSERT_TRUE(module.SetFrequencyMhz(0.0, 450.0));
  EXPECT_DOUBLE_EQ(cpu.frequency_mhz(), 450.0);
  EXPECT_DOUBLE_EQ(cpu.voltage(), 1.4);
  ASSERT_TRUE(module.SetFrequencyMhz(1.0, 500.0));
  EXPECT_DOUBLE_EQ(cpu.voltage(), 2.0);
  EXPECT_FALSE(cpu.crashed());
}

TEST(PowerNowModule, RejectsNonPllFrequencies) {
  K6Cpu cpu;
  PowerNowModule module(&cpu, nullptr);
  EXPECT_FALSE(module.SetFrequencyMhz(0.0, 250.0));  // the PLL skips 250
  EXPECT_FALSE(module.SetFrequencyMhz(0.0, 123.0));
  EXPECT_DOUBLE_EQ(cpu.frequency_mhz(), 550.0);  // unchanged
}

TEST(PowerNowModule, SgtcDependsOnVoltageChange) {
  K6Cpu cpu;
  PowerNowModule module(&cpu, nullptr);
  // 550@2.0 -> 400@1.4: voltage transition, long halt.
  module.SetFrequencyMhz(0.0, 400.0);
  EXPECT_NEAR(cpu.transition_end_ms(), 10 * K6Cpu::kSgtcUnitMs, 1e-12);
  EXPECT_EQ(module.voltage_transitions(), 1);
  // 400 -> 300 at 1.4 V: frequency-only, short halt.
  module.SetFrequencyMhz(5.0, 300.0);
  EXPECT_NEAR(cpu.transition_end_ms(), 5.0 + K6Cpu::kSgtcUnitMs, 1e-12);
  EXPECT_EQ(module.frequency_only_transitions(), 1);
}

TEST(PowerNowModule, RepeatedRequestIsNoTransition) {
  K6Cpu cpu;
  PowerNowModule module(&cpu, nullptr);
  module.SetFrequencyMhz(0.0, 400.0);
  int64_t transitions = cpu.transition_count();
  ASSERT_TRUE(module.SetFrequencyMhz(1.0, 400.0));
  EXPECT_EQ(cpu.transition_count(), transitions);
}

TEST(PowerNowModule, NormalizedPointsFromExportedSpecAllWork) {
  K6Cpu cpu;
  PowerNowModule module(&cpu, nullptr);
  MachineSpec spec = PowerNowModule::ExportedMachineSpec();
  double t = 0;
  for (const auto& point : spec.points()) {
    ASSERT_TRUE(module.SetNormalizedPoint(t, point)) << point.ToString();
    EXPECT_NEAR(cpu.frequency_mhz() / K6Cpu::kMaxRatedMhz, point.frequency, 1e-9);
    EXPECT_DOUBLE_EQ(cpu.voltage(), point.voltage);
    t += 1.0;
  }
  EXPECT_FALSE(cpu.crashed());
}

TEST(PowerNowModule, ProcfsCtlInterface) {
  K6Cpu cpu;
  ProcFs fs;
  PowerNowModule module(&cpu, &fs);
  double now = 3.0;
  module.set_procfs_clock(&now);
  ASSERT_TRUE(fs.Exists("/proc/powernow/ctl"));
  EXPECT_TRUE(fs.Write("/proc/powernow/ctl", "300"));
  EXPECT_DOUBLE_EQ(cpu.frequency_mhz(), 300.0);
  EXPECT_FALSE(fs.Write("/proc/powernow/ctl", "250"));
  EXPECT_FALSE(fs.Write("/proc/powernow/ctl", "garbage"));
  std::string ctl = *fs.Read("/proc/powernow/ctl");
  EXPECT_NE(ctl.find("300 MHz"), std::string::npos);
  EXPECT_NE(ctl.find("1.40 V"), std::string::npos);
}

TEST(PowerNowModule, UnregistersCtlOnDestruction) {
  K6Cpu cpu;
  ProcFs fs;
  {
    PowerNowModule module(&cpu, &fs);
    EXPECT_TRUE(fs.Exists("/proc/powernow/ctl"));
  }
  EXPECT_FALSE(fs.Exists("/proc/powernow/ctl"));
}

}  // namespace
}  // namespace rtdvs
