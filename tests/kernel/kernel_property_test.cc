// Property tests on the kernel+platform substrate: the paper's guarantees
// must survive register-level switch overheads, provided the overheads are
// budgeted into the WCETs (§4.1) — and the substrate must agree with the
// abstract simulator about who saves energy (§4.3, Figures 16 vs 17).
#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/policy.h"
#include "src/kernel/kernel.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/schedulability.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

// Longer-period ranges keep the 0.82 ms switch pad a small fraction of
// every WCET, mirroring the workloads the prototype measured.
TaskSetGeneratorOptions KernelFriendlyOptions(double utilization) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 5;
  options.target_utilization = utilization;
  options.short_lo_ms = 20.0;
  options.short_hi_ms = 50.0;
  options.medium_lo_ms = 50.0;
  options.medium_hi_ms = 200.0;
  options.long_lo_ms = 200.0;
  options.long_hi_ms = 1000.0;
  return options;
}

double RunKernel(const TaskSet& tasks, const char* policy_id, double fraction,
                 int64_t* misses) {
  KernelOptions options;
  options.admission_control = false;  // the test controls schedulability itself
  Kernel kernel(options);
  kernel.LoadPolicy(MakePolicy(policy_id));
  for (const auto& task : tasks.tasks()) {
    KernelTaskParams params;
    params.name = task.name;
    params.period_ms = task.period_ms;
    params.wcet_ms = task.wcet_ms;
    params.exec_model = std::make_unique<ConstantFractionModel>(fraction);
    kernel.RegisterTask(std::move(params));
  }
  kernel.RunUntil(5000.0);
  KernelReport report = kernel.Report();
  EXPECT_FALSE(report.cpu_crashed);
  *misses = report.deadline_misses;
  return report.avg_system_watts;
}

TEST(KernelProperties, NoMissesWhenPaddedSetIsSchedulable) {
  Pcg32 rng(0xfeed);
  const double kPad = 2 * 10 * 4096.0 / (100.0 * 1000.0);
  for (double utilization : {0.3, 0.5, 0.7}) {
    TaskSetGenerator generator(KernelFriendlyOptions(utilization));
    for (int s = 0; s < 6; ++s) {
      TaskSet tasks = generator.Generate(rng);
      // Build the padded view the kernel budgets with; only assert the
      // guarantee when the padded set passes the relevant test.
      TaskSet padded;
      for (const auto& task : tasks.tasks()) {
        padded.AddTask({task.name, task.period_ms,
                        std::min(task.wcet_ms + kPad, task.period_ms), 0.0});
      }
      for (const char* id : {"cc_edf", "la_edf", "static_edf"}) {
        if (!EdfSchedulable(padded, 1.0)) {
          continue;
        }
        int64_t misses = 0;
        (void)RunKernel(tasks, id, 1.0, &misses);
        EXPECT_EQ(misses, 0) << id << " on " << tasks.ToString();
      }
      if (RmSchedulableSufficient(padded, 1.0)) {
        for (const char* id : {"cc_rm", "static_rm"}) {
          int64_t misses = 0;
          (void)RunKernel(tasks, id, 1.0, &misses);
          EXPECT_EQ(misses, 0) << id << " on " << tasks.ToString();
        }
      }
    }
  }
}

TEST(KernelProperties, SubstratesAgreeOnEnergyOrdering) {
  // Figure 16 vs Figure 17: for the same task set, whenever the simulator
  // says a DVS policy saves meaningfully over plain EDF, the register-level
  // platform must agree (and vice versa never invert the sign).
  Pcg32 rng(0xcafe);
  TaskSetGenerator generator(KernelFriendlyOptions(0.5));
  for (int s = 0; s < 5; ++s) {
    TaskSet tasks = generator.Generate(rng);
    // Simulator side (K6 machine spec, processor energy only).
    SimOptions sim_options;
    sim_options.horizon_ms = 5000.0;
    auto run_sim = [&](const char* id) {
      auto policy = MakePolicy(id);
      ConstantFractionModel model(0.9);
      return RunSimulation(tasks, MachineSpec::K6TwoPointFour(), *policy, model,
                           sim_options)
          .total_energy();
    };
    double sim_edf = run_sim("edf");
    double sim_cc = run_sim("cc_edf");

    int64_t misses = 0;
    double watts_edf = RunKernel(tasks, "edf", 0.9, &misses);
    double watts_cc = RunKernel(tasks, "cc_edf", 0.9, &misses);

    EXPECT_LT(sim_cc, sim_edf + 1e-9);
    EXPECT_LT(watts_cc, watts_edf + 1e-9);
    // When the simulator predicts a >10% saving, the platform (which adds a
    // constant board overhead, diluting percentages) still shows a saving.
    if (sim_cc < 0.9 * sim_edf) {
      EXPECT_LT(watts_cc, watts_edf * 0.995);
    }
  }
}

TEST(KernelProperties, TransitionsBoundedByInvocations) {
  Pcg32 rng(0xbead);
  TaskSetGenerator generator(KernelFriendlyOptions(0.6));
  TaskSet tasks = generator.Generate(rng);
  KernelOptions options;
  Kernel kernel(options);
  kernel.LoadPolicy(MakePolicy("la_edf"));
  for (const auto& task : tasks.tasks()) {
    KernelTaskParams params;
    params.name = task.name;
    params.period_ms = task.period_ms;
    params.wcet_ms = task.wcet_ms;
    params.exec_model = std::make_unique<UniformFractionModel>(0.0, 1.0);
    kernel.RegisterTask(std::move(params));
  }
  kernel.RunUntil(5000.0);
  KernelReport report = kernel.Report();
  // §2.5: at most 2 switches per task per invocation (idle drops add a few).
  EXPECT_LE(report.voltage_transitions + report.frequency_transitions,
            2 * (report.releases + report.completions) + 2);
}

}  // namespace
}  // namespace rtdvs
