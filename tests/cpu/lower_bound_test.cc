#include "src/cpu/lower_bound.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace rtdvs {
namespace {

TEST(LowerBound, AllWorkFitsAtLowestFrequency) {
  // 10 units of work over 100 ms on machine 0: 0.5 covers it (needs 20 ms
  // of wall time), so everything runs at 3 V.
  double energy = MinimumExecutionEnergy(10.0, 100.0, MachineSpec::Machine0());
  EXPECT_DOUBLE_EQ(energy, 10.0 * 9.0);
}

TEST(LowerBound, ZeroWorkCostsNothing) {
  EXPECT_DOUBLE_EQ(MinimumExecutionEnergy(0.0, 10.0, MachineSpec::Machine0()), 0.0);
}

TEST(LowerBound, ExactTwoPointMix) {
  // W = 60 over T = 100 on machine 0: rate 0.6 sits between 0.5 and 0.75.
  // Both constraints tight: w/0.5 + (60-w)/0.75 = 100  =>  w = 30 at each
  // point, energy 30*9 + 30*16 = 750 (beats 860 for the 0.5/1.0 pair and
  // 960 for running everything at 0.75).
  auto mix = MinimumExecutionEnergyMix(60.0, 100.0, MachineSpec::Machine0());
  EXPECT_DOUBLE_EQ(mix.low.frequency, 0.5);
  EXPECT_DOUBLE_EQ(mix.high.frequency, 0.75);
  EXPECT_NEAR(mix.work_at_low, 30.0, 1e-9);
  EXPECT_NEAR(mix.work_at_high, 30.0, 1e-9);
  EXPECT_NEAR(mix.energy, 750.0, 1e-9);
}

TEST(LowerBound, FullLoadRunsAtMaximum) {
  double energy = MinimumExecutionEnergy(100.0, 100.0, MachineSpec::Machine0());
  EXPECT_NEAR(energy, 100.0 * 25.0, 1e-6);
}

TEST(LowerBound, InfeasibleLoadStillBounded) {
  double energy = MinimumExecutionEnergy(200.0, 100.0, MachineSpec::Machine0());
  EXPECT_DOUBLE_EQ(energy, 200.0 * 25.0);
}

TEST(LowerBound, EnergyCoefficientScalesResult) {
  EnergyModel scaled(0.0, 2.5);
  EXPECT_DOUBLE_EQ(
      MinimumExecutionEnergy(10.0, 100.0, MachineSpec::Machine0(), scaled),
      10.0 * 9.0 * 2.5);
}

TEST(LowerBound, MonotoneInWorkAndAntitoneInTime) {
  MachineSpec machine = MachineSpec::Machine2();
  double previous = 0;
  for (double work = 5; work <= 100; work += 5) {
    double energy = MinimumExecutionEnergy(work, 100.0, machine);
    EXPECT_GE(energy, previous);
    previous = energy;
  }
  // More time never costs more energy.
  for (double horizon = 50; horizon <= 200; horizon += 25) {
    EXPECT_LE(MinimumExecutionEnergy(40.0, horizon + 25, machine),
              MinimumExecutionEnergy(40.0, horizon, machine) + 1e-9);
  }
}

// Property: the LP solution is never beaten by any single-frequency or
// random two-frequency feasible mix.
TEST(LowerBound, NeverBeatenByRandomFeasibleMixes) {
  Pcg32 rng(123);
  MachineSpec machine = MachineSpec::Machine2();
  for (int trial = 0; trial < 200; ++trial) {
    double horizon = rng.UniformDouble(10, 200);
    double work = rng.UniformDouble(0, horizon);  // feasible (rate <= 1)
    double optimal = MinimumExecutionEnergy(work, horizon, machine);
    // Random feasible split across two random points.
    const auto& points = machine.points();
    const auto& a = points[rng.NextBounded(static_cast<uint32_t>(points.size()))];
    const auto& b = points[rng.NextBounded(static_cast<uint32_t>(points.size()))];
    double wa = rng.UniformDouble(0, work);
    double wb = work - wa;
    if (wa / a.frequency + wb / b.frequency <= horizon) {
      double candidate = wa * a.EnergyPerWorkUnit() + wb * b.EnergyPerWorkUnit();
      EXPECT_LE(optimal, candidate + 1e-9);
    }
  }
}

TEST(EnergyModel, IdleAndExecutionFormulas) {
  EnergyModel model(0.5, 2.0);
  OperatingPoint p{0.75, 4.0};
  EXPECT_DOUBLE_EQ(model.ExecutionEnergy(3.0, p), 3.0 * 16.0 * 2.0);
  // Idle: t * f * V^2 * idle_level * coeff.
  EXPECT_DOUBLE_EQ(model.IdleEnergy(2.0, p), 2.0 * 0.75 * 16.0 * 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(model.ActivePower(p), 0.75 * 16.0 * 2.0);
  EXPECT_DOUBLE_EQ(model.IdlePower(p), 0.75 * 16.0 * 0.5 * 2.0);
}

TEST(EnergyModelDeathTest, RejectsInvalidParameters) {
  EXPECT_DEATH(EnergyModel(-0.1, 1.0), "CHECK failed");
  EXPECT_DEATH(EnergyModel(1.1, 1.0), "CHECK failed");
  EXPECT_DEATH(EnergyModel(0.0, 0.0), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
