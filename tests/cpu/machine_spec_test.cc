#include "src/cpu/machine_spec.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(MachineSpec, PaperMachinesMatchSection32) {
  MachineSpec m0 = MachineSpec::Machine0();
  ASSERT_EQ(m0.num_points(), 3u);
  EXPECT_DOUBLE_EQ(m0.points()[0].frequency, 0.5);
  EXPECT_DOUBLE_EQ(m0.points()[0].voltage, 3.0);
  EXPECT_DOUBLE_EQ(m0.points()[2].frequency, 1.0);
  EXPECT_DOUBLE_EQ(m0.points()[2].voltage, 5.0);

  MachineSpec m1 = MachineSpec::Machine1();
  ASSERT_EQ(m1.num_points(), 4u);
  EXPECT_DOUBLE_EQ(m1.points()[2].frequency, 0.83);
  EXPECT_DOUBLE_EQ(m1.points()[2].voltage, 4.5);

  MachineSpec m2 = MachineSpec::Machine2();
  ASSERT_EQ(m2.num_points(), 7u);
  EXPECT_DOUBLE_EQ(m2.min_point().frequency, 0.36);
  EXPECT_DOUBLE_EQ(m2.min_point().voltage, 1.4);
  EXPECT_DOUBLE_EQ(m2.max_point().voltage, 2.0);
}

TEST(MachineSpec, K6MatchesSection41) {
  MachineSpec k6 = MachineSpec::K6TwoPointFour();
  ASSERT_EQ(k6.num_points(), 7u);
  // 200 MHz / 550 MHz at 1.4 V up to 450 MHz, 2.0 V above.
  EXPECT_NEAR(k6.min_point().frequency, 200.0 / 550.0, 1e-12);
  EXPECT_DOUBLE_EQ(k6.min_point().voltage, 1.4);
  EXPECT_NEAR(k6.points()[4].frequency, 450.0 / 550.0, 1e-12);
  EXPECT_DOUBLE_EQ(k6.points()[4].voltage, 1.4);
  EXPECT_DOUBLE_EQ(k6.points()[5].voltage, 2.0);
  EXPECT_DOUBLE_EQ(k6.max_point().frequency, 1.0);
}

TEST(MachineSpec, PointsAreSortedRegardlessOfInputOrder) {
  MachineSpec spec("shuffled", {{1.0, 5.0}, {0.5, 3.0}, {0.75, 4.0}});
  EXPECT_DOUBLE_EQ(spec.points()[0].frequency, 0.5);
  EXPECT_DOUBLE_EQ(spec.points()[1].frequency, 0.75);
  EXPECT_DOUBLE_EQ(spec.points()[2].frequency, 1.0);
}

TEST(MachineSpec, LowestPointAtLeastSelectsCeiling) {
  MachineSpec m0 = MachineSpec::Machine0();
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeast(0.1)->frequency, 0.5);
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeast(0.5)->frequency, 0.5);
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeast(0.500001)->frequency, 0.75);
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeast(0.746)->frequency, 0.75);
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeast(1.0)->frequency, 1.0);
  EXPECT_FALSE(m0.LowestPointAtLeast(1.01).has_value());
}

TEST(MachineSpec, LowestPointToleratesRoundingNoise) {
  MachineSpec m0 = MachineSpec::Machine0();
  // A utilization sum of 0.75 + one ulp must still select 0.75.
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeast(0.75 + 1e-12)->frequency, 0.75);
}

TEST(MachineSpec, ClampedVariantSaturates) {
  MachineSpec m0 = MachineSpec::Machine0();
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeastClamped(2.0).frequency, 1.0);
  EXPECT_DOUBLE_EQ(m0.LowestPointAtLeastClamped(0.0).frequency, 0.5);
}

TEST(MachineSpec, IndexOfFindsExactPoints) {
  MachineSpec m0 = MachineSpec::Machine0();
  EXPECT_EQ(m0.IndexOf(m0.points()[1]), 1u);
}

TEST(MachineSpec, UniformGridSpansRange) {
  MachineSpec grid = MachineSpec::UniformGrid(5, 1.0, 2.0);
  ASSERT_EQ(grid.num_points(), 5u);
  EXPECT_DOUBLE_EQ(grid.min_point().frequency, 0.2);
  EXPECT_DOUBLE_EQ(grid.min_point().voltage, 1.0);
  EXPECT_DOUBLE_EQ(grid.max_point().frequency, 1.0);
  EXPECT_DOUBLE_EQ(grid.max_point().voltage, 2.0);
}

TEST(MachineSpec, ByNameRoundTrips) {
  EXPECT_EQ(MachineSpec::ByName("machine1").num_points(), 4u);
  EXPECT_EQ(MachineSpec::ByName("k6").name(), "k6");
}

TEST(MachineSpecDeathTest, RejectsInvalidSpecs) {
  EXPECT_DEATH(MachineSpec("empty", {}), "at least one");
  EXPECT_DEATH(MachineSpec("nomax", {{0.5, 3.0}}), "normalized to 1.0");
  EXPECT_DEATH(MachineSpec("dup", {{0.5, 3.0}, {0.5, 3.5}, {1.0, 5.0}}),
               "duplicate frequency");
  EXPECT_DEATH(MachineSpec("vdec", {{0.5, 5.0}, {1.0, 3.0}}), "non-decreasing");
  EXPECT_DEATH(MachineSpec::ByName("bogus"), "unknown machine");
}

TEST(OperatingPoint, EnergyScalesWithVoltageSquared) {
  OperatingPoint p{0.5, 3.0};
  EXPECT_DOUBLE_EQ(p.EnergyPerWorkUnit(), 9.0);
  EXPECT_DOUBLE_EQ(p.ActivePower(), 4.5);
}

}  // namespace
}  // namespace rtdvs
