#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormat, HandlesLongOutput) {
  std::string long_arg(10'000, 'a');
  std::string result = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(result.size(), long_arg.size() + 2);
  EXPECT_EQ(result.front(), '<');
  EXPECT_EQ(result.back(), '>');
}

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("no-sep", ','), (std::vector<std::string>{"no-sep"}));
}

TEST(Trim, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n x \r\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ParseDouble, AcceptsNumbersRejectsJunk) {
  EXPECT_EQ(ParseDouble("1.5"), 1.5);
  EXPECT_EQ(ParseDouble(" 2e3 "), 2000.0);
  EXPECT_EQ(ParseDouble("-0.25"), -0.25);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1 2").has_value());
}

TEST(ParseInt, AcceptsIntegersRejectsJunk) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-7"), -7);
  EXPECT_EQ(ParseInt(" 0 "), 0);
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12ab").has_value());
}

}  // namespace
}  // namespace rtdvs
