#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rtdvs {
namespace {

TEST(ThreadPool, RunsEveryTaskAndReturnsResultsBySubmissionSlot) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  // Futures pair results with submissions no matter which worker ran what.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerExecutesInFifoOrder) {
  // The jobs=1 degenerate case: one worker drains the queue in submission
  // order, so the observed sequence is exactly 0,1,2,...
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("shard failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "shard failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, FailedTaskDoesNotPoisonLaterTasks) {
  ThreadPool pool(1);
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  auto after = pool.Submit([] { return 42; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(after.get(), 42);
}

TEST(ThreadPool, NonPositiveThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++completed;
      });
    }
    // Futures discarded: the destructor must still run everything queued.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, DefaultNumThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

}  // namespace
}  // namespace rtdvs
