#include "src/util/metrics_registry.h"

#include <gtest/gtest.h>

#include "src/util/json.h"

namespace rtdvs {
namespace {

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("sim.runs");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5);
  // Same name returns the same handle.
  EXPECT_EQ(registry.GetCounter("sim.runs"), c);
  registry.Increment("sim.runs", 2);
  EXPECT_EQ(c->value(), 7);
}

TEST(Histogram, RecordsIntoInclusiveUpperEdges) {
  Histogram h({1.0, 10.0, 100.0});
  h.Record(1.0);    // first bucket: edge is inclusive
  h.Record(5.0);    // second
  h.Record(100.0);  // third
  h.Record(1e6);    // overflow
  EXPECT_EQ(h.count(), 4);
  const auto& buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_DOUBLE_EQ(h.sum(), 1e6 + 106.0);
}

TEST(Histogram, PercentilesInterpolateAndClampToMax) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) {
    h.Record(5.0 + (i % 3) * 10.0);  // ~uniform over three buckets
  }
  double p50 = h.ValueAtPercentile(50);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 30.0);
  // Monotone in p.
  EXPECT_LE(h.ValueAtPercentile(10), h.ValueAtPercentile(90));
  // The overflow bucket reports the observed max, not infinity.
  Histogram over({1.0});
  over.Record(500.0);
  EXPECT_DOUBLE_EQ(over.ValueAtPercentile(99), 500.0);
  // Empty histogram: all zeros.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.ValueAtPercentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(Histogram, ExponentialBoundsGrowGeometrically) {
  Histogram h = Histogram::Exponential(1.0, 2.0, 4);
  ASSERT_EQ(h.bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 4.0);
  EXPECT_DOUBLE_EQ(h.bounds()[3], 8.0);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.Record(0.5);
  b.Record(1.5);
  b.Record(9.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 11.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_EQ(a.bucket_counts()[0], 1);
  EXPECT_EQ(a.bucket_counts()[1], 1);
  EXPECT_EQ(a.bucket_counts()[2], 1);
}

TEST(Snapshot, MergeAndDiffCounters) {
  MetricsRegistry a;
  a.Increment("x", 3);
  a.Increment("y", 1);
  MetricsRegistry b;
  b.Increment("x", 2);
  b.Increment("z", 5);

  auto snap_a = a.TakeSnapshot();
  auto snap_b = b.TakeSnapshot();
  auto merged = snap_a;
  merged.MergeFrom(snap_b);
  EXPECT_EQ(merged.counters.at("x"), 5);
  EXPECT_EQ(merged.counters.at("y"), 1);
  EXPECT_EQ(merged.counters.at("z"), 5);

  auto diff = merged.DiffFrom(snap_a);
  EXPECT_EQ(diff.counters.at("x"), 2);
  EXPECT_EQ(diff.counters.at("y"), 0);
  EXPECT_EQ(diff.counters.at("z"), 5);

  EXPECT_FALSE(snap_a.CountersEqual(snap_b));
  EXPECT_TRUE(snap_a.CountersEqual(a.TakeSnapshot()));
}

TEST(Snapshot, ToJsonIsNameOrderedAndStable) {
  MetricsRegistry registry;
  registry.Increment("zeta", 1);
  registry.Increment("alpha", 2);
  registry.GetHistogram("lat", {1.0, 10.0})->Record(3.0);
  auto snapshot = registry.TakeSnapshot();
  JsonValue json = snapshot.ToJson();
  // Counters come out in lexicographic order regardless of creation order.
  const auto& counters = json.Get("counters");
  ASSERT_EQ(counters.entries().size(), 2u);
  EXPECT_EQ(counters.entries()[0].first, "alpha");
  EXPECT_EQ(counters.entries()[1].first, "zeta");
  const JsonValue& lat = json.Get("histograms").Get("lat");
  EXPECT_EQ(lat.Get("count").AsInt(), 1);
  EXPECT_DOUBLE_EQ(lat.Get("mean").AsDouble(), 3.0);
  // Byte-stable across identical registries.
  MetricsRegistry again;
  again.Increment("alpha", 2);
  again.Increment("zeta", 1);
  again.GetHistogram("lat", {1.0, 10.0})->Record(3.0);
  EXPECT_EQ(again.TakeSnapshot().ToJson().ToString(),
            snapshot.ToJson().ToString());
}

}  // namespace
}  // namespace rtdvs
