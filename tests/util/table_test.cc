#include "src/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rtdvs {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.6400, 4), "0.64");
  EXPECT_EQ(FormatDouble(-0.25, 2), "-0.25");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Numeric cells right-align under the header.
  EXPECT_NE(text.find(" 22.5"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable table({"a", "b"});
  table.AddRow({"x", "1"});
  std::ostringstream out;
  table.PrintCsv(out, "csv,tag");
  EXPECT_EQ(out.str(), "csv,tag,a,b\ncsv,tag,x,1\n");
}

TEST(TextTable, AddNumericRowFormatsDoubles) {
  TextTable table({"u", "e"});
  table.AddNumericRow({0.5, 1.23456}, 3);
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "csv,u,e\ncsv,0.5,1.235\n");
}

TEST(TextTableDeathTest, WrongArityAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
