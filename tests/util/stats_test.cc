#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtdvs {
namespace {

TEST(RunningStats, EmptyIsAllZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stderr_mean(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stderr_mean(), stats.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, SingleSample) {
  RunningStats stats;
  stats.Add(-3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), -3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.5);
  EXPECT_DOUBLE_EQ(stats.max(), -3.5);
}

TEST(RunningStats, NumericallyStableAroundLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.Add(1e9 + (i % 2));  // values 1e9 and 1e9+1
  }
  EXPECT_NEAR(stats.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(stats.variance(), 0.25 * 1000 / 999, 1e-3);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> samples = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 25), 17.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
}

TEST(Percentile, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50), 2.0);
}

}  // namespace
}  // namespace rtdvs
