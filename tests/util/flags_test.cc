#include "src/util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace rtdvs {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& arg : storage_) {
      pointers_.push_back(arg.data());
    }
  }
  int argc() { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagSet, ParsesEqualsAndSpaceForms) {
  double d = 1.0;
  int64_t i = 2;
  std::string s = "x";
  FlagSet flags("test");
  flags.AddDouble("dee", &d, "");
  flags.AddInt64("eye", &i, "");
  flags.AddString("ess", &s, "");
  Argv args({"prog", "--dee=2.5", "--eye", "7", "--ess=hello"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(d, 2.5);
  EXPECT_EQ(i, 7);
  EXPECT_EQ(s, "hello");
}

TEST(FlagSet, BoolFormsIncludingNegation) {
  bool a = false, b = true, c = false;
  FlagSet flags("test");
  flags.AddBool("aa", &a, "");
  flags.AddBool("bb", &b, "");
  flags.AddBool("cc", &c, "");
  Argv args({"prog", "--aa", "--no-bb", "--cc=true"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(FlagSet, RejectsUnknownFlag) {
  FlagSet flags("test");
  Argv args({"prog", "--nope"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagSet, RejectsBadValue) {
  double d = 0;
  FlagSet flags("test");
  flags.AddDouble("dee", &d, "");
  Argv args({"prog", "--dee=abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagSet, RejectsPositionalArguments) {
  FlagSet flags("test");
  Argv args({"prog", "stray"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagSet, RejectsMissingValue) {
  int64_t i = 0;
  FlagSet flags("test");
  flags.AddInt64("eye", &i, "");
  Argv args({"prog", "--eye"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagSet, HelpReturnsFalse) {
  FlagSet flags("test");
  Argv args({"prog", "--help"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagSet, EmptyCommandLineSucceeds) {
  FlagSet flags("test");
  Argv args({"prog"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagSetDeathTest, DuplicateFlagAborts) {
  double d = 0;
  FlagSet flags("test");
  flags.AddDouble("dee", &d, "");
  EXPECT_DEATH(flags.AddDouble("dee", &d, ""), "duplicate flag");
}

}  // namespace
}  // namespace rtdvs
