#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rtdvs {
namespace {

TEST(JsonValue, ScalarKindsAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_EQ(JsonValue(true).AsBool(), true);
  EXPECT_EQ(JsonValue(42).AsInt(), 42);
  EXPECT_EQ(JsonValue(int64_t{-7}).AsInt(), -7);
  EXPECT_DOUBLE_EQ(JsonValue(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue(3).AsDouble(), 3.0);  // int promotes
  EXPECT_EQ(JsonValue("hi").AsString(), "hi");
}

TEST(JsonValue, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  obj.Set("mango", 3);
  EXPECT_EQ(obj.ToString(), R"({"zebra":1,"apple":2,"mango":3})");
  // Overwrite keeps the original position.
  obj.Set("zebra", 9);
  EXPECT_EQ(obj.ToString(), R"({"zebra":9,"apple":2,"mango":3})");
  EXPECT_EQ(obj.Get("apple").AsInt(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonValue, ArrayAppendAndAt) {
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  arr.Append(JsonValue::Object()).Set("k", 3);
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(0).AsInt(), 1);
  EXPECT_EQ(arr.at(1).AsString(), "two");
  EXPECT_EQ(arr.at(2).Get("k").AsInt(), 3);
}

TEST(JsonValue, StringEscaping) {
  JsonValue v("a\"b\\c\n\t\x01");
  EXPECT_EQ(v.ToString(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  // And the escape round-trips through the parser.
  auto back = JsonValue::Parse(v.ToString());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->AsString(), "a\"b\\c\n\t\x01");
}

TEST(JsonValue, DoublesRoundTripShortest) {
  JsonValue v(0.1);
  auto back = JsonValue::Parse(v.ToString());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->AsDouble(), 0.1);
  // Integral doubles still read back equal.
  EXPECT_EQ(JsonValue::Parse(JsonValue(16.0).ToString())->AsDouble(), 16.0);
}

TEST(JsonValue, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse("'single'").has_value());
  EXPECT_FALSE(JsonValue::Parse("").has_value());
}

TEST(JsonValue, ParseAcceptsNestedDocument) {
  auto doc = JsonValue::Parse(
      R"({"a": [1, 2.5, true, null, "s"], "b": {"c": -3}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("a").size(), 5u);
  EXPECT_TRUE(doc->Get("a").at(3).is_null());
  EXPECT_EQ(doc->Get("b").Get("c").AsInt(), -3);
}

TEST(JsonValue, WriteRoundTripsByteStable) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", "sweep");
  JsonValue& rows = doc.Set("rows", JsonValue::Array());
  for (int i = 0; i < 3; ++i) {
    JsonValue& row = rows.Append(JsonValue::Object());
    row.Set("u", 0.1 * i);
    row.Set("n", i);
  }
  std::string once = doc.ToString(1);
  auto parsed = JsonValue::Parse(once);
  ASSERT_TRUE(parsed.has_value());
  // Emitting the parsed document reproduces the bytes: the premise of
  // diffable BENCH_*.json artifacts.
  EXPECT_EQ(parsed->ToString(1), once);
}

TEST(JsonValue, PrettyPrintIndents) {
  JsonValue doc = JsonValue::Object();
  doc.Set("k", JsonValue::Array()).Append(1);
  EXPECT_EQ(doc.ToString(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(WriteJsonFile, WritesParseableFileWithTrailingNewline) {
  std::string path = testing::TempDir() + "/json_test_out.json";
  JsonValue doc = JsonValue::Object();
  doc.Set("x", 1);
  ASSERT_TRUE(WriteJsonFile(doc, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_TRUE(JsonValue::Parse(text).has_value());
  std::remove(path.c_str());
}

TEST(WriteJsonFile, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteJsonFile(JsonValue::Object(), "/nonexistent-dir/x.json"));
}

}  // namespace
}  // namespace rtdvs
