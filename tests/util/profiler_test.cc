// Unit suite for src/util/profiler: disabled spans must be free (within
// the documented 2% end-to-end bound), enabled spans must aggregate with
// correct self/child accounting, flushes from pool workers must merge
// without loss, and span COUNTS for a deterministic workload must be
// identical for every sweep jobs value.
#include "src/util/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "src/core/sweep.h"
#include "src/rt/exec_time_model.h"
#include "src/util/json.h"
#include "src/util/thread_pool.h"

namespace rtdvs {
namespace {

// The profiler is process-global: every test starts from a clean, disabled
// state and leaves it that way.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Disable();
    Profiler::Reset();
  }
  void TearDown() override {
    Profiler::Disable();
    Profiler::Reset();
  }
};

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// A small sweep whose span counts are deterministic; shared by the
// determinism and overhead tests.
SweepOptions SmallSweep(bool profile, int jobs) {
  SweepOptions options;
  options.policy_ids = {"edf", "cc_edf"};
  options.utilizations = {0.3, 0.6};
  options.num_tasks = 5;
  options.tasksets_per_point = 4;
  options.horizon_ms = 500.0;
  options.profile = profile;
  options.jobs = jobs;
  return options;
}

TEST_F(ProfilerTest, DisabledSpansRecordNothing) {
  {
    RTDVS_PROF_SCOPE("test/should_not_appear");
  }
  Profiler::FlushThisThread();
  EXPECT_TRUE(Profiler::Drain().empty());
}

TEST_F(ProfilerTest, AggregatesWithSelfChildAccounting) {
  Profiler::Enable();
  for (int i = 0; i < 10; ++i) {
    RTDVS_PROF_SCOPE("test/outer");
    for (int j = 0; j < 3; ++j) {
      RTDVS_PROF_SCOPE("test/inner");
    }
  }
  Profiler::Disable();
  ProfileSnapshot snapshot = Profiler::Drain();

  ASSERT_EQ(snapshot.spans.size(), 2u);
  const ProfileSpanStats& outer = snapshot.spans.at("test/outer");
  const ProfileSpanStats& inner = snapshot.spans.at("test/inner");
  EXPECT_EQ(outer.count, 10);
  EXPECT_EQ(inner.count, 30);
  // Inclusive time covers the children; self time excludes exactly them.
  EXPECT_GE(outer.total_ms, outer.child_ms);
  EXPECT_GE(outer.child_ms, inner.total_ms * 0.99);
  EXPECT_GE(inner.self_ms(), 0.0);
  EXPECT_EQ(inner.child_ms, 0.0);
  EXPECT_EQ(inner.hist.count(), 30);
}

TEST_F(ProfilerTest, DrainClearsAndSecondDrainIsEmpty) {
  Profiler::Enable();
  {
    RTDVS_PROF_SCOPE("test/span");
  }
  Profiler::Disable();
  EXPECT_EQ(Profiler::Drain().spans.size(), 1u);
  EXPECT_TRUE(Profiler::Drain().empty());
}

TEST_F(ProfilerTest, SnapshotMergeAddsCounts) {
  Profiler::Enable();
  {
    RTDVS_PROF_SCOPE("test/span");
  }
  Profiler::Disable();
  ProfileSnapshot a = Profiler::Drain();

  Profiler::Enable();
  {
    RTDVS_PROF_SCOPE("test/span");
  }
  {
    RTDVS_PROF_SCOPE("test/other");
  }
  Profiler::Disable();
  ProfileSnapshot b = Profiler::Drain();

  a.MergeFrom(b);
  EXPECT_EQ(a.spans.at("test/span").count, 2);
  EXPECT_EQ(a.spans.at("test/other").count, 1);
  EXPECT_EQ(a.spans.at("test/span").hist.count(), 2);
}

TEST_F(ProfilerTest, ToJsonIsNameOrderedWithExpectedFields) {
  Profiler::Enable();
  {
    RTDVS_PROF_SCOPE("test/b");
  }
  {
    RTDVS_PROF_SCOPE("test/a");
  }
  Profiler::Disable();
  const JsonValue json = Profiler::Drain().ToJson();
  ASSERT_EQ(json.entries().size(), 2u);
  EXPECT_EQ(json.entries()[0].first, "test/a");
  EXPECT_EQ(json.entries()[1].first, "test/b");
  const JsonValue& span = json.entries()[0].second;
  for (const char* field :
       {"count", "total_ms", "self_ms", "mean_ms", "p50_ms", "p95_ms",
        "max_ms"}) {
    EXPECT_NE(span.Find(field), nullptr) << field;
  }
}

TEST_F(ProfilerTest, WorkerFlushesMergeWithoutLoss) {
  constexpr int kTasks = 64;
  constexpr int kSpansPerTask = 100;
  Profiler::Enable();
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> pending;
    for (int t = 0; t < kTasks; ++t) {
      pending.push_back(pool.Submit([] {
        for (int i = 0; i < kSpansPerTask; ++i) {
          RTDVS_PROF_SCOPE("test/pooled");
        }
        Profiler::FlushThisThread();
      }));
    }
    for (auto& f : pending) {
      f.get();
    }
  }
  Profiler::Disable();
  ProfileSnapshot snapshot = Profiler::Drain();
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_EQ(snapshot.spans.at("test/pooled").count, kTasks * kSpansPerTask);
}

TEST_F(ProfilerTest, SweepSpanCountsIdenticalForEveryJobsValue) {
  SweepResult serial = UtilizationSweep(SmallSweep(true, 1)).Run();
  SweepResult parallel = UtilizationSweep(SmallSweep(true, 3)).Run();

  ASSERT_FALSE(serial.profile.spans.empty());
  ASSERT_EQ(serial.profile.spans.spans.size(),
            parallel.profile.spans.spans.size());
  auto it = parallel.profile.spans.spans.begin();
  for (const auto& [name, stats] : serial.profile.spans.spans) {
    EXPECT_EQ(name, it->first);
    EXPECT_EQ(stats.count, it->second.count) << name;
    ++it;
  }
  // The workload itself is bit-identical too (the sweep's core contract).
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (size_t r = 0; r < serial.rows.size(); ++r) {
    for (size_t c = 0; c < serial.rows[r].cells.size(); ++c) {
      EXPECT_EQ(serial.rows[r].cells[c].energy.mean(),
                parallel.rows[r].cells[c].energy.mean());
    }
  }
}

TEST_F(ProfilerTest, UnprofiledSweepCarriesNoSpans) {
  SweepResult result = UtilizationSweep(SmallSweep(false, 1)).Run();
  EXPECT_TRUE(result.profile.spans.empty());
  EXPECT_TRUE(Profiler::Drain().empty());
}

// The documented overhead contract: with profiling disabled, a span costs
// one relaxed load and a predicted branch. Measure that per-span cost
// directly, count the span hits a representative workload performs, and
// assert hits x cost stays under 2% of the workload's unprofiled runtime.
TEST_F(ProfilerTest, DisabledOverheadWithinTwoPercent) {
  // Span hits for this workload (counts are deterministic, so one profiled
  // run measures the hit count exactly).
  SweepResult profiled = UtilizationSweep(SmallSweep(true, 1)).Run();
  int64_t hits = 0;
  for (const auto& [name, stats] : profiled.profile.spans.spans) {
    hits += stats.count;
  }
  ASSERT_GT(hits, 0);

  // Per-span disabled cost: min over repeats to shed scheduler noise.
  Profiler::Disable();
  constexpr int kIterations = 2'000'000;
  double span_loop_ms = 1e100;
  double empty_loop_ms = 1e100;
  for (int repeat = 0; repeat < 5; ++repeat) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIterations; ++i) {
      RTDVS_PROF_SCOPE("test/disabled");
    }
    span_loop_ms = std::min(span_loop_ms, ElapsedMs(start));
    start = std::chrono::steady_clock::now();
    for (volatile int i = 0; i < kIterations; ++i) {
    }
    empty_loop_ms = std::min(empty_loop_ms, ElapsedMs(start));
  }
  const double cost_per_span_ms =
      std::max(0.0, span_loop_ms - empty_loop_ms) / kIterations;

  // Unprofiled workload runtime: min of 3 to shed noise.
  double workload_ms = 1e100;
  for (int repeat = 0; repeat < 3; ++repeat) {
    SweepResult result = UtilizationSweep(SmallSweep(false, 1)).Run();
    workload_ms = std::min(workload_ms, result.elapsed_wall_ms);
  }

  const double overhead_ms = static_cast<double>(hits) * cost_per_span_ms;
  EXPECT_LE(overhead_ms, 0.02 * workload_ms)
      << hits << " span hits x " << cost_per_span_ms * 1e6
      << " ns/span = " << overhead_ms << " ms overhead vs " << workload_ms
      << " ms workload";
}

}  // namespace
}  // namespace rtdvs
