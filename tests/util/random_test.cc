#include "src/util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace rtdvs {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42);
  Pcg32 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    differences += a.NextU32() != b.NextU32();
  }
  EXPECT_GT(differences, 28);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);  // uniform mean
}

TEST(Pcg32, UniformDoubleRespectsBounds) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
  EXPECT_EQ(rng.UniformDouble(2.0, 2.0), 2.0);
}

TEST(Pcg32, NextBoundedCoversRangeWithoutBias) {
  Pcg32 rng(11);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30'000; ++i) {
    uint32_t x = rng.NextBounded(3);
    ASSERT_LT(x, 3u);
    ++counts[x];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, 10'000, 400);
  }
}

TEST(Pcg32, UniformIntInclusiveBounds) {
  Pcg32 rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(Pcg32, WeightedIndexFollowsWeights) {
  Pcg32 rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40'000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Pcg32, ForkProducesIndependentStream) {
  Pcg32 parent(21);
  Pcg32 child = parent.Fork();
  // The child should not replay the parent's stream.
  Pcg32 parent_copy(21);
  (void)parent_copy.Fork();
  int matches = 0;
  for (int i = 0; i < 32; ++i) {
    matches += child.NextU32() == parent.NextU32();
  }
  EXPECT_LT(matches, 4);
}

TEST(Pcg32, ForkIsDeterministic) {
  Pcg32 a(99);
  Pcg32 b(99);
  Pcg32 ca = a.Fork();
  Pcg32 cb = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.NextU32(), cb.NextU32());
  }
}

}  // namespace
}  // namespace rtdvs
