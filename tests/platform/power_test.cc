#include <gtest/gtest.h>

#include "src/platform/power_meter.h"
#include "src/platform/system_power.h"

namespace rtdvs {
namespace {

TEST(SystemPowerModel, ReproducesTable1) {
  SystemPowerModel model;
  model.screen_on = true;
  model.disk_spinning = true;
  EXPECT_NEAR(model.HaltedWatts(), 13.5, 1e-9);
  model.disk_spinning = false;
  EXPECT_NEAR(model.HaltedWatts(), 13.0, 1e-9);
  model.screen_on = false;
  EXPECT_NEAR(model.HaltedWatts(), 7.1, 1e-9);
  EXPECT_NEAR(model.ActiveWatts(550.0, 2.0), 27.3, 1e-9);
}

TEST(SystemPowerModel, CpuSwingScalesWithFV2) {
  SystemPowerModel model;
  // Half frequency at the same voltage: half the swing.
  EXPECT_NEAR(model.CpuActiveWatts(275.0, 2.0), 10.1, 1e-9);
  // 1.4 V instead of 2.0 V: (1.4/2)^2 = 0.49 of the swing.
  EXPECT_NEAR(model.CpuActiveWatts(550.0, 1.4), 20.2 * 0.49, 1e-9);
}

TEST(SystemPowerModel, Table1StringContainsAllRows) {
  std::string table = SystemPowerModel().Table1();
  EXPECT_NE(table.find("13.5 W"), std::string::npos);
  EXPECT_NE(table.find("13.0 W"), std::string::npos);
  EXPECT_NE(table.find("7.1 W"), std::string::npos);
  EXPECT_NE(table.find("27.3 W"), std::string::npos);
}

TEST(PowerMeter, AveragesOverAccumulatedSegments) {
  PowerMeter meter;
  meter.Accumulate(0, 10, 10.0);   // 100 W*ms
  meter.Accumulate(10, 30, 25.0);  // 500 W*ms
  EXPECT_NEAR(meter.AverageWatts(), 600.0 / 30.0, 1e-12);
  EXPECT_NEAR(meter.TotalJoules(), 0.6, 1e-12);
  EXPECT_NEAR(meter.DurationMs(), 30.0, 1e-12);
}

TEST(PowerMeter, WindowedAverageClipsSegments) {
  PowerMeter meter;
  meter.Accumulate(0, 10, 10.0);
  meter.Accumulate(10, 20, 30.0);
  // Window [5, 15): half at 10 W, half at 30 W.
  EXPECT_NEAR(meter.AverageWatts(5, 15), 20.0, 1e-12);
}

TEST(PowerMeter, EmptyMeterReadsZero) {
  PowerMeter meter;
  EXPECT_EQ(meter.AverageWatts(), 0.0);
  EXPECT_EQ(meter.AverageWatts(0, 10), 0.0);
}

TEST(PowerMeter, ZeroLengthSegmentIgnored) {
  PowerMeter meter;
  meter.Accumulate(5, 5, 99.0);
  EXPECT_EQ(meter.DurationMs(), 0.0);
}

TEST(PowerMeterDeathTest, RejectsDisorderAndNegativePower) {
  PowerMeter meter;
  meter.Accumulate(10, 20, 5.0);
  EXPECT_DEATH(meter.Accumulate(0, 5, 5.0), "time order");
  EXPECT_DEATH(meter.Accumulate(20, 30, -1.0), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
