#include <gtest/gtest.h>

#include <cmath>

#include "src/platform/battery.h"
#include "src/platform/thermal.h"

namespace rtdvs {
namespace {

TEST(ThermalModel, StartsAtAmbient) {
  ThermalModel model{ThermalParams{}};
  EXPECT_DOUBLE_EQ(model.temperature_c(), 25.0);
  EXPECT_DOUBLE_EQ(model.peak_c(), 25.0);
}

TEST(ThermalModel, SteadyStateIsAmbientPlusPR) {
  ThermalParams params;
  params.ambient_c = 20.0;
  params.resistance_c_per_w = 4.0;
  ThermalModel model(params);
  EXPECT_DOUBLE_EQ(model.SteadyStateC(10.0), 60.0);
}

TEST(ThermalModel, ConvergesToSteadyState) {
  ThermalModel model{ThermalParams{}};
  // tau = 3.5 * 1.2 = 4.2 s; after 120 s the exponential residue of the
  // 35 degC step is ~1e-11 degC.
  model.Advance(120'000.0, 10.0);
  EXPECT_NEAR(model.temperature_c(), model.SteadyStateC(10.0), 1e-9);
  EXPECT_NEAR(model.peak_c(), model.SteadyStateC(10.0), 1e-9);
}

TEST(ThermalModel, ExponentialStepResponseIsExact) {
  ThermalParams params;
  ThermalModel model(params);
  const double tau_ms = params.resistance_c_per_w * params.capacitance_j_per_c * 1000.0;
  model.Advance(tau_ms, 10.0);  // exactly one time constant
  double expected = model.SteadyStateC(10.0) +
                    (params.ambient_c - model.SteadyStateC(10.0)) * std::exp(-1.0);
  EXPECT_NEAR(model.temperature_c(), expected, 1e-9);
}

TEST(ThermalModel, SegmentationInvariance) {
  // Advancing in one 10 s chunk equals advancing in 1000 x 10 ms chunks.
  ThermalModel coarse{ThermalParams{}};
  ThermalModel fine{ThermalParams{}};
  coarse.Advance(10'000.0, 7.5);
  for (int i = 0; i < 1000; ++i) {
    fine.Advance(10.0, 7.5);
  }
  EXPECT_NEAR(coarse.temperature_c(), fine.temperature_c(), 1e-9);
  EXPECT_NEAR(coarse.MeanC(), fine.MeanC(), 1e-9);
}

TEST(ThermalModel, PeakTracksHotExcursions) {
  ThermalModel model{ThermalParams{}};
  model.Advance(30'000.0, 20.0);  // hot
  double hot = model.temperature_c();
  model.Advance(30'000.0, 1.0);  // cool-down
  EXPECT_LT(model.temperature_c(), hot);
  EXPECT_NEAR(model.peak_c(), hot, 1e-9);
  // Mean sits between the extremes.
  EXPECT_GT(model.MeanC(), model.temperature_c());
  EXPECT_LT(model.MeanC(), hot);
}

TEST(BatteryModel, IdealBatteryIsCapacityOverPower) {
  BatteryParams params;
  params.capacity_wh = 40.0;
  params.peukert_exponent = 1.0;
  params.converter_efficiency = 1.0;
  BatteryModel battery(params);
  EXPECT_DOUBLE_EQ(battery.LifeHours(10.0), 4.0);
  EXPECT_DOUBLE_EQ(battery.LifeHours(20.0), 2.0);
}

TEST(BatteryModel, ConverterLossesShortenLife) {
  BatteryParams params;
  params.peukert_exponent = 1.0;
  params.converter_efficiency = 0.8;
  BatteryModel battery(params);
  EXPECT_DOUBLE_EQ(battery.PackWatts(8.0), 10.0);
  EXPECT_DOUBLE_EQ(battery.LifeHours(8.0), params.capacity_wh / 10.0);
}

TEST(BatteryModel, PeukertPenalizesHighDrain) {
  BatteryParams params;
  params.rated_power_w = 10.0;
  params.peukert_exponent = 1.2;
  params.converter_efficiency = 1.0;
  BatteryModel battery(params);
  // At the rated power the penalty factor is exactly 1.
  EXPECT_DOUBLE_EQ(battery.LifeHours(10.0), params.capacity_wh / 10.0);
  // Twice the rate: worse than half the rated-rate life.
  EXPECT_LT(battery.LifeHours(20.0), battery.LifeHours(10.0) / 2.0);
  // Half the rate: better than double (low rates recover capacity).
  EXPECT_GT(battery.LifeHours(5.0), battery.LifeHours(10.0) * 2.0);
}

TEST(BatteryModel, SavingsCompoundSuperlinearly) {
  // The product-level story: a 25% power cut buys MORE than 33% extra life
  // on a Peukert battery.
  BatteryModel battery{BatteryParams{}};
  double at_full = battery.LifeHours(16.0);
  double at_dvs = battery.LifeHours(12.0);
  EXPECT_GT(at_dvs / at_full, 16.0 / 12.0);
}

TEST(BatteryModelDeathTest, ValidatesParams) {
  BatteryParams bad;
  bad.peukert_exponent = 0.9;
  EXPECT_DEATH(BatteryModel{bad}, "CHECK failed");
  BatteryParams bad2;
  bad2.converter_efficiency = 0.0;
  EXPECT_DEATH(BatteryModel{bad2}, "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
