#include "src/platform/k6_cpu.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(K6Cpu, DefaultsToMaximumOperatingPoint) {
  K6Cpu cpu;
  EXPECT_DOUBLE_EQ(cpu.frequency_mhz(), 550.0);
  EXPECT_DOUBLE_EQ(cpu.voltage(), 2.0);
  EXPECT_FALSE(cpu.crashed());
}

TEST(K6Cpu, PllTableMatchesSection41) {
  // 200-600 MHz in 50 MHz steps, skipping 250, capped at 550.
  EXPECT_EQ(K6Cpu::FrequencyTableMhz(),
            (std::vector<double>{200, 300, 350, 400, 450, 500, 550}));
  EXPECT_EQ(K6Cpu::VoltageTable(), (std::vector<double>{1.4, 2.0}));
}

TEST(K6Cpu, StabilityEnvelopeMatchesEmpiricalMapping) {
  EXPECT_TRUE(K6Cpu::IsStable(450.0, 1.4));
  EXPECT_FALSE(K6Cpu::IsStable(500.0, 1.4));
  EXPECT_TRUE(K6Cpu::IsStable(550.0, 2.0));
  EXPECT_FALSE(K6Cpu::IsStable(600.0, 2.0));
  EXPECT_FALSE(K6Cpu::IsStable(200.0, 1.0));
}

TEST(K6Cpu, TransitionHaltsForSgtcUnits) {
  K6Cpu cpu;
  cpu.WriteEpmr(10.0, {0, 0, 10});
  EXPECT_TRUE(cpu.InTransition(10.1));
  EXPECT_NEAR(cpu.transition_end_ms(), 10.0 + 10 * K6Cpu::kSgtcUnitMs, 1e-12);
  EXPECT_FALSE(cpu.InTransition(10.5));
  EXPECT_DOUBLE_EQ(cpu.frequency_mhz(), 200.0);
  EXPECT_DOUBLE_EQ(cpu.voltage(), 1.4);
  EXPECT_EQ(cpu.transition_count(), 1);
}

TEST(K6Cpu, TscCountsAtTargetFrequencyThroughTheHalt) {
  // The paper's measurement: ~8200 cycles across a 41 us transition to
  // 200 MHz, ~22500 to 550 MHz.
  K6Cpu cpu;
  cpu.WriteEpmr(0.0, {0, 1, 1});  // park at 200 MHz
  uint64_t before = cpu.Tsc(10.0);
  cpu.WriteEpmr(10.0, {0, 1, 1});  // no-op transition content, still halts
  uint64_t after = cpu.Tsc(cpu.transition_end_ms());
  EXPECT_EQ(after - before, 8192u);  // 40.96 us * 200 MHz

  K6Cpu cpu2;
  uint64_t b2 = cpu2.Tsc(5.0);
  cpu2.WriteEpmr(5.0, {6, 1, 1});  // to 550 MHz
  uint64_t a2 = cpu2.Tsc(cpu2.transition_end_ms());
  EXPECT_EQ(a2 - b2, 22528u);  // 40.96 us * 550 MHz
}

TEST(K6Cpu, TscAdvancesWithWallClock) {
  K6Cpu cpu;  // 550 MHz
  EXPECT_EQ(cpu.Tsc(1.0), 550'000u);
  cpu.SyncTsc(1.0);
  cpu.WriteEpmr(1.0, {0, 0, 1});  // 200 MHz
  // 1 ms later: 550k + 200k.
  EXPECT_EQ(cpu.Tsc(2.0), 750'000u);
}

TEST(K6Cpu, UnstableCombinationCrashes) {
  K6Cpu cpu;
  EXPECT_FALSE(cpu.crashed());
  cpu.WriteEpmr(0.0, {6, 0, 1});  // 550 MHz at 1.4 V: out of envelope
  EXPECT_TRUE(cpu.crashed());
}

TEST(K6CpuDeathTest, RejectsInvalidRegisterValues) {
  K6Cpu cpu;
  EXPECT_DEATH(cpu.WriteEpmr(0.0, {200, 0, 1}), "invalid FID");
  EXPECT_DEATH(cpu.WriteEpmr(0.0, {0, 7, 1}), "unsupported VID");
  EXPECT_DEATH(cpu.WriteEpmr(0.0, {0, 0, 0}), "SGTC");
  EXPECT_DEATH(cpu.SyncTsc(-1.0), "time moved backwards");
}

}  // namespace
}  // namespace rtdvs
