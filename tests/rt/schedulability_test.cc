#include "src/rt/schedulability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/rt/taskset_generator.h"
#include "src/util/random.h"

namespace rtdvs {
namespace {

TEST(EdfSchedulable, UtilizationBound) {
  TaskSet set = TaskSet::PaperExample();  // U = 0.746
  EXPECT_TRUE(EdfSchedulable(set, 1.0));
  EXPECT_TRUE(EdfSchedulable(set, 0.75));
  EXPECT_FALSE(EdfSchedulable(set, 0.74));
  EXPECT_FALSE(EdfSchedulable(set, 0.5));
}

TEST(RmSufficient, PaperExampleNeedsFullSpeed) {
  // Figure 2: static RM cannot scale the example below 1.0.
  TaskSet set = TaskSet::PaperExample();
  EXPECT_TRUE(RmSchedulableSufficient(set, 1.0));
  EXPECT_FALSE(RmSchedulableSufficient(set, 0.83));
  EXPECT_FALSE(RmSchedulableSufficient(set, 0.75));
}

TEST(RmSufficient, HarmonicPeriodsPassAtFullUtilization) {
  // Harmonic task sets are RM-schedulable up to U = 1.
  TaskSet set({{"a", 10, 5, 0}, {"b", 20, 5, 0}, {"c", 40, 10, 0}});
  EXPECT_NEAR(set.TotalUtilization(), 1.0, 1e-12);
  EXPECT_TRUE(RmSchedulableSufficient(set, 1.0));
  EXPECT_FALSE(RmSchedulableSufficient(set, 0.99));
}

TEST(RmSufficient, ExactMultiplesDoNotDoubleCount) {
  // ceil(20/10) must be exactly 2 despite floating-point division.
  TaskSet set({{"a", 10, 2, 0}, {"b", 20, 2, 0}});
  // Demand on b: 2*2 + 2 = 6 <= alpha*20  =>  alpha >= 0.3.
  EXPECT_TRUE(RmSchedulableSufficient(set, 0.3));
  EXPECT_FALSE(RmSchedulableSufficient(set, 0.29));
}

TEST(RmResponseTime, KnownFixpoint) {
  TaskSet set = TaskSet::PaperExample();
  // Lowest-priority task T3: R = 1 + ceil(R/8)*3 + ceil(R/10)*3 -> R = 7.
  auto r3 = RmResponseTime(set, 2, 1.0);
  ASSERT_TRUE(r3.has_value());
  EXPECT_NEAR(*r3, 7.0, 1e-9);
  // Highest priority: its own WCET.
  EXPECT_NEAR(*RmResponseTime(set, 0, 1.0), 3.0, 1e-9);
  // Scaling by 0.5 doubles everything for the top task.
  EXPECT_NEAR(*RmResponseTime(set, 0, 0.5), 6.0, 1e-9);
}

TEST(RmExact, AdmitsMoreThanSufficient) {
  // Classic case: the ceiling test is pessimistic, RTA is exact.
  // T1 (C=3, P=8), T2 (C=3, P=10), T3 (C=1, P=14) at alpha = 0.875:
  // sufficient test fails, but response times all fit.
  TaskSet set = TaskSet::PaperExample();
  EXPECT_FALSE(RmSchedulableSufficient(set, 0.875));
  EXPECT_TRUE(RmSchedulableExact(set, 0.875));
}

TEST(RmExact, ImpliedBySufficient) {
  // Anything the sufficient test admits, exact RTA must admit too.
  Pcg32 rng(31);
  TaskSetGeneratorOptions options;
  options.num_tasks = 5;
  for (double u : {0.3, 0.5, 0.69}) {
    options.target_utilization = u;
    TaskSetGenerator generator(options);
    for (int i = 0; i < 50; ++i) {
      TaskSet set = generator.Generate(rng);
      if (RmSchedulableSufficient(set, 1.0)) {
        EXPECT_TRUE(RmSchedulableExact(set, 1.0)) << set.ToString();
      }
    }
  }
}

TEST(RmExact, LiuLaylandBoundAlwaysSchedulable) {
  // U <= n(2^{1/n} - 1) guarantees RM schedulability for any period mix.
  Pcg32 rng(37);
  const int n = 6;
  const double bound = n * (std::pow(2.0, 1.0 / n) - 1.0);  // ~0.735
  TaskSetGeneratorOptions options;
  options.num_tasks = n;
  options.target_utilization = bound - 0.01;
  TaskSetGenerator generator(options);
  for (int i = 0; i < 100; ++i) {
    TaskSet set = generator.Generate(rng);
    EXPECT_TRUE(RmSchedulableExact(set, 1.0)) << set.ToString();
  }
}

TEST(StaticScalingPoint, MatchesFigure2Choices) {
  TaskSet set = TaskSet::PaperExample();
  MachineSpec m0 = MachineSpec::Machine0();
  auto edf = StaticScalingPoint(set, m0, SchedulerKind::kEdf);
  ASSERT_TRUE(edf.has_value());
  EXPECT_DOUBLE_EQ(edf->frequency, 0.75);
  auto rm = StaticScalingPoint(set, m0, SchedulerKind::kRm);
  ASSERT_TRUE(rm.has_value());
  EXPECT_DOUBLE_EQ(rm->frequency, 1.0);
  // With exact RTA, 0.875 would do, but machine 0 has no point between
  // 0.75 and 1.0 — machine 2 does.
  auto rm_exact_m2 =
      StaticScalingPoint(set, MachineSpec::Machine2(), SchedulerKind::kRm, true);
  ASSERT_TRUE(rm_exact_m2.has_value());
  EXPECT_DOUBLE_EQ(rm_exact_m2->frequency, 0.91);
}

TEST(StaticScalingPoint, UnschedulableReturnsNullopt) {
  TaskSet set({{"hog", 10, 9, 0}, {"hog2", 10, 9, 0}});  // U = 1.8
  EXPECT_FALSE(
      StaticScalingPoint(set, MachineSpec::Machine0(), SchedulerKind::kEdf).has_value());
}

TEST(MinimalScalingFactor, EdfIsUtilizationRmIsBinarySearched) {
  TaskSet set = TaskSet::PaperExample();
  EXPECT_NEAR(MinimalScalingFactor(set, SchedulerKind::kEdf), set.TotalUtilization(),
              1e-12);
  double rm_alpha = MinimalScalingFactor(set, SchedulerKind::kRm);
  EXPECT_TRUE(RmSchedulableSufficient(set, rm_alpha));
  EXPECT_FALSE(RmSchedulableSufficient(set, rm_alpha - 1e-6));
  // Exact RTA admits the example at 0.875 (T3: 1/a + 3/a + 3/a = 7/a and
  // at a=0.875 the fixpoint iteration stays within all periods).
  double exact_alpha = MinimalScalingFactor(set, SchedulerKind::kRm, true);
  EXPECT_LE(exact_alpha, rm_alpha);
  EXPECT_LE(exact_alpha, 0.875 + 1e-6);
}

}  // namespace
}  // namespace rtdvs
