#include "src/rt/taskset_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtdvs {
namespace {

TEST(TaskSetGenerator, HitsTargetUtilization) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 8;
  Pcg32 rng(100);
  for (double target : {0.1, 0.5, 0.95}) {
    options.target_utilization = target;
    TaskSetGenerator generator(options);
    for (int i = 0; i < 20; ++i) {
      TaskSet set = generator.Generate(rng);
      EXPECT_EQ(set.size(), 8);
      // Periods snap to 1 us, so utilization is within grid rounding.
      EXPECT_NEAR(set.TotalUtilization(), target, 1e-3);
    }
  }
}

TEST(TaskSetGenerator, PeriodsInThePapersRangesOnMicrosecondGrid) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 10;
  options.target_utilization = 0.5;
  TaskSetGenerator generator(options);
  Pcg32 rng(101);
  for (int i = 0; i < 20; ++i) {
    TaskSet set = generator.Generate(rng);
    for (const auto& task : set.tasks()) {
      EXPECT_GE(task.period_ms, 1.0);
      EXPECT_LE(task.period_ms, 1000.0);
      double us = task.period_ms * 1000.0;
      EXPECT_NEAR(us, std::round(us), 1e-6) << "period not on 1 us grid";
      EXPECT_GT(task.wcet_ms, 0.0);
      EXPECT_LE(task.wcet_ms, task.period_ms);
    }
  }
}

TEST(TaskSetGenerator, PeriodClassesRoughlyBalanced) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 1;
  options.target_utilization = 0.1;
  TaskSetGenerator generator(options);
  Pcg32 rng(102);
  int short_count = 0, medium_count = 0, long_count = 0;
  for (int i = 0; i < 3000; ++i) {
    double period = generator.Generate(rng).task(0).period_ms;
    if (period < 10) {
      ++short_count;
    } else if (period < 100) {
      ++medium_count;
    } else {
      ++long_count;
    }
  }
  EXPECT_NEAR(short_count, 1000, 120);
  EXPECT_NEAR(medium_count, 1000, 120);
  EXPECT_NEAR(long_count, 1000, 120);
}

TEST(TaskSetGenerator, DeterministicPerSeed) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 5;
  options.target_utilization = 0.6;
  TaskSetGenerator generator(options);
  Pcg32 rng_a(7);
  Pcg32 rng_b(7);
  TaskSet a = generator.Generate(rng_a);
  TaskSet b = generator.Generate(rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task(i).period_ms, b.task(i).period_ms);
    EXPECT_DOUBLE_EQ(a.task(i).wcet_ms, b.task(i).wcet_ms);
  }
}

TEST(GenerateUUniFast, HitsUtilizationWithValidTasks) {
  Pcg32 rng(103);
  for (double target : {0.2, 0.7, 1.0}) {
    for (int i = 0; i < 20; ++i) {
      TaskSet set = GenerateUUniFast(6, target, rng);
      EXPECT_EQ(set.size(), 6);
      EXPECT_NEAR(set.TotalUtilization(), target, 0.01);
      for (const auto& task : set.tasks()) {
        EXPECT_GT(task.wcet_ms, 0.0);
        EXPECT_LE(task.wcet_ms, task.period_ms + 1e-9);
      }
    }
  }
}

TEST(TaskSetGeneratorDeathTest, RejectsBadOptions) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 0;
  EXPECT_DEATH(TaskSetGenerator{options}, "CHECK failed");
  options.num_tasks = 3;
  // The cap is one full core per task (multiprocessor sweeps target U > 1);
  // beyond num_tasks no valid set exists and construction must abort.
  options.target_utilization = 3.5;
  EXPECT_DEATH(TaskSetGenerator{options}, "CHECK failed");
}

TEST(TaskSetGenerator, MulticoreTargetsAboveOneGenerate) {
  TaskSetGeneratorOptions options;
  options.num_tasks = 8;
  options.target_utilization = 1.9;  // 2-core sweep at per-core u = 0.95
  TaskSetGenerator generator(options);
  Pcg32 rng(3);
  for (int i = 0; i < 20; ++i) {
    TaskSet set = generator.Generate(rng);
    EXPECT_NEAR(set.TotalUtilization(), 1.9, 0.02);
    for (int t = 0; t < set.size(); ++t) {
      EXPECT_LE(set.task(t).wcet_ms, set.task(t).period_ms);
    }
  }
}

}  // namespace
}  // namespace rtdvs
