#include "src/rt/exec_time_model.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(ConstantFractionModel, AlwaysReturnsTheConstant) {
  ConstantFractionModel model(0.7);
  Pcg32 rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.DrawFraction(i % 3, i, rng), 0.7);
  }
  EXPECT_EQ(model.name(), "const(0.7)");
}

TEST(ConstantFractionModelDeathTest, RejectsOutOfRange) {
  EXPECT_DEATH(ConstantFractionModel(0.0), "CHECK failed");
  EXPECT_DEATH(ConstantFractionModel(1.1), "CHECK failed");
}

TEST(UniformFractionModel, StaysInHalfOpenRange) {
  UniformFractionModel model(0.0, 1.0);
  Pcg32 rng(2);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) {
    double f = model.DrawFraction(0, i, rng);
    ASSERT_GT(f, 0.0);  // (0, 1]: zero-work invocations are excluded
    ASSERT_LE(f, 1.0);
    sum += f;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);
}

TEST(UniformFractionModel, SubrangeRespected) {
  UniformFractionModel model(0.4, 0.6);
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double f = model.DrawFraction(0, i, rng);
    ASSERT_GT(f, 0.4);
    ASSERT_LE(f, 0.6);
  }
}

TEST(BimodalFractionModel, SpikesAtTheConfiguredRate) {
  BimodalFractionModel model(0.3, 0.1);
  Pcg32 rng(4);
  int spikes = 0;
  for (int i = 0; i < 20'000; ++i) {
    double f = model.DrawFraction(0, i, rng);
    ASSERT_GT(f, 0.0);
    ASSERT_LE(f, 1.0);
    if (f > 0.85) {
      ++spikes;
    }
  }
  EXPECT_NEAR(spikes / 20'000.0, 0.1, 0.01);
}

TEST(ColdStartModel, InflatesOnlyFirstInvocation) {
  auto model = ColdStartModel(std::make_unique<ConstantFractionModel>(0.4), 2.0);
  Pcg32 rng(5);
  EXPECT_DOUBLE_EQ(model.DrawFraction(0, 0, rng), 0.8);
  EXPECT_DOUBLE_EQ(model.DrawFraction(0, 1, rng), 0.4);
  EXPECT_DOUBLE_EQ(model.DrawFraction(0, 100, rng), 0.4);
}

TEST(ColdStartModel, CapsAtWorstCaseUnlessOverrunAllowed) {
  auto capped = ColdStartModel(std::make_unique<ConstantFractionModel>(0.9), 2.0);
  Pcg32 rng(6);
  EXPECT_DOUBLE_EQ(capped.DrawFraction(0, 0, rng), 1.0);
  // §4.3 observation 1: the real prototype's first invocation exceeded its
  // bound; allow_overrun models that.
  auto overrun = ColdStartModel(std::make_unique<ConstantFractionModel>(0.9), 2.0,
                                /*allow_overrun=*/true);
  EXPECT_DOUBLE_EQ(overrun.DrawFraction(0, 0, rng), 1.8);
}

TEST(TableFractionModel, ReplaysAndRepeatsLastColumn) {
  TableFractionModel model(std::vector<std::vector<double>>{{0.5, 0.25}, {1.0}});
  Pcg32 rng(7);
  EXPECT_DOUBLE_EQ(model.DrawFraction(0, 0, rng), 0.5);
  EXPECT_DOUBLE_EQ(model.DrawFraction(0, 1, rng), 0.25);
  EXPECT_DOUBLE_EQ(model.DrawFraction(0, 5, rng), 0.25);
  EXPECT_DOUBLE_EQ(model.DrawFraction(1, 3, rng), 1.0);
}

TEST(TableFractionModelDeathTest, RejectsBadTables) {
  using Table = std::vector<std::vector<double>>;
  EXPECT_DEATH(TableFractionModel(Table{{}}), "CHECK failed");
  EXPECT_DEATH(TableFractionModel(Table{{1.5}}), "CHECK failed");
  TableFractionModel model(Table{{1.0}});
  Pcg32 rng(8);
  EXPECT_DEATH(model.DrawFraction(5, 0, rng), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
