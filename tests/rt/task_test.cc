#include "src/rt/task.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

TEST(Task, UtilizationIsWcetOverPeriod) {
  Task task{"t", 10.0, 2.5, 0.0};
  EXPECT_DOUBLE_EQ(task.utilization(), 0.25);
}

TEST(TaskSet, AddAssignsSequentialIdsAndDefaultNames) {
  TaskSet set;
  EXPECT_TRUE(set.empty());
  int a = set.AddTask({"", 10.0, 1.0, 0.0});
  int b = set.AddTask({"named", 20.0, 2.0, 0.0});
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(set.task(0).name, "T1");
  EXPECT_EQ(set.task(1).name, "named");
  EXPECT_EQ(set.size(), 2);
}

TEST(TaskSet, TotalUtilizationSums) {
  TaskSet set = TaskSet::PaperExample();
  EXPECT_NEAR(set.TotalUtilization(), 3.0 / 8 + 3.0 / 10 + 1.0 / 14, 1e-12);
}

TEST(TaskSet, IdsByPeriodSortsAscendingStably) {
  TaskSet set;
  set.AddTask({"slow", 100.0, 1.0, 0.0});
  set.AddTask({"fast", 5.0, 1.0, 0.0});
  set.AddTask({"mid", 50.0, 1.0, 0.0});
  set.AddTask({"fast2", 5.0, 1.0, 0.0});  // tie with "fast": id order
  EXPECT_EQ(set.IdsByPeriod(), (std::vector<int>{1, 3, 2, 0}));
}

TEST(TaskSet, PaperExampleMatchesTable2) {
  TaskSet set = TaskSet::PaperExample();
  ASSERT_EQ(set.size(), 3);
  EXPECT_DOUBLE_EQ(set.task(0).wcet_ms, 3.0);
  EXPECT_DOUBLE_EQ(set.task(0).period_ms, 8.0);
  EXPECT_DOUBLE_EQ(set.task(1).wcet_ms, 3.0);
  EXPECT_DOUBLE_EQ(set.task(1).period_ms, 10.0);
  EXPECT_DOUBLE_EQ(set.task(2).wcet_ms, 1.0);
  EXPECT_DOUBLE_EQ(set.task(2).period_ms, 14.0);
}

TEST(TaskSetDeathTest, RejectsInvalidTasks) {
  TaskSet set;
  EXPECT_DEATH(set.AddTask({"bad", 0.0, 1.0, 0.0}), "CHECK failed");
  EXPECT_DEATH(set.AddTask({"bad", 10.0, 0.0, 0.0}), "CHECK failed");
  EXPECT_DEATH(set.AddTask({"bad", 10.0, 11.0, 0.0}), "must not exceed period");
  EXPECT_DEATH(set.AddTask({"bad", 10.0, 1.0, -1.0}), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
