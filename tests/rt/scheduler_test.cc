#include "src/rt/scheduler.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

Job MakeJob(int task_id, double release, double deadline) {
  Job job;
  job.task_id = task_id;
  job.release_ms = release;
  job.deadline_ms = deadline;
  job.wcet_work = 1.0;
  job.actual_work = 1.0;
  return job;
}

TEST(EdfScheduler, PicksEarliestDeadline) {
  TaskSet tasks = TaskSet::PaperExample();
  EdfScheduler edf;
  std::vector<Job> jobs = {MakeJob(0, 0, 8), MakeJob(1, 0, 10), MakeJob(2, 0, 14)};
  EXPECT_EQ(edf.PickJob(jobs, tasks), 0u);
  jobs[0].deadline_ms = 20;
  EXPECT_EQ(edf.PickJob(jobs, tasks), 1u);
}

TEST(EdfScheduler, BreaksDeadlineTiesByTaskId) {
  TaskSet tasks = TaskSet::PaperExample();
  EdfScheduler edf;
  std::vector<Job> jobs = {MakeJob(2, 0, 10), MakeJob(1, 0, 10)};
  EXPECT_EQ(edf.PickJob(jobs, tasks), 1u);
}

TEST(EdfScheduler, SkipsFinishedJobsAndReturnsNoneWhenAllDone) {
  TaskSet tasks = TaskSet::PaperExample();
  EdfScheduler edf;
  std::vector<Job> jobs = {MakeJob(0, 0, 8), MakeJob(1, 0, 10)};
  jobs[0].finished = true;
  EXPECT_EQ(edf.PickJob(jobs, tasks), 1u);
  jobs[1].finished = true;
  EXPECT_EQ(edf.PickJob(jobs, tasks), Scheduler::kNone);
  EXPECT_EQ(edf.PickJob({}, tasks), Scheduler::kNone);
}

TEST(RmScheduler, PicksShortestPeriodRegardlessOfDeadline) {
  TaskSet tasks = TaskSet::PaperExample();  // periods 8, 10, 14
  RmScheduler rm;
  // T3's deadline is earlier here, but T1 has the shorter period.
  std::vector<Job> jobs = {MakeJob(0, 8, 16), MakeJob(2, 0, 14)};
  EXPECT_EQ(rm.PickJob(jobs, tasks), 0u);
}

TEST(RmScheduler, FifoWithinATask) {
  TaskSet tasks = TaskSet::PaperExample();
  RmScheduler rm;
  // Two invocations of the same task (overrun scenario): earlier first.
  std::vector<Job> jobs = {MakeJob(0, 8, 16), MakeJob(0, 0, 8)};
  EXPECT_EQ(rm.PickJob(jobs, tasks), 1u);
}

TEST(MakeScheduler, FactoryProducesRightKinds) {
  EXPECT_EQ(MakeScheduler(SchedulerKind::kEdf)->kind(), SchedulerKind::kEdf);
  EXPECT_EQ(MakeScheduler(SchedulerKind::kRm)->kind(), SchedulerKind::kRm);
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kEdf), "EDF");
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kRm), "RM");
}

}  // namespace
}  // namespace rtdvs
