#include "src/rt/aperiodic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtdvs {
namespace {

AperiodicServerConfig FixedConfig(ServerKind kind,
                                  std::vector<AperiodicJob> arrivals) {
  AperiodicServerConfig config;
  config.kind = kind;
  config.period_ms = 10.0;
  config.budget_ms = 3.0;
  config.arrivals.fixed_arrivals = std::move(arrivals);
  return config;
}

AperiodicJob Arrival(double t, double work) {
  AperiodicJob job;
  job.arrival_ms = t;
  job.service_work = work;
  return job;
}

TEST(AperiodicServerState, AdmitsFixedArrivalsInOrder) {
  auto state = AperiodicServerState(
      FixedConfig(ServerKind::kPolling, {Arrival(1, 2), Arrival(5, 1)}), 1);
  EXPECT_DOUBLE_EQ(state.NextArrivalMs(), 1.0);
  state.AdmitArrivals(0.5);
  EXPECT_TRUE(state.QueueEmpty());
  state.AdmitArrivals(1.0);
  EXPECT_FALSE(state.QueueEmpty());
  EXPECT_DOUBLE_EQ(state.NextArrivalMs(), 5.0);
  EXPECT_EQ(state.stats().arrivals, 1);
  state.AdmitArrivals(10.0);
  EXPECT_EQ(state.stats().arrivals, 2);
  EXPECT_TRUE(std::isinf(state.NextArrivalMs()));
}

TEST(AperiodicServerState, ServableWorkIsBudgetLimited) {
  auto state = AperiodicServerState(
      FixedConfig(ServerKind::kPolling, {Arrival(0, 5)}), 1);
  state.AdmitArrivals(0.0);
  EXPECT_DOUBLE_EQ(state.ServableWork(), 3.0);  // budget 3 < demand 5
  state.Execute(3.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(state.budget_remaining(), 0.0);
  EXPECT_DOUBLE_EQ(state.ServableWork(), 0.0);
  state.Replenish();
  EXPECT_DOUBLE_EQ(state.ServableWork(), 2.0);  // remaining demand
}

TEST(AperiodicServerState, ExecuteInterpolatesCompletionTimes) {
  auto state = AperiodicServerState(
      FixedConfig(ServerKind::kPolling, {Arrival(0, 1), Arrival(0, 1)}), 1);
  state.AdmitArrivals(0.0);
  // Serve both jobs (2 work) in a segment ending at t=4 at frequency 0.5:
  // the first finishes 1 work-unit (2 ms) before the end.
  state.Execute(2.0, 4.0, 0.5);
  EXPECT_EQ(state.stats().completions, 2);
  EXPECT_DOUBLE_EQ(state.stats().max_response_ms, 4.0);
  EXPECT_DOUBLE_EQ(state.stats().total_response_ms, 2.0 + 4.0);
}

TEST(AperiodicServerState, ForfeitZeroesBudget) {
  auto state = AperiodicServerState(
      FixedConfig(ServerKind::kPolling, {Arrival(0, 1)}), 1);
  state.ForfeitBudget();
  EXPECT_DOUBLE_EQ(state.budget_remaining(), 0.0);
}

TEST(AperiodicServerState, FinalizeRecordsBacklog) {
  auto state = AperiodicServerState(
      FixedConfig(ServerKind::kPolling, {Arrival(0, 5)}), 1);
  state.AdmitArrivals(0.0);
  state.Execute(2.0, 2.0, 1.0);
  state.FinalizeStats();
  EXPECT_DOUBLE_EQ(state.stats().backlog_work, 3.0);
}

TEST(AperiodicServerState, PoissonArrivalsMatchConfiguredRates) {
  AperiodicServerConfig config;
  config.kind = ServerKind::kDeferrable;
  config.period_ms = 10.0;
  config.budget_ms = 5.0;
  config.arrivals.mean_interarrival_ms = 20.0;
  config.arrivals.mean_service_ms = 1.0;
  config.arrivals.max_service_ms = 100.0;  // effectively unclipped
  AperiodicServerState state(config, 7);
  state.AdmitArrivals(200'000.0);  // 200 s => ~10000 arrivals
  EXPECT_NEAR(state.stats().arrivals, 10'000, 400);
  state.FinalizeStats();
  // Mean service ~1.0 work per arrival.
  EXPECT_NEAR(state.stats().backlog_work / static_cast<double>(state.stats().arrivals),
              1.0, 0.05);
}

TEST(AperiodicServerStateDeathTest, ValidatesConfig) {
  AperiodicServerConfig config;
  config.kind = ServerKind::kPolling;
  config.period_ms = 10.0;
  config.budget_ms = 11.0;  // budget > period
  EXPECT_DEATH(AperiodicServerState(config, 1), "CHECK failed");
  auto out_of_order =
      FixedConfig(ServerKind::kPolling, {Arrival(5, 1), Arrival(1, 1)});
  EXPECT_DEATH(AperiodicServerState(out_of_order, 1), "time-ordered");
}

}  // namespace
}  // namespace rtdvs
