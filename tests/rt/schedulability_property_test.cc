// Property tests linking the analytical schedulability tests (src/rt/
// schedulability.h) to BOTH simulators: a task set the analysis admits at
// full speed must run without a single deadline miss under worst-case
// demand, in the production engine and in the reference oracle alike; and
// an EDF-overloaded set must miss.
#include <string>

#include <gtest/gtest.h>

#include "src/cpu/machine_spec.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/schedulability.h"
#include "src/sim/reference_sim.h"
#include "src/sim/simulator.h"
#include "src/testing/generators.h"
#include "src/util/random.h"

namespace rtdvs {
namespace {

SimOptions WorstCaseOptions(const TaskSet& tasks) {
  SimOptions options;
  double max_period = 0;
  for (const Task& task : tasks.tasks()) {
    max_period = std::max(max_period, task.period_ms + task.phase_ms);
  }
  options.horizon_ms = 20.0 * max_period;
  return options;
}

TEST(SchedulabilityPropertyTest, AnalyticallySchedulableSetsNeverMiss) {
  // 150 generated sets; the admitted ones (EDF by utilization, RM by exact
  // response-time analysis) must be miss-free at full speed in both engines
  // even with every invocation consuming its full WCET.
  int edf_admitted = 0;
  int rm_admitted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Pcg32 rng(/*seed=*/99, static_cast<uint64_t>(trial));
    int num_tasks = 1 + static_cast<int>(rng.NextBounded(6));
    double target = rng.UniformDouble(0.2, 1.0);
    bool harmonic = rng.NextDouble() < 0.5;
    TaskSet tasks(GenerateFuzzTasks(rng, num_tasks, target, harmonic,
                                    /*allow_phases=*/false));
    const MachineSpec machine = MachineSpec::Machine1();
    const SimOptions options = WorstCaseOptions(tasks);

    struct Check {
      const char* policy_id;
      bool admitted;
    };
    const Check checks[] = {
        {"edf", EdfSchedulable(tasks, 1.0)},
        {"rm", RmSchedulableExact(tasks, 1.0)},
    };
    for (const Check& check : checks) {
      if (!check.admitted) {
        continue;
      }
      (check.policy_id == std::string("edf") ? edf_admitted : rm_admitted)++;
      ConstantFractionModel worst_production(1.0);
      SimResult production =
          RunSimulation(tasks, machine, check.policy_id, worst_production, options);
      EXPECT_EQ(production.deadline_misses, 0)
          << check.policy_id << " production, trial " << trial << ": "
          << tasks.ToString();
      ConstantFractionModel worst_reference(1.0);
      SimResult reference = RunReferenceSimulation(
          tasks, machine, check.policy_id, worst_reference, options);
      EXPECT_EQ(reference.deadline_misses, 0)
          << check.policy_id << " reference, trial " << trial << ": "
          << tasks.ToString();
    }
  }
  // The generator's utilization range must actually exercise the property.
  EXPECT_GT(edf_admitted, 30);
  EXPECT_GT(rm_admitted, 20);
}

TEST(SchedulabilityPropertyTest, OverloadedEdfSetsMissInBothEngines) {
  for (int trial = 0; trial < 20; ++trial) {
    Pcg32 rng(/*seed=*/123, static_cast<uint64_t>(trial));
    TaskSet tasks(GenerateFuzzTasks(rng, 3, /*target_utilization=*/1.3,
                                    /*harmonic=*/false, /*allow_phases=*/false));
    ASSERT_FALSE(EdfSchedulable(tasks, 1.0));
    const MachineSpec machine = MachineSpec::Machine0();
    SimOptions options = WorstCaseOptions(tasks);
    options.horizon_ms = 100.0 * tasks.tasks()[0].period_ms;
    ConstantFractionModel worst_production(1.0);
    SimResult production = RunSimulation(tasks, machine, "edf", worst_production,
                                         options);
    EXPECT_GT(production.deadline_misses, 0) << tasks.ToString();
    ConstantFractionModel worst_reference(1.0);
    SimResult reference =
        RunReferenceSimulation(tasks, machine, "edf", worst_reference, options);
    EXPECT_EQ(reference.deadline_misses, production.deadline_misses)
        << tasks.ToString();
  }
}

TEST(SchedulabilityPropertyTest, StaticScalingPointKeepsGuarantee) {
  // The §2.3 static point is chosen so the scaled set stays schedulable;
  // running static_edf at it must therefore be miss-free too.
  for (int trial = 0; trial < 40; ++trial) {
    Pcg32 rng(/*seed=*/7, static_cast<uint64_t>(trial));
    TaskSet tasks(GenerateFuzzTasks(rng, 1 + static_cast<int>(rng.NextBounded(5)),
                                    rng.UniformDouble(0.2, 0.9), /*harmonic=*/false,
                                    /*allow_phases=*/false));
    const MachineSpec machine = MachineSpec::Machine2();
    auto point = StaticScalingPoint(tasks, machine, SchedulerKind::kEdf);
    if (!point.has_value()) {
      continue;
    }
    ConstantFractionModel worst(1.0);
    SimResult result =
        RunSimulation(tasks, machine, "static_edf", worst, WorstCaseOptions(tasks));
    EXPECT_EQ(result.deadline_misses, 0) << tasks.ToString();
  }
}

}  // namespace
}  // namespace rtdvs
