// Tests for the fuzz-case generators and repro-string round-trip.
#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/dvs/policy.h"
#include "src/testing/generators.h"
#include "src/util/random.h"

namespace rtdvs {
namespace {

TEST(GeneratorsTest, DeterministicInSeed) {
  for (uint64_t stream = 0; stream < 20; ++stream) {
    Pcg32 a(1, stream);
    Pcg32 b(1, stream);
    FuzzCase case_a = GenerateFuzzCase(a);
    FuzzCase case_b = GenerateFuzzCase(b);
    EXPECT_TRUE(FuzzCaseEquals(case_a, case_b));
    EXPECT_EQ(FuzzCaseToRepro(case_a), FuzzCaseToRepro(case_b));
  }
  Pcg32 c(2, 0);
  Pcg32 d(3, 0);
  EXPECT_FALSE(FuzzCaseEquals(GenerateFuzzCase(c), GenerateFuzzCase(d)));
}

TEST(GeneratorsTest, GeneratedCasesAreStructurallyValid) {
  for (uint64_t stream = 0; stream < 200; ++stream) {
    Pcg32 rng(5, stream);
    FuzzCase c = GenerateFuzzCase(rng);
    EXPECT_TRUE(IsValidPolicyId(c.policy_id));
    // MachineSpec and TaskSet constructors abort on invalid input, so
    // building them IS the validity assertion.
    MachineSpec machine = FuzzMachine(c);
    EXPECT_EQ(machine.points().back().frequency, 1.0);
    TaskSet tasks = FuzzTasks(c);
    EXPECT_GE(tasks.size(), 1);
    EXPECT_NE(MakeFuzzExecModel(c.exec_spec), nullptr);
    EXPECT_GT(c.horizon_ms, 0.0);
  }
}

TEST(GeneratorsTest, UtilizationTargetIsAccurate) {
  for (uint64_t stream = 0; stream < 50; ++stream) {
    Pcg32 rng(9, stream);
    double target = 0.2 + 0.15 * static_cast<double>(stream % 5);
    TaskSet tasks(GenerateFuzzTasks(rng, 5, target, /*harmonic=*/false,
                                    /*allow_phases=*/false));
    // Snapping to the microsecond grid and the 1 microsecond WCET floor
    // perturb each share slightly; 0.02 absolute tolerance covers it.
    EXPECT_NEAR(tasks.TotalUtilization(), target, 0.02)
        << "stream " << stream << ": " << tasks.ToString();
  }
}

TEST(GeneratorsTest, HarmonicSetsSharePowerOfTwoRatios) {
  Pcg32 rng(4, 0);
  std::vector<Task> tasks = GenerateFuzzTasks(rng, 6, 0.8, /*harmonic=*/true,
                                              /*allow_phases=*/false);
  double base = tasks[0].period_ms;
  for (const Task& task : tasks) {
    base = std::min(base, task.period_ms);
  }
  for (const Task& task : tasks) {
    double ratio = task.period_ms / base;
    EXPECT_DOUBLE_EQ(ratio, std::round(ratio)) << task.period_ms << " vs " << base;
    EXPECT_EQ(std::exp2(std::round(std::log2(ratio))), ratio);
  }
}

TEST(GeneratorsTest, MachinePointsCoverDegenerateSinglePointGrid) {
  std::set<size_t> sizes;
  for (uint64_t stream = 0; stream < 300; ++stream) {
    Pcg32 rng(8, stream);
    sizes.insert(GenerateMachinePoints(rng, 10).size());
  }
  EXPECT_TRUE(sizes.count(1)) << "degenerate single-point grid never generated";
  EXPECT_TRUE(sizes.count(10)) << "maximum-size grid never generated";
}

TEST(GeneratorsTest, ReproRoundTripIsExact) {
  for (uint64_t stream = 0; stream < 100; ++stream) {
    Pcg32 rng(11, stream);
    FuzzCase original = GenerateFuzzCase(rng);
    std::string repro = FuzzCaseToRepro(original);
    std::string error;
    auto parsed = ParseRepro(repro, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << repro;
    EXPECT_TRUE(FuzzCaseEquals(original, *parsed)) << repro;
    // Serializing the parse reproduces the string bit-for-bit.
    EXPECT_EQ(FuzzCaseToRepro(*parsed), repro);
  }
}

TEST(GeneratorsTest, ParseReproRejectsMalformedInput) {
  const char* bad[] = {
      "",
      "not-a-repro",
      "rtdvs-fuzz-v1",                                          // no tasks
      "rtdvs-fuzz-v1;tasks=",                                   // empty tasks
      "rtdvs-fuzz-v1;tasks=5:1:0;policy=bogus",                 // unknown policy
      "rtdvs-fuzz-v1;tasks=5:6:0",                              // wcet > period
      "rtdvs-fuzz-v1;tasks=5:1:0;exec=q:1",                     // bad exec spec
      "rtdvs-fuzz-v1;tasks=5:1:0;miss=sometimes",               // bad miss policy
      "rtdvs-fuzz-v1;tasks=5:1:0;machine=1",                    // not f/v
      "rtdvs-fuzz-v1;tasks=5:1:0;horizon=-3",                   // bad horizon
      "rtdvs-fuzz-v1;tasks=5:1:0;unknown=1",                    // unknown field
  };
  for (const char* repro : bad) {
    std::string error;
    EXPECT_FALSE(ParseRepro(repro, &error).has_value()) << repro;
    if (std::string(repro).find("rtdvs-fuzz-v1") != std::string::npos) {
      EXPECT_FALSE(error.empty()) << repro;
    }
  }
}

TEST(GeneratorsTest, LegacyCorePoolDrawsIdenticalCasesToPreClusterGenerator) {
  // The default core pool {1} must not consume ANY extra randomness: two
  // rngs in the same state, one generating with the default options and one
  // with an explicit {1} pool, must stay in lockstep across cases.
  Pcg32 a(21, 0);
  Pcg32 b(21, 0);
  FuzzGenOptions explicit_single;
  explicit_single.core_choices = {1};
  for (int i = 0; i < 50; ++i) {
    FuzzCase case_a = GenerateFuzzCase(a);
    FuzzCase case_b = GenerateFuzzCase(b, explicit_single);
    EXPECT_TRUE(FuzzCaseEquals(case_a, case_b));
    EXPECT_EQ(case_a.num_cores, 1);
    // Single-core repro strings never mention the cluster fields.
    EXPECT_EQ(FuzzCaseToRepro(case_a).find(";cores="), std::string::npos);
  }
}

TEST(GeneratorsTest, ClusterDrawsCoverModesAndHeuristics) {
  FuzzGenOptions options;
  options.core_choices = {2, 4};
  std::set<int> cores;
  std::set<std::string> modes;
  std::set<std::string> fits;
  for (uint64_t stream = 0; stream < 200; ++stream) {
    Pcg32 rng(23, stream);
    FuzzCase c = GenerateFuzzCase(rng, options);
    ASSERT_TRUE(c.num_cores == 2 || c.num_cores == 4);
    cores.insert(c.num_cores);
    modes.insert(MpModeName(c.mp_mode));
    fits.insert(PartitionHeuristicName(c.mp_partition));
    // The rescaled task set still builds.
    TaskSet tasks = FuzzTasks(c);
    EXPECT_GE(tasks.size(), 1);
    EXPECT_GT(c.horizon_ms, 0.0);
  }
  EXPECT_EQ(cores.size(), 2u);
  EXPECT_EQ(modes.size(), 2u);
  EXPECT_EQ(fits.size(), 4u);
}

TEST(GeneratorsTest, ClusterReproRoundTripIsExact) {
  FuzzGenOptions options;
  options.core_choices = {2, 4};
  for (uint64_t stream = 0; stream < 100; ++stream) {
    Pcg32 rng(27, stream);
    FuzzCase original = GenerateFuzzCase(rng, options);
    std::string repro = FuzzCaseToRepro(original);
    EXPECT_NE(repro.find(";cores="), std::string::npos);
    EXPECT_NE(repro.find(";mode="), std::string::npos);
    EXPECT_NE(repro.find(";fit="), std::string::npos);
    std::string error;
    auto parsed = ParseRepro(repro, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << repro;
    EXPECT_TRUE(FuzzCaseEquals(original, *parsed)) << repro;
    EXPECT_EQ(FuzzCaseToRepro(*parsed), repro);
  }
}

TEST(GeneratorsTest, ParseReproRejectsBadClusterFields) {
  const char* bad[] = {
      "rtdvs-fuzz-v1;tasks=5:1:0;cores=0",          // cores must be >= 1
      "rtdvs-fuzz-v1;tasks=5:1:0;cores=65",         // and <= 64
      "rtdvs-fuzz-v1;tasks=5:1:0;cores=two",        // and a number
      "rtdvs-fuzz-v1;tasks=5:1:0;mode=clustered",   // unknown mode
      "rtdvs-fuzz-v1;tasks=5:1:0;fit=ffd",          // unknown heuristic
  };
  for (const char* repro : bad) {
    std::string error;
    EXPECT_FALSE(ParseRepro(repro, &error).has_value()) << repro;
    EXPECT_FALSE(error.empty()) << repro;
  }
  // And a well-formed cluster repro parses.
  auto parsed = ParseRepro(
      "rtdvs-fuzz-v1;tasks=5:1:0,8:2:0;cores=4;mode=global;fit=wf");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_cores, 4);
  EXPECT_EQ(parsed->mp_mode, MpMode::kGlobal);
  EXPECT_EQ(parsed->mp_partition, PartitionHeuristic::kWorstFit);
}

TEST(GeneratorsTest, FuzzSimRequestMirrorsTheCase) {
  FuzzCase c;
  c.policy_id = "la_edf";
  c.tasks = {{"", 10.0, 2.0, 0.0}};
  c.num_cores = 4;
  c.mp_mode = MpMode::kGlobal;
  c.mp_partition = PartitionHeuristic::kBestFit;
  c.seed = 77;
  SimRequest request = FuzzSimRequest(c);
  EXPECT_EQ(request.cluster.num_cores, 4);
  EXPECT_EQ(request.mode, MpMode::kGlobal);
  EXPECT_EQ(request.partition, PartitionHeuristic::kBestFit);
  ASSERT_EQ(request.policy_ids.size(), 1u);
  EXPECT_EQ(request.policy_ids[0], "la_edf");
  EXPECT_EQ(request.options.seed, 77u);
  EXPECT_EQ(request.tasks.size(), 1);
}

TEST(GeneratorsTest, ExecModelGrammarCoversAllForms) {
  EXPECT_NE(MakeFuzzExecModel("c:1"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("c:0.5"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("u:0,1"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("cold:1.5,1"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("cold:2,0"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("t:0.5,1/1,1"), nullptr);
  EXPECT_EQ(MakeFuzzExecModel("c:0"), nullptr);       // fraction must be > 0
  EXPECT_EQ(MakeFuzzExecModel("c:1.5"), nullptr);     // and <= 1
  EXPECT_EQ(MakeFuzzExecModel("u:0.8,0.2"), nullptr); // hi <= lo
  EXPECT_EQ(MakeFuzzExecModel("cold:0.5,1"), nullptr);// factor < 1
  EXPECT_EQ(MakeFuzzExecModel("t:"), nullptr);
  EXPECT_EQ(MakeFuzzExecModel("nope"), nullptr);
}

TEST(GeneratorsTest, HyperperiodBiasProducesCasesThatEngageTheMemo) {
  // With the bias at 1 every drawn case is rewritten dyadic; running it must
  // pass the hyperperiod gate and actually replay whole cycles — the point
  // of the bias is that fuzz campaigns exercise record/verify/replay.
  Pcg32 rng(123);
  FuzzGenOptions options;
  options.hyperperiod_bias = 1.0;
  int replayed = 0;
  for (int i = 0; i < 12; ++i) {
    const FuzzCase c = GenerateFuzzCase(rng, options);
    ASSERT_EQ(c.num_cores, 1);
    for (const Task& task : c.tasks) {
      EXPECT_EQ(task.phase_ms, 0.0);
      EXPECT_GT(task.wcet_ms, 0.0);
      EXPECT_LE(task.wcet_ms, task.period_ms);
    }
    auto model = MakeFuzzExecModel(c.exec_spec);
    ASSERT_NE(model, nullptr) << c.exec_spec;
    const SimResult result = RunSimulation(FuzzTasks(c), FuzzMachine(c),
                                           c.policy_id, *model,
                                           FuzzSimOptions(c));
    // Every biased case must pass the static gate and arm. Verification can
    // still honestly fail at runtime (e.g. an overloaded set whose backlog
    // grows across windows), which disarms with the window-mismatch reason;
    // any OTHER reason means the bias generated an ineligible case.
    if (!result.fastpath.hyperperiod_gate.empty()) {
      EXPECT_EQ(result.fastpath.hyperperiod_gate,
                "consecutive hyperperiod windows not bitwise identical")
          << FuzzCaseToRepro(c);
    }
    if (result.fastpath.hyperperiod_cycles_replayed > 0) {
      ++replayed;
    }
  }
  // Most cases verify and replay whole cycles.
  EXPECT_GE(replayed, 7);
}

TEST(GeneratorsTest, HyperperiodBiasedReproStringsRoundTrip) {
  Pcg32 rng(321);
  FuzzGenOptions options;
  options.hyperperiod_bias = 1.0;
  for (int i = 0; i < 20; ++i) {
    const FuzzCase c = GenerateFuzzCase(rng, options);
    std::string error;
    auto parsed = ParseRepro(FuzzCaseToRepro(c), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(FuzzCaseEquals(c, *parsed));
  }
}

}  // namespace
}  // namespace rtdvs
