// Tests for the fuzz-case generators and repro-string round-trip.
#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/dvs/policy.h"
#include "src/testing/generators.h"
#include "src/util/random.h"

namespace rtdvs {
namespace {

TEST(GeneratorsTest, DeterministicInSeed) {
  for (uint64_t stream = 0; stream < 20; ++stream) {
    Pcg32 a(1, stream);
    Pcg32 b(1, stream);
    FuzzCase case_a = GenerateFuzzCase(a);
    FuzzCase case_b = GenerateFuzzCase(b);
    EXPECT_TRUE(FuzzCaseEquals(case_a, case_b));
    EXPECT_EQ(FuzzCaseToRepro(case_a), FuzzCaseToRepro(case_b));
  }
  Pcg32 c(2, 0);
  Pcg32 d(3, 0);
  EXPECT_FALSE(FuzzCaseEquals(GenerateFuzzCase(c), GenerateFuzzCase(d)));
}

TEST(GeneratorsTest, GeneratedCasesAreStructurallyValid) {
  for (uint64_t stream = 0; stream < 200; ++stream) {
    Pcg32 rng(5, stream);
    FuzzCase c = GenerateFuzzCase(rng);
    EXPECT_TRUE(IsValidPolicyId(c.policy_id));
    // MachineSpec and TaskSet constructors abort on invalid input, so
    // building them IS the validity assertion.
    MachineSpec machine = FuzzMachine(c);
    EXPECT_EQ(machine.points().back().frequency, 1.0);
    TaskSet tasks = FuzzTasks(c);
    EXPECT_GE(tasks.size(), 1);
    EXPECT_NE(MakeFuzzExecModel(c.exec_spec), nullptr);
    EXPECT_GT(c.horizon_ms, 0.0);
  }
}

TEST(GeneratorsTest, UtilizationTargetIsAccurate) {
  for (uint64_t stream = 0; stream < 50; ++stream) {
    Pcg32 rng(9, stream);
    double target = 0.2 + 0.15 * static_cast<double>(stream % 5);
    TaskSet tasks(GenerateFuzzTasks(rng, 5, target, /*harmonic=*/false,
                                    /*allow_phases=*/false));
    // Snapping to the microsecond grid and the 1 microsecond WCET floor
    // perturb each share slightly; 0.02 absolute tolerance covers it.
    EXPECT_NEAR(tasks.TotalUtilization(), target, 0.02)
        << "stream " << stream << ": " << tasks.ToString();
  }
}

TEST(GeneratorsTest, HarmonicSetsSharePowerOfTwoRatios) {
  Pcg32 rng(4, 0);
  std::vector<Task> tasks = GenerateFuzzTasks(rng, 6, 0.8, /*harmonic=*/true,
                                              /*allow_phases=*/false);
  double base = tasks[0].period_ms;
  for (const Task& task : tasks) {
    base = std::min(base, task.period_ms);
  }
  for (const Task& task : tasks) {
    double ratio = task.period_ms / base;
    EXPECT_DOUBLE_EQ(ratio, std::round(ratio)) << task.period_ms << " vs " << base;
    EXPECT_EQ(std::exp2(std::round(std::log2(ratio))), ratio);
  }
}

TEST(GeneratorsTest, MachinePointsCoverDegenerateSinglePointGrid) {
  std::set<size_t> sizes;
  for (uint64_t stream = 0; stream < 300; ++stream) {
    Pcg32 rng(8, stream);
    sizes.insert(GenerateMachinePoints(rng, 10).size());
  }
  EXPECT_TRUE(sizes.count(1)) << "degenerate single-point grid never generated";
  EXPECT_TRUE(sizes.count(10)) << "maximum-size grid never generated";
}

TEST(GeneratorsTest, ReproRoundTripIsExact) {
  for (uint64_t stream = 0; stream < 100; ++stream) {
    Pcg32 rng(11, stream);
    FuzzCase original = GenerateFuzzCase(rng);
    std::string repro = FuzzCaseToRepro(original);
    std::string error;
    auto parsed = ParseRepro(repro, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << repro;
    EXPECT_TRUE(FuzzCaseEquals(original, *parsed)) << repro;
    // Serializing the parse reproduces the string bit-for-bit.
    EXPECT_EQ(FuzzCaseToRepro(*parsed), repro);
  }
}

TEST(GeneratorsTest, ParseReproRejectsMalformedInput) {
  const char* bad[] = {
      "",
      "not-a-repro",
      "rtdvs-fuzz-v1",                                          // no tasks
      "rtdvs-fuzz-v1;tasks=",                                   // empty tasks
      "rtdvs-fuzz-v1;tasks=5:1:0;policy=bogus",                 // unknown policy
      "rtdvs-fuzz-v1;tasks=5:6:0",                              // wcet > period
      "rtdvs-fuzz-v1;tasks=5:1:0;exec=q:1",                     // bad exec spec
      "rtdvs-fuzz-v1;tasks=5:1:0;miss=sometimes",               // bad miss policy
      "rtdvs-fuzz-v1;tasks=5:1:0;machine=1",                    // not f/v
      "rtdvs-fuzz-v1;tasks=5:1:0;horizon=-3",                   // bad horizon
      "rtdvs-fuzz-v1;tasks=5:1:0;unknown=1",                    // unknown field
  };
  for (const char* repro : bad) {
    std::string error;
    EXPECT_FALSE(ParseRepro(repro, &error).has_value()) << repro;
    if (std::string(repro).find("rtdvs-fuzz-v1") != std::string::npos) {
      EXPECT_FALSE(error.empty()) << repro;
    }
  }
}

TEST(GeneratorsTest, ExecModelGrammarCoversAllForms) {
  EXPECT_NE(MakeFuzzExecModel("c:1"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("c:0.5"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("u:0,1"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("cold:1.5,1"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("cold:2,0"), nullptr);
  EXPECT_NE(MakeFuzzExecModel("t:0.5,1/1,1"), nullptr);
  EXPECT_EQ(MakeFuzzExecModel("c:0"), nullptr);       // fraction must be > 0
  EXPECT_EQ(MakeFuzzExecModel("c:1.5"), nullptr);     // and <= 1
  EXPECT_EQ(MakeFuzzExecModel("u:0.8,0.2"), nullptr); // hi <= lo
  EXPECT_EQ(MakeFuzzExecModel("cold:0.5,1"), nullptr);// factor < 1
  EXPECT_EQ(MakeFuzzExecModel("t:"), nullptr);
  EXPECT_EQ(MakeFuzzExecModel("nope"), nullptr);
}

}  // namespace
}  // namespace rtdvs
