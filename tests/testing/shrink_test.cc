// Tests for greedy shrinking: a planted divergence must be minimized to a
// drastically simpler case that still exhibits the failure, and the shrunken
// case's repro string must replay it.
#include <string>

#include <gtest/gtest.h>

#include "src/testing/differential.h"
#include "src/testing/shrink.h"

namespace rtdvs {
namespace {

// A noisy case (found by an injected-bug fuzz campaign, checked in
// verbatim) that diverges when the historical idle-path switch-accounting
// bug is injected into the reference: eight tasks — most of them junk —
// with phases and abort misses on a nine-point machine whose cc_edf
// trajectory hops between points right before idle periods.
FuzzCase NoisyDivergingCase() {
  auto c = ParseRepro(
      "rtdvs-fuzz-v1;policy=cc_edf;"
      "machine=0.27000000000000002/0.95999999999999996,"
      "0.33000000000000002/1.6280000000000001,0.38/1.899,"
      "0.39000000000000001/2.605,0.45000000000000001/2.9580000000000002,"
      "0.56999999999999995/3.4770000000000003,"
      "0.76000000000000001/3.8260000000000005,"
      "0.95999999999999996/4.0340000000000007,1/4.6450000000000005;"
      "tasks=8.4220000000000006:0.30599999999999999:0,"
      "13.712999999999999:1.365:6.3630000000000004,"
      "2.7240000000000002:0.125:0.51300000000000001,"
      "22.091999999999999:0.21299999999999999:0,"
      "4.0030000000000001:0.84299999999999997:0,"
      "40.978000000000002:0.88400000000000001:0,"
      "26.920999999999999:0.125:2.4009999999999998,"
      "31.992999999999999:0.752:11.557;"
      "exec=c:1;horizon=157.96000000000001;idle=0.5;"
      "switch=0.10000000000000001;miss=abort;seed=5134175072175760406");
  return c.value();  // throws (failing the test) if the golden string rots
}

ShrinkPredicate DivergesWithInjectedBug() {
  ReferenceFaults faults;
  faults.idle_path_switch_bug = true;
  return [faults](const FuzzCase& candidate) {
    return !RunFuzzTrial(candidate, /*check_properties=*/false, faults).ok;
  };
}

TEST(ShrinkTest, ConvergesOnPlantedDivergence) {
  FuzzCase noisy = NoisyDivergingCase();
  ShrinkPredicate fails = DivergesWithInjectedBug();
  ASSERT_TRUE(fails(noisy)) << "planted case must diverge before shrinking";

  ShrinkStats stats;
  FuzzCase minimal = ShrinkFuzzCase(noisy, fails, {}, &stats);

  // The failure survives shrinking…
  EXPECT_TRUE(fails(minimal));
  // …and the case got drastically simpler: the junk tasks are gone (the
  // acceptance bar is <= 3 tasks; in practice this converges to 1) and the
  // five-point grid collapses (two points minimum — the bug needs a switch).
  EXPECT_LE(minimal.tasks.size(), 3u);
  EXPECT_LE(minimal.machine_points.size(), 2u);
  EXPECT_GT(minimal.switch_time_ms, 0.0) << "bug needs a switch cost";
  EXPECT_LE(minimal.horizon_ms, noisy.horizon_ms);
  EXPECT_GT(stats.accepted_moves, 0);
}

TEST(ShrinkTest, ShrunkenReproStringReplays) {
  ShrinkPredicate fails = DivergesWithInjectedBug();
  FuzzCase minimal = ShrinkFuzzCase(NoisyDivergingCase(), fails, {}, nullptr);
  std::string repro = FuzzCaseToRepro(minimal);
  auto parsed = ParseRepro(repro);
  ASSERT_TRUE(parsed.has_value()) << repro;
  EXPECT_TRUE(FuzzCaseEquals(minimal, *parsed));
  EXPECT_TRUE(fails(*parsed)) << "replayed repro must still diverge: " << repro;
}

TEST(ShrinkTest, HealthyCaseRefusesToShrink) {
  // Without the injected fault the planted case agrees, so the predicate
  // rejects the input and ShrinkFuzzCase must CHECK-fail.
  FuzzCase healthy = NoisyDivergingCase();
  ASSERT_TRUE(RunFuzzTrial(healthy, /*check_properties=*/false).ok);
  EXPECT_DEATH(
      ShrinkFuzzCase(healthy,
                     [](const FuzzCase& candidate) {
                       return !RunFuzzTrial(candidate, false).ok;
                     }),
      "does not fail its predicate");
}

TEST(ShrinkTest, RespectsPredicateCallBudget) {
  ShrinkPredicate fails = DivergesWithInjectedBug();
  ShrinkOptions options;
  options.max_predicate_calls = 5;
  ShrinkStats stats;
  FuzzCase result = ShrinkFuzzCase(NoisyDivergingCase(), fails, options, &stats);
  EXPECT_LE(stats.predicate_calls, 5);
  EXPECT_TRUE(fails(result));
  options.max_predicate_calls = 0;
  FuzzCase untouched = ShrinkFuzzCase(NoisyDivergingCase(), fails, options, &stats);
  EXPECT_TRUE(FuzzCaseEquals(untouched, NoisyDivergingCase()));
}

}  // namespace
}  // namespace rtdvs
