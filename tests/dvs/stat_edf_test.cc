#include "src/dvs/stat_edf_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

TEST(StatEdf, FactoryIdAndName) {
  auto policy = MakePolicy("stat_edf");
  EXPECT_EQ(policy->name(), "statEDF(p95)");
  EXPECT_EQ(policy->scheduler_kind(), SchedulerKind::kEdf);
  EXPECT_TRUE(policy->lowers_speed_when_idle());
}

TEST(StatEdf, ConstantDemandIsMissFreeAndAtLeastAsGoodAsCcEdf) {
  // With deterministic execution times the warm-history percentile equals
  // the true demand, so statEDF charges a released task its ACTUAL need
  // where ccEDF still charges the worst case until completion: statEDF
  // never misses (the estimate is never exceeded) and uses no more energy.
  TaskSet tasks({{"a", 10.0, 4.0, 0.0}, {"b", 25.0, 5.0, 0.0}});
  SimOptions options;
  options.horizon_ms = 3000.0;
  auto stat = MakePolicy("stat_edf");
  ConstantFractionModel model_a(0.5);
  SimResult stat_result =
      RunSimulation(tasks, MachineSpec::Machine0(), *stat, model_a, options);
  auto cc = MakePolicy("cc_edf");
  ConstantFractionModel model_b(0.5);
  SimResult cc_result =
      RunSimulation(tasks, MachineSpec::Machine0(), *cc, model_b, options);
  EXPECT_EQ(stat_result.deadline_misses, 0);
  EXPECT_LE(stat_result.total_energy(), cc_result.total_energy() + 1e-6);
  EXPECT_GE(stat_result.total_energy(), stat_result.lower_bound_energy - 1e-6);
}

TEST(StatEdf, LowPercentileSavesEnergyOverCcEdf) {
  // Heavy-tailed demand: the 50th percentile budget runs much slower.
  TaskSet tasks({{"a", 10.0, 6.0, 0.0}, {"b", 40.0, 12.0, 0.0}});
  SimOptions options;
  options.horizon_ms = 8000.0;
  options.seed = 42;

  StatEdfOptions stat_options;
  stat_options.percentile = 50.0;
  StatEdfPolicy stat(stat_options);
  BimodalFractionModel model_a(0.4, 0.05);
  SimResult stat_result =
      RunSimulation(tasks, MachineSpec::Machine0(), stat, model_a, options);

  auto cc = MakePolicy("cc_edf");
  BimodalFractionModel model_b(0.4, 0.05);
  SimResult cc_result =
      RunSimulation(tasks, MachineSpec::Machine0(), *cc, model_b, options);

  EXPECT_LT(stat_result.total_energy(), cc_result.total_energy());
  EXPECT_EQ(cc_result.deadline_misses, 0);
  // Soft guarantee: some misses are allowed, but the insurance re-charge
  // keeps the rate small.
  EXPECT_LT(static_cast<double>(stat_result.deadline_misses) /
                static_cast<double>(stat_result.releases),
            0.10);
}

TEST(StatEdf, MissRateDecreasesWithPercentile) {
  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = 5;
  gen_options.target_utilization = 0.85;
  TaskSetGenerator generator(gen_options);
  Pcg32 rng(11);
  int64_t misses_p50 = 0;
  int64_t misses_p99 = 0;
  for (int s = 0; s < 8; ++s) {
    TaskSet tasks = generator.Generate(rng);
    SimOptions options;
    options.horizon_ms = 4000.0;
    options.seed = rng.NextU32();
    for (double percentile : {50.0, 99.0}) {
      StatEdfOptions stat_options;
      stat_options.percentile = percentile;
      StatEdfPolicy policy(stat_options);
      BimodalFractionModel model(0.5, 0.05);
      SimResult result =
          RunSimulation(tasks, MachineSpec::Machine0(), policy, model, options);
      (percentile == 50.0 ? misses_p50 : misses_p99) += result.deadline_misses;
    }
  }
  EXPECT_LE(misses_p99, misses_p50);
}

TEST(StatEdf, ColdHistoryUsesWorstCase) {
  StatEdfOptions options;
  options.min_samples = 4;
  StatEdfPolicy policy(options);
  TaskSet tasks({{"a", 10.0, 5.0, 0.0}});
  MachineSpec machine = MachineSpec::Machine0();
  PolicyContext ctx;
  ctx.tasks = &tasks;
  ctx.machine = &machine;
  ctx.views.resize(1);
  class NullSpeed : public SpeedController {
   public:
    void SetOperatingPoint(const OperatingPoint& p) override { point_ = p; }
    const OperatingPoint& current() const override { return point_; }
    OperatingPoint point_{1.0, 5.0};
  } speed;
  policy.OnStart(ctx, speed);
  EXPECT_DOUBLE_EQ(policy.EstimateFor(0, ctx), 5.0);
}

TEST(StatEdfDeathTest, ValidatesOptions) {
  StatEdfOptions bad;
  bad.percentile = 0.0;
  EXPECT_DEATH(StatEdfPolicy{bad}, "CHECK failed");
  bad.percentile = 101.0;
  EXPECT_DEATH(StatEdfPolicy{bad}, "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
