// PolicyCounters: the decision telemetry every DvsPolicy records. These
// tests pin the struct arithmetic and the per-policy semantics — which
// counters each algorithm is supposed to move on the paper's worked example.
#include "src/dvs/policy_counters.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"
#include "src/util/json.h"

namespace rtdvs {
namespace {

TEST(PolicyCounters, ToJsonCarriesEveryField) {
  PolicyCounters c;
  c.speed_change_requests = 1;
  c.migrations = 6;
  c.admission_rejections = 2;
  const JsonValue json = PolicyCountersToJson(c);
  EXPECT_EQ(json.Get("speed_change_requests").AsInt(), 1);
  EXPECT_EQ(json.Get("migrations").AsInt(), 6);
  EXPECT_EQ(json.Get("admission_rejections").AsInt(), 2);
  // One entry per struct field: extend PolicyCountersToJson when adding one.
  EXPECT_EQ(json.entries().size(), 10u);
}

TEST(PolicyCounters, MergeAddsFieldwise) {
  PolicyCounters a;
  a.speed_change_requests = 3;
  a.speed_transitions = 2;
  a.slack_completions = 1;
  a.slack_reclaimed_ms = 0.5;
  a.utilization_samples = 4;
  a.utilization_sum = 2.0;
  a.migrations = 2;
  PolicyCounters b;
  b.speed_change_requests = 10;
  b.deferral_decisions = 7;
  b.work_deferred_ms = 1.25;
  b.migrations = 5;
  b.admission_rejections = 3;
  a.MergeFrom(b);
  EXPECT_EQ(a.speed_change_requests, 13);
  EXPECT_EQ(a.speed_transitions, 2);
  EXPECT_EQ(a.slack_completions, 1);
  EXPECT_DOUBLE_EQ(a.slack_reclaimed_ms, 0.5);
  EXPECT_EQ(a.deferral_decisions, 7);
  EXPECT_DOUBLE_EQ(a.work_deferred_ms, 1.25);
  EXPECT_EQ(a.utilization_samples, 4);
  EXPECT_DOUBLE_EQ(a.utilization_sum, 2.0);
  EXPECT_EQ(a.migrations, 7);
  EXPECT_EQ(a.admission_rejections, 3);
}

TEST(PolicyCounters, DiffSinceInvertsMerge) {
  PolicyCounters base;
  base.speed_change_requests = 5;
  base.slack_reclaimed_ms = 1.5;
  PolicyCounters total = base;
  PolicyCounters delta;
  delta.speed_change_requests = 2;
  delta.slack_reclaimed_ms = 0.25;
  delta.deferral_decisions = 1;
  delta.migrations = 4;
  delta.admission_rejections = 2;
  total.MergeFrom(delta);
  EXPECT_EQ(total.DiffSince(base), delta);
  EXPECT_EQ(total.DiffSince(PolicyCounters{}), total);
}

std::unique_ptr<ExecTimeModel> Table3Model() {
  return std::make_unique<TableFractionModel>(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
}

SimResult RunExample(DvsPolicy& policy) {
  TaskSet tasks = TaskSet::PaperExample();
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  return RunSimulation(tasks, MachineSpec::Machine0(), policy, *model, options);
}

TEST(PolicyCounters, CcEdfRecordsSlackAndUtilizationSamples) {
  auto policy = MakePolicy("cc_edf");
  SimResult result = RunExample(*policy);
  const PolicyCounters& c = result.policy_counters;
  // Every scheduling point re-selects a frequency...
  EXPECT_GT(c.speed_change_requests, 0);
  // ...but only some requests actually change the operating point, and the
  // simulator counts exactly those as speed switches.
  EXPECT_GT(c.speed_transitions, 0);
  EXPECT_LE(c.speed_transitions, c.speed_change_requests);
  EXPECT_EQ(c.speed_transitions, result.speed_switches);
  // Table 3: T1's first invocation uses 2 of C=3, T2 uses 1 of 3 — slack
  // is reclaimed at completions.
  EXPECT_GT(c.slack_completions, 0);
  EXPECT_GT(c.slack_reclaimed_ms, 0.0);
  EXPECT_GT(c.utilization_samples, 0);
  EXPECT_GT(c.utilization_sum, 0.0);
  // ccEDF never defers.
  EXPECT_EQ(c.deferral_decisions, 0);
  EXPECT_DOUBLE_EQ(c.work_deferred_ms, 0.0);
}

TEST(PolicyCounters, LaEdfRecordsDeferralDecisions) {
  auto policy = MakePolicy("la_edf");
  SimResult result = RunExample(*policy);
  const PolicyCounters& c = result.policy_counters;
  EXPECT_GT(c.deferral_decisions, 0);
  // The worked example defers real work past upcoming deadlines (that is
  // the point of Figure 7).
  EXPECT_GT(c.work_deferred_ms, 0.0);
  EXPECT_EQ(c.speed_transitions, result.speed_switches);
}

TEST(PolicyCounters, CcRmReclaimsSlack) {
  auto policy = MakePolicy("cc_rm");
  SimResult result = RunExample(*policy);
  const PolicyCounters& c = result.policy_counters;
  EXPECT_GT(c.slack_completions, 0);
  EXPECT_GT(c.slack_reclaimed_ms, 0.0);
  EXPECT_EQ(c.deferral_decisions, 0);
  EXPECT_EQ(c.speed_transitions, result.speed_switches);
}

TEST(PolicyCounters, PlainEdfMakesNoDvsDecisions) {
  auto policy = MakePolicy("edf");
  SimResult result = RunExample(*policy);
  const PolicyCounters& c = result.policy_counters;
  // OnStart pins max speed once; nothing else.
  EXPECT_LE(c.speed_change_requests, 1);
  EXPECT_EQ(c.slack_completions, 0);
  EXPECT_EQ(c.deferral_decisions, 0);
  EXPECT_EQ(c.utilization_samples, 0);
}

// Policies are reused across runs (the sweep harness does); SimResult must
// report the per-run delta, not the policy's lifetime totals.
TEST(PolicyCounters, SimResultReportsPerRunDelta) {
  auto policy = MakePolicy("cc_edf");
  SimResult first = RunExample(*policy);
  SimResult second = RunExample(*policy);
  const PolicyCounters& f = first.policy_counters;
  const PolicyCounters& s = second.policy_counters;
  EXPECT_EQ(s.speed_change_requests, f.speed_change_requests);
  EXPECT_EQ(s.speed_transitions, f.speed_transitions);
  EXPECT_EQ(s.slack_completions, f.slack_completions);
  EXPECT_EQ(s.deferral_decisions, f.deferral_decisions);
  EXPECT_EQ(s.utilization_samples, f.utilization_samples);
  // Double fields diff as (a+b)-a, which rounds — near, not bit-equal.
  EXPECT_NEAR(s.slack_reclaimed_ms, f.slack_reclaimed_ms,
              1e-9 * (1.0 + f.slack_reclaimed_ms));
  EXPECT_NEAR(s.utilization_sum, f.utilization_sum,
              1e-9 * (1.0 + f.utilization_sum));
  EXPECT_GT(first.policy_counters.speed_change_requests, 0);
  // The policy's own counters kept accumulating underneath.
  EXPECT_EQ(policy->counters().speed_change_requests,
            2 * first.policy_counters.speed_change_requests);
}

}  // namespace
}  // namespace rtdvs
