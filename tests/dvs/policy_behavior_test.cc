// Focused behavioural tests of the individual RT-DVS algorithms, driven
// through the simulator on crafted task sets (the paper's worked example is
// covered separately in tests/core/paper_example_test.cc).
#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/cc_edf_policy.h"
#include "src/dvs/cc_rm_policy.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/schedulability.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

SimOptions TraceOpts(double horizon) {
  SimOptions options;
  options.horizon_ms = horizon;
  options.record_trace = true;
  return options;
}

double FrequencyAt(const Trace& trace, double t) {
  for (const auto& seg : trace.segments()) {
    if (t >= seg.start_ms && t < seg.end_ms) {
      return seg.point.frequency;
    }
  }
  return -1;
}

TEST(CcEdf, DropsFrequencyAfterEarlyCompletionAndRestoresOnRelease) {
  // One task, U = 0.8 -> static would need f = 1.0. Invocations use 25% of
  // the worst case, so after each completion utilization drops to 0.2.
  TaskSet tasks({{"t", 10.0, 8.0, 0.0}});
  CcEdfPolicy policy;
  ConstantFractionModel model(0.25);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, TraceOpts(30.0));
  EXPECT_EQ(result.deadline_misses, 0);
  // During execution (just after a release): worst case assumed -> 1.0.
  EXPECT_DOUBLE_EQ(FrequencyAt(result.trace, 0.5), 1.0);
  // After completion at t = 2: idle at the lowest point.
  EXPECT_DOUBLE_EQ(FrequencyAt(result.trace, 5.0), 0.5);
  // Next release at t = 10: back to 1.0.
  EXPECT_DOUBLE_EQ(FrequencyAt(result.trace, 10.5), 1.0);
}

TEST(CcEdf, UtilizationTrackingMatchesHandComputation) {
  // Figure 3's bookkeeping, probed directly on the policy object.
  TaskSet tasks = TaskSet::PaperExample();
  CcEdfPolicy policy;
  auto model = TableFractionModel(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
  SimOptions options;
  options.horizon_ms = 16.0;
  (void)RunSimulation(tasks, MachineSpec::Machine0(), policy, model, options);
  // At the horizon: T1 completed its second invocation using 1 ms (U=1/8),
  // T2 used 1 ms (U=0.1), T3 released at 14 assumes worst case 1/14.
  EXPECT_NEAR(policy.TotalTrackedUtilization(), 1.0 / 8 + 0.1 + 1.0 / 14, 1e-9);
}

TEST(CcRm, PacesAgainstStaticallyScaledSchedule) {
  TaskSet tasks = TaskSet::PaperExample();
  CcRmPolicy policy;
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, TraceOpts(100.0));
  EXPECT_EQ(result.deadline_misses, 0);
  // The example set cannot be statically scaled below 1.0 under RM.
  EXPECT_DOUBLE_EQ(policy.static_scale_frequency(), 1.0);
}

TEST(CcRm, HarmonicSetPacesBelowFull) {
  // Harmonic periods: static RM scale = U = 0.5, so ccRM paces at half
  // speed even with worst-case executions.
  TaskSet tasks({{"a", 10, 2.5, 0}, {"b", 20, 5, 0}});
  CcRmPolicy policy;
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, TraceOpts(100.0));
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(policy.static_scale_frequency(), 0.5);
  for (const auto& seg : result.trace.segments()) {
    if (seg.state == CpuState::kExecuting) {
      EXPECT_DOUBLE_EQ(seg.point.frequency, 0.5);
    }
  }
}

TEST(CcRm, DegradesToPlainRmWhenNoStaticScheduleExists) {
  // U = 0.97 with inharmonic periods: fails the RM test even at full
  // speed. ccRM's pacing target does not exist, so it must behave exactly
  // like plain RM at the maximum point (not "pace" against fiction and
  // miss more than plain RM would).
  TaskSet tasks({{"a", 10.0, 6.0, 0.0}, {"b", 14.0, 3.0, 0.0},
                 {"c", 23.0, 3.5, 0.0}});
  ASSERT_FALSE(RmSchedulableSufficient(tasks, 1.0));
  CcRmPolicy policy;
  ConstantFractionModel model(0.5);
  SimResult cc_result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, TraceOpts(500.0));
  EXPECT_TRUE(policy.degraded());
  auto rm = MakePolicy("rm");
  ConstantFractionModel model2(0.5);
  SimResult rm_result =
      RunSimulation(tasks, MachineSpec::Machine0(), *rm, model2, TraceOpts(500.0));
  EXPECT_EQ(cc_result.deadline_misses, rm_result.deadline_misses);
  EXPECT_NEAR(cc_result.total_energy(), rm_result.total_energy(), 1e-6);
}

TEST(LaEdf, IdlesAtMinimumAndDefersWork) {
  // A single light task: laEDF should never need more than the lowest
  // frequency (U = 0.2 < 0.5).
  TaskSet tasks({{"light", 10.0, 2.0, 0.0}});
  auto policy = MakePolicy("la_edf");
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, TraceOpts(50.0));
  EXPECT_EQ(result.deadline_misses, 0);
  for (const auto& seg : result.trace.segments()) {
    EXPECT_DOUBLE_EQ(seg.point.frequency, 0.5);
  }
}

TEST(LaEdf, RampsUpWhenDeferredWorkComesDue) {
  // U = 0.9 with full worst-case use: deferral must eventually run fast.
  TaskSet tasks({{"a", 10.0, 5.0, 0.0}, {"b", 25.0, 10.0, 0.0}});
  auto policy = MakePolicy("la_edf");
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, TraceOpts(100.0));
  EXPECT_EQ(result.deadline_misses, 0);
  bool saw_full_speed = false;
  for (const auto& seg : result.trace.segments()) {
    saw_full_speed = saw_full_speed || seg.point.frequency == 1.0;
  }
  EXPECT_TRUE(saw_full_speed);
}

TEST(IntervalPolicy, TracksLoadButMissesUnderBurst) {
  // Long light phase trains the EWMA down; then worst-case bursts arrive
  // with a tight deadline.
  TaskSet tasks({{"bursty", 5.0, 3.0, 0.0}});
  auto policy = MakePolicy("interval");
  // 2% worst-case spikes, otherwise very light.
  BimodalFractionModel model(0.1, 0.02);
  SimOptions options;
  options.horizon_ms = 20'000.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  EXPECT_GT(result.deadline_misses, 0);
  // ... while every RT-DVS policy handles the same workload without misses.
  for (const auto& id : AllPaperPolicyIds()) {
    auto rt_policy = MakePolicy(id);
    BimodalFractionModel same_model(0.1, 0.02);
    SimResult rt_result =
        RunSimulation(tasks, MachineSpec::Machine0(), *rt_policy, same_model, options);
    EXPECT_EQ(rt_result.deadline_misses, 0) << id;
  }
}

TEST(StaticPolicies, FrequencyNeverChangesAfterStart) {
  for (const char* id : {"static_edf", "static_rm"}) {
    auto policy = MakePolicy(id);
    UniformFractionModel model(0.0, 1.0);
    SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                     *policy, model, TraceOpts(500.0));
    // One (possible) switch at start, none after.
    EXPECT_LE(result.speed_switches, 1) << id;
  }
}

}  // namespace
}  // namespace rtdvs
