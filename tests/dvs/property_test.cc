// Property-based tests: the paper's correctness and energy claims, checked
// over thousands of randomized task sets (parameterized across utilization,
// machine, and execution-time model).
//
// Claims under test:
//  P1  (deadlines) An RT-DVS policy never misses a deadline on a task set
//      its scheduler's test admits at full speed.
//  P2  (bound) No policy consumes less than the §3.2 theoretical bound.
//  P3  (dominance) With a perfect halt, every RT-DVS policy consumes at
//      most the plain-EDF energy; ccEDF consumes at most staticEDF (its
//      utilization bookkeeping only ever decreases below the worst case).
//  P4  (switching) At most two voltage/frequency switches per invocation
//      boundary event, as claimed in §2.5.
//  P5  (accounting) busy + idle + switching time equals the horizon; work
//      executed is consistent across policies given identical workloads.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/schedulability.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

struct PropertyCase {
  double utilization;
  const char* machine;
  // "const:<f>" or "uniform"
  const char* model;
  uint64_t seed;
};

std::unique_ptr<ExecTimeModel> MakeModel(const std::string& spec) {
  if (spec == "uniform") {
    return std::make_unique<UniformFractionModel>(0.0, 1.0);
  }
  return std::make_unique<ConstantFractionModel>(std::stod(spec.substr(6)));
}

class RtDvsProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RtDvsProperties, HoldOverRandomTaskSets) {
  const PropertyCase& param = GetParam();
  MachineSpec machine = MachineSpec::ByName(param.machine);
  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = 6;
  gen_options.target_utilization = param.utilization;
  TaskSetGenerator generator(gen_options);
  Pcg32 rng(param.seed);

  constexpr int kTaskSets = 12;
  for (int set_index = 0; set_index < kTaskSets; ++set_index) {
    TaskSet tasks = generator.Generate(rng);
    uint64_t workload_seed = rng.NextU32();

    SimOptions options;
    options.horizon_ms = 1500.0;
    options.seed = workload_seed;

    double edf_energy = -1;
    double static_edf_energy = -1;
    double bound = -1;
    double edf_work = -1;
    const bool rm_ok = RmSchedulableSufficient(tasks, 1.0);

    for (const auto& id : AllPaperPolicyIds()) {
      auto policy = MakePolicy(id);
      auto model = MakeModel(param.model);
      SimResult result = RunSimulation(tasks, machine, *policy, *model, options);

      const bool is_rm = policy->scheduler_kind() == SchedulerKind::kRm;
      // P1: deadline guarantees whenever the admitting test passes.
      if (!is_rm || rm_ok) {
        EXPECT_EQ(result.deadline_misses, 0)
            << id << " missed on " << tasks.ToString() << " seed " << workload_seed;
      }

      // P2: theoretical bound.
      EXPECT_GE(result.total_energy(), result.lower_bound_energy - 1e-6)
          << id << " beat the bound on " << tasks.ToString();

      // P4: switching bound (idle drops and the initial set add a little).
      EXPECT_LE(result.speed_switches,
                2 * (result.releases + result.completions) + 2)
          << id;

      // P5: time accounting.
      EXPECT_NEAR(result.busy_ms + result.idle_ms + result.switching_ms,
                  options.horizon_ms, 1e-6)
          << id;
      EXPECT_GE(result.exec_energy, 0.0);
      EXPECT_GE(result.idle_energy, 0.0);

      if (id == "edf") {
        edf_energy = result.total_energy();
        bound = result.lower_bound_energy;
        edf_work = result.total_work_executed;
      }
      if (id == "static_edf") {
        static_edf_energy = result.total_energy();
      }

      // P3: dominance relations (idle is free in this configuration).
      if (edf_energy >= 0 && id != "edf" && (!is_rm || rm_ok)) {
        EXPECT_LE(result.total_energy(), edf_energy + 1e-6)
            << id << " used more energy than plain EDF on " << tasks.ToString();
      }
      if (id == "cc_edf" && static_edf_energy >= 0) {
        EXPECT_LE(result.total_energy(), static_edf_energy + 1e-6)
            << "ccEDF must not exceed staticEDF on " << tasks.ToString();
      }

      // P5b: identical workload across policies (same seed, same releases).
      // Two miss-free policies can differ in executed work only on jobs
      // whose deadline lies beyond the horizon — at most one in-flight job
      // per task, each bounded by its WCET.
      if (edf_work >= 0 && result.deadline_misses == 0 && edf_work > 0) {
        double tail_slack = 0;
        for (const auto& task : tasks.tasks()) {
          tail_slack += task.wcet_ms;
        }
        EXPECT_NEAR(result.total_work_executed, edf_work, tail_slack + 1e-6) << id;
      }
    }
    EXPECT_GE(bound, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtDvsProperties,
    ::testing::Values(PropertyCase{0.2, "machine0", "const:1", 1},
                      PropertyCase{0.5, "machine0", "const:0.9", 2},
                      PropertyCase{0.7, "machine0", "uniform", 3},
                      PropertyCase{0.9, "machine0", "uniform", 4},
                      PropertyCase{0.98, "machine0", "const:0.5", 5},
                      PropertyCase{0.5, "machine1", "uniform", 6},
                      PropertyCase{0.8, "machine1", "const:0.7", 7},
                      PropertyCase{0.4, "machine2", "uniform", 8},
                      PropertyCase{0.85, "machine2", "const:0.9", 9},
                      PropertyCase{0.6, "k6", "uniform", 10},
                      PropertyCase{0.95, "k6", "const:0.8", 11}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      std::string name = std::string(param_info.param.machine) + "_u" +
                         std::to_string(static_cast<int>(
                             param_info.param.utilization * 100)) +
                         "_" + param_info.param.model;
      for (char& c : name) {
        if (c == ':' || c == '.') {
          c = '_';
        }
      }
      return name;
    });

// The idle-level variant of P3: with expensive idle cycles the dynamic
// policies must still never exceed plain EDF (they idle at the lowest
// voltage; EDF idles at the highest).
TEST(RtDvsPropertiesIdle, DynamicPoliciesWinWithExpensiveIdle) {
  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = 6;
  gen_options.target_utilization = 0.5;
  TaskSetGenerator generator(gen_options);
  Pcg32 rng(77);
  for (int i = 0; i < 10; ++i) {
    TaskSet tasks = generator.Generate(rng);
    SimOptions options;
    options.horizon_ms = 1500.0;
    options.idle_level = 1.0;
    options.seed = rng.NextU32();
    auto edf = MakePolicy("edf");
    UniformFractionModel edf_model(0.0, 1.0);
    double edf_energy =
        RunSimulation(tasks, MachineSpec::Machine0(), *edf, edf_model, options)
            .total_energy();
    for (const char* id : {"cc_edf", "la_edf"}) {
      auto policy = MakePolicy(id);
      UniformFractionModel model(0.0, 1.0);
      SimResult result =
          RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
      EXPECT_EQ(result.deadline_misses, 0) << id;
      EXPECT_LE(result.total_energy(), edf_energy + 1e-6) << id;
    }
  }
}

}  // namespace
}  // namespace rtdvs
