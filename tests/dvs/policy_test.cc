#include "src/dvs/policy.h"

#include <gtest/gtest.h>

#include "src/dvs/interval_policy.h"

namespace rtdvs {
namespace {

TEST(PolicyFactory, ProducesPaperNamesAndSchedulers) {
  struct Expectation {
    const char* id;
    const char* name;
    SchedulerKind kind;
    bool dynamic;
  };
  const Expectation expectations[] = {
      {"edf", "EDF", SchedulerKind::kEdf, false},
      {"rm", "RM", SchedulerKind::kRm, false},
      {"static_edf", "StaticEDF", SchedulerKind::kEdf, false},
      {"static_rm", "StaticRM", SchedulerKind::kRm, false},
      {"static_rm_exact", "StaticRM(exact)", SchedulerKind::kRm, false},
      {"cc_edf", "ccEDF", SchedulerKind::kEdf, true},
      {"cc_rm", "ccRM", SchedulerKind::kRm, true},
      {"la_edf", "laEDF", SchedulerKind::kEdf, true},
      {"interval", "intervalDVS", SchedulerKind::kEdf, false},
  };
  for (const auto& expected : expectations) {
    auto policy = MakePolicy(expected.id);
    ASSERT_NE(policy, nullptr) << expected.id;
    EXPECT_EQ(policy->name(), expected.name);
    EXPECT_EQ(policy->scheduler_kind(), expected.kind) << expected.id;
    EXPECT_EQ(policy->lowers_speed_when_idle(), expected.dynamic) << expected.id;
    EXPECT_TRUE(IsValidPolicyId(expected.id));
  }
}

TEST(PolicyFactory, RejectsUnknownIds) {
  EXPECT_FALSE(IsValidPolicyId("bogus"));
  EXPECT_FALSE(IsValidPolicyId(""));
  EXPECT_DEATH(MakePolicy("bogus"), "unknown policy id");
}

TEST(PolicyFactory, PaperIdListMatchesTable4Order) {
  EXPECT_EQ(AllPaperPolicyIds(),
            (std::vector<std::string>{"edf", "static_rm", "static_edf", "cc_edf",
                                      "cc_rm", "la_edf"}));
}

TEST(PolicyContext, EarliestDeadlineScansViews) {
  PolicyContext ctx;
  ctx.views.resize(3);
  ctx.views[0].next_deadline_ms = 12;
  ctx.views[1].next_deadline_ms = 8;
  ctx.views[2].next_deadline_ms = 30;
  EXPECT_DOUBLE_EQ(ctx.EarliestDeadline(), 8.0);
}

TEST(IntervalPolicyDeathTest, ValidatesOptions) {
  EXPECT_DEATH(IntervalPolicy(IntervalPolicyOptions{0.0, 0.5, 1.0}), "CHECK failed");
  EXPECT_DEATH(IntervalPolicy(IntervalPolicyOptions{10.0, 0.0, 1.0}), "CHECK failed");
  EXPECT_DEATH(IntervalPolicy(IntervalPolicyOptions{10.0, 0.5, 0.5}), "CHECK failed");
}

}  // namespace
}  // namespace rtdvs
