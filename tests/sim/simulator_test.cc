#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/no_dvs_policy.h"
#include "src/dvs/policy.h"

namespace rtdvs {
namespace {

// A single task: C = 2, P = 10, always full worst case, at max speed.
TaskSet OneTask() { return TaskSet({{"solo", 10.0, 2.0, 0.0}}); }

SimOptions Opts(double horizon, double idle_level = 0.0) {
  SimOptions options;
  options.horizon_ms = horizon;
  options.idle_level = idle_level;
  options.record_trace = true;
  return options;
}

TEST(Simulator, SingleTaskTimingAndEnergy) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(100.0));
  // 10 invocations of 2 ms work at V = 5.
  EXPECT_EQ(result.releases, 10);
  EXPECT_EQ(result.completions, 10);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_NEAR(result.total_work_executed, 20.0, 1e-9);
  EXPECT_NEAR(result.exec_energy, 20.0 * 25.0, 1e-9);
  EXPECT_NEAR(result.idle_energy, 0.0, 1e-12);
  EXPECT_NEAR(result.busy_ms, 20.0, 1e-9);
  EXPECT_NEAR(result.idle_ms, 80.0, 1e-9);
}

TEST(Simulator, IdleLevelChargesIdleCycles) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result = RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model,
                                   Opts(100.0, 0.5));
  // Idle at f=1, V=5: 80 ms * 1 * 25 * 0.5.
  EXPECT_NEAR(result.idle_energy, 80.0 * 25.0 * 0.5, 1e-9);
}

TEST(Simulator, ActualFractionScalesWork) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(0.25);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(100.0));
  EXPECT_NEAR(result.total_work_executed, 5.0, 1e-9);
}

TEST(Simulator, ResponseTimesRecorded) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(100.0));
  ASSERT_EQ(result.task_stats.size(), 1u);
  EXPECT_NEAR(result.task_stats[0].MeanResponseMs(), 2.0, 1e-9);
  EXPECT_NEAR(result.task_stats[0].max_response_ms, 2.0, 1e-9);
}

TEST(Simulator, OverloadMissesAreDetected) {
  // U = 1.5: EDF must miss.
  TaskSet tasks({{"a", 10.0, 8.0, 0.0}, {"b", 10.0, 7.0, 0.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(200.0));
  EXPECT_GT(result.deadline_misses, 0);
}

TEST(Simulator, AbortPolicyDropsTardyWork) {
  TaskSet tasks({{"a", 10.0, 8.0, 0.0}, {"b", 10.0, 7.0, 0.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimOptions options = Opts(200.0);
  options.miss_policy = MissPolicy::kAbortJob;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, options);
  EXPECT_GT(result.deadline_misses, 0);
  // With aborts, executed work per 10 ms window is capped at the window.
  EXPECT_LE(result.total_work_executed, 200.0 + 1e-6);
  // Completions < releases: aborted jobs never complete.
  EXPECT_LT(result.completions, result.releases);
}

TEST(Simulator, PreemptionCountsForNestedDeadlines) {
  // Task b (P=50) runs long; task a (P=10) preempts it repeatedly.
  TaskSet tasks({{"a", 10.0, 2.0, 0.0}, {"b", 50.0, 20.0, 0.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(50.0));
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.preemptions, 0);
}

TEST(Simulator, PhaseDefersFirstRelease) {
  TaskSet tasks({{"late", 10.0, 2.0, 25.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(100.0));
  // Releases at 25, 35, ..., 95: 8 of them.
  EXPECT_EQ(result.releases, 8);
  ASSERT_FALSE(result.trace.segments().empty());
  EXPECT_EQ(result.trace.segments()[0].state, CpuState::kIdle);
  EXPECT_NEAR(result.trace.segments()[0].end_ms, 25.0, 1e-9);
}

TEST(Simulator, HorizonCutsPartialWork) {
  // One release at t=0 needing 2 ms; horizon 1 ms.
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(1.0));
  EXPECT_EQ(result.releases, 1);
  EXPECT_EQ(result.completions, 0);
  EXPECT_NEAR(result.total_work_executed, 1.0, 1e-9);
}

TEST(Simulator, ResidencyAccountsAllTime) {
  auto policy = MakePolicy("cc_edf");
  UniformFractionModel model(0.0, 1.0);
  SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                   *policy, model, Opts(500.0, 0.3));
  double exec_ms = 0, idle_ms = 0, exec_energy = 0, idle_energy = 0;
  for (const auto& res : result.residency) {
    exec_ms += res.exec_ms;
    idle_ms += res.idle_ms;
    exec_energy += res.exec_energy;
    idle_energy += res.idle_energy;
  }
  EXPECT_NEAR(exec_ms, result.busy_ms, 1e-6);
  EXPECT_NEAR(idle_ms, result.idle_ms, 1e-6);
  EXPECT_NEAR(exec_energy, result.exec_energy, 1e-6);
  EXPECT_NEAR(idle_energy, result.idle_energy, 1e-6);
  EXPECT_NEAR(result.busy_ms + result.idle_ms + result.switching_ms,
              result.horizon_ms, 1e-6);
}

TEST(Simulator, SwitchTimeBlocksExecution) {
  // With a huge switch penalty, a task set that needs frequent frequency
  // changes loses real time: compare completions with/without.
  TaskSet tasks = TaskSet::PaperExample();
  SimOptions with_cost = Opts(160.0);
  with_cost.switch_time_ms = 0.5;
  auto policy_a = MakePolicy("cc_edf");
  ConstantFractionModel model(1.0);
  SimResult costly =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy_a, model, with_cost);
  EXPECT_GT(costly.switching_ms, 0.0);
  // Time is conserved across the three states.
  EXPECT_NEAR(costly.busy_ms + costly.idle_ms + costly.switching_ms, 160.0, 1e-6);
}

TEST(Simulator, SpeedSwitchesBoundedByPaperClaim) {
  // §2.5: at most 2 switches per task per invocation (plus idle drops).
  auto policy = MakePolicy("la_edf");
  UniformFractionModel model(0.0, 1.0);
  SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                   *policy, model, Opts(2000.0));
  EXPECT_LE(result.speed_switches,
            2 * result.releases + 2 * result.completions + 2);
}

TEST(Simulator, TraceSegmentsAreContiguousAndOrdered) {
  auto policy = MakePolicy("la_edf");
  UniformFractionModel model(0.0, 1.0);
  SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                   *policy, model, Opts(200.0));
  const auto& segments = result.trace.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_NEAR(segments.front().start_ms, 0.0, 1e-9);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_NEAR(segments[i].start_ms, segments[i - 1].end_ms, 1e-6);
  }
  EXPECT_NEAR(segments.back().end_ms, 200.0, 1e-6);
}

TEST(SimulatorDeathTest, RejectsEmptyTaskSetAndDoubleRun) {
  auto policy = MakePolicy("edf");
  ConstantFractionModel model(1.0);
  EXPECT_DEATH(
      {
        Simulator sim(TaskSet(), MachineSpec::Machine0(), policy.get(), &model,
                      SimOptions{});
      },
      "empty task set");
  Simulator sim(OneTask(), MachineSpec::Machine0(), policy.get(), &model,
                SimOptions{});
  (void)sim.Run();
  EXPECT_DEATH((void)sim.Run(), "once");
}

}  // namespace
}  // namespace rtdvs
