#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/dvs/no_dvs_policy.h"
#include "src/dvs/policy.h"

namespace rtdvs {
namespace {

// A single task: C = 2, P = 10, always full worst case, at max speed.
TaskSet OneTask() { return TaskSet({{"solo", 10.0, 2.0, 0.0}}); }

SimOptions Opts(double horizon, double idle_level = 0.0) {
  SimOptions options;
  options.horizon_ms = horizon;
  options.idle_level = idle_level;
  options.record_trace = true;
  return options;
}

TEST(Simulator, SingleTaskTimingAndEnergy) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(100.0));
  // 10 invocations of 2 ms work at V = 5.
  EXPECT_EQ(result.releases, 10);
  EXPECT_EQ(result.completions, 10);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_NEAR(result.total_work_executed, 20.0, 1e-9);
  EXPECT_NEAR(result.exec_energy, 20.0 * 25.0, 1e-9);
  EXPECT_NEAR(result.idle_energy, 0.0, 1e-12);
  EXPECT_NEAR(result.busy_ms, 20.0, 1e-9);
  EXPECT_NEAR(result.idle_ms, 80.0, 1e-9);
}

TEST(Simulator, IdleLevelChargesIdleCycles) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result = RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model,
                                   Opts(100.0, 0.5));
  // Idle at f=1, V=5: 80 ms * 1 * 25 * 0.5.
  EXPECT_NEAR(result.idle_energy, 80.0 * 25.0 * 0.5, 1e-9);
}

TEST(Simulator, ActualFractionScalesWork) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(0.25);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(100.0));
  EXPECT_NEAR(result.total_work_executed, 5.0, 1e-9);
}

TEST(Simulator, ResponseTimesRecorded) {
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(100.0));
  ASSERT_EQ(result.task_stats.size(), 1u);
  EXPECT_NEAR(result.task_stats[0].MeanResponseMs(), 2.0, 1e-9);
  EXPECT_NEAR(result.task_stats[0].max_response_ms, 2.0, 1e-9);
}

TEST(Simulator, OverloadMissesAreDetected) {
  // U = 1.5: EDF must miss.
  TaskSet tasks({{"a", 10.0, 8.0, 0.0}, {"b", 10.0, 7.0, 0.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(200.0));
  EXPECT_GT(result.deadline_misses, 0);
}

TEST(Simulator, AbortPolicyDropsTardyWork) {
  TaskSet tasks({{"a", 10.0, 8.0, 0.0}, {"b", 10.0, 7.0, 0.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimOptions options = Opts(200.0);
  options.miss_policy = MissPolicy::kAbortJob;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, options);
  EXPECT_GT(result.deadline_misses, 0);
  // With aborts, executed work per 10 ms window is capped at the window.
  EXPECT_LE(result.total_work_executed, 200.0 + 1e-6);
  // Completions < releases: aborted jobs never complete.
  EXPECT_LT(result.completions, result.releases);
}

TEST(Simulator, PreemptionCountsForNestedDeadlines) {
  // Task b (P=50) runs long; task a (P=10) preempts it repeatedly.
  TaskSet tasks({{"a", 10.0, 2.0, 0.0}, {"b", 50.0, 20.0, 0.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(50.0));
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.preemptions, 0);
}

TEST(Simulator, PhaseDefersFirstRelease) {
  TaskSet tasks({{"late", 10.0, 2.0, 25.0}});
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(100.0));
  // Releases at 25, 35, ..., 95: 8 of them.
  EXPECT_EQ(result.releases, 8);
  ASSERT_FALSE(result.trace.segments().empty());
  EXPECT_EQ(result.trace.segments()[0].state, CpuState::kIdle);
  EXPECT_NEAR(result.trace.segments()[0].end_ms, 25.0, 1e-9);
}

TEST(Simulator, HorizonCutsPartialWork) {
  // One release at t=0 needing 2 ms; horizon 1 ms.
  NoDvsPolicy policy(SchedulerKind::kEdf);
  ConstantFractionModel model(1.0);
  SimResult result =
      RunSimulation(OneTask(), MachineSpec::Machine0(), policy, model, Opts(1.0));
  EXPECT_EQ(result.releases, 1);
  EXPECT_EQ(result.completions, 0);
  EXPECT_NEAR(result.total_work_executed, 1.0, 1e-9);
}

TEST(Simulator, ResidencyAccountsAllTime) {
  auto policy = MakePolicy("cc_edf");
  UniformFractionModel model(0.0, 1.0);
  SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                   *policy, model, Opts(500.0, 0.3));
  double exec_ms = 0, idle_ms = 0, exec_energy = 0, idle_energy = 0;
  for (const auto& res : result.residency) {
    exec_ms += res.exec_ms;
    idle_ms += res.idle_ms;
    exec_energy += res.exec_energy;
    idle_energy += res.idle_energy;
  }
  EXPECT_NEAR(exec_ms, result.busy_ms, 1e-6);
  EXPECT_NEAR(idle_ms, result.idle_ms, 1e-6);
  EXPECT_NEAR(exec_energy, result.exec_energy, 1e-6);
  EXPECT_NEAR(idle_energy, result.idle_energy, 1e-6);
  EXPECT_NEAR(result.busy_ms + result.idle_ms + result.switching_ms,
              result.horizon_ms, 1e-6);
}

TEST(Simulator, SwitchTimeBlocksExecution) {
  // With a huge switch penalty, a task set that needs frequent frequency
  // changes loses real time: compare completions with/without.
  TaskSet tasks = TaskSet::PaperExample();
  SimOptions with_cost = Opts(160.0);
  with_cost.switch_time_ms = 0.5;
  auto policy_a = MakePolicy("cc_edf");
  ConstantFractionModel model(1.0);
  SimResult costly =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy_a, model, with_cost);
  EXPECT_GT(costly.switching_ms, 0.0);
  // Time is conserved across the three states.
  EXPECT_NEAR(costly.busy_ms + costly.idle_ms + costly.switching_ms, 160.0, 1e-6);
}

TEST(Simulator, SpeedSwitchesBoundedByPaperClaim) {
  // §2.5: at most 2 switches per task per invocation (plus idle drops).
  auto policy = MakePolicy("la_edf");
  UniformFractionModel model(0.0, 1.0);
  SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                   *policy, model, Opts(2000.0));
  EXPECT_LE(result.speed_switches,
            2 * result.releases + 2 * result.completions + 2);
}

TEST(Simulator, TraceSegmentsAreContiguousAndOrdered) {
  auto policy = MakePolicy("la_edf");
  UniformFractionModel model(0.0, 1.0);
  SimResult result = RunSimulation(TaskSet::PaperExample(), MachineSpec::Machine0(),
                                   *policy, model, Opts(200.0));
  const auto& segments = result.trace.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_NEAR(segments.front().start_ms, 0.0, 1e-9);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_NEAR(segments[i].start_ms, segments[i - 1].end_ms, 1e-6);
  }
  EXPECT_NEAR(segments.back().end_ms, 200.0, 1e-6);
}

// Runs at max speed, drops to the lowest point whenever the processor
// idles — the cheapest way to force an operating-point change on BOTH the
// wake-up (release) path and the idle path every period.
class MaxRunMinIdlePolicy : public DvsPolicy {
 public:
  std::string name() const override { return "max-run-min-idle"; }
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kEdf; }
  void OnStart(const PolicyContext& ctx, SpeedController& speed) override {
    speed.SetOperatingPoint(ctx.machine->max_point());
  }
  void OnTaskRelease(int, const PolicyContext& ctx,
                     SpeedController& speed) override {
    speed.SetOperatingPoint(ctx.machine->max_point());
  }
  void OnIdle(const PolicyContext& ctx, SpeedController& speed) override {
    speed.SetOperatingPoint(ctx.machine->min_point());
  }
};

TEST(Simulator, SwitchHaltOnIdlePathChargesSwitchingNotIdle) {
  // Regression: the mandatory halt used to be honored only when a job was
  // about to run; a speed change going INTO idle was silently charged as
  // idle time and idle energy at the new point. C=2, P=10, horizon 100,
  // 1 ms halt: the first period has only the idle-path switch (the release
  // at t=0 finds the speed already at max), the other nine have both.
  TaskSet tasks({{"solo", 10.0, 2.0, 0.0}});
  MaxRunMinIdlePolicy policy;
  ConstantFractionModel model(1.0);
  SimOptions options = Opts(100.0, 0.5);
  options.switch_time_ms = 1.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, options);
  EXPECT_NEAR(result.busy_ms, 20.0, 1e-9);
  EXPECT_NEAR(result.switching_ms, 19.0, 1e-9);  // 10 idle-path + 9 release
  EXPECT_NEAR(result.idle_ms, 61.0, 1e-9);
  // All execution at (f=1, V=5), all idling at (f=0.5, V=3).
  EXPECT_NEAR(result.exec_energy, 20.0 * 25.0, 1e-9);
  EXPECT_NEAR(result.idle_energy, 61.0 * 0.5 * 9.0 * 0.5, 1e-9);
  // The halt into the first idle period is a kSwitching segment, not idle.
  const auto& segments = result.trace.segments();
  auto at_2ms = std::find_if(segments.begin(), segments.end(),
                             [](const TraceSegment& seg) {
                               return std::abs(seg.start_ms - 2.0) < 1e-9;
                             });
  ASSERT_NE(at_2ms, segments.end());
  EXPECT_EQ(at_2ms->state, CpuState::kSwitching);
  EXPECT_NEAR(at_2ms->end_ms, 3.0, 1e-9);
  ASSERT_TRUE(result.audit.audited);
  EXPECT_TRUE(result.audit.ok()) << result.audit.Summary();
}

// Records the task-0 runtime view at every release callback.
class ViewProbePolicy : public DvsPolicy {
 public:
  std::string name() const override { return "view-probe"; }
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kEdf; }
  bool guarantees_deadlines() const override { return false; }
  void OnStart(const PolicyContext& ctx, SpeedController& speed) override {
    speed.SetOperatingPoint(ctx.machine->max_point());
  }
  void OnTaskRelease(int, const PolicyContext& ctx, SpeedController&) override {
    at_release.push_back({ctx.now_ms, ctx.view(0)});
  }
  std::vector<std::pair<double, TaskRuntimeView>> at_release;
};

TEST(Simulator, BuildContextPicksEarliestReleaseWithBackloggedJobs) {
  // Regression: the "current invocation" used to be chosen by comparing a
  // candidate's release against the chosen job's DEADLINE, which only
  // works when deadline = release + period holds for every in-flight job.
  // Force two jobs of one task in flight (§4.3 cold start overrunning the
  // WCET under kContinueLate) and check the policy still observes the
  // EARLIEST invocation: its deadline, its executed work.
  TaskSet tasks({{"cold", 10.0, 8.0, 0.0}});
  ViewProbePolicy policy;
  // First invocation consumes 1.5 * C = 12 ms > P: still running when the
  // second is released.
  ColdStartModel model(std::make_unique<ConstantFractionModel>(1.0), 1.5,
                       /*allow_overrun=*/true);
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), policy, model, Opts(30.0));
  EXPECT_EQ(result.wcet_overruns, 1);
  ASSERT_GE(policy.at_release.size(), 2u);
  // t=10: the overrunning job 0 (released 0, deadline 10, 10 ms executed)
  // is still the current invocation, not the fresh job 1 (deadline 20).
  EXPECT_NEAR(policy.at_release[1].first, 10.0, 1e-9);
  const TaskRuntimeView& view = policy.at_release[1].second;
  EXPECT_TRUE(view.has_active_job);
  EXPECT_NEAR(view.next_deadline_ms, 10.0, 1e-9);
  EXPECT_NEAR(view.executed_in_invocation, 10.0, 1e-9);
  EXPECT_NEAR(view.worst_case_remaining, 0.0, 1e-9);  // past its WCET budget
  // Conservation holds across the backlog; the RT oracle is skipped (the
  // overrun voids the guarantee), so the audit stays green.
  ASSERT_TRUE(result.audit.audited);
  EXPECT_TRUE(result.audit.ok()) << result.audit.Summary();
}

TEST(SimulatorDeathTest, RejectsEmptyTaskSetAndDoubleRun) {
  auto policy = MakePolicy("edf");
  ConstantFractionModel model(1.0);
  EXPECT_DEATH(
      {
        Simulator sim(TaskSet(), MachineSpec::Machine0(), policy.get(), &model,
                      SimOptions{});
      },
      "empty task set");
  Simulator sim(OneTask(), MachineSpec::Machine0(), policy.get(), &model,
                SimOptions{});
  (void)sim.Run();
  EXPECT_DEATH((void)sim.Run(), "once");
}

}  // namespace
}  // namespace rtdvs
