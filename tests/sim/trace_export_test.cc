// Golden test for the Chrome-trace exporter, on the paper's worked example
// (Table 2 task set, Table 3 execution times, machine 0, 16 ms). The
// invariant that makes the exported trace trustworthy: re-integrating the
// frequency counter track over the execution slices reproduces the
// simulator's reported exec_energy exactly — the trace is the energy
// accounting, not a lossy visualization of it.
#include "src/sim/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"
#include "src/util/json.h"

namespace rtdvs {
namespace {

std::unique_ptr<ExecTimeModel> Table3Model() {
  return std::make_unique<TableFractionModel>(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
}

struct Exported {
  SimResult result;
  JsonValue doc;
};

Exported RunAndExport(const std::string& policy_id) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy(policy_id);
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  JsonValue doc = ExportChromeTrace(result, tasks, options);
  return {std::move(result), std::move(doc)};
}

TEST(TraceExport, DocumentHasChromeTraceShape) {
  Exported exported = RunAndExport("cc_edf");
  const JsonValue& doc = exported.doc;
  EXPECT_EQ(doc.Get("displayTimeUnit").AsString(), "ms");
  const JsonValue& events = doc.Get("traceEvents");
  ASSERT_GT(events.size(), 0u);
  bool saw_metadata = false, saw_slice = false, saw_counter = false,
       saw_instant = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const std::string& ph = event.Get("ph").AsString();
    ASSERT_NE(event.Find("pid"), nullptr);
    if (ph == "M") {
      saw_metadata = true;
    } else if (ph == "X") {
      saw_slice = true;
      EXPECT_GE(event.Get("dur").AsDouble(), 0.0);
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(event.Get("name").AsString(), "frequency");
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(event.Get("s").AsString(), "t");
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);

  const JsonValue& other = doc.Get("otherData");
  EXPECT_EQ(other.Get("policy").AsString(), exported.result.policy_name);
  EXPECT_DOUBLE_EQ(other.Get("horizon_ms").AsDouble(), 16.0);
  EXPECT_FALSE(other.Get("truncated").AsBool());
}

TEST(TraceExport, NamesEveryTaskTrackAndTheCpuTrack) {
  Exported exported = RunAndExport("la_edf");
  const JsonValue& events = exported.doc.Get("traceEvents");
  std::vector<std::string> thread_names;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() == "M" &&
        event.Get("name").AsString() == "thread_name") {
      thread_names.push_back(event.Get("args").Get("name").AsString());
    }
  }
  // CPU track + the three Table-2 tasks.
  ASSERT_EQ(thread_names.size(), 4u);
  EXPECT_EQ(thread_names[0], "cpu (idle/switch)");
  EXPECT_EQ(thread_names[1], "T1 (C=3 T=8)");
  EXPECT_EQ(thread_names[2], "T2 (C=3 T=10)");
  EXPECT_EQ(thread_names[3], "T3 (C=1 T=14)");
}

// The acceptance criterion of the exporter: walk the frequency counter
// track as a step function, integrate work over the execution slices with
// the CMOS V^2 energy law, and land exactly on SimResult::exec_energy.
void CheckReintegration(const std::string& policy_id) {
  SCOPED_TRACE(policy_id);
  Exported exported = RunAndExport(policy_id);
  const JsonValue& doc = exported.doc;
  const double coefficient =
      doc.Get("otherData").Get("energy_coefficient").AsDouble();
  const JsonValue& events = doc.Get("traceEvents");

  // Counter steps, in emission order (= ascending ts).
  struct Step {
    double ts, frequency, voltage;
  };
  std::vector<Step> steps;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() == "C") {
      steps.push_back({event.Get("ts").AsDouble(),
                       event.Get("args").Get("frequency").AsDouble(),
                       event.Get("args").Get("voltage").AsDouble()});
    }
  }
  ASSERT_FALSE(steps.empty());

  double integrated = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() != "X" ||
        event.Get("tid").AsInt() == 0) {  // tid 0: idle/switch track
      continue;
    }
    const double ts = event.Get("ts").AsDouble();
    // The counter value in effect at this slice's start.
    const Step* current = nullptr;
    for (const Step& step : steps) {
      if (step.ts <= ts + 1e-9) {
        current = &step;
      }
    }
    ASSERT_NE(current, nullptr);
    // The slice's own args agree with the counter track...
    EXPECT_EQ(event.Get("args").Get("frequency").AsDouble(), current->frequency);
    EXPECT_EQ(event.Get("args").Get("voltage").AsDouble(), current->voltage);
    // ...and integrating dur * f * V^2 reproduces the slice energy.
    const double dur_ms = event.Get("dur").AsDouble() / 1000.0;
    const double work = dur_ms * current->frequency;
    const double energy = work * current->voltage * current->voltage * coefficient;
    EXPECT_NEAR(event.Get("args").Get("energy").AsDouble(), energy,
                1e-12 * (1.0 + energy));
    integrated += energy;
  }
  EXPECT_NEAR(integrated, exported.result.exec_energy,
              1e-9 * (1.0 + exported.result.exec_energy));
}

TEST(TraceExport, FrequencyTrackReintegratesToExecEnergy) {
  for (const auto& id : AllPaperPolicyIds()) {
    CheckReintegration(id);
  }
}

TEST(TraceExport, IdleSlicesSumToIdleEnergy) {
  // Nonzero idle level so idle slices carry real energy.
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy("cc_edf");
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.idle_level = 0.1;
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  JsonValue doc = ExportChromeTrace(result, tasks, options);
  const JsonValue& events = doc.Get("traceEvents");
  double idle_energy = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() == "X" &&
        event.Get("name").AsString() == "idle") {
      idle_energy += event.Get("args").Get("energy").AsDouble();
    }
  }
  EXPECT_NEAR(idle_energy, result.idle_energy, 1e-9 * (1.0 + result.idle_energy));
}

TEST(TraceExport, TruncatedTraceIsFlagged) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy("edf");
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 160.0;
  options.record_trace = true;
  options.max_trace_segments = 4;  // force truncation
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  ASSERT_TRUE(result.trace.truncated());
  JsonValue doc = ExportChromeTrace(result, tasks, options);
  EXPECT_TRUE(doc.Get("otherData").Get("truncated").AsBool());
  // The exporter reports how much was actually recorded (the event list can
  // hit the capacity limit before the segment list does).
  EXPECT_EQ(doc.Get("otherData").Get("segments").AsInt(),
            static_cast<int64_t>(result.trace.segments().size()));
  EXPECT_LE(doc.Get("otherData").Get("segments").AsInt(), 4);
}

TEST(TraceExport, WriteChromeTraceRoundTrips) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy("cc_edf");
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  std::string path = testing::TempDir() + "/trace_export_test.json";
  ASSERT_TRUE(WriteChromeTrace(result, tasks, options, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ToString(), ExportChromeTrace(result, tasks, options).ToString());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtdvs
