// Golden test for the Chrome-trace exporter, on the paper's worked example
// (Table 2 task set, Table 3 execution times, machine 0, 16 ms). The
// invariant that makes the exported trace trustworthy: re-integrating the
// frequency counter track over the execution slices reproduces the
// simulator's reported exec_energy exactly — the trace is the energy
// accounting, not a lossy visualization of it.
#include "src/sim/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/util/json.h"

namespace rtdvs {
namespace {

std::unique_ptr<ExecTimeModel> Table3Model() {
  return std::make_unique<TableFractionModel>(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
}

struct Exported {
  SimResult result;
  JsonValue doc;
};

Exported RunAndExport(const std::string& policy_id) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy(policy_id);
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  JsonValue doc = ExportChromeTrace(result, tasks, options);
  return {std::move(result), std::move(doc)};
}

TEST(TraceExport, DocumentHasChromeTraceShape) {
  Exported exported = RunAndExport("cc_edf");
  const JsonValue& doc = exported.doc;
  EXPECT_EQ(doc.Get("displayTimeUnit").AsString(), "ms");
  const JsonValue& events = doc.Get("traceEvents");
  ASSERT_GT(events.size(), 0u);
  bool saw_metadata = false, saw_slice = false, saw_counter = false,
       saw_instant = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const std::string& ph = event.Get("ph").AsString();
    ASSERT_NE(event.Find("pid"), nullptr);
    if (ph == "M") {
      saw_metadata = true;
    } else if (ph == "X") {
      saw_slice = true;
      EXPECT_GE(event.Get("dur").AsDouble(), 0.0);
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(event.Get("name").AsString(), "frequency");
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(event.Get("s").AsString(), "t");
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);

  const JsonValue& other = doc.Get("otherData");
  EXPECT_EQ(other.Get("policy").AsString(), exported.result.policy_name);
  EXPECT_DOUBLE_EQ(other.Get("horizon_ms").AsDouble(), 16.0);
  EXPECT_FALSE(other.Get("truncated").AsBool());
}

TEST(TraceExport, NamesEveryTaskTrackAndTheCpuTrack) {
  Exported exported = RunAndExport("la_edf");
  const JsonValue& events = exported.doc.Get("traceEvents");
  std::vector<std::string> thread_names;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() == "M" &&
        event.Get("name").AsString() == "thread_name") {
      thread_names.push_back(event.Get("args").Get("name").AsString());
    }
  }
  // CPU track + the three Table-2 tasks.
  ASSERT_EQ(thread_names.size(), 4u);
  EXPECT_EQ(thread_names[0], "cpu (idle/switch)");
  EXPECT_EQ(thread_names[1], "T1 (C=3 T=8)");
  EXPECT_EQ(thread_names[2], "T2 (C=3 T=10)");
  EXPECT_EQ(thread_names[3], "T3 (C=1 T=14)");
}

// The acceptance criterion of the exporter: walk the frequency counter
// track as a step function, integrate work over the execution slices with
// the CMOS V^2 energy law, and land exactly on SimResult::exec_energy.
void CheckReintegration(const std::string& policy_id) {
  SCOPED_TRACE(policy_id);
  Exported exported = RunAndExport(policy_id);
  const JsonValue& doc = exported.doc;
  const double coefficient =
      doc.Get("otherData").Get("energy_coefficient").AsDouble();
  const JsonValue& events = doc.Get("traceEvents");

  // Counter steps, in emission order (= ascending ts).
  struct Step {
    double ts, frequency, voltage;
  };
  std::vector<Step> steps;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() == "C") {
      steps.push_back({event.Get("ts").AsDouble(),
                       event.Get("args").Get("frequency").AsDouble(),
                       event.Get("args").Get("voltage").AsDouble()});
    }
  }
  ASSERT_FALSE(steps.empty());

  double integrated = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() != "X" ||
        event.Get("tid").AsInt() == 0) {  // tid 0: idle/switch track
      continue;
    }
    const double ts = event.Get("ts").AsDouble();
    // The counter value in effect at this slice's start.
    const Step* current = nullptr;
    for (const Step& step : steps) {
      if (step.ts <= ts + 1e-9) {
        current = &step;
      }
    }
    ASSERT_NE(current, nullptr);
    // The slice's own args agree with the counter track...
    EXPECT_EQ(event.Get("args").Get("frequency").AsDouble(), current->frequency);
    EXPECT_EQ(event.Get("args").Get("voltage").AsDouble(), current->voltage);
    // ...and integrating dur * f * V^2 reproduces the slice energy.
    const double dur_ms = event.Get("dur").AsDouble() / 1000.0;
    const double work = dur_ms * current->frequency;
    const double energy = work * current->voltage * current->voltage * coefficient;
    EXPECT_NEAR(event.Get("args").Get("energy").AsDouble(), energy,
                1e-12 * (1.0 + energy));
    integrated += energy;
  }
  EXPECT_NEAR(integrated, exported.result.exec_energy,
              1e-9 * (1.0 + exported.result.exec_energy));
}

TEST(TraceExport, FrequencyTrackReintegratesToExecEnergy) {
  for (const auto& id : AllPaperPolicyIds()) {
    CheckReintegration(id);
  }
}

TEST(TraceExport, IdleSlicesSumToIdleEnergy) {
  // Nonzero idle level so idle slices carry real energy.
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy("cc_edf");
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.idle_level = 0.1;
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  JsonValue doc = ExportChromeTrace(result, tasks, options);
  const JsonValue& events = doc.Get("traceEvents");
  double idle_energy = 0.0;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("ph").AsString() == "X" &&
        event.Get("name").AsString() == "idle") {
      idle_energy += event.Get("args").Get("energy").AsDouble();
    }
  }
  EXPECT_NEAR(idle_energy, result.idle_energy, 1e-9 * (1.0 + result.idle_energy));
}

TEST(TraceExport, TruncatedTraceIsFlagged) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy("edf");
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 160.0;
  options.record_trace = true;
  options.max_trace_segments = 4;  // force truncation
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  ASSERT_TRUE(result.trace.truncated());
  JsonValue doc = ExportChromeTrace(result, tasks, options);
  EXPECT_TRUE(doc.Get("otherData").Get("truncated").AsBool());
  // The exporter reports how much was actually recorded (the event list can
  // hit the capacity limit before the segment list does).
  EXPECT_EQ(doc.Get("otherData").Get("segments").AsInt(),
            static_cast<int64_t>(result.trace.segments().size()));
  EXPECT_LE(doc.Get("otherData").Get("segments").AsInt(), 4);
}

TEST(TraceExport, WriteChromeTraceRoundTrips) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy("cc_edf");
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
  std::string path = testing::TempDir() + "/trace_export_test.json";
  ASSERT_TRUE(WriteChromeTrace(result, tasks, options, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ToString(), ExportChromeTrace(result, tasks, options).ToString());
  std::remove(path.c_str());
}

SimRequest MpRequest(MpMode mode) {
  SimRequest request;
  std::vector<Task> tasks = {{"A", 10.0, 4.0, 0.0},
                             {"B", 15.0, 6.0, 0.0},
                             {"C", 20.0, 9.0, 0.0}};
  request.tasks = TaskSet(tasks);
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.mode = mode;
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 60.0;
  request.options.record_trace = true;
  return request;
}

TEST(TraceExportMp, PartitionedExportGroupsTracksPerCore) {
  SimRequest request = MpRequest(MpMode::kPartitioned);
  ConstantFractionModel model(0.7);
  MpSimResult result = RunClusterSimulation(request, model);
  ASSERT_TRUE(result.admitted);
  JsonValue doc = ExportChromeTraceMp(result, request.tasks, request.options);

  // One process per core, named for the core; every event's pid is a valid
  // core index (no cluster group: partitioned cluster traces are empty).
  std::vector<std::string> process_names;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const int64_t pid = event.Get("pid").AsInt();
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, 2);
    if (event.Get("ph").AsString() == "M" &&
        event.Get("name").AsString() == "process_name") {
      process_names.push_back(event.Get("args").Get("name").AsString());
    }
  }
  ASSERT_EQ(process_names.size(), 2u);
  EXPECT_EQ(process_names[0], "core 0: ccEDF");
  EXPECT_EQ(process_names[1], "core 1: ccEDF");

  // Per-core execution slices re-sum to each core's exec energy.
  for (int c = 0; c < 2; ++c) {
    double exec = 0.0;
    for (size_t i = 0; i < events.size(); ++i) {
      const JsonValue& event = events.at(i);
      if (event.Get("pid").AsInt() == c && event.Get("ph").AsString() == "X" &&
          event.Get("tid").AsInt() != 0) {
        exec += event.Get("args").Get("energy").AsDouble();
      }
    }
    const double expected = result.cores[static_cast<size_t>(c)].exec_energy;
    EXPECT_NEAR(exec, expected, 1e-9 * (1.0 + expected)) << "core " << c;
  }

  const JsonValue& other = doc.Get("otherData");
  EXPECT_EQ(other.Get("mode").AsString(), "partitioned");
  EXPECT_EQ(other.Get("num_cores").AsInt(), 2);
  EXPECT_TRUE(other.Get("admitted").AsBool());
  EXPECT_EQ(other.Get("migrations").AsInt(), 0);
}

TEST(TraceExportMp, GlobalExportCarriesClusterEventGroup) {
  SimRequest request = MpRequest(MpMode::kGlobal);
  ConstantFractionModel model(0.7);
  MpSimResult result = RunClusterSimulation(request, model);
  ASSERT_TRUE(result.admitted);
  JsonValue doc = ExportChromeTraceMp(result, request.tasks, request.options);

  // Global mode adds the cluster group at pid == num_cores, carrying the
  // job instant events; per-core groups carry the execution slices.
  const JsonValue& events = doc.Get("traceEvents");
  bool saw_cluster_instant = false;
  bool saw_core_slice = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const int64_t pid = event.Get("pid").AsInt();
    EXPECT_LE(pid, 2);
    if (pid == 2 && event.Get("ph").AsString() == "i") {
      saw_cluster_instant = true;
    }
    if (pid < 2 && event.Get("ph").AsString() == "X") {
      saw_core_slice = true;
    }
  }
  EXPECT_TRUE(saw_cluster_instant);
  EXPECT_TRUE(saw_core_slice);
}

TEST(TraceExportMp, PoweredDownCoreExportsEmptyOffGroup) {
  SimRequest request = MpRequest(MpMode::kPartitioned);
  std::vector<Task> tiny = {{"A", 10.0, 1.0, 0.0}};
  request.tasks = TaskSet(tiny);
  request.cluster.num_cores = 2;
  ConstantFractionModel model(1.0);
  MpSimResult result = RunClusterSimulation(request, model);
  ASSERT_TRUE(result.admitted);
  JsonValue doc = ExportChromeTraceMp(result, request.tasks, request.options);
  const JsonValue& events = doc.Get("traceEvents");
  std::string core1_name;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    if (event.Get("pid").AsInt() == 1) {
      // Powered-down core: metadata only, no slices or counters.
      EXPECT_EQ(event.Get("ph").AsString(), "M");
      if (event.Get("name").AsString() == "process_name") {
        core1_name = event.Get("args").Get("name").AsString();
      }
    }
  }
  EXPECT_EQ(core1_name, "core 1: off");
}

TEST(TraceExportMp, InfeasibleResultExportsMetadataOnly) {
  SimRequest request = MpRequest(MpMode::kPartitioned);
  std::vector<Task> heavy = {{"A", 10.0, 7.0, 0.0},
                             {"B", 10.0, 7.0, 0.0},
                             {"C", 10.0, 7.0, 0.0}};
  request.tasks = TaskSet(heavy);
  ConstantFractionModel model(1.0);
  MpSimResult result = RunClusterSimulation(request, model);
  ASSERT_FALSE(result.admitted);
  JsonValue doc = ExportChromeTraceMp(result, request.tasks, request.options);
  EXPECT_EQ(doc.Get("traceEvents").size(), 0u);
  EXPECT_FALSE(doc.Get("otherData").Get("admitted").AsBool());
}

}  // namespace
}  // namespace rtdvs
