#include "src/engine/trace.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

OperatingPoint P(double f, double v) { return {f, v}; }

TEST(Trace, MergesContiguousIdenticalSegments) {
  Trace trace;
  trace.AddSegment({0, 1, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({1, 2, CpuState::kExecuting, 0, P(1, 5)});
  ASSERT_EQ(trace.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.segments()[0].end_ms, 2.0);
}

TEST(Trace, DoesNotMergeAcrossStateOrPointChanges) {
  Trace trace;
  trace.AddSegment({0, 1, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({1, 2, CpuState::kExecuting, 0, P(0.5, 3)});
  trace.AddSegment({2, 3, CpuState::kIdle, -1, P(0.5, 3)});
  trace.AddSegment({3, 4, CpuState::kExecuting, 1, P(0.5, 3)});
  EXPECT_EQ(trace.segments().size(), 4u);
}

TEST(Trace, DropsZeroLengthSegments) {
  Trace trace;
  trace.AddSegment({1, 1, CpuState::kIdle, -1, P(1, 5)});
  EXPECT_TRUE(trace.segments().empty());
}

TEST(Trace, CapacityLimitSetsTruncatedFlag) {
  Trace trace;
  trace.set_capacity_limit(2);
  trace.AddSegment({0, 1, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({1, 2, CpuState::kIdle, -1, P(1, 5)});
  trace.AddSegment({2, 3, CpuState::kExecuting, 0, P(1, 5)});
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.segments().size(), 2u);
}

TEST(Trace, MergeDoesNotConsumeCapacity) {
  // A contiguous identical segment extends the last entry in place, so it
  // must never trip the capacity limit.
  Trace trace;
  trace.set_capacity_limit(1);
  trace.AddSegment({0, 1, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({1, 2, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({2, 3, CpuState::kExecuting, 0, P(1, 5)});
  EXPECT_FALSE(trace.truncated());
  ASSERT_EQ(trace.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.segments()[0].end_ms, 3.0);
}

TEST(Trace, TruncationIsPermanent) {
  // Once truncated, nothing is recorded any more — not even a segment that
  // would have merged into the last one — so the kept prefix stays an
  // honest prefix of the run rather than a prefix with holes.
  Trace trace;
  trace.set_capacity_limit(1);
  trace.AddSegment({0, 1, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({1, 2, CpuState::kIdle, -1, P(1, 5)});  // over capacity
  EXPECT_TRUE(trace.truncated());
  trace.AddSegment({1, 3, CpuState::kExecuting, 0, P(1, 5)});
  ASSERT_EQ(trace.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.segments()[0].end_ms, 1.0);
}

TEST(Trace, CapacityLimitAppliesToEventsToo) {
  Trace trace;
  trace.set_capacity_limit(2);
  trace.AddEvent({0.0, TraceEventKind::kRelease, 0, {}});
  trace.AddEvent({1.0, TraceEventKind::kCompletion, 0, {}});
  EXPECT_FALSE(trace.truncated());
  trace.AddEvent({2.0, TraceEventKind::kRelease, 0, {}});
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.events().size(), 2u);
}

TEST(Trace, NearContiguousSegmentsWithinEpsilonMerge) {
  // Event times accumulate rounding; AddSegment treats boundaries within
  // the global time epsilon as contiguous.
  Trace trace;
  trace.AddSegment({0, 1, CpuState::kExecuting, 0, P(1, 5)});
  trace.AddSegment({1 + 1e-12, 2, CpuState::kExecuting, 0, P(1, 5)});
  ASSERT_EQ(trace.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.segments()[0].end_ms, 2.0);
}

TEST(Trace, GanttRendersRowsPerTask) {
  TaskSet tasks = TaskSet::PaperExample();
  Trace trace;
  trace.AddSegment({0, 8, CpuState::kExecuting, 0, P(0.75, 4)});
  trace.AddSegment({8, 16, CpuState::kIdle, -1, P(0.5, 3)});
  std::string gantt = trace.RenderGantt(tasks, 32, 16.0);
  // One row per task plus frequency, idle, and time rows.
  EXPECT_NE(gantt.find("T1"), std::string::npos);
  EXPECT_NE(gantt.find("T3"), std::string::npos);
  EXPECT_NE(gantt.find("idle"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find('_'), std::string::npos);
  // Frequency digit 8 (= 0.75 rounded to tenths) appears in the top row.
  EXPECT_NE(gantt.find('8'), std::string::npos);
}

TEST(Trace, RenderListShowsSegmentsAndEvents) {
  TaskSet tasks = TaskSet::PaperExample();
  Trace trace;
  trace.AddSegment({0, 2, CpuState::kExecuting, 1, P(1, 5)});
  trace.AddEvent({2.0, TraceEventKind::kCompletion, 1, {}});
  trace.AddEvent({5.0, TraceEventKind::kDeadlineMiss, 0, {}});
  std::string list = trace.RenderList(tasks);
  EXPECT_NE(list.find("T2"), std::string::npos);
  EXPECT_NE(list.find("complete"), std::string::npos);
  EXPECT_NE(list.find("MISS"), std::string::npos);
}

TEST(Trace, EmptyGanttDoesNotCrash) {
  EXPECT_EQ(Trace().RenderGantt(TaskSet::PaperExample()), "(empty trace)\n");
}

}  // namespace
}  // namespace rtdvs
