// Degenerate and boundary configurations the engine must survive: machines
// with one operating point, full-utilization sets, identical periods, tiny
// horizons and tiny tasks, energy-coefficient scaling.
#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

TEST(EdgeCases, SinglePointMachineDegeneratesToNoDvs) {
  // Only full speed available: every policy must match plain EDF exactly.
  MachineSpec machine("fixed", {{1.0, 5.0}});
  TaskSet tasks = TaskSet::PaperExample();
  SimOptions options;
  options.horizon_ms = 560.0;
  double edf_energy = -1;
  for (const auto& id : AllPaperPolicyIds()) {
    auto policy = MakePolicy(id);
    ConstantFractionModel model(0.8);
    SimResult result = RunSimulation(tasks, machine, *policy, model, options);
    EXPECT_EQ(result.deadline_misses, 0) << id;
    EXPECT_EQ(result.speed_switches, 0) << id;
    if (edf_energy < 0) {
      edf_energy = result.total_energy();
    }
    EXPECT_NEAR(result.total_energy(), edf_energy, 1e-9) << id;
  }
}

TEST(EdgeCases, FullUtilizationHarmonicSetMeetsEveryDeadline) {
  // U = 1.0 exactly, harmonic periods: EDF-based policies must be perfect
  // and have zero idle time at c = 1. Uses the policy-id RunSimulation
  // overload: the factory picks the matching scheduler internally.
  TaskSet tasks({{"a", 10, 5, 0}, {"b", 20, 10, 0}});
  for (const char* id : {"edf", "static_edf", "cc_edf", "la_edf"}) {
    ConstantFractionModel model(1.0);
    SimOptions options;
    options.horizon_ms = 400.0;
    SimResult result =
        RunSimulation(tasks, MachineSpec::Machine0(), id, model, options);
    EXPECT_EQ(result.deadline_misses, 0) << id;
    EXPECT_NEAR(result.idle_ms, 0.0, 1e-6) << id;
    // No frequency below 1.0 is feasible, so energy equals plain EDF's.
    EXPECT_NEAR(result.total_energy(), 400.0 * 25.0, 1e-6) << id;
  }
}

TEST(EdgeCases, IdenticalPeriodsBreakTiesDeterministically) {
  TaskSet tasks({{"x", 10, 3, 0}, {"y", 10, 3, 0}, {"z", 10, 3, 0}});
  for (const char* id : {"cc_edf", "cc_rm", "la_edf"}) {
    auto policy = MakePolicy(id);
    UniformFractionModel model(0.0, 1.0);
    SimOptions options;
    options.horizon_ms = 1000.0;
    options.seed = 7;
    SimResult result =
        RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
    EXPECT_EQ(result.deadline_misses, 0) << id;
    // Determinism: an identical rerun reproduces the energy bit-for-bit.
    auto policy2 = MakePolicy(id);
    UniformFractionModel model2(0.0, 1.0);
    SimResult result2 =
        RunSimulation(tasks, MachineSpec::Machine0(), *policy2, model2, options);
    EXPECT_DOUBLE_EQ(result.total_energy(), result2.total_energy()) << id;
  }
}

TEST(EdgeCases, HorizonShorterThanFirstPeriod) {
  TaskSet tasks({{"slow", 1000.0, 100.0, 0.0}});
  ConstantFractionModel model(1.0);
  SimOptions options;
  options.horizon_ms = 50.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), "la_edf", model, options);
  EXPECT_EQ(result.releases, 1);
  EXPECT_EQ(result.completions, 0);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_LE(result.total_work_executed, 50.0 + 1e-9);
}

TEST(EdgeCases, MicroscopicTasksDoNotUnderflow) {
  TaskSet tasks({{"tiny", 1.0, 1e-6, 0.0}, {"tiny2", 1.0, 1e-6, 0.0}});
  ConstantFractionModel model(1.0);
  SimOptions options;
  options.horizon_ms = 100.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), "cc_edf", model, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.releases, 200);
  EXPECT_NEAR(result.total_work_executed, 200e-6, 1e-9);
}

TEST(EdgeCases, EnergyCoefficientScalesEverything) {
  TaskSet tasks = TaskSet::PaperExample();
  auto run = [&](double coefficient) {
    auto policy = MakePolicy("la_edf");
    ConstantFractionModel model(0.7);
    SimOptions options;
    options.horizon_ms = 280.0;
    options.idle_level = 0.2;
    options.energy_coefficient = coefficient;
    return RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  };
  SimResult base = run(1.0);
  SimResult scaled = run(2.5);
  EXPECT_NEAR(scaled.exec_energy, 2.5 * base.exec_energy, 1e-6);
  EXPECT_NEAR(scaled.idle_energy, 2.5 * base.idle_energy, 1e-6);
  EXPECT_NEAR(scaled.lower_bound_energy, 2.5 * base.lower_bound_energy, 1e-6);
}

TEST(EdgeCases, LongHorizonManyEventsStaysConsistent) {
  // ~200k releases: double-precision time accounting must still close.
  TaskSet tasks({{"fast", 1.0, 0.3, 0.0}, {"med", 7.0, 2.0, 0.0}});
  auto policy = MakePolicy("cc_edf");
  UniformFractionModel model(0.0, 1.0);
  SimOptions options;
  options.horizon_ms = 120'000.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine2(), *policy, model, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.releases, 120'000 + 120'000 / 7 + 1);
  EXPECT_NEAR(result.busy_ms + result.idle_ms + result.switching_ms,
              options.horizon_ms, 1e-5);
}

}  // namespace
}  // namespace rtdvs
