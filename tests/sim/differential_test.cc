// Differential test: the production simulator and the reference oracle must
// produce identical summaries on the paper's worked example (scenario 0),
// on 200 generated scenarios across all six paper policies and all three
// paper machines, and on the nastiest shrunken cases past fuzz campaigns
// produced. See src/sim/reference_sim.h for the oracle's design rules.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/sim/reference_sim.h"
#include "src/testing/differential.h"
#include "src/testing/generators.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

std::string DescribeDiffs(const std::vector<FieldDiff>& diffs) {
  std::string out;
  for (const FieldDiff& d : diffs) {
    out += StrFormat("%s: production=%.17g reference=%.17g\n", d.field.c_str(),
                     d.production, d.reference);
  }
  return out;
}

// Scenario 0: the Table 2 task set with the Table 3 actual execution times,
// 16 ms horizon, machine 0 — the exact configuration whose energies the
// golden test tests/core/paper_example_test.cc pins against Table 4. Both
// engines must agree on it for every paper policy.
FuzzCase PaperExampleCase(const std::string& policy_id) {
  FuzzCase c;
  c.policy_id = policy_id;
  c.machine_points = MachineSpec::Machine0().points();
  c.tasks = TaskSet::PaperExample().tasks();
  c.exec_spec = StrFormat("t:%.17g,%.17g/%.17g,%.17g/1,1", 2.0 / 3.0, 1.0 / 3.0,
                          1.0 / 3.0, 1.0 / 3.0);
  c.horizon_ms = 16.0;
  return c;
}

TEST(DifferentialTest, Scenario0PaperExampleAgreesForAllPolicies) {
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    DifferentialRun run = RunDifferentialCase(PaperExampleCase(policy_id));
    EXPECT_TRUE(run.agreed) << "policy " << policy_id << "\n"
                            << DescribeDiffs(run.diffs);
  }
}

TEST(DifferentialTest, Scenario0MatchesPaperEnergies) {
  // Spot-pin two of the Table 4 energies through the REFERENCE engine, so a
  // bug that both engines share still has to get past the paper's numbers.
  FuzzCase c = PaperExampleCase("static_edf");
  DifferentialRun run = RunDifferentialCase(c);
  ASSERT_TRUE(run.agreed) << DescribeDiffs(run.diffs);
  EXPECT_NEAR(run.reference.exec_energy, 112.0, 0.5);
  c.policy_id = "cc_edf";
  run = RunDifferentialCase(c);
  ASSERT_TRUE(run.agreed) << DescribeDiffs(run.diffs);
  EXPECT_NEAR(run.reference.exec_energy, 91.0, 0.5);
}

TEST(DifferentialTest, TwoHundredGeneratedScenariosAcrossPoliciesAndMachines) {
  const MachineSpec machines[] = {MachineSpec::Machine0(), MachineSpec::Machine1(),
                                  MachineSpec::Machine2()};
  int scenarios = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Pcg32 rng(/*seed=*/42, static_cast<uint64_t>(trial));
    FuzzCase c = GenerateFuzzCase(rng);
    for (const MachineSpec& machine : machines) {
      c.machine_points = machine.points();
      for (const std::string& policy_id : AllPaperPolicyIds()) {
        c.policy_id = policy_id;
        DifferentialRun run = RunDifferentialCase(c);
        ASSERT_TRUE(run.agreed)
            << "repro: " << FuzzCaseToRepro(c) << "\n"
            << DescribeDiffs(run.diffs);
        ++scenarios;
      }
    }
  }
  EXPECT_EQ(scenarios, 200 * 3 * static_cast<int>(AllPaperPolicyIds().size()));
}

// The three nastiest shrunken cases from fault-injected fuzz campaigns
// (idle-path switch accounting, the pre-PR-2 production bug): each mixes a
// speed change with an idle transition so the halt-attribution logic is
// exercised on every event. They must agree fault-free, and the injected
// fault must still be detected — proving the golden actually covers the
// code path it was minimized for.
const char* const kGoldenRepros[] = {
    "rtdvs-fuzz-v1;policy=la_edf;machine=0.19/1.2,1/1.6000000000000001;"
    "tasks=5:1:0;exec=c:1;horizon=6;idle=0;switch=0.5;miss=late;seed=1",
    "rtdvs-fuzz-v1;policy=cc_rm;machine=0.68999999999999995/2.2999999999999998,"
    "1/2.8999999999999999;tasks=4:1:0,17:2:0;exec=c:1;horizon=19;idle=0;"
    "switch=0.10000000000000001;miss=late;seed=1",
    "rtdvs-fuzz-v1;policy=cc_edf;machine=0.56999999999999995/3.5,"
    "1/4.5999999999999996;tasks=3:1:0,4:1:0;exec=c:1;horizon=5;idle=0;"
    "switch=0.10000000000000001;miss=late;seed=1",
};

TEST(DifferentialTest, GoldenShrunkenScenariosAgree) {
  for (const char* repro : kGoldenRepros) {
    std::string error;
    auto c = ParseRepro(repro, &error);
    ASSERT_TRUE(c.has_value()) << error;
    DifferentialRun run = RunDifferentialCase(*c);
    EXPECT_TRUE(run.agreed) << "repro: " << repro << "\n"
                            << DescribeDiffs(run.diffs);
  }
}

TEST(DifferentialTest, GoldenScenariosStillDetectInjectedIdleSwitchBug) {
  ReferenceFaults faults;
  faults.idle_path_switch_bug = true;
  for (const char* repro : kGoldenRepros) {
    auto c = ParseRepro(repro);
    ASSERT_TRUE(c.has_value());
    DifferentialRun run = RunDifferentialCase(*c, faults);
    EXPECT_FALSE(run.agreed) << "repro no longer covers the halt-into-idle "
                                "path: "
                             << repro;
  }
}

TEST(DifferentialTest, DetectsInjectedMissOrderingBug) {
  // A task at full utilization completes exactly on its deadline every
  // period; processing misses before completions misclassifies each one.
  auto c = ParseRepro(
      "rtdvs-fuzz-v1;policy=edf;machine=1/5;tasks=10:10:0;exec=c:1;"
      "horizon=40;idle=0;switch=0;miss=late;seed=1");
  ASSERT_TRUE(c.has_value());
  ReferenceFaults faults;
  faults.miss_before_completion_bug = true;
  DifferentialRun healthy = RunDifferentialCase(*c);
  EXPECT_TRUE(healthy.agreed) << DescribeDiffs(healthy.diffs);
  DifferentialRun faulty = RunDifferentialCase(*c, faults);
  EXPECT_FALSE(faulty.agreed);
}

}  // namespace
}  // namespace rtdvs
