// Multiprocessor differential tests: the production cluster driver
// (src/sim/mp_simulator.cc) against the independently written cluster
// oracle (src/sim/reference_sim.cc), on fixed scenarios for every paper
// policy in both modes and on a generated campaign at M in {2, 4}.
//
// Issue 6 acceptance: a >= 100-trial campaign over 2- and 4-core clusters
// with zero divergences; the CI fuzz stage runs the same campaign through
// tools/rtdvs-fuzz --cores.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/cluster.h"
#include "src/rt/task.h"
#include "src/sim/reference_sim.h"
#include "src/testing/differential.h"
#include "src/testing/generators.h"
#include "src/util/random.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

std::string DescribeDiffs(const std::vector<FieldDiff>& diffs) {
  std::string out;
  for (const FieldDiff& d : diffs) {
    out += StrFormat("%s: production=%.17g reference=%.17g\n", d.field.c_str(),
                     d.production, d.reference);
  }
  return out;
}

FuzzCase ClusterCase(const std::string& policy_id, int num_cores, MpMode mode,
                     PartitionHeuristic fit) {
  FuzzCase c;
  c.policy_id = policy_id;
  c.machine_points = MachineSpec::Machine0().points();
  c.tasks = {{"", 10.0, 4.0, 0.0}, {"", 15.0, 6.0, 0.0},
             {"", 20.0, 9.0, 0.0}, {"", 12.0, 5.0, 2.0}};
  c.exec_spec = "u:0.2,0.8";
  c.horizon_ms = 120.0;
  c.idle_level = 0.1;
  c.num_cores = num_cores;
  c.mp_mode = mode;
  c.mp_partition = fit;
  return c;
}

TEST(MpDifferentialTest, PartitionedAgreesForAllPoliciesAndHeuristics) {
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    for (PartitionHeuristic fit :
         {PartitionHeuristic::kFirstFit, PartitionHeuristic::kNextFit,
          PartitionHeuristic::kBestFit, PartitionHeuristic::kWorstFit}) {
      FuzzCase c = ClusterCase(policy_id, 2, MpMode::kPartitioned, fit);
      MpDifferentialRun run = RunMpDifferentialCase(c);
      EXPECT_TRUE(run.agreed)
          << "policy " << policy_id << " fit " << PartitionHeuristicName(fit)
          << "\n" << DescribeDiffs(run.diffs);
    }
  }
}

TEST(MpDifferentialTest, GlobalAgreesForAllPolicies) {
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    FuzzCase c = ClusterCase(policy_id, 2, MpMode::kGlobal,
                             PartitionHeuristic::kFirstFit);
    MpDifferentialRun run = RunMpDifferentialCase(c);
    EXPECT_TRUE(run.agreed) << "policy " << policy_id << "\n"
                            << DescribeDiffs(run.diffs);
  }
}

TEST(MpDifferentialTest, InfeasiblePartitionAgrees) {
  FuzzCase c = ClusterCase("cc_edf", 2, MpMode::kPartitioned,
                           PartitionHeuristic::kFirstFit);
  // Three tasks of U = 0.7: no pair shares an EDF core.
  c.tasks = {{"", 10.0, 7.0, 0.0}, {"", 10.0, 7.0, 0.0}, {"", 10.0, 7.0, 0.0}};
  MpDifferentialRun run = RunMpDifferentialCase(c);
  EXPECT_TRUE(run.agreed) << DescribeDiffs(run.diffs);
  EXPECT_FALSE(run.production.admitted);
  EXPECT_FALSE(run.reference.admitted);
}

TEST(MpDifferentialTest, InjectedFaultIsDetectedOnClusters) {
  // Harness self-test: the MP pipeline must still catch a reintroduced
  // historical bug (here in each core's idle/switch accounting).
  FuzzCase c = ClusterCase("cc_edf", 2, MpMode::kPartitioned,
                           PartitionHeuristic::kFirstFit);
  c.switch_time_ms = 0.5;
  c.exec_spec = "u:0,1";
  ReferenceFaults faults;
  faults.idle_path_switch_bug = true;
  MpDifferentialRun clean = RunMpDifferentialCase(c);
  ASSERT_TRUE(clean.agreed) << DescribeDiffs(clean.diffs);
  MpDifferentialRun faulty = RunMpDifferentialCase(c, faults);
  EXPECT_FALSE(faulty.agreed)
      << "fault injection produced no divergence; the MP differential "
         "pipeline cannot be trusted to detect real bugs";
}

// The Issue 6 acceptance campaign: 120 generated trials across 2- and
// 4-core clusters (both modes, all heuristics, all paper policies), zero
// divergences, every failure reported with its repro string.
TEST(MpDifferentialTest, GeneratedCampaignM2M4HasZeroDivergences) {
  Pcg32 rng(0x6d70666cu);  // fixed seed: the campaign is reproducible
  FuzzGenOptions options;
  options.core_choices = {2, 4};
  int partitioned = 0;
  int global = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 120; ++trial) {
    FuzzCase c = GenerateFuzzCase(rng, options);
    ASSERT_GT(c.num_cores, 1);
    TrialOutcome outcome = RunFuzzTrial(c);
    EXPECT_TRUE(outcome.ok) << "trial " << trial << " diverged\n"
                            << outcome.Describe() << "repro: "
                            << FuzzCaseToRepro(c);
    if (c.mp_mode == MpMode::kPartitioned) {
      ++partitioned;
      MpDifferentialRun run = RunMpDifferentialCase(c);
      infeasible += run.production.admitted ? 0 : 1;
    } else {
      ++global;
    }
  }
  // The campaign must actually exercise both modes, and the partitioned
  // draws must include some admission rejections (otherwise the infeasible
  // path went untested and the generator's utilization scaling is off).
  EXPECT_GT(partitioned, 20);
  EXPECT_GT(global, 20);
  EXPECT_GT(infeasible, 0);
  EXPECT_LT(infeasible, partitioned);
}

TEST(MpDifferentialTest, SingleCoreDrawsStillRouteThroughLegacyContract) {
  // core_choices may mix 1 with larger clusters; a drawn 1 must behave as a
  // plain single-core trial (properties and all).
  Pcg32 rng(99);
  FuzzGenOptions options;
  options.core_choices = {1, 2};
  int single = 0;
  for (int trial = 0; trial < 20; ++trial) {
    FuzzCase c = GenerateFuzzCase(rng, options);
    TrialOutcome outcome = RunFuzzTrial(c);
    EXPECT_TRUE(outcome.ok) << outcome.Describe() << FuzzCaseToRepro(c);
    single += c.num_cores == 1 ? 1 : 0;
  }
  EXPECT_GT(single, 0);
}

}  // namespace
}  // namespace rtdvs
