// Forced-on vs forced-off equivalence suite for the analytic fast paths
// (SimOptions::fast_paths), plus targeted coverage that each path actually
// engages and that the hyperperiod gate rejects what it must reject.
//
// The contract under test (metrics.h, FastPathStats): toggling any fast
// path changes ONLY the FastPathStats diagnostics — every other SimResult
// field, doubles included, is bit-identical. The comparisons here are
// therefore bitwise (memcmp of the double patterns), not EXPECT_NEAR: a
// one-ulp drift is a real failure of the fast-path design.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/job_pool.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

#define EXPECT_SAME_BITS(a, b) \
  EXPECT_EQ(Bits(a), Bits(b)) << #a " = " << (a) << " vs " << (b)

// Bitwise equality over every SimResult field EXCEPT FastPathStats (which
// is execution diagnostics and differs by design) — see metrics.h.
void ExpectBitIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_SAME_BITS(a.horizon_ms, b.horizon_ms);
  EXPECT_SAME_BITS(a.exec_energy, b.exec_energy);
  EXPECT_SAME_BITS(a.idle_energy, b.idle_energy);
  EXPECT_SAME_BITS(a.busy_ms, b.busy_ms);
  EXPECT_SAME_BITS(a.idle_ms, b.idle_ms);
  EXPECT_SAME_BITS(a.switching_ms, b.switching_ms);
  EXPECT_SAME_BITS(a.total_work_executed, b.total_work_executed);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.unfinished_at_horizon, b.unfinished_at_horizon);
  EXPECT_EQ(a.wcet_overruns, b.wcet_overruns);
  EXPECT_EQ(a.speed_switches, b.speed_switches);
  EXPECT_EQ(a.preemptions, b.preemptions);

  EXPECT_EQ(a.policy_counters.speed_change_requests,
            b.policy_counters.speed_change_requests);
  EXPECT_EQ(a.policy_counters.speed_transitions,
            b.policy_counters.speed_transitions);
  EXPECT_EQ(a.policy_counters.slack_completions,
            b.policy_counters.slack_completions);
  EXPECT_SAME_BITS(a.policy_counters.slack_reclaimed_ms,
                   b.policy_counters.slack_reclaimed_ms);
  EXPECT_EQ(a.policy_counters.deferral_decisions,
            b.policy_counters.deferral_decisions);
  EXPECT_SAME_BITS(a.policy_counters.work_deferred_ms,
                   b.policy_counters.work_deferred_ms);
  EXPECT_EQ(a.policy_counters.utilization_samples,
            b.policy_counters.utilization_samples);
  EXPECT_SAME_BITS(a.policy_counters.utilization_sum,
                   b.policy_counters.utilization_sum);

  EXPECT_SAME_BITS(a.lower_bound_energy, b.lower_bound_energy);

  ASSERT_EQ(a.residency.size(), b.residency.size());
  for (size_t i = 0; i < a.residency.size(); ++i) {
    EXPECT_SAME_BITS(a.residency[i].point.frequency,
                     b.residency[i].point.frequency);
    EXPECT_SAME_BITS(a.residency[i].exec_ms, b.residency[i].exec_ms);
    EXPECT_SAME_BITS(a.residency[i].idle_ms, b.residency[i].idle_ms);
    EXPECT_SAME_BITS(a.residency[i].exec_energy, b.residency[i].exec_energy);
    EXPECT_SAME_BITS(a.residency[i].idle_energy, b.residency[i].idle_energy);
  }

  ASSERT_EQ(a.task_stats.size(), b.task_stats.size());
  for (size_t i = 0; i < a.task_stats.size(); ++i) {
    EXPECT_EQ(a.task_stats[i].releases, b.task_stats[i].releases);
    EXPECT_EQ(a.task_stats[i].completions, b.task_stats[i].completions);
    EXPECT_EQ(a.task_stats[i].deadline_misses,
              b.task_stats[i].deadline_misses);
    EXPECT_EQ(a.task_stats[i].aborted, b.task_stats[i].aborted);
    EXPECT_EQ(a.task_stats[i].unfinished, b.task_stats[i].unfinished);
    EXPECT_SAME_BITS(a.task_stats[i].executed_work,
                     b.task_stats[i].executed_work);
    EXPECT_SAME_BITS(a.task_stats[i].max_response_ms,
                     b.task_stats[i].max_response_ms);
    EXPECT_SAME_BITS(a.task_stats[i].total_response_ms,
                     b.task_stats[i].total_response_ms);
  }

  ASSERT_EQ(a.trace.segments().size(), b.trace.segments().size());
  for (size_t i = 0; i < a.trace.segments().size(); ++i) {
    EXPECT_SAME_BITS(a.trace.segments()[i].start_ms,
                     b.trace.segments()[i].start_ms);
    EXPECT_SAME_BITS(a.trace.segments()[i].end_ms,
                     b.trace.segments()[i].end_ms);
    EXPECT_EQ(a.trace.segments()[i].state, b.trace.segments()[i].state);
    EXPECT_EQ(a.trace.segments()[i].task_id, b.trace.segments()[i].task_id);
  }
  EXPECT_EQ(a.trace.events().size(), b.trace.events().size());
  EXPECT_EQ(a.trace.truncated(), b.trace.truncated());

  EXPECT_EQ(a.audit.audited, b.audit.audited);
  EXPECT_EQ(a.audit.checks_run, b.audit.checks_run);
  EXPECT_EQ(a.audit.checks_skipped, b.audit.checks_skipped);
  EXPECT_EQ(a.audit.skip_reasons, b.audit.skip_reasons);
  EXPECT_EQ(a.audit.violations.size(), b.audit.violations.size());
}

// One scenario of the equivalence matrix: rebuilt fresh per run (policies
// and exec models are mutated by Run()).
struct Scenario {
  TaskSet tasks;
  MachineSpec machine = MachineSpec::Machine0();
  std::string policy_id = "cc_edf";
  std::string exec_kind = "const1";
  SimOptions options;
};

std::unique_ptr<ExecTimeModel> MakeModel(const std::string& kind) {
  if (kind == "const1") {
    return std::make_unique<ConstantFractionModel>(1.0);
  }
  if (kind == "const_half") {
    return std::make_unique<ConstantFractionModel>(0.5);
  }
  if (kind == "uniform") {
    return std::make_unique<UniformFractionModel>(0.3, 1.0);
  }
  if (kind == "bimodal") {
    return std::make_unique<BimodalFractionModel>(0.4, 0.1);
  }
  if (kind == "cold") {
    return std::make_unique<ColdStartModel>(
        std::make_unique<UniformFractionModel>(0.2, 0.9), 1.5,
        /*allow_overrun=*/true);
  }
  ADD_FAILURE() << "unknown exec model kind " << kind;
  return std::make_unique<ConstantFractionModel>(1.0);
}

SimResult RunScenario(const Scenario& s, bool fast_paths_on) {
  SimOptions options = s.options;
  options.fast_paths.idle_skip = fast_paths_on;
  options.fast_paths.hyperperiod = fast_paths_on;
  std::unique_ptr<ExecTimeModel> model = MakeModel(s.exec_kind);
  return RunSimulation(s.tasks, s.machine, s.policy_id, *model, options);
}

void ExpectForcedOnOffIdentical(const Scenario& s) {
  SCOPED_TRACE(s.policy_id + " x " + s.exec_kind + " x " + s.machine.name());
  ExpectBitIdentical(RunScenario(s, /*fast_paths_on=*/false),
                     RunScenario(s, /*fast_paths_on=*/true));
}

// A mixed-regime task set: non-harmonic periods, a phase, enough slack for
// idle intervals to occur under every policy.
TaskSet MixedTasks() {
  return TaskSet({{"a", 10.0, 2.0, 0.0},
                  {"b", 14.0, 3.0, 2.0},
                  {"c", 35.0, 5.0, 0.0}});
}

// The full matrix the satellite asks for: every paper policy x every
// exec-model family x machines 0-2, forced on vs forced off.
TEST(FastPathEquivalence, EveryPolicyEveryExecModelEveryMachine) {
  const std::vector<MachineSpec> machines = {MachineSpec::Machine0(),
                                             MachineSpec::Machine1(),
                                             MachineSpec::Machine2()};
  const std::vector<std::string> exec_kinds = {"const1", "const_half",
                                               "uniform", "bimodal", "cold"};
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    for (const std::string& exec_kind : exec_kinds) {
      for (const MachineSpec& machine : machines) {
        Scenario s;
        s.tasks = MixedTasks();
        s.machine = machine;
        s.policy_id = policy_id;
        s.exec_kind = exec_kind;
        s.options.horizon_ms = 300.0;
        s.options.idle_level = 0.1;
        s.options.seed = 7;
        ExpectForcedOnOffIdentical(s);
      }
    }
  }
}

// Regime variations that exercise the fast paths' disable/limit conditions:
// switch cost, abort-on-miss, recorded traces (hyperperiod must gate out,
// idle skip must still be identical).
TEST(FastPathEquivalence, SwitchCostAbortMissAndTraceRegimes) {
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    Scenario s;
    s.tasks = MixedTasks();
    s.policy_id = policy_id;
    s.options.horizon_ms = 300.0;
    s.options.switch_time_ms = 0.4;
    s.options.miss_policy = MissPolicy::kAbortJob;
    s.options.record_trace = true;
    ExpectForcedOnOffIdentical(s);
  }
}

// --- Idle skip ---

TEST(IdleSkip, EngagesOnLowUtilizationAndStaysBitIdentical) {
  Scenario s;
  s.tasks = TaskSet({{"sparse", 50.0, 2.0, 0.0}});
  s.policy_id = "cc_edf";
  s.options.horizon_ms = 1000.0;
  s.options.idle_level = 0.2;
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_GT(on.fastpath.idle_skips, 0);
  EXPECT_GT(on.fastpath.idle_skipped_ms, 0.0);
  const SimResult off = RunScenario(s, /*fast_paths_on=*/false);
  EXPECT_EQ(off.fastpath.idle_skips, 0);
  ExpectBitIdentical(off, on);
}

// --- Hyperperiod memoization ---

// A workload that passes the exact-arithmetic gate: dyadic periods/WCETs,
// zero phases, a constant-fraction model whose per-task work is dyadic, and
// a machine whose frequencies are powers of two.
MachineSpec DyadicMachine() {
  return MachineSpec("dyadic", {{0.25, 2.0}, {0.5, 3.0}, {1.0, 5.0}});
}

TaskSet DyadicTasks() {
  return TaskSet({{"d2", 2.0, 0.5, 0.0},
                  {"d4", 4.0, 1.0, 0.0},
                  {"d8", 8.0, 2.0, 0.0}});
}

Scenario DyadicScenario(const std::string& policy_id) {
  Scenario s;
  s.tasks = DyadicTasks();
  s.machine = DyadicMachine();
  s.policy_id = policy_id;
  s.exec_kind = "const_half";
  s.options.horizon_ms = 200.0;  // hyperperiod 8 ms -> 25 whole cycles
  s.options.idle_level = 0.1;
  return s;
}

TEST(Hyperperiod, ReplayEngagesForEveryTimeSkippablePolicy) {
  // The six paper policies all support time skip (statEDF's ring history
  // lives in the interval policy, which is timer-driven and gates out
  // separately).
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    SCOPED_TRACE(policy_id);
    const Scenario s = DyadicScenario(policy_id);
    const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
    EXPECT_EQ(on.fastpath.hyperperiod_gate, "");
    EXPECT_EQ(on.fastpath.hyperperiod_cycles_verified, 2);
    EXPECT_GT(on.fastpath.hyperperiod_cycles_replayed, 0);
    EXPECT_GT(on.fastpath.steps_replayed, 0);
    const SimResult off = RunScenario(s, /*fast_paths_on=*/false);
    EXPECT_EQ(off.fastpath.hyperperiod_cycles_replayed, 0);
    ExpectBitIdentical(off, on);
  }
}

TEST(Hyperperiod, ReplayCoversMostWholeCycles) {
  // Horizon 200 ms / H 8 ms = 25 whole cycles: one warmup, two recorded,
  // and the final window is never replayed (it must end strictly before the
  // horizon), leaving at least 20 replayed.
  const SimResult on =
      RunScenario(DyadicScenario("cc_edf"), /*fast_paths_on=*/true);
  EXPECT_GE(on.fastpath.hyperperiod_cycles_replayed, 20);
}

TEST(Hyperperiod, GateRejectsNonDyadicPeriods) {
  // The empirically observed failure mode the gate exists for: 17.759 ms is
  // off the 2^-20 grid, and such periods have produced two bitwise-equal
  // windows followed by a low-bit divergence in window three.
  Scenario s = DyadicScenario("cc_edf");
  s.tasks = TaskSet({{"offgrid", 17.759, 2.0, 0.0}, {"d4", 4.0, 1.0, 0.0}});
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate, "task parameters off the dyadic grid");
  EXPECT_EQ(on.fastpath.hyperperiod_cycles_replayed, 0);
}

TEST(Hyperperiod, GateRejectsNonPowerOfTwoFrequencies) {
  Scenario s = DyadicScenario("cc_edf");
  s.machine = MachineSpec::Machine0();  // 0.75 is not a power of two
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate, "machine frequencies not powers of two");
}

TEST(Hyperperiod, GateRejectsNonZeroPhases) {
  Scenario s = DyadicScenario("cc_edf");
  s.tasks = TaskSet({{"d2", 2.0, 0.5, 0.0}, {"ph", 4.0, 1.0, 1.0}});
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate, "nonzero task phase");
}

TEST(Hyperperiod, GateRejectsNonConstantExecModels) {
  Scenario s = DyadicScenario("cc_edf");
  s.exec_kind = "uniform";
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate, "non-stationary exec model");
}

TEST(Hyperperiod, GateRejectsTraceRecording) {
  Scenario s = DyadicScenario("cc_edf");
  s.options.record_trace = true;
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate, "trace recording");
}

TEST(Hyperperiod, GateRejectsShortHorizons) {
  Scenario s = DyadicScenario("cc_edf");
  s.options.horizon_ms = 32.0;  // exactly 4 x 8 ms: one window short
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate,
            "horizon shorter than four hyperperiods");
}

TEST(Hyperperiod, DisabledOptionLeavesGateEmptyAndNeverReplays) {
  Scenario s = DyadicScenario("cc_edf");
  SimOptions options = s.options;
  options.fast_paths.hyperperiod = false;
  std::unique_ptr<ExecTimeModel> model = MakeModel(s.exec_kind);
  const SimResult result =
      RunSimulation(s.tasks, s.machine, s.policy_id, *model, options);
  EXPECT_EQ(result.fastpath.hyperperiod_gate, "");
  EXPECT_EQ(result.fastpath.hyperperiod_cycles_replayed, 0);
  EXPECT_EQ(result.fastpath.hyperperiod_cycles_verified, 0);
}

TEST(Hyperperiod, SwitchCostRunStaysBitIdentical) {
  // A dyadic switch time keeps the gate open; transition stalls and their
  // blocked-until bookkeeping must replay exactly.
  Scenario s = DyadicScenario("cc_edf");
  s.options.switch_time_ms = 0.5;
  const SimResult on = RunScenario(s, /*fast_paths_on=*/true);
  EXPECT_EQ(on.fastpath.hyperperiod_gate, "");
  ExpectBitIdentical(RunScenario(s, /*fast_paths_on=*/false), on);
}

// --- Arena (JobPool) ---

TEST(JobPoolArena, PooledAndPlainRunsAreBitIdentical) {
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    SCOPED_TRACE(policy_id);
    Scenario s;
    s.tasks = MixedTasks();
    s.policy_id = policy_id;
    s.exec_kind = "uniform";
    s.options.horizon_ms = 300.0;
    s.options.record_trace = true;
    const SimResult plain = RunScenario(s, /*fast_paths_on=*/true);
    JobPool pool;
    s.options.job_pool = &pool;
    // Two pooled runs back to back: the second reuses the recycled block.
    const SimResult pooled_first = RunScenario(s, /*fast_paths_on=*/true);
    const SimResult pooled_second = RunScenario(s, /*fast_paths_on=*/true);
    ExpectBitIdentical(plain, pooled_first);
    ExpectBitIdentical(plain, pooled_second);
  }
}

// Regression for the arena migration: the trace capacity limit must count
// arena-backed segments identically — same truncation point, same audit
// skip reasons, with the pool wired in or not and fast paths on or off.
TEST(JobPoolArena, TraceTruncationAccountingUnchanged) {
  Scenario s;
  s.tasks = MixedTasks();
  s.policy_id = "cc_edf";
  s.options.horizon_ms = 300.0;
  s.options.record_trace = true;
  s.options.max_trace_segments = 16;  // far below the run's segment count
  const SimResult plain_off = RunScenario(s, /*fast_paths_on=*/false);
  const SimResult plain_on = RunScenario(s, /*fast_paths_on=*/true);
  JobPool pool;
  s.options.job_pool = &pool;
  const SimResult pooled_on = RunScenario(s, /*fast_paths_on=*/true);

  EXPECT_TRUE(plain_off.trace.truncated());
  // Contiguous-identical segments merge, so the stored count can sit under
  // the capacity limit; what matters is that it is the same count, and the
  // same truncation flag, for every execution strategy.
  EXPECT_LE(plain_off.trace.segments().size(), 16u);
  ExpectBitIdentical(plain_off, plain_on);
  ExpectBitIdentical(plain_off, pooled_on);
  // The audit must report the narrowed coverage, not silently shrink.
  bool saw_truncation_skip = false;
  for (const std::string& reason : pooled_on.audit.skip_reasons) {
    if (reason.find("truncated") != std::string::npos) {
      saw_truncation_skip = true;
    }
  }
  EXPECT_TRUE(saw_truncation_skip);
}

}  // namespace
}  // namespace rtdvs
