// Regression test for a production-simulator bug found by differential
// testing (tests/sim/differential_test.cc, tools/rtdvs-fuzz):
//
// Simulator::BuildContext never populated PolicyContext::cumulative_work /
// cumulative_busy_ms / cumulative_idle_ms (the kernel layer did, the
// simulator did not). IntervalPolicy measures load as the delta of
// cumulative_work across its window, so in the simulator it always measured
// zero, decayed its EWMA toward zero, and locked the machine at the minimum
// frequency regardless of load — silently, since nothing else reads those
// fields. These tests pin the fixed behavior.
#include <gtest/gtest.h>

#include "src/cpu/machine_spec.h"
#include "src/rt/exec_time_model.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

// A steady 85%-utilization load: with the context populated, the interval
// policy's EWMA converges to a rate near 0.85 and picks a point that covers
// it; with the bug it sat at the minimum frequency (0.36 on machine 2) and
// missed nearly every deadline.
TEST(IntervalContextRegressionTest, SteadyLoadConvergesAboveItsUtilization) {
  TaskSet tasks({{"load", 10.0, 8.5, 0.0}});
  ConstantFractionModel worst(1.0);
  SimOptions options;
  options.horizon_ms = 2000.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine2(), "interval", worst, options);

  // The buggy build reported ~170 misses here (one per period once the
  // frequency bottomed out). A handful of misses while the EWMA warms up
  // from its 1.0 prior would be tolerable, but at steady state there are
  // none.
  EXPECT_EQ(result.deadline_misses, 0) << result.Summary();

  // Work must get done at a frequency that covers the load: the
  // exec-time-weighted mean frequency stays near 0.85, far above the 0.36
  // minimum the buggy build converged to.
  double exec_ms = 0;
  double freq_weighted_ms = 0;
  for (const PointResidency& residency : result.residency) {
    exec_ms += residency.exec_ms;
    freq_weighted_ms += residency.exec_ms * residency.point.frequency;
  }
  ASSERT_GT(exec_ms, 0.0);
  EXPECT_GT(freq_weighted_ms / exec_ms, 0.7) << result.Summary();
}

TEST(IntervalContextRegressionTest, IdleWorkloadStillDropsToMinimumFrequency) {
  // The other direction must keep working too: at 5% utilization the policy
  // should spend most execution at the lowest operating point rather than
  // being pinned high (guards against overcorrecting the fix).
  TaskSet tasks({{"light", 20.0, 1.0, 0.0}});
  ConstantFractionModel worst(1.0);
  SimOptions options;
  options.horizon_ms = 2000.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine2(), "interval", worst, options);
  const double min_frequency = MachineSpec::Machine2().points().front().frequency;
  double min_point_exec_ms = 0;
  double exec_ms = 0;
  for (const PointResidency& residency : result.residency) {
    exec_ms += residency.exec_ms;
    if (residency.point.frequency == min_frequency) {
      min_point_exec_ms += residency.exec_ms;
    }
  }
  ASSERT_GT(exec_ms, 0.0);
  EXPECT_GT(min_point_exec_ms / exec_ms, 0.8) << result.Summary();
}

}  // namespace
}  // namespace rtdvs
