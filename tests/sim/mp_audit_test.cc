// Fault-injection tests for the cluster conservation audit
// (AuditCheck::kCluster, src/sim/audit.cc AuditMpResult): each test corrupts
// one invariant in an otherwise-clean multiprocessor result and asserts the
// cluster check — and only a real violation — fires.
#include <vector>

#include <gtest/gtest.h>

#include "src/cpu/machine_spec.h"
#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/audit.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

TaskSet TasksWithUtilizations(const std::vector<double>& utilizations) {
  std::vector<Task> tasks;
  for (double u : utilizations) {
    tasks.push_back({"", 10.0, 10.0 * u, 0.0});
  }
  return TaskSet(tasks);
}

SimRequest BaseRequest(MpMode mode) {
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.5, 0.6, 0.3});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.mode = mode;
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 100.0;
  request.options.idle_level = 0.1;
  return request;
}

MpSimResult CleanRun(MpMode mode) {
  SimRequest request = BaseRequest(mode);
  ConstantFractionModel model(0.7);
  MpSimResult result = RunClusterSimulation(request, model);
  EXPECT_TRUE(result.admitted);
  return result;
}

TEST(MpAuditTest, CleanResultsPassBothModes) {
  for (MpMode mode : {MpMode::kPartitioned, MpMode::kGlobal}) {
    MpSimResult result = CleanRun(mode);
    AuditReport report = AuditMpResult(result, BaseRequest(mode).options);
    EXPECT_TRUE(report.audited);
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_GT(report.checks_run, 0);
  }
}

TEST(MpAuditTest, InfeasibleResultIsSkippedNotFailed) {
  SimRequest request = BaseRequest(MpMode::kPartitioned);
  request.tasks = TasksWithUtilizations({0.7, 0.7, 0.7});
  ConstantFractionModel model(0.7);
  MpSimResult result = RunClusterSimulation(request, model);
  ASSERT_FALSE(result.admitted);
  AuditReport report = AuditMpResult(result, request.options);
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.checks_skipped, 1);
  EXPECT_FALSE(report.skip_reasons.empty());
}

TEST(MpAuditTest, CorruptedWallTimeFiresClusterCheck) {
  MpSimResult result = CleanRun(MpMode::kPartitioned);
  // Per-core wall time must sum to num_cores * horizon; steal a chunk.
  result.cores[0].idle_ms -= 5.0;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kPartitioned).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

TEST(MpAuditTest, CorruptedClusterEnergyFiresClusterCheck) {
  MpSimResult result = CleanRun(MpMode::kPartitioned);
  result.cluster.exec_energy += 1.0;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kPartitioned).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

TEST(MpAuditTest, CorruptedJobCounterSumFiresClusterCheck) {
  MpSimResult result = CleanRun(MpMode::kPartitioned);
  // Partitioned job counters must sum across slices to the cluster totals.
  result.cluster.releases += 1;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kPartitioned).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

TEST(MpAuditTest, PartitionedMigrationsMustStayZero) {
  MpSimResult result = CleanRun(MpMode::kPartitioned);
  result.migrations = 3;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kPartitioned).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

TEST(MpAuditTest, GlobalSlicesMustCarryNoJobCounters) {
  MpSimResult result = CleanRun(MpMode::kGlobal);
  // Global job accounting is cluster-level by contract; a slice claiming
  // releases of its own is double-counting.
  result.cores[0].releases = 5;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kGlobal).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

TEST(MpAuditTest, CorruptedSpeedSwitchSumFiresClusterCheck) {
  MpSimResult result = CleanRun(MpMode::kGlobal);
  result.cluster.speed_switches += 2;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kGlobal).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

TEST(MpAuditTest, LowerBoundAboveExecEnergyFiresClusterCheck) {
  MpSimResult result = CleanRun(MpMode::kPartitioned);
  result.cluster.lower_bound_energy = result.cluster.exec_energy + 10.0;
  AuditReport report = AuditMpResult(result, BaseRequest(MpMode::kPartitioned).options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kCluster)) << report.Summary();
}

}  // namespace
}  // namespace rtdvs
