// Integration tests of the aperiodic server inside the simulator: the
// periodic guarantees must be untouched, the aperiodic queue must be served
// within the provisioned bandwidth, and the deferrable variant must beat
// the polling variant on response time.
#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

AperiodicJob Arrival(double t, double work) {
  AperiodicJob job;
  job.arrival_ms = t;
  job.service_work = work;
  return job;
}

SimOptions ServerOptions(ServerKind kind) {
  SimOptions options;
  options.horizon_ms = 1000.0;
  options.aperiodic.kind = kind;
  options.aperiodic.period_ms = 10.0;
  options.aperiodic.budget_ms = 2.0;
  options.aperiodic.arrivals.mean_interarrival_ms = 25.0;
  options.aperiodic.arrivals.mean_service_ms = 1.0;
  options.aperiodic.arrivals.max_service_ms = 2.0;
  return options;
}

TEST(ServerIntegration, PeriodicTasksKeepTheirGuarantees) {
  // Periodic U = 0.6 plus a 0.2 server: total 0.8 <= 1 under EDF.
  TaskSet tasks({{"p1", 20.0, 8.0, 0.0}, {"p2", 50.0, 10.0, 0.0}});
  for (ServerKind kind : {ServerKind::kPolling, ServerKind::kDeferrable}) {
    for (const char* id : {"edf", "cc_edf", "la_edf"}) {
      auto policy = MakePolicy(id);
      ConstantFractionModel model(1.0);
      SimResult result =
          RunSimulation(tasks, MachineSpec::Machine0(), *policy, model,
                        ServerOptions(kind));
      EXPECT_EQ(result.deadline_misses, 0)
          << id << " kind=" << static_cast<int>(kind);
      EXPECT_GT(result.aperiodic.arrivals, 0);
      EXPECT_GT(result.aperiodic.completions, 0);
      EXPECT_GE(result.server_task_id, 0);
    }
  }
}

TEST(ServerIntegration, ServedWorkNeverExceedsProvisionedBandwidth) {
  TaskSet tasks({{"p1", 20.0, 8.0, 0.0}});
  auto policy = MakePolicy("edf");
  ConstantFractionModel model(1.0);
  SimOptions options = ServerOptions(ServerKind::kDeferrable);
  options.aperiodic.arrivals.mean_interarrival_ms = 2.0;  // overload the server
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  // 2 ms budget per 10 ms period over 1000 ms: at most 200 work units.
  EXPECT_LE(result.aperiodic.served_work, 200.0 + 1e-6);
  EXPECT_GT(result.aperiodic.backlog_work, 0.0);  // overload leaves a queue
  EXPECT_EQ(result.deadline_misses, 0);  // ...but periodic tasks are immune
}

TEST(ServerIntegration, PollingServesOnlyFromPeriodBoundaries) {
  // One request arriving just after the server's release: the polling
  // server (which forfeited its budget at t=0, queue empty) serves it at
  // the NEXT period; the deferrable server serves it immediately.
  TaskSet tasks({{"p1", 100.0, 1.0, 50.0}});  // keep the CPU otherwise free
  auto run = [&](ServerKind kind) {
    auto policy = MakePolicy("edf");
    ConstantFractionModel model(1.0);
    SimOptions options = ServerOptions(kind);
    options.aperiodic.arrivals.fixed_arrivals = {Arrival(1.0, 1.0)};
    return RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  };
  SimResult polling = run(ServerKind::kPolling);
  SimResult deferrable = run(ServerKind::kDeferrable);
  ASSERT_EQ(polling.aperiodic.completions, 1);
  ASSERT_EQ(deferrable.aperiodic.completions, 1);
  // Deferrable: served on arrival at t=1, done by t=2 (1 work at f=1).
  EXPECT_NEAR(deferrable.aperiodic.max_response_ms, 1.0, 1e-6);
  // Polling: waits for the replenishment at t=10, completes at t=11.
  EXPECT_NEAR(polling.aperiodic.max_response_ms, 10.0, 1e-6);
}

TEST(ServerIntegration, CbsPreservesGuaranteesAndServesImmediately) {
  // The CBS both responds at arrival time (like the deferrable server) and
  // provably bounds its interference (like the polling server) — the
  // back-to-back scenario that breaks the DS cannot break it.
  TaskSet tasks({{"p1", 20.0, 8.0, 0.0}, {"p2", 50.0, 10.0, 0.0}});
  auto policy = MakePolicy("cc_edf");
  ConstantFractionModel model(1.0);  // worst-case periodic load: U = 0.8
  SimOptions options = ServerOptions(ServerKind::kCbs);
  options.horizon_ms = 4000.0;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.aperiodic.completions, 0);
}

TEST(ServerIntegration, CbsServesIsolatedArrivalImmediately) {
  TaskSet tasks({{"p1", 100.0, 1.0, 50.0}});
  auto policy = MakePolicy("edf");
  ConstantFractionModel model(1.0);
  SimOptions options = ServerOptions(ServerKind::kCbs);
  options.aperiodic.arrivals.fixed_arrivals = {Arrival(1.0, 1.0)};
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  ASSERT_EQ(result.aperiodic.completions, 1);
  // Served on arrival: 1 work unit at f=1 starting at t=1.
  EXPECT_NEAR(result.aperiodic.max_response_ms, 1.0, 1e-6);
}

TEST(ServerIntegration, CbsPostponesDeadlineOnBudgetExhaustion) {
  // A 5-work request against a 2-work/10-ms CBS: three activations, each a
  // release/completion pair visible in the stats, demand never above
  // U_s = 0.2 in any window.
  TaskSet tasks({{"p1", 200.0, 1.0, 100.0}});
  auto policy = MakePolicy("edf");
  ConstantFractionModel model(1.0);
  SimOptions options = ServerOptions(ServerKind::kCbs);
  options.aperiodic.arrivals.fixed_arrivals = {Arrival(0.0, 5.0)};
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  ASSERT_GE(result.server_task_id, 0);
  const TaskStats& server_stats =
      result.task_stats[static_cast<size_t>(result.server_task_id)];
  EXPECT_EQ(server_stats.releases, 3);  // wake + two postponements
  EXPECT_EQ(result.aperiodic.completions, 1);
  EXPECT_DOUBLE_EQ(result.aperiodic.served_work, 5.0);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(ServerIntegration, DeferrableResponseBeatsPollingOnAverage) {
  TaskSet tasks({{"p1", 20.0, 6.0, 0.0}});
  auto run = [&](ServerKind kind) {
    auto policy = MakePolicy("cc_edf");
    ConstantFractionModel model(0.8);
    SimOptions options = ServerOptions(kind);
    options.horizon_ms = 5000.0;
    return RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  };
  SimResult polling = run(ServerKind::kPolling);
  SimResult deferrable = run(ServerKind::kDeferrable);
  EXPECT_LT(deferrable.aperiodic.MeanResponseMs(),
            polling.aperiodic.MeanResponseMs());
  EXPECT_EQ(polling.deadline_misses, 0);
  EXPECT_EQ(deferrable.deadline_misses, 0);
}

TEST(ServerIntegration, UnusedServerBudgetLowersCcEdfEnergy) {
  // With few arrivals, ccEDF reclaims the server's unused budget after each
  // server completion; plain EDF burns full speed regardless.
  TaskSet tasks({{"p1", 40.0, 10.0, 0.0}});
  auto run = [&](const char* id) {
    auto policy = MakePolicy(id);
    ConstantFractionModel model(0.6);
    SimOptions options = ServerOptions(ServerKind::kPolling);
    options.horizon_ms = 4000.0;
    options.aperiodic.arrivals.mean_interarrival_ms = 200.0;
    return RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  };
  SimResult edf = run("edf");
  SimResult cc = run("cc_edf");
  EXPECT_EQ(cc.deadline_misses, 0);
  EXPECT_LT(cc.total_energy(), edf.total_energy());
}

TEST(ServerIntegration, SchedulabilityViewIncludesServerTask) {
  // The policies see n+1 tasks; static EDF must scale for U_periodic + U_s.
  TaskSet tasks({{"p1", 10.0, 2.5, 0.0}});  // 0.25
  auto policy = MakePolicy("static_edf");
  ConstantFractionModel model(1.0);
  SimOptions options = ServerOptions(ServerKind::kPolling);  // server U = 0.2
  options.record_trace = true;
  SimResult result =
      RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
  // 0.25 + 0.2 = 0.45 <= 0.5: the half-speed point suffices, and it would
  // not without counting the server.
  for (const auto& seg : result.trace.segments()) {
    EXPECT_DOUBLE_EQ(seg.point.frequency, 0.5);
  }
  EXPECT_EQ(result.deadline_misses, 0);
}

}  // namespace
}  // namespace rtdvs
