#include "src/sim/audit.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/sweep.h"
#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

// Fixture holding everything AuditSimResult needs alive: the auditor takes
// pointers into the task set / machine / options that produced the result.
struct AuditedRun {
  TaskSet tasks;
  MachineSpec machine = MachineSpec::Machine0();
  SimOptions options;
  SimResult result;
  bool guarantees = true;

  AuditInputs Inputs() const {
    AuditInputs inputs;
    inputs.tasks = &tasks;
    inputs.machine = &machine;
    inputs.options = &options;
    inputs.policy_guarantees_deadlines = guarantees;
    return inputs;
  }

  AuditReport Reaudit(const SimResult& corrupted) const {
    return AuditSimResult(corrupted, Inputs());
  }
};

AuditedRun RunPaperExample(const std::string& policy_id = "cc_edf") {
  AuditedRun run;
  run.tasks = TaskSet::PaperExample();
  run.options.horizon_ms = 500.0;
  run.options.idle_level = 0.3;
  run.options.record_trace = true;
  auto policy = MakePolicy(policy_id);
  run.guarantees = policy->guarantees_deadlines();
  UniformFractionModel model(0.2, 1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  return run;
}

TEST(SimAudit, CleanRunPassesEveryCheck) {
  AuditedRun run = RunPaperExample();
  const AuditReport& report = run.result.audit;
  ASSERT_TRUE(report.audited);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // All six invariant classes apply: trace recorded and complete, cc_edf
  // guarantees deadlines, and the paper example is EDF-schedulable.
  EXPECT_EQ(report.checks_run, 6);
  EXPECT_EQ(report.checks_skipped, 0);
  EXPECT_EQ(report.Summary(), "audit: OK (6 checks, 0 skipped)");
}

TEST(SimAudit, UnrecordedTraceSkipsWithReason) {
  AuditedRun run;
  run.tasks = TaskSet::PaperExample();
  run.options.horizon_ms = 500.0;
  run.options.record_trace = false;
  auto policy = MakePolicy("cc_edf");
  run.guarantees = policy->guarantees_deadlines();
  UniformFractionModel model(0.2, 1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  const AuditReport& report = run.result.audit;
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.checks_skipped, 1);
  ASSERT_EQ(report.skip_reasons.size(), 1u);
  EXPECT_NE(report.skip_reasons[0].find("no trace recorded"),
            std::string::npos);
  // The summary line surfaces the reason, so audit-off-by-omission is
  // visible rather than silently counted as a pass.
  EXPECT_NE(report.Summary().find("no trace recorded"), std::string::npos);
}

TEST(SimAudit, TruncatedTraceSkipsReintegrationWithReason) {
  AuditedRun run;
  run.tasks = TaskSet::PaperExample();
  run.options.horizon_ms = 500.0;
  run.options.record_trace = true;
  run.options.max_trace_segments = 8;  // force truncation
  auto policy = MakePolicy("cc_edf");
  run.guarantees = policy->guarantees_deadlines();
  UniformFractionModel model(0.2, 1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  ASSERT_TRUE(run.result.trace.truncated());
  const AuditReport& report = run.result.audit;
  // Truncation downgrades the trace check to skipped — never a failure.
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.checks_skipped, 1);
  ASSERT_EQ(report.skip_reasons.size(), 1u);
  EXPECT_NE(report.skip_reasons[0].find("truncated"), std::string::npos);
}

TEST(SimAudit, AuditOffLeavesReportUnaudited) {
  AuditedRun run;
  run.tasks = TaskSet::PaperExample();
  run.options.horizon_ms = 200.0;
  run.options.audit = false;
  auto policy = MakePolicy("edf");
  ConstantFractionModel model(1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  EXPECT_FALSE(run.result.audit.audited);
  EXPECT_EQ(run.result.audit.Summary(), "audit: not run");
}

// --- Fault injection: corrupt one quantity per invariant class and assert
// the matching check (and only the expected checks) fires. ---

TEST(SimAuditFaultInjection, TimePartitionLeak) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  corrupted.idle_ms += 5.0;  // 5 ms of wall time charged twice
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Violated(AuditCheck::kTimePartition)) << report.Summary();
}

TEST(SimAuditFaultInjection, ResidencyDrift) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  ASSERT_FALSE(corrupted.residency.empty());
  corrupted.residency[0].exec_ms += 3.0;
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kResidency)) << report.Summary();
  // The global buckets still partition the horizon.
  EXPECT_FALSE(report.Violated(AuditCheck::kTimePartition));
}

TEST(SimAuditFaultInjection, TraceBeyondHorizon) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  ASSERT_FALSE(corrupted.trace.segments().empty());
  // A phantom segment past the horizon: the span check and the idle-time
  // re-integration both disagree with the reported totals.
  corrupted.trace.AddSegment({corrupted.horizon_ms, corrupted.horizon_ms + 1.0,
                              CpuState::kIdle, -1,
                              run.machine.points().front()});
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kTrace)) << report.Summary();
}

TEST(SimAuditFaultInjection, TraceEnergyMismatch) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  corrupted.exec_energy *= 1.01;  // totals no longer re-integrate
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kTrace)) << report.Summary();
  EXPECT_TRUE(report.Violated(AuditCheck::kResidency));
}

TEST(SimAuditFaultInjection, LostJob) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  ASSERT_GT(corrupted.completions, 0);
  corrupted.completions -= 1;  // a job vanished from the books
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kJobAccounting)) << report.Summary();
}

TEST(SimAuditFaultInjection, PerTaskCountersOutOfSync) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  ASSERT_FALSE(corrupted.task_stats.empty());
  corrupted.task_stats[0].releases += 1;
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kJobAccounting)) << report.Summary();
}

TEST(SimAuditFaultInjection, MissUnderGuaranteeingPolicy) {
  AuditedRun run = RunPaperExample("edf");
  ASSERT_TRUE(run.guarantees);
  SimResult corrupted = run.result;
  // Keep per-task and global in sync so only the RT oracle disagrees.
  corrupted.deadline_misses += 1;
  corrupted.task_stats[0].deadline_misses += 1;
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kRtGuarantee)) << report.Summary();
  EXPECT_FALSE(report.Violated(AuditCheck::kJobAccounting));
}

TEST(SimAuditFaultInjection, LowerBoundAboveActual) {
  AuditedRun run = RunPaperExample();
  SimResult corrupted = run.result;
  corrupted.lower_bound_energy = corrupted.exec_energy + 1.0;
  AuditReport report = run.Reaudit(corrupted);
  EXPECT_TRUE(report.Violated(AuditCheck::kLowerBound)) << report.Summary();
}

// --- Downgrade-to-skip semantics. ---

TEST(SimAudit, TruncatedTraceSkipsTraceCheckInsteadOfFailing) {
  AuditedRun run;
  run.tasks = TaskSet::PaperExample();
  run.options.horizon_ms = 500.0;
  run.options.record_trace = true;
  run.options.max_trace_segments = 4;  // far fewer than the run produces
  auto policy = MakePolicy("cc_edf");
  UniformFractionModel model(0.2, 1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  ASSERT_TRUE(run.result.trace.truncated());
  const AuditReport& report = run.result.audit;
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.checks_run, 5);
  EXPECT_EQ(report.checks_skipped, 1);
}

TEST(SimAudit, SwitchCostSkipsRtOracleButStillAuditsAccounting) {
  AuditedRun run;
  run.tasks = TaskSet::PaperExample();
  run.options.horizon_ms = 500.0;
  run.options.switch_time_ms = 0.5;  // halts void the analytical guarantee
  auto policy = MakePolicy("cc_edf");
  ConstantFractionModel model(1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  const AuditReport& report = run.result.audit;
  EXPECT_TRUE(report.ok()) << report.Summary();
  // Trace (not recorded) and RT oracle (switch cost) are both skipped.
  EXPECT_EQ(report.checks_skipped, 2);
  EXPECT_EQ(report.checks_run, 4);
}

TEST(SimAudit, NonGuaranteeingPolicyMissesAreNotViolations) {
  // The interval baseline knowingly trades deadlines for energy; misses
  // under it are a finding of the paper, not an accounting bug.
  AuditedRun run;
  run.tasks = TaskSet({{"a", 10.0, 4.5, 0.0}, {"b", 15.0, 6.0, 0.0}});
  run.options.horizon_ms = 1000.0;
  auto policy = MakePolicy("interval");
  run.guarantees = policy->guarantees_deadlines();
  EXPECT_FALSE(run.guarantees);
  ConstantFractionModel model(1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  EXPECT_TRUE(run.result.audit.ok()) << run.result.audit.Summary();
}

TEST(SimAudit, AbortPolicyRunStaysConserved) {
  // Overload + kAbortJob exercises the aborted-jobs leg of the conservation
  // law: releases == completions + aborted + in-flight must still hold.
  AuditedRun run;
  run.tasks = TaskSet({{"a", 10.0, 8.0, 0.0}, {"b", 10.0, 7.0, 0.0}});
  run.options.horizon_ms = 500.0;
  run.options.miss_policy = MissPolicy::kAbortJob;
  run.options.record_trace = true;
  auto policy = MakePolicy("edf");
  run.guarantees = false;  // deliberately overloaded
  ConstantFractionModel model(1.0);
  run.result = RunSimulation(run.tasks, run.machine, *policy, model, run.options);
  EXPECT_GT(run.result.aborted, 0);
  EXPECT_TRUE(run.result.audit.ok()) << run.result.audit.Summary();
}

// --- Acceptance sweep: the full paper policy set stays audit-clean on every
// simulator machine model, across the quick utilization grid, including the
// §4.1 switch-cost and firm-deadline configurations. ---

TEST(SimAuditAcceptance, PaperPoliciesAuditCleanOnAllMachines) {
  const MachineSpec machines[] = {MachineSpec::Machine0(),
                                  MachineSpec::Machine1(),
                                  MachineSpec::Machine2()};
  for (const auto& machine : machines) {
    SweepOptions options;
    options.policy_ids = AllPaperPolicyIds();
    options.utilizations = {0.3, 0.6, 0.9};
    options.tasksets_per_point = 4;
    options.horizon_ms = 500.0;
    options.idle_level = 0.1;
    options.machine = machine;
    options.exec_model_factory = [] {
      return std::make_unique<UniformFractionModel>(0.0, 1.0);
    };
    SweepResult result = UtilizationSweep(options).Run();
    EXPECT_EQ(result.audit_violations, 0)
        << machine.ToString() << ": "
        << (result.audit_messages.empty() ? "" : result.audit_messages[0]);
  }
}

TEST(SimAuditAcceptance, SwitchCostAndAbortConfigurationsAuditClean) {
  SweepOptions options;
  options.policy_ids = {"edf", "cc_edf", "la_edf"};
  options.utilizations = {0.4, 0.8};
  options.tasksets_per_point = 3;
  options.horizon_ms = 500.0;
  options.switch_time_ms = 0.41;  // §4.1 voltage-transition halt
  options.miss_policy = MissPolicy::kAbortJob;
  options.energy_coefficient = 2.5;
  SweepResult result = UtilizationSweep(options).Run();
  EXPECT_EQ(result.audit_violations, 0)
      << (result.audit_messages.empty() ? "" : result.audit_messages[0]);
}

}  // namespace
}  // namespace rtdvs
