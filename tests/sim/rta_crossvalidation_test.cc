// Cross-validation of the analytical response-time theory against the
// simulation engine: with synchronous release (the critical instant) and
// worst-case demand, the simulated first response of every task under plain
// RM must EQUAL its response-time-analysis fixed point, and no later
// invocation may respond slower.
#include <gtest/gtest.h>

#include <memory>

#include "src/dvs/no_dvs_policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/schedulability.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

TEST(RtaCrossValidation, SimulatedRmResponsesMatchAnalysis) {
  Pcg32 rng(2026);
  TaskSetGeneratorOptions options;
  options.num_tasks = 5;
  int validated_sets = 0;
  for (int attempt = 0; attempt < 60 && validated_sets < 15; ++attempt) {
    options.target_utilization = rng.UniformDouble(0.3, 0.8);
    TaskSet tasks = TaskSetGenerator(options).Generate(rng);
    if (!RmSchedulableExact(tasks, 1.0)) {
      continue;
    }
    ++validated_sets;

    NoDvsPolicy policy(SchedulerKind::kRm);
    ConstantFractionModel model(1.0);
    SimOptions sim_options;
    // Long enough for several invocations of the longest-period task.
    double longest = 0;
    for (const auto& task : tasks.tasks()) {
      longest = std::max(longest, task.period_ms);
    }
    sim_options.horizon_ms = 4 * longest;
    SimResult result =
        RunSimulation(tasks, MachineSpec::Machine0(), policy, model, sim_options);
    ASSERT_EQ(result.deadline_misses, 0) << tasks.ToString();

    for (int id = 0; id < tasks.size(); ++id) {
      auto analytical = RmResponseTime(tasks, id, 1.0);
      ASSERT_TRUE(analytical.has_value()) << tasks.ToString();
      const TaskStats& stats = result.task_stats[static_cast<size_t>(id)];
      ASSERT_GT(stats.completions, 0);
      // The synchronous release at t=0 is the critical instant: the maximum
      // simulated response equals the analytical worst case (up to epsilon;
      // ties in period order can only help, never hurt, because both the
      // analysis and the scheduler resolve them identically by id).
      EXPECT_NEAR(stats.max_response_ms, *analytical, 1e-6)
          << tasks.task(id).name << " in " << tasks.ToString();
    }
  }
  EXPECT_GE(validated_sets, 15);
}

TEST(RtaCrossValidation, ScalingFrequencyScalesResponses) {
  // Running the identical workload on a machine pinned to half speed must
  // exactly double every response time (work is frequency-invariant).
  TaskSet tasks = TaskSet::PaperExample();
  ConstantFractionModel model(1.0);
  SimOptions options;
  options.horizon_ms = 560.0;  // lcm(8,10,14) = 280; two hyperperiods

  NoDvsPolicy rm(SchedulerKind::kRm);
  SimResult full =
      RunSimulation(tasks, MachineSpec::Machine0(), rm, model, options);

  // A "machine" whose only point is half speed (normalized to 1.0 with
  // doubled WCETs gives the same effect; scale the task set instead).
  TaskSet stretched;
  for (const auto& task : tasks.tasks()) {
    stretched.AddTask({task.name, 2 * task.period_ms, 2 * task.wcet_ms, 0.0});
  }
  SimOptions stretched_options;
  stretched_options.horizon_ms = 1120.0;
  NoDvsPolicy rm2(SchedulerKind::kRm);
  ConstantFractionModel model2(1.0);
  SimResult half =
      RunSimulation(stretched, MachineSpec::Machine0(), rm2, model2, stretched_options);

  for (int id = 0; id < tasks.size(); ++id) {
    EXPECT_NEAR(half.task_stats[static_cast<size_t>(id)].max_response_ms,
                2 * full.task_stats[static_cast<size_t>(id)].max_response_ms, 1e-6);
  }
}

}  // namespace
}  // namespace rtdvs
