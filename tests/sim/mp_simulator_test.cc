// Tests for the multiprocessor cluster driver (src/sim/mp_simulator.cc):
// M = 1 bit-identity with the legacy RunSimulation path, partitioned-mode
// decomposition into independent single-core runs, powered-down cores,
// global-mode dispatch, per-core policy bookkeeping isolation, infeasible
// rejection, and the JSON view.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/util/json.h"

namespace rtdvs {
namespace {

// The per-core RNG stream contract from mp_simulator.h.
uint64_t CoreSeed(uint64_t seed, int core) {
  return seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(core));
}

TaskSet TasksWithUtilizations(const std::vector<double>& utilizations) {
  std::vector<Task> tasks;
  for (double u : utilizations) {
    tasks.push_back({"", 10.0, 10.0 * u, 0.0});
  }
  return TaskSet(tasks);
}

// Table 3's actual execution times as fractions of the Table 2 WCETs.
std::unique_ptr<ExecTimeModel> PaperTableModel() {
  return std::make_unique<TableFractionModel>(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
}

// Exact equality, field by field: the M = 1 cluster path must be the SAME
// code path as the legacy wrapper, so even the doubles match bitwise.
void ExpectSliceIdentical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.releases, b.releases);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.unfinished_at_horizon, b.unfinished_at_horizon);
  EXPECT_EQ(a.wcet_overruns, b.wcet_overruns);
  EXPECT_EQ(a.speed_switches, b.speed_switches);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.exec_energy, b.exec_energy);
  EXPECT_EQ(a.idle_energy, b.idle_energy);
  EXPECT_EQ(a.busy_ms, b.busy_ms);
  EXPECT_EQ(a.idle_ms, b.idle_ms);
  EXPECT_EQ(a.switching_ms, b.switching_ms);
  EXPECT_EQ(a.total_work_executed, b.total_work_executed);
  EXPECT_EQ(a.lower_bound_energy, b.lower_bound_energy);
  EXPECT_TRUE(a.policy_counters == b.policy_counters);
  ASSERT_EQ(a.residency.size(), b.residency.size());
  for (size_t i = 0; i < a.residency.size(); ++i) {
    EXPECT_TRUE(a.residency[i].point == b.residency[i].point);
    EXPECT_EQ(a.residency[i].exec_ms, b.residency[i].exec_ms);
    EXPECT_EQ(a.residency[i].idle_ms, b.residency[i].idle_ms);
    EXPECT_EQ(a.residency[i].exec_energy, b.residency[i].exec_energy);
    EXPECT_EQ(a.residency[i].idle_energy, b.residency[i].idle_energy);
  }
  ASSERT_EQ(a.task_stats.size(), b.task_stats.size());
  for (size_t i = 0; i < a.task_stats.size(); ++i) {
    EXPECT_EQ(a.task_stats[i].releases, b.task_stats[i].releases);
    EXPECT_EQ(a.task_stats[i].completions, b.task_stats[i].completions);
    EXPECT_EQ(a.task_stats[i].deadline_misses, b.task_stats[i].deadline_misses);
    EXPECT_EQ(a.task_stats[i].executed_work, b.task_stats[i].executed_work);
    EXPECT_EQ(a.task_stats[i].max_response_ms, b.task_stats[i].max_response_ms);
  }
}

// Issue 6 acceptance: the Table 2/3 worked example through the new
// SimRequest API at M = 1 is bit-identical to the legacy RunSimulation for
// every paper policy.
TEST(MpSimulatorTest, PaperExampleM1BitIdenticalToLegacyForAllPolicies) {
  for (const std::string& policy_id : AllPaperPolicyIds()) {
    SimRequest request;
    request.tasks = TaskSet::PaperExample();
    request.cluster.num_cores = 1;
    request.cluster.machine = MachineSpec::Machine0();
    request.policy_ids = {policy_id};
    request.options.horizon_ms = 16.0;
    auto mp_model = PaperTableModel();
    MpSimResult mp = RunClusterSimulation(request, *mp_model);

    auto legacy_model = PaperTableModel();
    SimResult legacy = RunSimulation(TaskSet::PaperExample(),
                                     MachineSpec::Machine0(), policy_id,
                                     *legacy_model, request.options);

    SCOPED_TRACE(policy_id);
    ASSERT_TRUE(mp.admitted);
    EXPECT_EQ(mp.num_cores, 1);
    EXPECT_EQ(mp.migrations, 0);
    ASSERT_EQ(mp.cores.size(), 1u);
    ExpectSliceIdentical(mp.cores[0], legacy);
    // The cluster totals of an M = 1 run are the slice itself.
    EXPECT_EQ(mp.cluster.exec_energy, legacy.exec_energy);
    EXPECT_EQ(mp.cluster.idle_energy, legacy.idle_energy);
    EXPECT_EQ(mp.cluster.releases, legacy.releases);
    EXPECT_EQ(mp.cluster.completions, legacy.completions);
    ASSERT_TRUE(mp.cluster_audit.audited);
    EXPECT_TRUE(mp.cluster_audit.ok()) << mp.cluster_audit.Summary();
  }
}

// Partitioned mode is BY CONSTRUCTION a set of independent single-core
// simulations: each core's slice must be bit-identical to a standalone run
// of that core's sub-task-set under the documented per-core seed.
TEST(MpSimulatorTest, PartitionedSlicesMatchStandaloneRuns) {
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.5, 0.6, 0.3});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.mode = MpMode::kPartitioned;
  request.partition = PartitionHeuristic::kFirstFit;
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 100.0;
  request.options.idle_level = 0.1;
  request.options.seed = 42;
  // Constant-fraction demand is task-id independent, so the standalone runs
  // draw exactly what the cluster's id-translating adapter drew.
  ConstantFractionModel cluster_model(0.7);
  MpSimResult mp = RunClusterSimulation(request, cluster_model);
  ASSERT_TRUE(mp.admitted);
  // FF hand-check (fixture A of cluster_partition_test): [0, 1, 0].
  EXPECT_EQ(mp.partition.core_of_task, (std::vector<int>{0, 1, 0}));

  for (int core = 0; core < 2; ++core) {
    SCOPED_TRACE(core);
    const auto c = static_cast<size_t>(core);
    SimOptions standalone = request.options;
    standalone.seed = CoreSeed(request.options.seed, core);
    ConstantFractionModel model(0.7);
    SimResult expected = RunSimulation(mp.core_tasks[c], request.cluster.machine,
                                       "cc_edf", model, standalone);
    ExpectSliceIdentical(mp.cores[c], expected);
  }

  // Cluster totals are the field-wise slice sums.
  EXPECT_NEAR(mp.cluster.exec_energy,
              mp.cores[0].exec_energy + mp.cores[1].exec_energy, 1e-12);
  EXPECT_NEAR(mp.cluster.busy_ms, mp.cores[0].busy_ms + mp.cores[1].busy_ms,
              1e-12);
  EXPECT_EQ(mp.cluster.releases, mp.cores[0].releases + mp.cores[1].releases);
  EXPECT_EQ(mp.migrations, 0);
  ASSERT_TRUE(mp.cluster_audit.audited);
  EXPECT_TRUE(mp.cluster_audit.ok()) << mp.cluster_audit.Summary();
  // Per-task stats land under GLOBAL ids: task 1 ran alone on core 1.
  ASSERT_EQ(mp.cluster.task_stats.size(), 3u);
  EXPECT_EQ(mp.cluster.task_stats[1].releases, mp.cores[1].releases);
}

TEST(MpSimulatorTest, UnusedCoresArePoweredDown) {
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.2, 0.2});
  request.cluster.num_cores = 4;
  request.cluster.machine = MachineSpec::Machine0();
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 50.0;
  request.options.idle_level = 0.5;  // powered-down != idling: idling costs
  ConstantFractionModel model(1.0);
  MpSimResult mp = RunClusterSimulation(request, model);
  ASSERT_TRUE(mp.admitted);
  EXPECT_EQ(mp.partition.cores_used, 1);
  for (int core = 1; core < 4; ++core) {
    SCOPED_TRACE(core);
    const SimResult& slice = mp.cores[static_cast<size_t>(core)];
    EXPECT_EQ(slice.policy_name, "off");
    EXPECT_EQ(slice.exec_energy, 0.0);
    EXPECT_EQ(slice.idle_energy, 0.0);
    EXPECT_EQ(slice.busy_ms, 0.0);
    EXPECT_EQ(slice.idle_ms, 50.0);
    EXPECT_EQ(slice.releases, 0);
  }
  // Core 0 idles at a cost; the cluster energy is core 0's alone.
  EXPECT_GT(mp.cores[0].idle_energy, 0.0);
  EXPECT_EQ(mp.cluster.total_energy(), mp.cores[0].total_energy());
  ASSERT_TRUE(mp.cluster_audit.audited);
  EXPECT_TRUE(mp.cluster_audit.ok()) << mp.cluster_audit.Summary();
}

// Issue 6 satellite: one DvsPolicy instance per core, never shared. Each
// core's reported counters must equal its own policy instance's counters —
// if two cores fed one instance, both slices would see the merged stream.
TEST(MpSimulatorTest, PerCorePolicyBookkeepingIsIsolated) {
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.9, 0.3, 0.4});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 200.0;
  request.options.seed = 7;
  ConstantFractionModel model(0.5);
  auto p0 = MakePolicy("cc_edf");
  auto p1 = MakePolicy("cc_edf");
  MpSimResult mp = RunClusterSimulation(request, {p0.get(), p1.get()}, model);
  ASSERT_TRUE(mp.admitted);
  // FF: task 0 (0.9) fills core 0; tasks 1 and 2 land on core 1.
  EXPECT_EQ(mp.partition.core_of_task, (std::vector<int>{0, 1, 1}));

  // Both cores made speed decisions, and each slice's counters are exactly
  // its own instance's — not the other's, not the merged stream.
  EXPECT_GT(p0->counters().speed_change_requests, 0);
  EXPECT_GT(p1->counters().speed_change_requests, 0);
  EXPECT_TRUE(mp.cores[0].policy_counters == p0->counters());
  EXPECT_TRUE(mp.cores[1].policy_counters == p1->counters());
  EXPECT_FALSE(p0->counters() == p1->counters());
  // And the cluster merges them.
  EXPECT_EQ(mp.cluster.policy_counters.speed_change_requests,
            p0->counters().speed_change_requests +
                p1->counters().speed_change_requests);
}

TEST(MpSimulatorTest, GlobalModeRunsTheClusterWideQueue) {
  SimRequest request;
  // Two heavy tasks no single core could serve (sum U = 1.8): global EDF on
  // two cores runs them in parallel without misses.
  request.tasks = TasksWithUtilizations({0.9, 0.9});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.mode = MpMode::kGlobal;
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 200.0;
  ConstantFractionModel model(1.0);
  MpSimResult mp = RunClusterSimulation(request, model);
  ASSERT_TRUE(mp.admitted);
  EXPECT_EQ(mp.mode, MpMode::kGlobal);
  EXPECT_EQ(mp.cluster.deadline_misses, 0);
  EXPECT_EQ(mp.cluster.releases, 2 * 20);
  EXPECT_GT(mp.cores[0].busy_ms, 0.0);
  EXPECT_GT(mp.cores[1].busy_ms, 0.0);
  // Global slices carry time/energy only; job counters live on the cluster.
  for (const SimResult& slice : mp.cores) {
    EXPECT_TRUE(slice.task_stats.empty());
    EXPECT_EQ(slice.releases, 0);
  }
  ASSERT_EQ(mp.cluster.task_stats.size(), 2u);
  EXPECT_EQ(mp.cluster.task_stats[0].releases, 20);
  ASSERT_TRUE(mp.cluster_audit.audited);
  EXPECT_TRUE(mp.cluster_audit.ok()) << mp.cluster_audit.Summary();
}

TEST(MpSimulatorTest, GlobalModeAffinityAvoidsGratuitousMigrations) {
  // Two tasks on two cores: after the first dispatch each job has a core to
  // itself and never needs to move.
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.4, 0.4});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.mode = MpMode::kGlobal;
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 100.0;
  ConstantFractionModel model(1.0);
  MpSimResult mp = RunClusterSimulation(request, model);
  ASSERT_TRUE(mp.admitted);
  EXPECT_EQ(mp.migrations, 0);
}

TEST(MpSimulatorTest, InfeasiblePartitionIsRejected) {
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.7, 0.7, 0.7});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 100.0;
  ConstantFractionModel model(1.0);
  MpSimResult mp = RunClusterSimulation(request, model);
  EXPECT_FALSE(mp.admitted);
  EXPECT_FALSE(mp.partition.feasible);
  EXPECT_FALSE(mp.partition.error.empty());
  EXPECT_EQ(mp.cluster.exec_energy, 0.0);
  EXPECT_EQ(mp.cluster.releases, 0);
}

TEST(MpSimulatorTest, JsonViewCarriesVersionPartitionAndCores) {
  SimRequest request;
  request.tasks = TasksWithUtilizations({0.5, 0.6, 0.3});
  request.cluster.num_cores = 2;
  request.cluster.machine = MachineSpec::Machine0();
  request.policy_ids = {"cc_edf"};
  request.options.horizon_ms = 100.0;
  ConstantFractionModel model(0.7);
  JsonValue doc = MpSimResultToJson(RunClusterSimulation(request, model));
  EXPECT_EQ(doc.Get("version").AsString(), "rtdvs-mpsim-v1");
  EXPECT_EQ(doc.Get("mode").AsString(), "partitioned");
  EXPECT_EQ(doc.Get("num_cores").AsInt(), 2);
  EXPECT_TRUE(doc.Get("admitted").AsBool());
  EXPECT_EQ(doc.Get("cores").size(), 2u);
  EXPECT_EQ(doc.Get("partition").Get("core_of_task").size(), 3u);
  EXPECT_TRUE(doc.Get("cluster_audit_ok").AsBool());

  // Infeasible results keep the partition report but carry no slices.
  request.tasks = TasksWithUtilizations({0.7, 0.7, 0.7});
  JsonValue rejected = MpSimResultToJson(RunClusterSimulation(request, model));
  EXPECT_FALSE(rejected.Get("admitted").AsBool());
  EXPECT_NE(rejected.Get("partition").Find("error"), nullptr);
  EXPECT_EQ(rejected.Find("cores"), nullptr);
}

}  // namespace
}  // namespace rtdvs
