#include "src/core/scenario.h"

#include <gtest/gtest.h>

#include "src/sim/mp_simulator.h"
#include "src/util/json.h"

namespace rtdvs {
namespace {

Scenario Ok(std::variant<Scenario, std::string> result) {
  if (!std::holds_alternative<Scenario>(result)) {
    ADD_FAILURE() << std::get<std::string>(result);
    return Scenario{};
  }
  return std::get<Scenario>(std::move(result));
}

std::string Err(const std::variant<Scenario, std::string>& result) {
  EXPECT_TRUE(std::holds_alternative<std::string>(result));
  return std::holds_alternative<std::string>(result) ? std::get<std::string>(result)
                                                     : "";
}

TEST(Scenario, ParsesTasksMachineAndComments) {
  auto result = ParseScenario(R"(
# a comment
machine machine2
task a 10 3 c=0.5   # trailing comment
task b 50 10
)");
  const Scenario& scenario = Ok(result);
  EXPECT_EQ(scenario.machine.name(), "machine2");
  ASSERT_EQ(scenario.tasks.size(), 2);
  EXPECT_EQ(scenario.tasks.task(0).name, "a");
  EXPECT_DOUBLE_EQ(scenario.tasks.task(0).period_ms, 10.0);
  EXPECT_DOUBLE_EQ(scenario.tasks.task(1).wcet_ms, 10.0);
  EXPECT_EQ(scenario.demand_specs[0], "c=0.5");
  EXPECT_EQ(scenario.demand_specs[1], "");
  EXPECT_EQ(scenario.server.kind, ServerKind::kNone);
}

TEST(Scenario, DefaultsToMachine0) {
  const Scenario& scenario = Ok(ParseScenario("task t 10 1\n"));
  EXPECT_EQ(scenario.machine.name(), "machine0");
}

TEST(Scenario, ParsesServerLine) {
  const Scenario& scenario = Ok(ParseScenario(
      "task t 10 1\nserver cbs 20 4 interarrival=30 service=2 maxservice=6\n"));
  EXPECT_EQ(scenario.server.kind, ServerKind::kCbs);
  EXPECT_DOUBLE_EQ(scenario.server.period_ms, 20.0);
  EXPECT_DOUBLE_EQ(scenario.server.budget_ms, 4.0);
  EXPECT_DOUBLE_EQ(scenario.server.arrivals.mean_interarrival_ms, 30.0);
  EXPECT_DOUBLE_EQ(scenario.server.arrivals.mean_service_ms, 2.0);
  EXPECT_DOUBLE_EQ(scenario.server.arrivals.max_service_ms, 6.0);
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  EXPECT_NE(Err(ParseScenario("task t 10 1\nbogus line\n")).find("line 2"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("machine marsrover\n")).find("unknown machine"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 20\n")).find("wcet"), std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 1 d=?\n")).find("demand"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 1\nserver magic 10 1\n"))
                .find("server kind"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 1\nserver cbs 10 1 wat=3\n"))
                .find("unknown server option"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("")).find("no tasks"), std::string::npos);
}

TEST(Scenario, DemandModelSyntax) {
  EXPECT_NE(MakeDemandModel(""), nullptr);
  EXPECT_NE(MakeDemandModel("c=0.9"), nullptr);
  EXPECT_NE(MakeDemandModel("uniform"), nullptr);
  EXPECT_NE(MakeDemandModel("uniform=0.2,0.8"), nullptr);
  EXPECT_NE(MakeDemandModel("bimodal=0.3,0.05"), nullptr);
  EXPECT_NE(MakeDemandModel("cold=2.5"), nullptr);
  EXPECT_EQ(MakeDemandModel("c=1.5"), nullptr);
  EXPECT_EQ(MakeDemandModel("uniform=0.8,0.2"), nullptr);
  EXPECT_EQ(MakeDemandModel("bimodal=0.3"), nullptr);
  EXPECT_EQ(MakeDemandModel("cold=0.5"), nullptr);
  EXPECT_EQ(MakeDemandModel("quux=1"), nullptr);
}

TEST(Scenario, ExecModelDispatchesPerTask) {
  const Scenario& scenario =
      Ok(ParseScenario("task a 10 2 c=0.5\ntask b 10 2 c=0.25\n"));
  auto model = scenario.MakeExecModel();
  Pcg32 rng(1);
  EXPECT_DOUBLE_EQ(model->DrawFraction(0, 0, rng), 0.5);
  EXPECT_DOUBLE_EQ(model->DrawFraction(1, 0, rng), 0.25);
  // Beyond the declared tasks (e.g. the auto-appended server): worst case.
  EXPECT_DOUBLE_EQ(model->DrawFraction(2, 0, rng), 1.0);
}

TEST(Scenario, ShippedScenarioFilesParse) {
  for (const char* path : {"examples/scenarios/camcorder.scn",
                           "examples/scenarios/paper_table2.scn"}) {
    auto result = LoadScenarioFile(path);
    EXPECT_TRUE(std::holds_alternative<Scenario>(result))
        << path << ": "
        << (std::holds_alternative<std::string>(result)
                ? std::get<std::string>(result)
                : "");
  }
}

TEST(Scenario, FilesWithoutClusterLinesStaySingleCore) {
  // The multiprocessor extension must not reinterpret classic files: no
  // cluster line means num_cores == 1 with the default mode/fit, and the
  // request keeps the SimRequest policy default when no policies line.
  const Scenario& scenario = Ok(ParseScenario("task t 10 1\n"));
  EXPECT_EQ(scenario.num_cores, 1);
  EXPECT_EQ(scenario.mp_mode, MpMode::kPartitioned);
  EXPECT_EQ(scenario.mp_partition, PartitionHeuristic::kFirstFit);
  EXPECT_TRUE(scenario.policy_ids.empty());
  SimRequest request = scenario.ToSimRequest(SimOptions{});
  EXPECT_EQ(request.cluster.num_cores, 1);
  EXPECT_EQ(request.policy_ids, std::vector<std::string>{"cc_edf"});
}

TEST(Scenario, ParsesClusterAndPoliciesLines) {
  const Scenario& scenario = Ok(ParseScenario(R"(
machine machine1
cluster 4 mode=global fit=wf
policies la_edf
task a 10 3
task b 20 5
)"));
  EXPECT_EQ(scenario.num_cores, 4);
  EXPECT_EQ(scenario.mp_mode, MpMode::kGlobal);
  EXPECT_EQ(scenario.mp_partition, PartitionHeuristic::kWorstFit);
  EXPECT_EQ(scenario.policy_ids, std::vector<std::string>{"la_edf"});

  SimOptions options;
  options.horizon_ms = 42.0;
  SimRequest request = scenario.ToSimRequest(options);
  EXPECT_EQ(request.cluster.num_cores, 4);
  EXPECT_EQ(request.cluster.machine.name(), "machine1");
  EXPECT_EQ(request.mode, MpMode::kGlobal);
  EXPECT_EQ(request.partition, PartitionHeuristic::kWorstFit);
  EXPECT_EQ(request.policy_ids, scenario.policy_ids);
  EXPECT_DOUBLE_EQ(request.options.horizon_ms, 42.0);
}

TEST(Scenario, ParsesPerCorePolicyList) {
  const Scenario& scenario = Ok(ParseScenario(
      "cluster 2\npolicies cc_edf cc_rm\ntask a 10 3\ntask b 20 5\n"));
  ASSERT_EQ(scenario.policy_ids.size(), 2u);
  EXPECT_EQ(scenario.policy_ids[0], "cc_edf");
  EXPECT_EQ(scenario.policy_ids[1], "cc_rm");
}

TEST(Scenario, ClusterLineErrors) {
  EXPECT_NE(Err(ParseScenario("cluster 0\ntask t 10 1\n")).find("1..64"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("cluster 65\ntask t 10 1\n")).find("1..64"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("cluster two\ntask t 10 1\n")).find("integer"),
            std::string::npos);
  EXPECT_NE(
      Err(ParseScenario("cluster 2 mode=clustered\ntask t 10 1\n")).find("mode"),
      std::string::npos);
  EXPECT_NE(Err(ParseScenario("cluster 2 fit=ffd\ntask t 10 1\n")).find("fit"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("cluster 2 pack=ff\ntask t 10 1\n"))
                .find("unknown cluster option"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("policies bogus\ntask t 10 1\n"))
                .find("unknown policy id"),
            std::string::npos);
  // Policy count must be 1 or num_cores.
  EXPECT_NE(Err(ParseScenario(
                    "cluster 4\npolicies cc_edf la_edf\ntask t 10 1\n"))
                .find("cores"),
            std::string::npos);
  // Aperiodic servers are a single-core feature.
  EXPECT_NE(Err(ParseScenario(
                    "cluster 2\ntask t 10 1\nserver cbs 20 4\n"))
                .find("single-core"),
            std::string::npos);
}

TEST(Scenario, ClusterScenarioRunsAndJsonRoundTrips) {
  // End to end: parse a cluster scenario, run it through the cluster API,
  // and push the JSON view through the writer AND the parser — the
  // round-trip must preserve the fields the CLI consumers read.
  const Scenario& scenario = Ok(ParseScenario(R"(
cluster 2 mode=partitioned fit=bf
policies cc_edf
task a 10 4
task b 15 6
task c 20 9
)"));
  SimOptions options;
  options.horizon_ms = 60.0;
  SimRequest request = scenario.ToSimRequest(options);
  auto model = scenario.MakeExecModel();
  MpSimResult result = RunClusterSimulation(request, *model);
  ASSERT_TRUE(result.admitted);

  JsonValue doc = MpSimResultToJson(result);
  std::string error;
  auto parsed = JsonValue::Parse(doc.ToString(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Get("version").AsString(), "rtdvs-mpsim-v1");
  EXPECT_EQ(parsed->Get("num_cores").AsInt(), 2);
  EXPECT_TRUE(parsed->Get("admitted").AsBool());
  EXPECT_EQ(parsed->Get("cores").size(), 2u);
  EXPECT_EQ(parsed->Get("partition").Get("core_of_task").size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->Get("cluster").Get("total_energy").AsDouble(),
                   result.cluster.total_energy());
}

TEST(Scenario, MissingFileIsAnError) {
  EXPECT_NE(Err(LoadScenarioFile("/nonexistent/x.scn")).find("cannot open"),
            std::string::npos);
}

}  // namespace
}  // namespace rtdvs
