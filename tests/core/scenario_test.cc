#include "src/core/scenario.h"

#include <gtest/gtest.h>

namespace rtdvs {
namespace {

Scenario Ok(std::variant<Scenario, std::string> result) {
  if (!std::holds_alternative<Scenario>(result)) {
    ADD_FAILURE() << std::get<std::string>(result);
    return Scenario{};
  }
  return std::get<Scenario>(std::move(result));
}

std::string Err(const std::variant<Scenario, std::string>& result) {
  EXPECT_TRUE(std::holds_alternative<std::string>(result));
  return std::holds_alternative<std::string>(result) ? std::get<std::string>(result)
                                                     : "";
}

TEST(Scenario, ParsesTasksMachineAndComments) {
  auto result = ParseScenario(R"(
# a comment
machine machine2
task a 10 3 c=0.5   # trailing comment
task b 50 10
)");
  const Scenario& scenario = Ok(result);
  EXPECT_EQ(scenario.machine.name(), "machine2");
  ASSERT_EQ(scenario.tasks.size(), 2);
  EXPECT_EQ(scenario.tasks.task(0).name, "a");
  EXPECT_DOUBLE_EQ(scenario.tasks.task(0).period_ms, 10.0);
  EXPECT_DOUBLE_EQ(scenario.tasks.task(1).wcet_ms, 10.0);
  EXPECT_EQ(scenario.demand_specs[0], "c=0.5");
  EXPECT_EQ(scenario.demand_specs[1], "");
  EXPECT_EQ(scenario.server.kind, ServerKind::kNone);
}

TEST(Scenario, DefaultsToMachine0) {
  const Scenario& scenario = Ok(ParseScenario("task t 10 1\n"));
  EXPECT_EQ(scenario.machine.name(), "machine0");
}

TEST(Scenario, ParsesServerLine) {
  const Scenario& scenario = Ok(ParseScenario(
      "task t 10 1\nserver cbs 20 4 interarrival=30 service=2 maxservice=6\n"));
  EXPECT_EQ(scenario.server.kind, ServerKind::kCbs);
  EXPECT_DOUBLE_EQ(scenario.server.period_ms, 20.0);
  EXPECT_DOUBLE_EQ(scenario.server.budget_ms, 4.0);
  EXPECT_DOUBLE_EQ(scenario.server.arrivals.mean_interarrival_ms, 30.0);
  EXPECT_DOUBLE_EQ(scenario.server.arrivals.mean_service_ms, 2.0);
  EXPECT_DOUBLE_EQ(scenario.server.arrivals.max_service_ms, 6.0);
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  EXPECT_NE(Err(ParseScenario("task t 10 1\nbogus line\n")).find("line 2"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("machine marsrover\n")).find("unknown machine"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 20\n")).find("wcet"), std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 1 d=?\n")).find("demand"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 1\nserver magic 10 1\n"))
                .find("server kind"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("task t 10 1\nserver cbs 10 1 wat=3\n"))
                .find("unknown server option"),
            std::string::npos);
  EXPECT_NE(Err(ParseScenario("")).find("no tasks"), std::string::npos);
}

TEST(Scenario, DemandModelSyntax) {
  EXPECT_NE(MakeDemandModel(""), nullptr);
  EXPECT_NE(MakeDemandModel("c=0.9"), nullptr);
  EXPECT_NE(MakeDemandModel("uniform"), nullptr);
  EXPECT_NE(MakeDemandModel("uniform=0.2,0.8"), nullptr);
  EXPECT_NE(MakeDemandModel("bimodal=0.3,0.05"), nullptr);
  EXPECT_NE(MakeDemandModel("cold=2.5"), nullptr);
  EXPECT_EQ(MakeDemandModel("c=1.5"), nullptr);
  EXPECT_EQ(MakeDemandModel("uniform=0.8,0.2"), nullptr);
  EXPECT_EQ(MakeDemandModel("bimodal=0.3"), nullptr);
  EXPECT_EQ(MakeDemandModel("cold=0.5"), nullptr);
  EXPECT_EQ(MakeDemandModel("quux=1"), nullptr);
}

TEST(Scenario, ExecModelDispatchesPerTask) {
  const Scenario& scenario =
      Ok(ParseScenario("task a 10 2 c=0.5\ntask b 10 2 c=0.25\n"));
  auto model = scenario.MakeExecModel();
  Pcg32 rng(1);
  EXPECT_DOUBLE_EQ(model->DrawFraction(0, 0, rng), 0.5);
  EXPECT_DOUBLE_EQ(model->DrawFraction(1, 0, rng), 0.25);
  // Beyond the declared tasks (e.g. the auto-appended server): worst case.
  EXPECT_DOUBLE_EQ(model->DrawFraction(2, 0, rng), 1.0);
}

TEST(Scenario, ShippedScenarioFilesParse) {
  for (const char* path : {"examples/scenarios/camcorder.scn",
                           "examples/scenarios/paper_table2.scn"}) {
    auto result = LoadScenarioFile(path);
    EXPECT_TRUE(std::holds_alternative<Scenario>(result))
        << path << ": "
        << (std::holds_alternative<std::string>(result)
                ? std::get<std::string>(result)
                : "");
  }
}

TEST(Scenario, MissingFileIsAnError) {
  EXPECT_NE(Err(LoadScenarioFile("/nonexistent/x.scn")).find("cannot open"),
            std::string::npos);
}

}  // namespace
}  // namespace rtdvs
