// Unit suite for src/core/benchdiff: document flattening, direction
// metadata, the noise-threshold judge, and the comparability downgrade —
// the golden pairs are built in memory (improvement, regression, missing
// section, cross-host, config mismatch, zero baseline).
#include "src/core/benchdiff.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace rtdvs {
namespace {

JsonValue MakeProvenance(const std::string& hostname) {
  JsonValue p = JsonValue::Object();
  p.Set("git_sha", "abc123");
  p.Set("hostname", hostname);
  p.Set("hardware_concurrency", 8);
  p.Set("build_type", "RelWithDebInfo");
  p.Set("sanitize", "none");
  return p;
}

// One rtdvs-bench-v1 document with a values section plus any extra section.
JsonValue MakeDoc(const std::string& bench, const std::string& hostname,
                  const std::map<std::string, double>& values,
                  bool quick = true,
                  std::optional<JsonValue> extra_section = std::nullopt) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "rtdvs-bench-v1");
  doc.Set("bench", bench);
  JsonValue config = JsonValue::Object();
  config.Set("provenance", MakeProvenance(hostname));
  config.Set("quick", quick);
  doc.Set("config", std::move(config));
  JsonValue sections = JsonValue::Array();
  JsonValue section = JsonValue::Object();
  section.Set("title", "main");
  JsonValue vals = JsonValue::Object();
  for (const auto& [key, value] : values) {
    vals.Set(key, value);
  }
  section.Set("values", std::move(vals));
  sections.Append(std::move(section));
  if (extra_section.has_value()) {
    sections.Append(std::move(*extra_section));
  }
  doc.Set("sections", std::move(sections));
  return doc;
}

BenchDoc Extract(const JsonValue& doc) {
  std::string error;
  auto extracted = ExtractBenchDoc(doc, &error);
  EXPECT_TRUE(extracted.has_value()) << error;
  return *extracted;
}

TEST(ExtractBenchDocTest, RejectsWrongSchema) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "something-else");
  std::string error;
  EXPECT_FALSE(ExtractBenchDoc(doc, &error).has_value());
  EXPECT_NE(error.find("rtdvs-bench-v1"), std::string::npos);
}

TEST(ExtractBenchDocTest, FlattensValuesAndProvenance) {
  BenchDoc doc = Extract(MakeDoc("fig09", "host-a", {{"sims_per_sec", 1500.0}}));
  EXPECT_EQ(doc.bench, "fig09");
  EXPECT_EQ(doc.provenance.at("hostname"), "host-a");
  EXPECT_EQ(doc.provenance.at("hardware_concurrency"), "8");
  ASSERT_EQ(doc.metrics.count("fig09/main/sims_per_sec"), 1u);
  EXPECT_DOUBLE_EQ(doc.metrics.at("fig09/main/sims_per_sec"), 1500.0);
}

TEST(ExtractBenchDocTest, FlattensTableRowsByLabelAndHeader) {
  JsonValue table = JsonValue::Object();
  JsonValue header = JsonValue::Array();
  header.Append("jobs");
  header.Append("sims_per_sec");
  header.Append("note");
  table.Set("header", std::move(header));
  JsonValue rows = JsonValue::Array();
  JsonValue row = JsonValue::Array();
  row.Append("4");
  row.Append("2111.5");
  row.Append("not-a-number");
  rows.Append(std::move(row));
  table.Set("rows", std::move(rows));
  JsonValue section = JsonValue::Object();
  section.Set("title", "summary");
  section.Set("table", std::move(table));
  JsonValue doc = MakeDoc("scaling", "h", {}, true, std::move(section));

  BenchDoc extracted = Extract(doc);
  ASSERT_EQ(extracted.metrics.count("scaling/summary/4/sims_per_sec"), 1u);
  EXPECT_DOUBLE_EQ(extracted.metrics.at("scaling/summary/4/sims_per_sec"),
                   2111.5);
  // Non-numeric cells are skipped, not parsed as 0.
  EXPECT_EQ(extracted.metrics.count("scaling/summary/4/note"), 0u);
}

TEST(ExtractBenchDocTest, FlattensSweepProfileAndRows) {
  JsonValue sweep = JsonValue::Object();
  JsonValue profile = JsonValue::Object();
  profile.Set("sims_per_sec", 900.0);
  profile.Set("p95_shard_ms", 12.5);
  sweep.Set("profile", std::move(profile));
  sweep.Set("elapsed_wall_ms", 450.0);
  sweep.Set("audit_violations", 0);
  JsonValue rows = JsonValue::Array();
  JsonValue row = JsonValue::Object();
  row.Set("utilization", 0.5);
  JsonValue policies = JsonValue::Array();
  JsonValue cell = JsonValue::Object();
  cell.Set("id", "cc_edf");
  cell.Set("normalized", 0.71);
  cell.Set("deadline_misses", 0);
  policies.Append(std::move(cell));
  row.Set("policies", std::move(policies));
  rows.Append(std::move(row));
  sweep.Set("rows", std::move(rows));
  JsonValue section = JsonValue::Object();
  section.Set("title", "panel");
  section.Set("sweep", std::move(sweep));
  JsonValue doc = MakeDoc("fig10", "h", {}, true, std::move(section));

  BenchDoc extracted = Extract(doc);
  EXPECT_DOUBLE_EQ(extracted.metrics.at("fig10/panel/profile/sims_per_sec"),
                   900.0);
  EXPECT_DOUBLE_EQ(extracted.metrics.at("fig10/panel/elapsed_wall_ms"), 450.0);
  EXPECT_DOUBLE_EQ(extracted.metrics.at("fig10/panel/u=0.5/cc_edf/normalized"),
                   0.71);
  EXPECT_DOUBLE_EQ(
      extracted.metrics.at("fig10/panel/u=0.5/cc_edf/deadline_misses"), 0.0);
}

TEST(DirectionForMetricTest, ClassifiesBySubstring) {
  EXPECT_EQ(DirectionForMetric("fig09/profile/sims_per_sec"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("scaling/summary/4/efficiency"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("fig09/elapsed_wall_ms"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("fig09/u=0.5/cc_edf/deadline_misses"),
            MetricDirection::kLowerIsBetter);
  // Lower-is-better wins when both substrings match: an energy rate is not
  // a throughput.
  EXPECT_EQ(DirectionForMetric("fig09/energy_per_sec"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("table4/seed"), MetricDirection::kInformational);
}

TEST(DiffBenchDocsTest, SelfDiffIsClean) {
  std::vector<BenchDoc> docs = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0},
                                     {"elapsed_wall_ms", 200.0}}))};
  DiffReport report = DiffBenchDocs(docs, docs, {});
  EXPECT_EQ(report.regressed, 0);
  EXPECT_EQ(report.missing, 0);
  EXPECT_FALSE(report.downgraded);
  EXPECT_FALSE(report.hard_fail);
  EXPECT_NE(report.ToMarkdown().find("result: OK"), std::string::npos);
}

TEST(DiffBenchDocsTest, ImprovementDoesNotFail) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1500.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.improved, 1);
  EXPECT_EQ(report.regressed, 0);
  EXPECT_FALSE(report.hard_fail);
}

TEST(DiffBenchDocsTest, RegressionHardFails) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 500.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.regressed, 1);
  EXPECT_TRUE(report.hard_fail);
  EXPECT_NE(report.ToMarkdown().find("result: REGRESSED"), std::string::npos);
  // The JSON report lists the offending metric.
  const JsonValue json = report.ToJson();
  EXPECT_EQ(json.Get("summary").Get("regressed").AsInt(), 1);
  EXPECT_EQ(json.Get("deltas").at(0).Get("verdict").AsString(), "regressed");
}

TEST(DiffBenchDocsTest, WithinThresholdIsOk) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 950.0}}))};  // -5%
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.regressed, 0);
  EXPECT_FALSE(report.hard_fail);
}

TEST(DiffBenchDocsTest, ThresholdOverrideTightensOneMetric) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 950.0}}))};  // -5%
  DiffOptions options;
  options.threshold_overrides = {{"sims_per_sec", 0.02}};
  DiffReport report = DiffBenchDocs(base, cand, options);
  EXPECT_EQ(report.regressed, 1);
  EXPECT_TRUE(report.hard_fail);
}

TEST(DiffBenchDocsTest, StarPatternScopesOverrideToOneBench) {
  // -20%: inside the wide 0.5 default override, outside the tight 0.1
  // fig09-scoped one. The '*' pattern must pin the tight band to fig09
  // and leave fig10 on the wide band.
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}})),
      Extract(MakeDoc("fig10", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 800.0}})),
      Extract(MakeDoc("fig10", "h", {{"sims_per_sec", 800.0}}))};
  DiffOptions options;
  options.threshold_overrides = {{"fig09*sims_per_sec", 0.1},
                                 {"sims_per_sec", 0.5}};
  DiffReport report = DiffBenchDocs(base, cand, options);
  EXPECT_EQ(report.regressed, 1);
  EXPECT_TRUE(report.hard_fail);
  for (const auto& delta : report.deltas) {
    if (delta.verdict == DeltaVerdict::kRegressed) {
      EXPECT_NE(delta.key.find("fig09"), std::string::npos) << delta.key;
    }
  }
}

TEST(DiffBenchDocsTest, StarPatternSubstringsMustAppearInOrder) {
  // "sims_per_sec*fig09" reversed never matches "fig09/.../sims_per_sec",
  // so the tight band does not apply and the -20% dip stays within the
  // wide default override.
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 800.0}}))};
  DiffOptions options;
  options.threshold_overrides = {{"sims_per_sec*fig09", 0.1},
                                 {"sims_per_sec", 0.5}};
  DiffReport report = DiffBenchDocs(base, cand, options);
  EXPECT_EQ(report.regressed, 0);
  EXPECT_FALSE(report.hard_fail);
}

TEST(DiffBenchDocsTest, MissingMetricIsRegressionLevel) {
  std::vector<BenchDoc> base = {Extract(
      MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}, {"extra", 1.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.missing, 1);
  EXPECT_TRUE(report.hard_fail);
}

TEST(DiffBenchDocsTest, MissingBenchIsRegressionLevel) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}})),
      Extract(MakeDoc("fig10", "h", {{"sims_per_sec", 800.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_TRUE(report.hard_fail);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("missing from candidate"), std::string::npos);
}

TEST(DiffBenchDocsTest, CrossHostRegressionDowngradesToWarning) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "host-a", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "host-b", {{"sims_per_sec", 500.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.regressed, 1);  // still reported...
  EXPECT_TRUE(report.downgraded);
  EXPECT_FALSE(report.hard_fail);  // ...but does not gate CI
  EXPECT_NE(report.ToMarkdown().find("DOWNGRADED"), std::string::npos);
}

TEST(DiffBenchDocsTest, IgnoreProvenanceRestoresHardFail) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "host-a", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "host-b", {{"sims_per_sec", 500.0}}))};
  DiffOptions options;
  options.ignore_provenance = true;
  DiffReport report = DiffBenchDocs(base, cand, options);
  EXPECT_FALSE(report.downgraded);
  EXPECT_TRUE(report.hard_fail);
}

TEST(DiffBenchDocsTest, ConfigMismatchDowngrades) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}, true))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 500.0}}, false))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_TRUE(report.downgraded);
  EXPECT_FALSE(report.hard_fail);
}

TEST(DiffBenchDocsTest, ZeroBaselineMissesAppearingRegresses) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"deadline_misses", 0.0}}))};
  std::vector<BenchDoc> cand = {
      Extract(MakeDoc("fig09", "h", {{"deadline_misses", 3.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.regressed, 1);
  EXPECT_TRUE(report.hard_fail);
}

TEST(DiffBenchDocsTest, ZeroToZeroIsOk) {
  std::vector<BenchDoc> docs = {
      Extract(MakeDoc("fig09", "h", {{"deadline_misses", 0.0}}))};
  DiffReport report = DiffBenchDocs(docs, docs, {});
  EXPECT_EQ(report.regressed, 0);
  EXPECT_FALSE(report.hard_fail);
}

TEST(DiffBenchDocsTest, NewMetricIsInformational) {
  std::vector<BenchDoc> base = {
      Extract(MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}}))};
  std::vector<BenchDoc> cand = {Extract(
      MakeDoc("fig09", "h", {{"sims_per_sec", 1000.0}, {"speedup", 2.0}}))};
  DiffReport report = DiffBenchDocs(base, cand, {});
  EXPECT_EQ(report.added, 1);
  EXPECT_FALSE(report.hard_fail);
}

}  // namespace
}  // namespace rtdvs
