#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "src/util/json.h"

namespace rtdvs {
namespace {

SweepOptions SmallOptions() {
  SweepOptions options;
  options.utilizations = {0.3, 0.7};
  options.num_tasks = 4;
  options.tasksets_per_point = 4;
  options.horizon_ms = 800.0;
  options.seed = 99;
  return options;
}

TEST(UtilizationSweep, ProducesOneRowPerUtilizationWithAllPolicies) {
  UtilizationSweep sweep(SmallOptions());
  SweepResult result = sweep.Run();
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(result.rows[0].utilization, 0.3);
  EXPECT_DOUBLE_EQ(result.rows[1].utilization, 0.7);
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.cells.size(), AllPaperPolicyIds().size());
    for (const auto& cell : row.cells) {
      EXPECT_EQ(cell.energy.count(), 4u);
    }
  }
  // The result echoes the resolved options and reports elapsed times.
  EXPECT_EQ(result.options.policy_ids, AllPaperPolicyIds());
  EXPECT_GT(result.options.jobs, 0);
  EXPECT_GT(result.elapsed_wall_ms, 0.0);
  EXPECT_GE(result.elapsed_cpu_ms, 0.0);
}

TEST(UtilizationSweep, InvariantsHoldPerRow) {
  UtilizationSweep sweep(SmallOptions());
  SweepResult result = sweep.Run();
  for (const auto& row : result.rows) {
    // Plain EDF is the first policy: its normalized energy is exactly 1.
    EXPECT_NEAR(row.cells[0].normalized_energy.mean(), 1.0, 1e-12);
    // The bound column (computed on EDF's workload) never exceeds EDF.
    EXPECT_LE(row.normalized_bound.mean(), 1.0 + 1e-9);
    for (size_t p = 0; p < row.cells.size(); ++p) {
      // All RT-DVS policies: no worse than EDF. (The per-run bound
      // comparison lives in tests/dvs/property_test.cc; comparing a
      // policy's energy against the EDF run's bound across runs is not a
      // valid invariant because executed tail work differs slightly.)
      EXPECT_LE(row.cells[p].normalized_energy.mean(), 1.0 + 1e-9);
      // EDF-based policies must not miss (RM ones only when the RM test
      // admits, which the harness does not filter for).
      const std::string& id = AllPaperPolicyIds()[p];
      if (id == "edf" || id == "static_edf" || id == "cc_edf" || id == "la_edf") {
        EXPECT_EQ(row.cells[p].deadline_misses, 0) << id;
      }
    }
  }
}

TEST(UtilizationSweep, DeterministicForSameSeed) {
  UtilizationSweep a(SmallOptions());
  UtilizationSweep b(SmallOptions());
  SweepResult result_a = a.Run();
  SweepResult result_b = b.Run();
  ASSERT_EQ(result_a.rows.size(), result_b.rows.size());
  for (size_t r = 0; r < result_a.rows.size(); ++r) {
    for (size_t p = 0; p < result_a.rows[r].cells.size(); ++p) {
      EXPECT_DOUBLE_EQ(result_a.rows[r].cells[p].energy.mean(),
                       result_b.rows[r].cells[p].energy.mean());
    }
  }
}

// The paired-comparison guarantee must survive parallel execution: a sweep
// run on one worker and the same sweep run on many workers must agree on
// every field, bit for bit (EXPECT_EQ on doubles, no tolerance).
TEST(UtilizationSweep, ParallelRunBitIdenticalToSerial) {
  SweepOptions serial_options = SmallOptions();
  serial_options.jobs = 1;
  SweepOptions parallel_options = SmallOptions();
  parallel_options.jobs = 4;

  SweepResult serial = UtilizationSweep(serial_options).Run();
  SweepResult parallel = UtilizationSweep(parallel_options).Run();

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (size_t r = 0; r < serial.rows.size(); ++r) {
    const SweepRow& s = serial.rows[r];
    const SweepRow& q = parallel.rows[r];
    EXPECT_EQ(s.utilization, q.utilization);
    EXPECT_EQ(s.bound.count(), q.bound.count());
    EXPECT_EQ(s.bound.mean(), q.bound.mean());
    EXPECT_EQ(s.bound.variance(), q.bound.variance());
    EXPECT_EQ(s.bound.min(), q.bound.min());
    EXPECT_EQ(s.bound.max(), q.bound.max());
    EXPECT_EQ(s.normalized_bound.mean(), q.normalized_bound.mean());
    EXPECT_EQ(s.normalized_bound.variance(), q.normalized_bound.variance());
    ASSERT_EQ(s.cells.size(), q.cells.size());
    for (size_t p = 0; p < s.cells.size(); ++p) {
      EXPECT_EQ(s.cells[p].energy.count(), q.cells[p].energy.count());
      EXPECT_EQ(s.cells[p].energy.mean(), q.cells[p].energy.mean());
      EXPECT_EQ(s.cells[p].energy.variance(), q.cells[p].energy.variance());
      EXPECT_EQ(s.cells[p].energy.min(), q.cells[p].energy.min());
      EXPECT_EQ(s.cells[p].energy.max(), q.cells[p].energy.max());
      EXPECT_EQ(s.cells[p].normalized_energy.mean(),
                q.cells[p].normalized_energy.mean());
      EXPECT_EQ(s.cells[p].normalized_energy.variance(),
                q.cells[p].normalized_energy.variance());
      EXPECT_EQ(s.cells[p].deadline_misses, q.cells[p].deadline_misses);
      EXPECT_EQ(s.cells[p].tasksets_with_misses, q.cells[p].tasksets_with_misses);
      // Policy decision counters merge in serial grid order, so even their
      // double-valued fields must agree bit for bit across --jobs values.
      EXPECT_EQ(s.cells[p].counters, q.cells[p].counters);
    }
  }
  // The profile's merged per-policy counters are serial-order folds of the
  // cells, so they are bit-identical too (timings of course differ).
  ASSERT_EQ(serial.profile.policy_counters.size(),
            parallel.profile.policy_counters.size());
  for (size_t p = 0; p < serial.profile.policy_counters.size(); ++p) {
    EXPECT_EQ(serial.profile.policy_counters[p], parallel.profile.policy_counters[p]);
  }
  // And the rendered artifacts agree byte for byte.
  std::ostringstream csv_serial, csv_parallel;
  WriteCsv(serial, csv_serial);
  WriteCsv(parallel, csv_parallel);
  EXPECT_EQ(csv_serial.str(), csv_parallel.str());
}

TEST(UtilizationSweep, JobsBeyondShardCountStillComplete) {
  SweepOptions options = SmallOptions();
  options.utilizations = {0.5};
  options.tasksets_per_point = 2;
  options.jobs = 16;  // more workers than shards
  SweepResult result = UtilizationSweep(options).Run();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].cells[0].energy.count(), 2u);
  EXPECT_EQ(result.options.jobs, 16);
}

TEST(UtilizationSweep, TablesRenderAllColumns) {
  UtilizationSweep sweep(SmallOptions());
  SweepResult result = sweep.Run();
  TextTable table = RenderEnergyTable(result, /*normalized=*/true);
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  for (const char* name : {"EDF", "StaticRM", "StaticEDF", "ccEDF", "ccRM",
                           "laEDF", "bound", "utilization"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  std::ostringstream miss_out;
  RenderMissTable(result).Print(miss_out);
  EXPECT_NE(miss_out.str().find("ccRM"), std::string::npos);
}

TEST(UtilizationSweep, WriteCsvEmitsOneLinePerPolicyPlusBound) {
  SweepOptions options = SmallOptions();
  options.utilizations = {0.5};
  UtilizationSweep sweep(options);
  SweepResult result = sweep.Run();
  std::ostringstream out;
  WriteCsv(result, out, "csv,tag");
  std::string text = out.str();
  // Header + one line per policy + the bound line.
  size_t lines = 0;
  for (char c : text) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 1 + AllPaperPolicyIds().size() + 1);
  EXPECT_NE(text.find("csv,tag,utilization,policy,"), std::string::npos);
  EXPECT_NE(text.find("csv,tag,0.5,edf,"), std::string::npos);
  EXPECT_NE(text.find("csv,tag,0.5,bound,"), std::string::npos);
}

// Regression: SweepOptions used to silently drop switch_time_ms,
// miss_policy and energy_coefficient instead of forwarding them into each
// shard's SimOptions — a §4.1 transition-cost sweep ran at zero cost.
TEST(UtilizationSweep, ForwardsSimOptionsIntoShards) {
  SweepOptions baseline = SmallOptions();
  baseline.utilizations = {0.7};
  baseline.policy_ids = {"edf", "cc_edf"};
  SweepResult ideal = UtilizationSweep(baseline).Run();

  SweepOptions with_cost = baseline;
  with_cost.switch_time_ms = 2.0;
  SweepResult costly = UtilizationSweep(with_cost).Run();
  // ccEDF switches speeds constantly: a 2 ms halt per switch must change
  // its energy; plain EDF never switches, so it is unaffected.
  EXPECT_EQ(ideal.rows[0].cells[0].energy.mean(),
            costly.rows[0].cells[0].energy.mean());
  EXPECT_NE(ideal.rows[0].cells[1].energy.mean(),
            costly.rows[0].cells[1].energy.mean());

  SweepOptions scaled = baseline;
  scaled.energy_coefficient = 3.0;
  SweepResult tripled = UtilizationSweep(scaled).Run();
  // Energy is linear in the coefficient, workload generation is untouched.
  EXPECT_NEAR(tripled.rows[0].cells[0].energy.mean(),
              3.0 * ideal.rows[0].cells[0].energy.mean(),
              1e-9 * ideal.rows[0].cells[0].energy.mean());

  SweepOptions firm = baseline;
  firm.utilizations = {1.0};
  firm.policy_ids = {"static_rm"};  // RM at U=1.0: misses are certain
  firm.miss_policy = MissPolicy::kAbortJob;
  SweepResult aborting = UtilizationSweep(firm).Run();
  EXPECT_GT(aborting.rows[0].cells[0].deadline_misses, 0);
  EXPECT_EQ(aborting.audit_violations, 0);
}

TEST(UtilizationSweep, AuditRunsInEveryShardByDefault) {
  SweepOptions options = SmallOptions();
  ASSERT_TRUE(options.audit);
  SweepResult result = UtilizationSweep(options).Run();
  EXPECT_EQ(result.audit_violations, 0);
  EXPECT_TRUE(result.audit_messages.empty());
  for (const auto& row : result.rows) {
    for (const auto& cell : row.cells) {
      EXPECT_EQ(cell.audit_violations, 0);
    }
  }
}

TEST(UtilizationSweep, UUniFastGeneratorAlsoWorks) {
  SweepOptions options = SmallOptions();
  options.use_uunifast = true;
  options.utilizations = {0.5};
  UtilizationSweep sweep(options);
  SweepResult result = sweep.Run();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_LE(result.rows[0].cells.back().normalized_energy.mean(), 1.0 + 1e-9);
}

TEST(UtilizationSweep, RecordsPolicyCountersAndProfile) {
  SweepOptions options = SmallOptions();
  SweepResult result = UtilizationSweep(options).Run();
  // The dynamic policies decide constantly; their counters cannot be empty.
  const auto& ids = result.options.policy_ids;
  for (const auto& row : result.rows) {
    for (size_t p = 0; p < row.cells.size(); ++p) {
      if (ids[p] == "cc_edf" || ids[p] == "la_edf") {
        EXPECT_GT(row.cells[p].counters.speed_change_requests, 0) << ids[p];
        EXPECT_GT(row.cells[p].counters.utilization_samples, 0) << ids[p];
      }
      if (ids[p] == "la_edf") {
        EXPECT_GT(row.cells[p].counters.deferral_decisions, 0);
      }
    }
  }
  // Profile: 2 utilizations x 4 task sets = 8 shards, each running every
  // policy; edf is in the default list, so the bound reuses its run.
  EXPECT_EQ(result.profile.shards, 8);
  EXPECT_EQ(result.profile.simulations,
            8 * static_cast<int64_t>(ids.size()));
  EXPECT_GT(result.profile.max_shard_ms, 0.0);
  EXPECT_GE(result.profile.p95_shard_ms, result.profile.p50_shard_ms);
  EXPECT_GE(result.profile.max_shard_ms, result.profile.p95_shard_ms);
  EXPECT_GT(result.profile.shards_per_sec, 0.0);
  EXPECT_GT(result.profile.sims_per_sec, 0.0);
  ASSERT_EQ(result.profile.policy_counters.size(), ids.size());
  // The profile totals are the fold of every cell.
  for (size_t p = 0; p < ids.size(); ++p) {
    PolicyCounters expected;
    for (const auto& row : result.rows) {
      expected.MergeFrom(row.cells[p].counters);
    }
    EXPECT_EQ(result.profile.policy_counters[p], expected) << ids[p];
  }
}

TEST(UtilizationSweep, ProgressCallbackSeesEveryShardInOrder) {
  SweepOptions options = SmallOptions();
  options.jobs = 2;
  std::atomic<int64_t> calls{0};
  int64_t last_done = 0;
  int64_t reported_total = 0;
  // The harness serializes progress calls under its merge mutex, so plain
  // captures are safe.
  options.progress = [&](int64_t done, int64_t total) {
    ++calls;
    EXPECT_EQ(done, last_done + 1);
    last_done = done;
    reported_total = total;
  };
  SweepResult result = UtilizationSweep(options).Run();
  EXPECT_EQ(calls.load(), result.profile.shards);
  EXPECT_EQ(last_done, result.profile.shards);
  EXPECT_EQ(reported_total, result.profile.shards);
}

TEST(SweepResultToJson, EmitsValidatableDocument) {
  SweepOptions options = SmallOptions();
  options.policy_ids = {"edf", "cc_edf"};
  SweepResult result = UtilizationSweep(options).Run();
  JsonValue doc = SweepResultToJson(result);
  // Round-trips through the strict parser.
  auto parsed = JsonValue::Parse(doc.ToString(1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(doc.Get("config").Get("tasksets_per_point").AsInt(), 4);
  const JsonValue& rows = doc.Get("rows");
  ASSERT_EQ(rows.size(), 2u);
  const JsonValue& first = rows.at(0);
  EXPECT_DOUBLE_EQ(first.Get("utilization").AsDouble(), 0.3);
  const JsonValue& policies = first.Get("policies");
  ASSERT_EQ(policies.size(), 2u);
  EXPECT_EQ(policies.at(0).Get("id").AsString(), "edf");
  EXPECT_EQ(policies.at(1).Get("id").AsString(), "cc_edf");
  // Counters surface with their exact values.
  EXPECT_EQ(policies.at(1).Get("counters").Get("speed_change_requests").AsInt(),
            result.rows[0].cells[1].counters.speed_change_requests);
  EXPECT_EQ(doc.Get("profile").Get("shards").AsInt(), result.profile.shards);
  EXPECT_EQ(doc.Get("audit_violations").AsInt(), 0);
}

TEST(UtilizationSweep, MultiprocessorSweepRunsBothModes) {
  for (MpMode mode : {MpMode::kPartitioned, MpMode::kGlobal}) {
    SweepOptions options = SmallOptions();
    options.num_cores = 2;
    options.mp_mode = mode;
    options.policy_ids = {"edf", "cc_edf"};
    options.utilizations = {0.3};
    SweepResult result = UtilizationSweep(options).Run();
    ASSERT_EQ(result.rows.size(), 1u);
    const SweepRow& row = result.rows[0];
    // At per-core u = 0.3 every generated set partitions onto 2 EDF cores,
    // so all shards produce samples in both modes.
    for (const auto& cell : row.cells) {
      EXPECT_EQ(cell.admission_rejections, 0);
      EXPECT_EQ(cell.energy.count(), 4u);
      EXPECT_GT(cell.energy.mean(), 0.0);
    }
    // Normalization baseline is cluster-EDF on the same workload.
    EXPECT_NEAR(row.cells[0].normalized_energy.mean(), 1.0, 1e-12);
    EXPECT_LE(row.cells[1].normalized_energy.mean(), 1.0 + 1e-9);
    EXPECT_EQ(result.audit_violations, 0) << MpModeName(mode);
  }
}

TEST(UtilizationSweep, MultiprocessorPartitionedCountsRejections) {
  SweepOptions options = SmallOptions();
  options.num_cores = 2;
  options.mp_mode = MpMode::kPartitioned;
  options.policy_ids = {"cc_edf"};
  // Per-core u = 0.95 over 4 tasks: the total target is 1.9, and some draws
  // put > 1.0 on a single task's core, defeating every bin-packer.
  options.utilizations = {0.95};
  options.tasksets_per_point = 12;
  SweepResult result = UtilizationSweep(options).Run();
  const PolicyCell& cell = result.rows[0].cells[0];
  EXPECT_GT(cell.admission_rejections, 0);
  // Rejected shards contribute no samples; the split is exact.
  EXPECT_EQ(cell.energy.count() + static_cast<size_t>(cell.admission_rejections),
            12u);
}

TEST(UtilizationSweep, MultiprocessorParallelRunBitIdenticalToSerial) {
  SweepOptions serial_options = SmallOptions();
  serial_options.num_cores = 4;
  serial_options.policy_ids = {"edf", "cc_edf", "cc_rm"};
  serial_options.jobs = 1;
  SweepOptions parallel_options = serial_options;
  parallel_options.jobs = 4;
  SweepResult serial = UtilizationSweep(serial_options).Run();
  SweepResult parallel = UtilizationSweep(parallel_options).Run();
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (size_t r = 0; r < serial.rows.size(); ++r) {
    const SweepRow& s = serial.rows[r];
    const SweepRow& q = parallel.rows[r];
    EXPECT_EQ(s.bound.mean(), q.bound.mean());
    for (size_t p = 0; p < s.cells.size(); ++p) {
      EXPECT_EQ(s.cells[p].energy.count(), q.cells[p].energy.count());
      EXPECT_EQ(s.cells[p].energy.mean(), q.cells[p].energy.mean());
      EXPECT_EQ(s.cells[p].normalized_energy.mean(),
                q.cells[p].normalized_energy.mean());
      EXPECT_EQ(s.cells[p].admission_rejections, q.cells[p].admission_rejections);
      EXPECT_EQ(s.cells[p].counters, q.cells[p].counters);
    }
  }
}

TEST(SweepResultToJson, CarriesClusterConfigAndRejections) {
  SweepOptions options = SmallOptions();
  options.num_cores = 2;
  options.mp_mode = MpMode::kGlobal;
  options.mp_partition = PartitionHeuristic::kWorstFit;
  options.policy_ids = {"cc_edf"};
  options.utilizations = {0.4};
  SweepResult result = UtilizationSweep(options).Run();
  JsonValue doc = SweepResultToJson(result);
  EXPECT_EQ(doc.Get("config").Get("num_cores").AsInt(), 2);
  EXPECT_EQ(doc.Get("config").Get("mp_mode").AsString(), "global");
  EXPECT_EQ(doc.Get("config").Get("partition").AsString(), "wf");
  EXPECT_EQ(doc.Get("rows")
                .at(0)
                .Get("policies")
                .at(0)
                .Get("admission_rejections")
                .AsInt(),
            0);
}

TEST(DefaultUtilizationGrid, TwentyPointsFrom5To100Percent) {
  auto grid = DefaultUtilizationGrid();
  ASSERT_EQ(grid.size(), 20u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.05);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
}

}  // namespace
}  // namespace rtdvs
