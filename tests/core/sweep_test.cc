#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rtdvs {
namespace {

SweepOptions SmallOptions() {
  SweepOptions options;
  options.utilizations = {0.3, 0.7};
  options.num_tasks = 4;
  options.tasksets_per_point = 4;
  options.horizon_ms = 800.0;
  options.seed = 99;
  return options;
}

TEST(UtilizationSweep, ProducesOneRowPerUtilizationWithAllPolicies) {
  UtilizationSweep sweep(SmallOptions());
  auto rows = sweep.Run();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].utilization, 0.3);
  EXPECT_DOUBLE_EQ(rows[1].utilization, 0.7);
  for (const auto& row : rows) {
    ASSERT_EQ(row.cells.size(), AllPaperPolicyIds().size());
    for (const auto& cell : row.cells) {
      EXPECT_EQ(cell.energy.count(), 4u);
    }
  }
}

TEST(UtilizationSweep, InvariantsHoldPerRow) {
  UtilizationSweep sweep(SmallOptions());
  auto rows = sweep.Run();
  for (const auto& row : rows) {
    // Plain EDF is the first policy: its normalized energy is exactly 1.
    EXPECT_NEAR(row.cells[0].normalized_energy.mean(), 1.0, 1e-12);
    // The bound column (computed on EDF's workload) never exceeds EDF.
    EXPECT_LE(row.normalized_bound.mean(), 1.0 + 1e-9);
    for (size_t p = 0; p < row.cells.size(); ++p) {
      // All RT-DVS policies: no worse than EDF. (The per-run bound
      // comparison lives in tests/dvs/property_test.cc; comparing a
      // policy's energy against the EDF run's bound across runs is not a
      // valid invariant because executed tail work differs slightly.)
      EXPECT_LE(row.cells[p].normalized_energy.mean(), 1.0 + 1e-9);
      // EDF-based policies must not miss (RM ones only when the RM test
      // admits, which the harness does not filter for).
      const std::string& id = AllPaperPolicyIds()[p];
      if (id == "edf" || id == "static_edf" || id == "cc_edf" || id == "la_edf") {
        EXPECT_EQ(row.cells[p].deadline_misses, 0) << id;
      }
    }
  }
}

TEST(UtilizationSweep, DeterministicForSameSeed) {
  UtilizationSweep a(SmallOptions());
  UtilizationSweep b(SmallOptions());
  auto rows_a = a.Run();
  auto rows_b = b.Run();
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t r = 0; r < rows_a.size(); ++r) {
    for (size_t p = 0; p < rows_a[r].cells.size(); ++p) {
      EXPECT_DOUBLE_EQ(rows_a[r].cells[p].energy.mean(),
                       rows_b[r].cells[p].energy.mean());
    }
  }
}

TEST(UtilizationSweep, TablesRenderAllColumns) {
  UtilizationSweep sweep(SmallOptions());
  auto rows = sweep.Run();
  TextTable table = sweep.ToTable(rows, /*normalized=*/true);
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  for (const char* name : {"EDF", "StaticRM", "StaticEDF", "ccEDF", "ccRM",
                           "laEDF", "bound", "utilization"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  std::ostringstream miss_out;
  sweep.MissTable(rows).Print(miss_out);
  EXPECT_NE(miss_out.str().find("ccRM"), std::string::npos);
}

TEST(UtilizationSweep, UUniFastGeneratorAlsoWorks) {
  SweepOptions options = SmallOptions();
  options.use_uunifast = true;
  options.utilizations = {0.5};
  UtilizationSweep sweep(options);
  auto rows = sweep.Run();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_LE(rows[0].cells.back().normalized_energy.mean(), 1.0 + 1e-9);
}

TEST(DefaultUtilizationGrid, TwentyPointsFrom5To100Percent) {
  auto grid = DefaultUtilizationGrid();
  ASSERT_EQ(grid.size(), 20u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.05);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
}

}  // namespace
}  // namespace rtdvs
