// Golden reproduction of the paper's worked example: the task set of
// Table 2, the actual execution times of Table 3, machine 0, a 16 ms
// horizon, and the normalized energies of Table 4:
//
//   none (plain EDF)       1.0
//   statically-scaled RM   1.0
//   statically-scaled EDF  0.64
//   cycle-conserving EDF   0.52
//   cycle-conserving RM    0.71
//   look-ahead EDF         0.44
//
// The absolute energies these ratios come from (energy unit = one
// max-frequency millisecond of work at 1 V) are derivable by hand from the
// paper's Figures 2, 3, 5 and 7: EDF 175, StaticEDF 112, ccEDF 91,
// ccRM 125, laEDF 77.
#include <gtest/gtest.h>

#include <memory>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/dvs/static_scaling_policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"

namespace rtdvs {
namespace {

// Table 3 as fractions of each task's WCET: T1 used 2 then 1 of C=3,
// T2 used 1 then 1 of C=3, T3 used 1 of C=1 every time.
std::unique_ptr<ExecTimeModel> Table3Model() {
  return std::make_unique<TableFractionModel>(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
}

SimResult RunExample(const std::string& policy_id) {
  TaskSet tasks = TaskSet::PaperExample();
  auto policy = MakePolicy(policy_id);
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  options.idle_level = 0.0;
  options.record_trace = true;
  return RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
}

TEST(PaperExample, StaticScalingChoosesPaperFrequencies) {
  // Figure 2: static EDF runs the example at 0.75 (U = 0.746); static RM
  // cannot pass its test below 1.0.
  TaskSet tasks = TaskSet::PaperExample();
  MachineSpec machine = MachineSpec::Machine0();

  StaticScalingPolicy edf(SchedulerKind::kEdf);
  StaticScalingPolicy rm(SchedulerKind::kRm);
  auto model = Table3Model();
  SimOptions options;
  options.horizon_ms = 16.0;
  (void)RunSimulation(tasks, machine, edf, *model, options);
  auto model2 = Table3Model();
  (void)RunSimulation(tasks, machine, rm, *model2, options);

  EXPECT_DOUBLE_EQ(edf.chosen_point().frequency, 0.75);
  EXPECT_DOUBLE_EQ(rm.chosen_point().frequency, 1.0);
}

struct Table4Row {
  const char* policy_id;
  double absolute_energy;
  double normalized;  // the value printed in Table 4
};

class Table4Test : public ::testing::TestWithParam<Table4Row> {};

TEST_P(Table4Test, ReproducesEnergy) {
  const Table4Row& row = GetParam();
  SimResult result = RunExample(row.policy_id);
  EXPECT_EQ(result.deadline_misses, 0) << result.Summary();
  EXPECT_NEAR(result.total_energy(), row.absolute_energy, 1e-6)
      << result.trace.RenderList(TaskSet::PaperExample());
  SimResult baseline = RunExample("edf");
  EXPECT_NEAR(result.total_energy() / baseline.total_energy(), row.normalized, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, Table4Test,
    ::testing::Values(Table4Row{"edf", 175.0, 1.0},   // 7 work units at 5 V
                      Table4Row{"static_rm", 175.0, 1.0},
                      Table4Row{"static_edf", 112.0, 0.64},
                      Table4Row{"cc_edf", 91.0, 0.52},
                      Table4Row{"cc_rm", 125.0, 0.71},
                      Table4Row{"la_edf", 77.0, 0.44}),
    [](const ::testing::TestParamInfo<Table4Row>& param_info) {
      return std::string(param_info.param.policy_id);
    });

TEST(PaperExample, CcEdfFollowsFigure3FrequencyTrace) {
  // Figure 3's execution: T1 at 0.75 for [0, 2.67), T2 at 0.75 until 4,
  // T3 at 0.5 until 6, idle, then T1 again at 0.75 from 8.
  SimResult result = RunExample("cc_edf");
  const auto& segments = result.trace.segments();
  ASSERT_GE(segments.size(), 4u);
  EXPECT_EQ(segments[0].task_id, 0);
  EXPECT_DOUBLE_EQ(segments[0].point.frequency, 0.75);
  EXPECT_NEAR(segments[0].end_ms, 2.0 / 0.75, 1e-9);
  EXPECT_EQ(segments[1].task_id, 1);
  EXPECT_DOUBLE_EQ(segments[1].point.frequency, 0.75);
  EXPECT_NEAR(segments[1].end_ms, 4.0, 1e-9);
  EXPECT_EQ(segments[2].task_id, 2);
  EXPECT_DOUBLE_EQ(segments[2].point.frequency, 0.5);
  EXPECT_NEAR(segments[2].end_ms, 6.0, 1e-9);
  EXPECT_EQ(segments[3].state, CpuState::kIdle);
}

TEST(PaperExample, LaEdfStartsAtThreeQuartersThenDropsToHalf) {
  // Figure 7(b): the deferral pass requires frequency 0.75 at time 0;
  // (c) after T1 completes at 2.67, 0.5 suffices for the rest.
  SimResult result = RunExample("la_edf");
  const auto& segments = result.trace.segments();
  ASSERT_GE(segments.size(), 2u);
  EXPECT_EQ(segments[0].task_id, 0);
  EXPECT_DOUBLE_EQ(segments[0].point.frequency, 0.75);
  EXPECT_NEAR(segments[0].end_ms, 2.0 / 0.75, 1e-9);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(segments[i].point.frequency, 0.5) << "segment " << i;
  }
}

TEST(PaperExample, CcRmFollowsFigure5FrequencyTrace) {
  // Figure 5: 1.0 until T1 completes at 2, then 0.75 until T2 completes at
  // 3.33, then 0.5.
  SimResult result = RunExample("cc_rm");
  const auto& segments = result.trace.segments();
  ASSERT_GE(segments.size(), 3u);
  EXPECT_EQ(segments[0].task_id, 0);
  EXPECT_DOUBLE_EQ(segments[0].point.frequency, 1.0);
  EXPECT_NEAR(segments[0].end_ms, 2.0, 1e-9);
  EXPECT_EQ(segments[1].task_id, 1);
  EXPECT_DOUBLE_EQ(segments[1].point.frequency, 0.75);
  EXPECT_NEAR(segments[1].end_ms, 2.0 + 4.0 / 3.0, 1e-9);
  EXPECT_EQ(segments[2].task_id, 2);
  EXPECT_DOUBLE_EQ(segments[2].point.frequency, 0.5);
}

TEST(PaperExample, LaEdfGanttMatchesFigure7Snapshot) {
  // The full 16 ms execution trace of Figure 7(f), rendered at 2 columns
  // per millisecond: T1 at 0.75 until 2.67 ms, T2 and T3 at 0.5, idle
  // 6.67-8, T1 again at 8 (now at 0.5), T2 at 10, T3 at 14.
  SimResult result = RunExample("la_edf");
  const std::string expected =
      "f/10  |8888855555555---55555555----5555|\n"
      "T1    |######..........####............|\n"
      "T2    |.....#####..........####........|\n"
      "T3    |.........#####..............####|\n"
      "idle  |.............___........____....|\n"
      "t(ms)  0                             16\n";
  EXPECT_EQ(result.trace.RenderGantt(TaskSet::PaperExample(), 32, 16.0), expected);
}

TEST(PaperExample, StaticRmWorstCaseMissesAtLowerFrequency) {
  // Figure 2's point: at frequency 0.75 the RM schedule of the example
  // misses T3's deadline under worst-case execution. We emulate by scaling
  // the machine away: a machine whose only point is (0.75-like) cannot
  // exist (max must be 1.0), so instead run plain RM on a task set scaled
  // by 1/0.75 — the identical schedule — and observe the miss.
  TaskSet scaled;
  const TaskSet example = TaskSet::PaperExample();
  for (const auto& task : example.tasks()) {
    scaled.AddTask({task.name, task.period_ms, task.wcet_ms / 0.75, 0.0});
  }
  auto policy = MakePolicy("rm");
  ConstantFractionModel full(1.0);
  SimOptions options;
  options.horizon_ms = 16.0;
  SimResult result =
      RunSimulation(scaled, MachineSpec::Machine0(), *policy, full, options);
  EXPECT_GT(result.deadline_misses, 0);
  // And EDF schedules the same scaled set without misses (U = 0.995 <= 1).
  auto edf = MakePolicy("edf");
  ConstantFractionModel full2(1.0);
  SimResult edf_result =
      RunSimulation(scaled, MachineSpec::Machine0(), *edf, full2, options);
  EXPECT_EQ(edf_result.deadline_misses, 0);
}

}  // namespace
}  // namespace rtdvs
