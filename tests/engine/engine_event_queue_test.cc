#include "src/engine/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/util/random.h"
#include "src/util/time_eps.h"

namespace rtdvs {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push(5.0, EngineEventType::kDeadline, 1);
  queue.Push(1.0, EngineEventType::kRelease, 0);
  queue.Push(3.0, EngineEventType::kPolicyTimer, -1, 7);
  queue.Push(2.0, EngineEventType::kHorizon);

  std::vector<double> times;
  while (!queue.Empty()) {
    times.push_back(queue.Pop().time_ms);
  }
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 5.0}));
}

TEST(EventQueue, PayloadAndTaskIdRoundTrip) {
  EventQueue queue;
  queue.Push(4.0, EngineEventType::kDeadline, 3, 0xfeedfaceULL);
  const EngineEvent event = queue.Pop();
  EXPECT_EQ(event.type, EngineEventType::kDeadline);
  EXPECT_EQ(event.task_id, 3);
  EXPECT_EQ(event.payload, 0xfeedfaceULL);
}

TEST(EventQueue, EqualTimestampsPopFifo) {
  // Ties are broken by push sequence, so a driver draining everything due
  // "now" observes equal-time events in insertion order.
  EventQueue queue;
  for (uint64_t i = 0; i < 8; ++i) {
    queue.Push(10.0, EngineEventType::kRelease, static_cast<int>(i), i);
  }
  for (uint64_t i = 0; i < 8; ++i) {
    const EngineEvent event = queue.Pop();
    EXPECT_EQ(event.payload, i);
  }
}

TEST(EventQueue, EpsilonCloseTimestampsStaySorted) {
  // Timestamps kTimeEpsMs apart are distinct values: they must pop in exact
  // timestamp order, not collapse into insertion order. Interleave pushes
  // so FIFO order and time order disagree.
  EventQueue queue;
  const double base = 100.0;
  std::vector<double> expected;
  for (int i = 9; i >= 0; --i) {
    const double t = base + static_cast<double>(i) * kTimeEpsMs;
    queue.Push(t, EngineEventType::kDeadline, i, static_cast<uint64_t>(i));
    expected.push_back(t);
  }
  std::sort(expected.begin(), expected.end());
  for (int i = 0; i < 10; ++i) {
    const EngineEvent event = queue.Pop();
    EXPECT_EQ(event.time_ms, expected[static_cast<size_t>(i)]) << i;
    // Reverse-order pushes: the earliest time is the last push.
    EXPECT_EQ(event.task_id, i);
  }
}

TEST(EventQueue, HeapInvariantHoldsUnderRandomChurn) {
  EventQueue queue;
  Pcg32 rng(42);
  double watermark = 0.0;
  for (int step = 0; step < 2000; ++step) {
    if (queue.Empty() || rng.NextDouble() < 0.6) {
      // Mix far-future times with epsilon-close clusters around the
      // watermark (releases and deadlines bunch up at hyperperiod points).
      double t = watermark + rng.NextDouble() * 10.0;
      if (rng.NextDouble() < 0.3) {
        t = watermark + static_cast<double>(rng.NextBounded(3)) * kTimeEpsMs;
      }
      queue.Push(t, EngineEventType::kRelease,
                 static_cast<int>(rng.NextBounded(8)));
    } else {
      const EngineEvent event = queue.Pop();
      EXPECT_GE(event.time_ms, watermark);
      watermark = event.time_ms;
    }
    ASSERT_TRUE(queue.HeapInvariantHolds()) << "after step " << step;
  }
}

TEST(EventQueueDeathTest, CorruptedHeapDiesInsteadOfReorderingTime) {
  // Fault injection: corrupt the raw heap array and prove the pop-order
  // guard refuses to hand out events out of time order, rather than
  // silently running simulated time backwards.
  auto corrupt_and_drain = [] {
    EventQueue queue;
    for (int i = 0; i < 6; ++i) {
      queue.Push(static_cast<double>(i), EngineEventType::kRelease, i);
    }
    queue.TestOnlySwapSlots(0, queue.Size() - 1);
    while (!queue.Empty()) {
      (void)queue.Pop();
    }
  };
  EXPECT_DEATH(corrupt_and_drain(), "out of time order");
}

}  // namespace
}  // namespace rtdvs
