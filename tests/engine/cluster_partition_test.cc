// Partitioned-admission unit tests: hand-checked bin-packing fixtures for
// the four heuristics, the RM utilization table, heterogeneous per-core
// scheduler kinds, and infeasible rejection. Every expected assignment below
// was worked out by hand from the admission contract in
// src/engine/cluster.h before the implementation existed.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/cluster.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"

namespace rtdvs {
namespace {

// Tasks with exact utilizations: period 10 ms, wcet = 10 * U.
TaskSet TasksWithUtilizations(const std::vector<double>& utilizations) {
  std::vector<Task> tasks;
  for (double u : utilizations) {
    tasks.push_back({"", 10.0, 10.0 * u, 0.0});
  }
  return TaskSet(tasks);
}

TEST(ClusterPartitionTest, NamesAndParsersRoundTrip) {
  EXPECT_STREQ(MpModeName(MpMode::kPartitioned), "partitioned");
  EXPECT_STREQ(MpModeName(MpMode::kGlobal), "global");
  EXPECT_EQ(ParseMpMode("partitioned"), MpMode::kPartitioned);
  EXPECT_EQ(ParseMpMode("global"), MpMode::kGlobal);
  EXPECT_FALSE(ParseMpMode("clustered").has_value());
  for (PartitionHeuristic h :
       {PartitionHeuristic::kFirstFit, PartitionHeuristic::kNextFit,
        PartitionHeuristic::kBestFit, PartitionHeuristic::kWorstFit}) {
    EXPECT_EQ(ParsePartitionHeuristic(PartitionHeuristicName(h)), h);
  }
  EXPECT_FALSE(ParsePartitionHeuristic("ffd").has_value());
}

TEST(ClusterPartitionTest, RmUtilizationBoundMatchesLiuLayland) {
  EXPECT_DOUBLE_EQ(RmUtilizationBound(0), 1.0);
  EXPECT_DOUBLE_EQ(RmUtilizationBound(1), 1.0);
  EXPECT_NEAR(RmUtilizationBound(2), 2.0 * (std::sqrt(2.0) - 1.0), 1e-12);
  EXPECT_NEAR(RmUtilizationBound(3), 3.0 * (std::cbrt(2.0) - 1.0), 1e-12);
  // The bound decreases toward ln 2.
  EXPECT_GT(RmUtilizationBound(2), RmUtilizationBound(3));
  EXPECT_GT(RmUtilizationBound(100), std::log(2.0) - 1e-9);
}

// Fixture A, U = {0.5, 0.6, 0.3} on 2 EDF cores. Hand-check:
//   FF: t0->c0 (0.5); t1 doesn't fit c0 (1.1) -> c1; t2 fits c0 (0.8) -> c0.
//   NF: cursor moves to c1 after t1, so t2 lands on c1 (0.9).
//   BF: t2 admitted by both, highest-utilization core is c1 (0.6) -> c1.
//   WF: t2 admitted by both, lowest-utilization core is c0 (0.5) -> c0.
// So A separates {FF, WF} = [0,1,0] from {NF, BF} = [0,1,1].
TEST(ClusterPartitionTest, FixtureASeparatesFirstWorstFromNextBest) {
  TaskSet tasks = TasksWithUtilizations({0.5, 0.6, 0.3});
  PartitionResult ff = PartitionTasks(tasks, 2, PartitionHeuristic::kFirstFit);
  PartitionResult nf = PartitionTasks(tasks, 2, PartitionHeuristic::kNextFit);
  PartitionResult bf = PartitionTasks(tasks, 2, PartitionHeuristic::kBestFit);
  PartitionResult wf = PartitionTasks(tasks, 2, PartitionHeuristic::kWorstFit);
  for (const PartitionResult* r : {&ff, &nf, &bf, &wf}) {
    ASSERT_TRUE(r->feasible) << r->error;
    EXPECT_EQ(r->cores_used, 2);
  }
  EXPECT_EQ(ff.core_of_task, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(nf.core_of_task, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(bf.core_of_task, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(wf.core_of_task, (std::vector<int>{0, 1, 0}));
  EXPECT_NEAR(ff.core_utilization[0], 0.8, 1e-12);
  EXPECT_NEAR(ff.core_utilization[1], 0.6, 1e-12);
  EXPECT_NEAR(bf.core_utilization[1], 0.9, 1e-12);
  EXPECT_EQ(ff.core_task_count, (std::vector<int>{2, 1}));
  EXPECT_EQ(nf.core_task_count, (std::vector<int>{1, 2}));
}

// Fixture B, U = {0.6, 0.5, 0.2} on 2 EDF cores. Hand-check:
//   FF: t2 fits c0 (0.8) -> c0.          BF: highest admitting is c0 (0.6).
//   NF: cursor sits on c1 -> c1 (0.7).   WF: lowest admitting is c1 (0.5).
// So B separates {FF, BF} = [0,1,0] from {NF, WF} = [0,1,1]. Combined with
// fixture A, every heuristic's (A, B) outcome pair is unique, so the two
// fixtures together distinguish all four heuristics pairwise.
TEST(ClusterPartitionTest, FixtureBSeparatesFirstBestFromNextWorst) {
  TaskSet tasks = TasksWithUtilizations({0.6, 0.5, 0.2});
  PartitionResult ff = PartitionTasks(tasks, 2, PartitionHeuristic::kFirstFit);
  PartitionResult nf = PartitionTasks(tasks, 2, PartitionHeuristic::kNextFit);
  PartitionResult bf = PartitionTasks(tasks, 2, PartitionHeuristic::kBestFit);
  PartitionResult wf = PartitionTasks(tasks, 2, PartitionHeuristic::kWorstFit);
  EXPECT_EQ(ff.core_of_task, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(nf.core_of_task, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(bf.core_of_task, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(wf.core_of_task, (std::vector<int>{0, 1, 1}));
}

TEST(ClusterPartitionTest, WorstFitSpreadsAcrossEmptyCores) {
  // Four tasks of U = 0.4 on 4 cores: WF always picks the emptiest core, so
  // each task gets its own; FF stacks pairs (0.8 <= 1).
  TaskSet tasks = TasksWithUtilizations({0.4, 0.4, 0.4, 0.4});
  PartitionResult wf = PartitionTasks(tasks, 4, PartitionHeuristic::kWorstFit);
  PartitionResult ff = PartitionTasks(tasks, 4, PartitionHeuristic::kFirstFit);
  EXPECT_EQ(wf.core_of_task, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(wf.cores_used, 4);
  EXPECT_EQ(ff.core_of_task, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(ff.cores_used, 2);
}

TEST(ClusterPartitionTest, RmBoundTighterThanEdf) {
  // Two U = 0.5 tasks share one EDF core (sum exactly 1.0) but not one RM
  // core (1.0 > 2(sqrt(2)-1) ~ 0.828).
  TaskSet tasks = TasksWithUtilizations({0.5, 0.5});
  PartitionResult edf = PartitionTasks(tasks, 2, PartitionHeuristic::kFirstFit,
                                       SchedulerKind::kEdf);
  PartitionResult rm = PartitionTasks(tasks, 2, PartitionHeuristic::kFirstFit,
                                      SchedulerKind::kRm);
  ASSERT_TRUE(edf.feasible);
  ASSERT_TRUE(rm.feasible);
  EXPECT_EQ(edf.core_of_task, (std::vector<int>{0, 0}));
  EXPECT_EQ(rm.core_of_task, (std::vector<int>{0, 1}));
  // A third U = 0.5 task then fits nowhere under RM on 2 cores.
  PartitionResult rm3 = PartitionTasks(TasksWithUtilizations({0.5, 0.5, 0.5}), 2,
                                       PartitionHeuristic::kFirstFit,
                                       SchedulerKind::kRm);
  EXPECT_FALSE(rm3.feasible);
}

TEST(ClusterPartitionTest, HeterogeneousCoresAdmitPerDestinationKind) {
  // U = {0.7, 0.2}: an EDF core 0 takes both (0.9 <= 1); an RM core 0
  // rejects the second (0.9 > 0.828) and pushes it to core 1.
  TaskSet tasks = TasksWithUtilizations({0.7, 0.2});
  PartitionResult mixed =
      PartitionTasks(tasks, 2, PartitionHeuristic::kFirstFit,
                     std::vector<SchedulerKind>{SchedulerKind::kEdf,
                                                SchedulerKind::kRm});
  PartitionResult rm = PartitionTasks(tasks, 2, PartitionHeuristic::kFirstFit,
                                      SchedulerKind::kRm);
  EXPECT_EQ(mixed.core_of_task, (std::vector<int>{0, 0}));
  EXPECT_EQ(rm.core_of_task, (std::vector<int>{0, 1}));
}

TEST(ClusterPartitionTest, InfeasibleSetRejectedWithExplanation) {
  // Three U = 0.7 tasks cannot share 2 EDF cores (any pair sums to 1.4).
  TaskSet tasks = TasksWithUtilizations({0.7, 0.7, 0.7});
  for (PartitionHeuristic h :
       {PartitionHeuristic::kFirstFit, PartitionHeuristic::kNextFit,
        PartitionHeuristic::kBestFit, PartitionHeuristic::kWorstFit}) {
    PartitionResult r = PartitionTasks(tasks, 2, h);
    EXPECT_FALSE(r.feasible) << PartitionHeuristicName(h);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(r.cores_used, 0);
    EXPECT_EQ(r.core_of_task, (std::vector<int>{-1, -1, -1}));
  }
  // The same set is trivially feasible on 3 cores.
  EXPECT_TRUE(PartitionTasks(tasks, 3, PartitionHeuristic::kFirstFit).feasible);
}

TEST(ClusterPartitionTest, AdmissionToleranceAcceptsExactFullCore) {
  // Utilizations summing to exactly 1.0 on one EDF core must be admitted
  // (the +1e-9 tolerance exists for accumulated rounding, and 0.25 * 4 is
  // exact in binary anyway).
  TaskSet tasks = TasksWithUtilizations({0.25, 0.25, 0.25, 0.25});
  PartitionResult r = PartitionTasks(tasks, 1, PartitionHeuristic::kFirstFit);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.cores_used, 1);
  EXPECT_NEAR(r.core_utilization[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace rtdvs
