// Figure 12: EDF-normalized energy when every invocation consumes a constant
// 90%, 70% or 50% of its worst case (8 tasks, machine 0, perfect halt).
// Paper findings: static scaling is unaffected (it only sees worst cases);
// ccRM barely adapts; ccEDF and laEDF improve sharply as actual computation
// shrinks.
#include "bench/sweep_main.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  if (!rtdvs::ParseSweepFlags(argc, argv,
                              "Reproduces Figure 12: normalized energy with "
                              "actual computation = 0.9/0.7/0.5 of worst case.",
                              &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("fig12_const_fraction");
  rtdvs::RecordSweepFlags(flags, &json);
  for (double fraction : {0.9, 0.7, 0.5}) {
    rtdvs::SweepBenchConfig config;
    config.title = rtdvs::StrFormat("Figure 12: 8 tasks, c = %.1f", fraction);
    config.csv_tag = rtdvs::StrFormat("fig12_c%.1f", fraction);
    config.options.num_tasks = 8;
    config.options.exec_model_factory = [fraction] {
      return std::make_unique<rtdvs::ConstantFractionModel>(fraction);
    };
    rtdvs::ApplySweepFlags(flags, &config.options);
    rtdvs::RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));
  }
  return json.WriteIfRequested(flags.json_path) ? 0 : 1;
}
