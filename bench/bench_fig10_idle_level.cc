// Figure 10: EDF-normalized energy vs. utilization at idle-level factors
// 0.01, 0.1 and 1.0 (8 tasks, machine 0, worst-case execution). Paper
// findings: large savings even with a perfect halt; as idle cycles get more
// expensive the dynamic algorithms (which drop to the lowest voltage when
// idling) pull further ahead of the statically-scaled ones.
#include "bench/sweep_main.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  if (!rtdvs::ParseSweepFlags(argc, argv,
                              "Reproduces Figure 10: normalized energy at idle "
                              "levels 0.01, 0.1 and 1.0.",
                              &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("fig10_idle_level");
  rtdvs::RecordSweepFlags(flags, &json);
  for (double idle_level : {0.01, 0.1, 1.0}) {
    rtdvs::SweepBenchConfig config;
    config.title = rtdvs::StrFormat("Figure 10: 8 tasks, idle level %.2f", idle_level);
    config.csv_tag = rtdvs::StrFormat("fig10_idle%.2f", idle_level);
    config.options.num_tasks = 8;
    config.options.idle_level = idle_level;
    config.options.exec_model_factory = [] {
      return std::make_unique<rtdvs::ConstantFractionModel>(1.0);
    };
    rtdvs::ApplySweepFlags(flags, &config.options);
    rtdvs::RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));
  }
  return json.WriteIfRequested(flags.json_path) ? 0 : 1;
}
