// Figure 16: power consumption measured on the actual platform.
//
// Paper setup: 5 tasks that always consume 90% of their worst case, the
// 2-voltage-level K6-2+ machine, total system power (including the
// irreducible board overhead; backlight off) measured by the oscilloscope
// rig over 15-30 s while sweeping worst-case utilization, for plain EDF,
// statically-scaled RM, ccEDF and laEDF. Paper finding: 20-40% system-level
// savings while all deadlines hold.
//
// Our substitution: the kernel+platform substrate (register-level PowerNow
// transitions with their mandatory halts, Table-1-calibrated system power
// model) replaces the laptop; see DESIGN.md.
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/kernel/kernel.h"
#include "src/rt/taskset_generator.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 10;
  int64_t sim_ms = 15000;  // the oscilloscope averaged over 15-30 s
  double fraction = 0.9;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Reproduces Figure 16: measured system power vs utilization "
                "on the K6-2+ platform substrate.");
  flags.AddInt64("tasksets", &tasksets, "random task sets per utilization point");
  flags.AddInt64("sim-ms", &sim_ms, "measurement duration (ms)");
  flags.AddDouble("c", &fraction, "actual fraction of worst case consumed");
  flags.AddBool("quick", &quick, "smoke-test configuration (2 sets, 1 s horizon)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    tasksets = 2;
    sim_ms = 1000;
  }

  const std::vector<std::string> policy_ids = {"edf", "static_rm", "cc_edf", "la_edf"};
  std::vector<std::string> header = {"utilization"};
  for (const auto& id : policy_ids) {
    header.push_back(MakePolicy(id)->name() + " W");
  }
  header.push_back("misses(la)");
  TextTable table(header);

  Pcg32 master(0xf16);
  for (int u10 = 1; u10 <= 10; ++u10) {
    double utilization = 0.1 * u10;
    TaskSetGeneratorOptions gen_options;
    gen_options.num_tasks = 5;
    gen_options.target_utilization = utilization;
    TaskSetGenerator generator(gen_options);

    std::vector<RunningStats> watts(policy_ids.size());
    int64_t la_misses = 0;
    for (int64_t s = 0; s < tasksets; ++s) {
      Pcg32 set_rng = master.Fork();
      TaskSet tasks = generator.Generate(set_rng);
      for (size_t p = 0; p < policy_ids.size(); ++p) {
        KernelOptions options;
        options.power.screen_on = false;  // backlight off, like the paper
        options.admission_control = false;  // sweep runs fixed, pre-built sets
        Kernel kernel(options);
        kernel.LoadPolicy(MakePolicy(policy_ids[p]));
        for (const auto& task : tasks.tasks()) {
          KernelTaskParams params;
          params.name = task.name;
          params.period_ms = task.period_ms;
          params.wcet_ms = task.wcet_ms;
          params.exec_model = std::make_unique<ConstantFractionModel>(fraction);
          kernel.RegisterTask(std::move(params));
        }
        kernel.RunUntil(static_cast<double>(sim_ms));
        KernelReport report = kernel.Report();
        watts[p].Add(report.avg_system_watts);
        if (policy_ids[p] == "la_edf") {
          la_misses += report.deadline_misses;
        }
      }
    }
    std::vector<std::string> row = {FormatDouble(utilization, 1)};
    for (const auto& stat : watts) {
      row.push_back(FormatDouble(stat.mean(), 2));
    }
    row.push_back(StrFormat("%lld", static_cast<long long>(la_misses)));
    table.AddRow(std::move(row));
  }

  std::cout << "== Figure 16: system power on the K6-2+ platform substrate ==\n"
            << "5 tasks, c = " << fraction << ", total system watts "
            << "(board floor included; backlight off)\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,fig16");
  std::cout << "(misses column: transition halts are not charged to WCET in "
               "this sweep; the paper budgets them into C_i — see "
               "EXPERIMENTS.md)\n";

  BenchJson json("fig16_platform_power");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.Config("c", fraction);
  json.AddTable("Figure 16: system watts vs utilization", table);
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
