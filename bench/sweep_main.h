// Shared main() helper for the figure-reproduction benches: parses the
// common flags, runs one utilization sweep per configuration, and prints
// both the aligned table and greppable CSV, exactly one configuration per
// section — mirroring the paper's multi-panel figures.
#ifndef BENCH_SWEEP_MAIN_H_
#define BENCH_SWEEP_MAIN_H_

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/core/sweep.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace rtdvs {

struct SweepBenchConfig {
  std::string title;      // e.g. "Figure 9, 5 tasks"
  std::string csv_tag;    // e.g. "fig9_n5"
  SweepOptions options;
  bool normalized = true;  // print EDF-normalized energy (false: absolute)
};

struct SweepBenchFlags {
  int64_t tasksets = 50;
  int64_t sim_ms = 5000;
  int64_t jobs = 0;    // worker threads; 0 = hardware concurrency
  // Timing repeats per configuration: the sweep data is deterministic, so
  // repeats only re-measure wall clock; the reported profile is the
  // best-of run (median also printed), stabilizing sims/sec for benchdiff.
  int64_t repeat = 1;
  bool quick = false;  // 10 task sets, coarse grid: CI-friendly smoke run
  bool progress = false;  // live shard progress on stderr
  bool profile = false;   // per-span self-profiling in the sweep JSON
  std::string json_path;  // "" = no machine-readable output
};

// Parses common flags; returns false if the program should exit.
inline bool ParseSweepFlags(int argc, char** argv, const std::string& description,
                            SweepBenchFlags* flags) {
  FlagSet flag_set(description);
  flag_set.AddInt64("tasksets", &flags->tasksets,
                    "random task sets per utilization point");
  flag_set.AddInt64("sim-ms", &flags->sim_ms, "simulated horizon per run (ms)");
  flag_set.AddInt64("jobs", &flags->jobs,
                    "sweep worker threads (0 = hardware concurrency); results "
                    "are identical for every value");
  flag_set.AddInt64("repeat", &flags->repeat,
                    "timing repeats per configuration; the results are "
                    "identical every time, so repeats only stabilize the "
                    "throughput numbers (best-of reported, median printed)");
  flag_set.AddBool("quick", &flags->quick, "coarse smoke-test configuration");
  flag_set.AddBool("progress", &flags->progress,
                   "live progress line on stderr (shards done, elapsed, ETA)");
  flag_set.AddBool("profile", &flags->profile,
                   "record per-span timing (engine/sim/sweep scopes) into the "
                   "sweep profile section");
  flag_set.AddString("json", &flags->json_path,
                     "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flag_set.Parse(argc, argv)) {
    return false;
  }
  if (flags->jobs < 0) {
    std::fprintf(stderr, "error: --jobs must be >= 0 (0 = hardware concurrency)\n");
    return false;
  }
  if (flags->repeat < 1) {
    std::fprintf(stderr, "error: --repeat must be >= 1\n");
    return false;
  }
  return true;
}

inline void ApplySweepFlags(const SweepBenchFlags& flags, SweepOptions* options) {
  options->tasksets_per_point = static_cast<int>(flags.tasksets);
  options->horizon_ms = static_cast<double>(flags.sim_ms);
  options->jobs = static_cast<int>(flags.jobs);
  if (flags.quick) {
    options->tasksets_per_point = 10;
    options->horizon_ms = 1000.0;
    options->utilizations = {0.1, 0.3, 0.5, 0.7, 0.9};
  }
  if (flags.progress) {
    options->progress = MakeStderrProgress();
  }
  options->profile = flags.profile;
}

// Records the shared flags in the bench's JSON config object.
inline void RecordSweepFlags(const SweepBenchFlags& flags, BenchJson* json) {
  json->Config("tasksets", flags.tasksets);
  json->Config("sim_ms", flags.sim_ms);
  json->Config("jobs", flags.jobs);
  json->Config("repeat", flags.repeat);
  json->Config("quick", flags.quick);
  json->Config("profile", flags.profile);
}

// Runs the sweep and prints the standard panel; when `json` is non-null the
// full SweepResult (rows, counters, profile) is appended as a section.
// Returns the number of SimAudit violations (0 for a healthy build);
// benches that care can fold it into their exit code.
inline int64_t RunAndPrintSweep(const SweepBenchConfig& config,
                                BenchJson* json = nullptr, int repeat = 1) {
  // Repeats re-run the identical (deterministic) sweep purely to re-sample
  // wall clock; keep the fastest run's result so its profile carries the
  // best-of throughput, and remember every sample for the median.
  std::vector<double> sims_per_sec_samples;
  SweepResult result;
  for (int attempt = 0; attempt < std::max(repeat, 1); ++attempt) {
    UtilizationSweep sweep(config.options);
    SweepResult this_run = sweep.Run();
    sims_per_sec_samples.push_back(this_run.profile.sims_per_sec);
    if (attempt == 0 ||
        this_run.profile.sims_per_sec > result.profile.sims_per_sec) {
      result = std::move(this_run);
    }
  }
  std::cout << "== " << config.title << " ==\n";
  std::cout << "machine: " << config.options.machine.ToString() << "\n";
  std::cout << (config.normalized ? "energy normalized to plain EDF\n"
                                  : "energy (arbitrary units per simulated second)\n");
  RenderEnergyTable(result, config.normalized).Print(std::cout);
  WriteCsv(result, std::cout, "csv," + config.csv_tag);
  // Deadline misses are part of the claim: RT-DVS must not trade deadlines
  // for energy. Print only if something missed.
  if (AnyDeadlineMiss(result)) {
    std::cout << "deadline misses (nonzero somewhere -- RM-based policies are "
                 "only guaranteed when the RM test admits the set):\n";
    RenderMissTable(result).Print(std::cout);
  } else {
    std::cout << "deadline misses: none under any policy\n";
  }
  if (result.audit_violations > 0) {
    std::cout << StrFormat("audit: %lld violation(s)\n",
                           static_cast<long long>(result.audit_violations));
    for (const auto& message : result.audit_messages) {
      std::cout << "  " << message << "\n";
    }
  }
  std::cout << StrFormat("elapsed: %.0f ms wall, %.0f ms cpu (jobs=%d)\n",
                         result.elapsed_wall_ms, result.elapsed_cpu_ms,
                         result.options.jobs);
  if (sims_per_sec_samples.size() > 1) {
    std::vector<double> sorted = sims_per_sec_samples;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    std::cout << StrFormat(
        "throughput over %zu repeats: best %.1f sims/s, median %.1f sims/s\n",
        sorted.size(), sorted.back(), median);
  }
  std::cout << "\n";
  if (json != nullptr) {
    JsonValue doc = SweepResultToJson(result);
    if (sims_per_sec_samples.size() > 1) {
      JsonValue& samples = doc.Set("repeat_sims_per_sec", JsonValue::Array());
      for (double sample : sims_per_sec_samples) {
        samples.Append(sample);
      }
    }
    json->Add(config.title, "sweep", std::move(doc));
  }
  return result.audit_violations;
}

}  // namespace rtdvs

#endif  // BENCH_SWEEP_MAIN_H_
