// Shared main() helper for the figure-reproduction benches: parses the
// common flags, runs one utilization sweep per configuration, and prints
// both the aligned table and greppable CSV, exactly one configuration per
// section — mirroring the paper's multi-panel figures.
#ifndef BENCH_SWEEP_MAIN_H_
#define BENCH_SWEEP_MAIN_H_

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sweep.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace rtdvs {

struct SweepBenchConfig {
  std::string title;      // e.g. "Figure 9, 5 tasks"
  std::string csv_tag;    // e.g. "fig9_n5"
  SweepOptions options;
  bool normalized = true;  // print EDF-normalized energy (false: absolute)
};

struct SweepBenchFlags {
  int64_t tasksets = 50;
  int64_t sim_ms = 5000;
  bool quick = false;  // 10 task sets, coarse grid: CI-friendly smoke run
};

// Parses common flags; returns false if the program should exit.
inline bool ParseSweepFlags(int argc, char** argv, const std::string& description,
                            SweepBenchFlags* flags) {
  FlagSet flag_set(description);
  flag_set.AddInt64("tasksets", &flags->tasksets,
                    "random task sets per utilization point");
  flag_set.AddInt64("sim-ms", &flags->sim_ms, "simulated horizon per run (ms)");
  flag_set.AddBool("quick", &flags->quick, "coarse smoke-test configuration");
  return flag_set.Parse(argc, argv);
}

inline void ApplySweepFlags(const SweepBenchFlags& flags, SweepOptions* options) {
  options->tasksets_per_point = static_cast<int>(flags.tasksets);
  options->horizon_ms = static_cast<double>(flags.sim_ms);
  if (flags.quick) {
    options->tasksets_per_point = 10;
    options->horizon_ms = 1000.0;
    options->utilizations = {0.1, 0.3, 0.5, 0.7, 0.9};
  }
}

inline void RunAndPrintSweep(const SweepBenchConfig& config) {
  UtilizationSweep sweep(config.options);
  auto rows = sweep.Run();
  std::cout << "== " << config.title << " ==\n";
  std::cout << "machine: " << config.options.machine.ToString() << "\n";
  std::cout << (config.normalized ? "energy normalized to plain EDF\n"
                                  : "energy (arbitrary units per simulated second)\n");
  TextTable table = sweep.ToTable(rows, config.normalized);
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv," + config.csv_tag);
  // Deadline misses are part of the claim: RT-DVS must not trade deadlines
  // for energy. Print only if something missed.
  bool any_miss = false;
  for (const auto& row : rows) {
    for (const auto& cell : row.cells) {
      any_miss = any_miss || cell.deadline_misses > 0;
    }
  }
  if (any_miss) {
    std::cout << "deadline misses (nonzero somewhere -- RM-based policies are "
                 "only guaranteed when the RM test admits the set):\n";
    sweep.MissTable(rows).Print(std::cout);
  } else {
    std::cout << "deadline misses: none under any policy\n";
  }
  std::cout << "\n";
}

}  // namespace rtdvs

#endif  // BENCH_SWEEP_MAIN_H_
