// §4.1: PowerNow! transition behaviour.
//
// The paper observed, via the TSC (which keeps counting through the
// mandatory stop interval), ~8200 cycles during any transition to 200 MHz
// and ~22500 cycles for a transition to 550 MHz with the minimum stop
// interval of 41 us — implying the clock retargets almost immediately and
// the halt is stabilization time. With the prototype's SGTC of 10 units,
// voltage switches cost ~0.41 ms and frequency-only switches 41 us.
// This bench replays those measurements against the register-level model.
#include <iostream>

#include "src/kernel/powernow_module.h"
#include "src/platform/k6_cpu.h"
#include "src/util/table.h"

int main() {
  using rtdvs::K6Cpu;

  std::cout << "TSC cycles across one minimum-SGTC (41 us) transition:\n";
  rtdvs::TextTable tsc_table({"target MHz", "halt us", "TSC cycles", "paper"});
  for (double target : {200.0, 550.0}) {
    K6Cpu cpu;  // starts at 550 MHz / 2.0 V
    // Park at the other end first so the write is a real transition.
    cpu.WriteEpmr(0.0, {target == 200.0 ? static_cast<uint8_t>(6)
                                        : static_cast<uint8_t>(0),
                        1, 1});
    double t0 = 10.0;
    uint64_t tsc_before = cpu.Tsc(t0);
    uint8_t fid = target == 200.0 ? 0 : 6;
    cpu.WriteEpmr(t0, {fid, 1, 1});
    double t1 = cpu.transition_end_ms();
    uint64_t tsc_after = cpu.Tsc(t1);
    tsc_table.AddRow({rtdvs::FormatDouble(target, 0),
                      rtdvs::FormatDouble((t1 - t0) * 1000.0, 2),
                      std::to_string(tsc_after - tsc_before),
                      target == 200.0 ? "~8200" : "~22500"});
  }
  tsc_table.Print(std::cout);
  tsc_table.PrintCsv(std::cout, "csv,sec41_tsc");

  std::cout << "\nSwitch overheads as programmed by the PowerNow module:\n";
  rtdvs::TextTable sw({"transition", "SGTC units", "halt ms"});
  {
    K6Cpu cpu;
    rtdvs::PowerNowModule module(&cpu, nullptr);
    // 550 MHz @2.0 V -> 400 MHz @1.4 V: voltage change.
    module.SetFrequencyMhz(0.0, 400.0);
    sw.AddRow({"550->400 (V change)", std::to_string(rtdvs::PowerNowModule::kSgtcVoltageChange),
               rtdvs::FormatDouble(cpu.transition_end_ms() - 0.0, 4)});
    // 400 -> 300 at the same 1.4 V: frequency-only.
    double t0 = 5.0;
    module.SetFrequencyMhz(t0, 300.0);
    sw.AddRow({"400->300 (f only)", std::to_string(rtdvs::PowerNowModule::kSgtcFrequencyOnly),
               rtdvs::FormatDouble(cpu.transition_end_ms() - t0, 4)});
  }
  sw.Print(std::cout);
  sw.PrintCsv(std::cout, "csv,sec41_switch");
  std::cout << "(paper: ~0.4 ms when voltage changes, 41 us when only the "
               "frequency changes)\n";
  return 0;
}
