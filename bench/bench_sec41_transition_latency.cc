// §4.1: PowerNow! transition behaviour.
//
// The paper observed, via the TSC (which keeps counting through the
// mandatory stop interval), ~8200 cycles during any transition to 200 MHz
// and ~22500 cycles for a transition to 550 MHz with the minimum stop
// interval of 41 us — implying the clock retargets almost immediately and
// the halt is stabilization time. With the prototype's SGTC of 10 units,
// voltage switches cost ~0.41 ms and frequency-only switches 41 us.
//
// Part 1 replays those measurements against the register-level model.
// Part 2 propagates them into the energy results: one utilization sweep per
// transition cost (0 = ideal, 0.041 ms = frequency-only, 0.41 ms = voltage
// change, 4.1 ms = a hypothetically slow regulator) on the shared parallel
// sweep harness, which forwards switch_time_ms into every shard.
#include <iostream>

#include "bench/sweep_main.h"
#include "src/core/sweep.h"
#include "src/kernel/powernow_module.h"
#include "src/platform/k6_cpu.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

void ReplayRegisterModel(BenchJson* json) {
  std::cout << "TSC cycles across one minimum-SGTC (41 us) transition:\n";
  TextTable tsc_table({"target MHz", "halt us", "TSC cycles", "paper"});
  for (double target : {200.0, 550.0}) {
    K6Cpu cpu;  // starts at 550 MHz / 2.0 V
    // Park at the other end first so the write is a real transition.
    cpu.WriteEpmr(0.0, {target == 200.0 ? static_cast<uint8_t>(6)
                                        : static_cast<uint8_t>(0),
                        1, 1});
    double t0 = 10.0;
    uint64_t tsc_before = cpu.Tsc(t0);
    uint8_t fid = target == 200.0 ? 0 : 6;
    cpu.WriteEpmr(t0, {fid, 1, 1});
    double t1 = cpu.transition_end_ms();
    uint64_t tsc_after = cpu.Tsc(t1);
    tsc_table.AddRow({FormatDouble(target, 0),
                      FormatDouble((t1 - t0) * 1000.0, 2),
                      std::to_string(tsc_after - tsc_before),
                      target == 200.0 ? "~8200" : "~22500"});
  }
  tsc_table.Print(std::cout);
  tsc_table.PrintCsv(std::cout, "csv,sec41_tsc");
  json->AddTable("TSC cycles across one minimum-SGTC transition", tsc_table);

  std::cout << "\nSwitch overheads as programmed by the PowerNow module:\n";
  TextTable sw({"transition", "SGTC units", "halt ms"});
  {
    K6Cpu cpu;
    PowerNowModule module(&cpu, nullptr);
    // 550 MHz @2.0 V -> 400 MHz @1.4 V: voltage change.
    module.SetFrequencyMhz(0.0, 400.0);
    sw.AddRow({"550->400 (V change)",
               std::to_string(PowerNowModule::kSgtcVoltageChange),
               FormatDouble(cpu.transition_end_ms() - 0.0, 4)});
    // 400 -> 300 at the same 1.4 V: frequency-only.
    double t0 = 5.0;
    module.SetFrequencyMhz(t0, 300.0);
    sw.AddRow({"400->300 (f only)",
               std::to_string(PowerNowModule::kSgtcFrequencyOnly),
               FormatDouble(cpu.transition_end_ms() - t0, 4)});
  }
  sw.Print(std::cout);
  sw.PrintCsv(std::cout, "csv,sec41_switch");
  json->AddTable("PowerNow switch overheads", sw);
  std::cout << "(paper: ~0.4 ms when voltage changes, 41 us when only the "
               "frequency changes)\n\n";
}

int Main(int argc, char** argv) {
  SweepBenchFlags flags;
  if (!ParseSweepFlags(argc, argv,
                       "Section 4.1: transition latency — register-model "
                       "replay plus energy sweeps at each measured switch cost.",
                       &flags)) {
    return 1;
  }

  BenchJson json("sec41_transition_latency");
  RecordSweepFlags(flags, &json);
  ReplayRegisterModel(&json);

  std::cout << "Energy impact of the mandatory transition halt "
               "(k6 operating points, dynamic RT-DVS policies):\n\n";
  int64_t audit_violations = 0;
  for (double switch_ms : {0.0, 0.041, 0.41, 4.1}) {
    SweepBenchConfig config;
    config.title = StrFormat("switch halt = %.4g ms", switch_ms);
    config.csv_tag = StrFormat("sec41_sw%.4g", switch_ms);
    config.options.policy_ids = {"edf", "cc_edf", "cc_rm", "la_edf"};
    config.options.machine = MachineSpec::K6TwoPointFour();
    config.options.switch_time_ms = switch_ms;
    config.options.utilizations = {0.2, 0.4, 0.6, 0.8};
    ApplySweepFlags(flags, &config.options);
    audit_violations += RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));
  }
  if (!json.WriteIfRequested(flags.json_path)) {
    return 1;
  }
  return audit_violations > 0 ? 3 : 0;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
