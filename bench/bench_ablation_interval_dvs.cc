// Ablation for §2.2: average-throughput (interval-based) DVS vs RT-DVS.
//
// The paper argues that utilization-feedback governors save energy but
// cannot provide deadline guarantees. This bench quantifies both sides:
// energy AND misses across a utilization sweep with bursty actual demand —
// the regime where the feedback loop is most wrong.
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/core/sweep.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 30;
  int64_t sim_ms = 5000;
  int64_t jobs = 0;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Ablation (§2.2): interval-based DVS vs RT-DVS — energy and "
                "deadline misses under bursty load.");
  flags.AddInt64("tasksets", &tasksets, "random task sets per utilization point");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddInt64("jobs", &jobs, "sweep worker threads (0 = hardware concurrency)");
  flags.AddBool("quick", &quick, "smoke-test configuration (4 sets, 1 s horizon)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    tasksets = 4;
    sim_ms = 1000;
  }

  SweepOptions options;
  options.policy_ids = {"edf", "interval", "cc_edf", "la_edf"};
  options.utilizations = {0.2, 0.4, 0.6, 0.8, 1.0};
  options.num_tasks = 6;
  options.tasksets_per_point = static_cast<int>(tasksets);
  options.horizon_ms = static_cast<double>(sim_ms);
  // Bursty: mostly ~30% of worst case with 5% near-worst-case spikes.
  options.exec_model_factory = [] {
    return std::make_unique<BimodalFractionModel>(0.3, 0.05);
  };
  options.seed = 0xab1a;
  options.jobs = static_cast<int>(jobs);

  UtilizationSweep sweep(options);
  SweepResult result = sweep.Run();
  std::cout << "== Ablation: interval DVS vs RT-DVS (bursty workload) ==\n";
  std::cout << "normalized energy (vs plain EDF):\n";
  RenderEnergyTable(result, /*normalized=*/true).Print(std::cout);
  WriteCsv(result, std::cout, "csv,ablation_interval");
  std::cout << "\ntotal deadline misses (" << tasksets
            << " task sets per point; RT-DVS rows must be zero):\n";
  TextTable misses = RenderMissTable(result);
  misses.Print(std::cout);
  misses.PrintCsv(std::cout, "csv,ablation_interval_misses");

  BenchJson json("ablation_interval_dvs");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.Add("Interval DVS vs RT-DVS (bursty workload)", "sweep",
           SweepResultToJson(result));
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
