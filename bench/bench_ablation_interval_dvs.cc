// Ablation for §2.2: average-throughput (interval-based) DVS vs RT-DVS.
//
// The paper argues that utilization-feedback governors save energy but
// cannot provide deadline guarantees. This bench quantifies both sides:
// energy AND misses across a utilization sweep with bursty actual demand —
// the regime where the feedback loop is most wrong.
#include <iostream>
#include <memory>

#include "src/core/sweep.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 30;
  int64_t sim_ms = 5000;
  FlagSet flags("Ablation (§2.2): interval-based DVS vs RT-DVS — energy and "
                "deadline misses under bursty load.");
  flags.AddInt64("tasksets", &tasksets, "random task sets per utilization point");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  SweepOptions options;
  options.policy_ids = {"edf", "interval", "cc_edf", "la_edf"};
  options.utilizations = {0.2, 0.4, 0.6, 0.8, 1.0};
  options.num_tasks = 6;
  options.tasksets_per_point = static_cast<int>(tasksets);
  options.horizon_ms = static_cast<double>(sim_ms);
  // Bursty: mostly ~30% of worst case with 5% near-worst-case spikes.
  options.exec_model_factory = [] {
    return std::make_unique<BimodalFractionModel>(0.3, 0.05);
  };
  options.seed = 0xab1a;

  UtilizationSweep sweep(options);
  auto rows = sweep.Run();
  std::cout << "== Ablation: interval DVS vs RT-DVS (bursty workload) ==\n";
  std::cout << "normalized energy (vs plain EDF):\n";
  TextTable energy = sweep.ToTable(rows, /*normalized=*/true);
  energy.Print(std::cout);
  energy.PrintCsv(std::cout, "csv,ablation_interval_energy");
  std::cout << "\ntotal deadline misses (" << tasksets
            << " task sets per point; RT-DVS rows must be zero):\n";
  TextTable misses = sweep.MissTable(rows);
  misses.Print(std::cout);
  misses.PrintCsv(std::cout, "csv,ablation_interval_misses");
  return 0;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
