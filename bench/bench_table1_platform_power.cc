// Table 1: power consumption of the Hewlett-Packard N3350 laptop.
//
// Our platform substitutes a calibrated power model for the physical
// oscilloscope rig (see DESIGN.md); this bench prints the model's
// reproduction of Table 1 plus the derived per-operating-point system
// power, which feeds Figure 16.
#include <iostream>
#include <string>

#include "bench/bench_json.h"
#include "src/platform/k6_cpu.h"
#include "src/platform/system_power.h"
#include "src/util/flags.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  rtdvs::FlagSet flags("Reproduces Table 1: the calibrated system power model.");
  flags.AddBool("quick", &quick, "smoke-test configuration (no-op: already fast)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  rtdvs::SystemPowerModel model;
  std::cout << "Table 1 (model reproduction):\n" << model.Table1() << "\n";

  std::cout << "Derived system power at each K6-2+ operating point "
               "(screen off, disk standby):\n";
  rtdvs::TextTable table({"MHz", "V", "active W", "halted W"});
  for (double mhz : rtdvs::K6Cpu::FrequencyTableMhz()) {
    double volts = rtdvs::K6Cpu::IsStable(mhz, 1.4) ? 1.4 : 2.0;
    table.AddRow({rtdvs::FormatDouble(mhz, 0), rtdvs::FormatDouble(volts, 1),
                  rtdvs::FormatDouble(model.ActiveWatts(mhz, volts), 2),
                  rtdvs::FormatDouble(model.HaltedWatts(), 2)});
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,table1");

  rtdvs::BenchJson json("table1_platform_power");
  json.Config("screen_on", false);
  json.AddTable("Derived system power per K6-2+ operating point", table);
  return json.WriteIfRequested(json_path) ? 0 : 1;
}
