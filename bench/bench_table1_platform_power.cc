// Table 1: power consumption of the Hewlett-Packard N3350 laptop.
//
// Our platform substitutes a calibrated power model for the physical
// oscilloscope rig (see DESIGN.md); this bench prints the model's
// reproduction of Table 1 plus the derived per-operating-point system
// power, which feeds Figure 16.
#include <iostream>

#include "src/platform/k6_cpu.h"
#include "src/platform/system_power.h"
#include "src/util/table.h"

int main() {
  rtdvs::SystemPowerModel model;
  std::cout << "Table 1 (model reproduction):\n" << model.Table1() << "\n";

  std::cout << "Derived system power at each K6-2+ operating point "
               "(screen off, disk standby):\n";
  rtdvs::TextTable table({"MHz", "V", "active W", "halted W"});
  for (double mhz : rtdvs::K6Cpu::FrequencyTableMhz()) {
    double volts = rtdvs::K6Cpu::IsStable(mhz, 1.4) ? 1.4 : 2.0;
    table.AddRow({rtdvs::FormatDouble(mhz, 0), rtdvs::FormatDouble(volts, 1),
                  rtdvs::FormatDouble(model.ActiveWatts(mhz, volts), 2),
                  rtdvs::FormatDouble(model.HaltedWatts(), 2)});
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,table1");
  return 0;
}
