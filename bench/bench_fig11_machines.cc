// Figure 11: EDF-normalized energy vs. utilization on machines 0, 1 and 2
// (8 tasks, perfect halt, worst-case execution). Paper findings: available
// frequency/voltage settings matter profoundly; with machine 2's dense grid
// and narrow voltage range, ccEDF ~matches the bound and even beats laEDF.
#include "bench/sweep_main.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  if (!rtdvs::ParseSweepFlags(argc, argv,
                              "Reproduces Figure 11: normalized energy on "
                              "machine specs 0, 1 and 2.",
                              &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("fig11_machines");
  rtdvs::RecordSweepFlags(flags, &json);
  const rtdvs::MachineSpec machines[] = {rtdvs::MachineSpec::Machine0(),
                                         rtdvs::MachineSpec::Machine1(),
                                         rtdvs::MachineSpec::Machine2()};
  for (const auto& machine : machines) {
    rtdvs::SweepBenchConfig config;
    config.title = "Figure 11: 8 tasks, " + machine.name();
    config.csv_tag = "fig11_" + machine.name();
    config.options.num_tasks = 8;
    config.options.machine = machine;
    config.options.exec_model_factory = [] {
      return std::make_unique<rtdvs::ConstantFractionModel>(1.0);
    };
    rtdvs::ApplySweepFlags(flags, &config.options);
    rtdvs::RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));
  }
  return json.WriteIfRequested(flags.json_path) ? 0 : 1;
}
