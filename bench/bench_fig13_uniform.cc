// Figure 13: EDF-normalized energy when each invocation's computation is
// uniformly distributed in (0, worst case] (8 tasks, machine 0, perfect
// halt). Paper finding: results look identical to the constant c = 0.5 case
// — for the dynamic policies it is the AVERAGE utilization that matters,
// not the per-invocation distribution.
#include "bench/sweep_main.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  if (!rtdvs::ParseSweepFlags(argc, argv,
                              "Reproduces Figure 13: normalized energy with "
                              "uniformly distributed actual computation.",
                              &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("fig13_uniform");
  rtdvs::RecordSweepFlags(flags, &json);
  rtdvs::SweepBenchConfig config;
  config.title = "Figure 13: 8 tasks, uniform c in (0, 1]";
  config.csv_tag = "fig13_uniform";
  config.options.num_tasks = 8;
  config.options.exec_model_factory = [] {
    return std::make_unique<rtdvs::UniformFractionModel>(0.0, 1.0);
  };
  rtdvs::ApplySweepFlags(flags, &config.options);
  rtdvs::RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));

  // Side-by-side comparison the paper draws in the text: constant 0.5.
  rtdvs::SweepBenchConfig constant;
  constant.title = "Figure 13 (comparison): 8 tasks, constant c = 0.5";
  constant.csv_tag = "fig13_const0.5";
  constant.options.num_tasks = 8;
  constant.options.exec_model_factory = [] {
    return std::make_unique<rtdvs::ConstantFractionModel>(0.5);
  };
  rtdvs::ApplySweepFlags(flags, &constant.options);
  rtdvs::RunAndPrintSweep(constant, &json, static_cast<int>(flags.repeat));
  return json.WriteIfRequested(flags.json_path) ? 0 : 1;
}
