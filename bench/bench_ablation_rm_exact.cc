// Ablation: the paper's static RM scaling uses a SUFFICIENT (pessimistic)
// schedulability test (Figure 1). Exact response-time analysis admits more
// task sets at lower frequencies — how much energy does the pessimism cost?
// (The paper flags the O(n^2) test cost as the reason ccRM avoids
// re-running it online; this quantifies the static-side gap.)
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/core/sweep.h"
#include "src/util/flags.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 40;
  int64_t sim_ms = 4000;
  int64_t jobs = 0;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Ablation: sufficient vs exact RM schedulability test in "
                "static voltage scaling.");
  flags.AddInt64("tasksets", &tasksets, "random task sets per point");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddInt64("jobs", &jobs, "sweep worker threads (0 = hardware concurrency)");
  flags.AddBool("quick", &quick, "smoke-test configuration (4 sets, 1 s horizon)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    tasksets = 4;
    sim_ms = 1000;
  }

  SweepOptions options;
  options.policy_ids = {"static_rm", "static_rm_exact", "static_edf"};
  options.utilizations = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  options.num_tasks = 8;
  options.tasksets_per_point = static_cast<int>(tasksets);
  options.horizon_ms = static_cast<double>(sim_ms);
  options.machine = MachineSpec::Machine2();  // dense grid shows the gap best
  options.exec_model_factory = [] {
    return std::make_unique<ConstantFractionModel>(1.0);
  };
  options.seed = 0xe8ac7;
  options.jobs = static_cast<int>(jobs);

  UtilizationSweep sweep(options);
  SweepResult result = sweep.Run();
  std::cout << "== Ablation: static RM scaling, sufficient vs exact test "
               "(machine 2, worst-case execution, EDF-normalized) ==\n";
  RenderEnergyTable(result, /*normalized=*/true).Print(std::cout);
  WriteCsv(result, std::cout, "csv,ablation_rm_exact");
  std::cout << "deadline misses (must be zero everywhere — the exact test is "
               "still a guarantee):\n";
  RenderMissTable(result).Print(std::cout);

  BenchJson json("ablation_rm_exact");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.Add("Static RM scaling: sufficient vs exact test", "sweep",
           SweepResultToJson(result));
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
