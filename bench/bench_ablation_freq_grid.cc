// Ablation extending Figure 11's insight: how does the NUMBER of available
// frequency settings shape each algorithm? The paper found that a denser
// grid helps ccEDF/staticEDF approach the bound but can HURT laEDF (finer
// deferral leaves more high-voltage work for later). We sweep uniform
// frequency grids of 2..16 points at fixed utilization.
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/core/sweep.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 40;
  int64_t sim_ms = 4000;
  int64_t jobs = 0;
  double utilization = 0.65;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Ablation: frequency-grid density vs energy (extends Fig 11).");
  flags.AddInt64("tasksets", &tasksets, "random task sets per grid size");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddInt64("jobs", &jobs, "sweep worker threads (0 = hardware concurrency)");
  flags.AddDouble("utilization", &utilization, "worst-case utilization");
  flags.AddBool("quick", &quick, "smoke-test configuration (4 sets, 1 s horizon)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    tasksets = 4;
    sim_ms = 1000;
  }

  const std::vector<std::string> policy_ids = {"static_edf", "cc_edf", "cc_rm",
                                               "la_edf"};
  std::vector<std::string> header = {"grid points"};
  for (const auto& id : policy_ids) {
    header.push_back(MakePolicy(id)->name());
  }
  header.push_back("bound");
  TextTable table(header);

  for (size_t n : {2, 3, 4, 6, 8, 12, 16}) {
    SweepOptions options;
    options.policy_ids = policy_ids;
    options.utilizations = {utilization};
    options.num_tasks = 8;
    options.tasksets_per_point = static_cast<int>(tasksets);
    options.horizon_ms = static_cast<double>(sim_ms);
    // Machine-2-like voltage range over n evenly spaced frequencies.
    options.machine = MachineSpec::UniformGrid(n, 1.4, 2.0);
    options.exec_model_factory = [] {
      return std::make_unique<UniformFractionModel>(0.0, 1.0);
    };
    options.seed = 0x9fd;
    options.jobs = static_cast<int>(jobs);
    UtilizationSweep sweep(options);
    SweepResult result = sweep.Run();
    const SweepRow& row = result.rows.front();
    std::vector<std::string> cells = {StrFormat("%zu", n)};
    for (const auto& cell : row.cells) {
      cells.push_back(FormatDouble(cell.normalized_energy.mean(), 4));
    }
    cells.push_back(FormatDouble(row.normalized_bound.mean(), 4));
    table.AddRow(std::move(cells));
  }

  std::cout << "== Ablation: frequency-grid density (U = " << utilization
            << ", uniform actual demand, EDF-normalized energy) ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,ablation_grid");

  BenchJson json("ablation_freq_grid");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.Config("utilization", utilization);
  json.AddTable("Frequency-grid density vs normalized energy", table);
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
