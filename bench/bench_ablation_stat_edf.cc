// Extension bench (§6 future directions): statistical deadline guarantees.
//
// statEDF budgets each task with a percentile of its observed execution
// history instead of the specified worst case. Sweeping the percentile
// exposes the soft-real-time tradeoff the paper points at as future work:
// energy approaches the bound as the percentile drops, at the cost of a
// small, tunable deadline-miss rate. ccEDF (worst-case charging) is the
// zero-miss anchor.
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/dvs/stat_edf_policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 30;
  int64_t sim_ms = 8000;
  double utilization = 0.8;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Extension (§6): energy vs deadline-miss-rate tradeoff of "
                "percentile-budgeted statEDF.");
  flags.AddInt64("tasksets", &tasksets, "random task sets");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddDouble("utilization", &utilization, "worst-case utilization");
  flags.AddBool("quick", &quick, "smoke-test configuration (4 sets, 1 s horizon)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    tasksets = 4;
    sim_ms = 1000;
  }

  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = 6;
  gen_options.target_utilization = utilization;
  TaskSetGenerator generator(gen_options);

  TextTable table({"policy", "energy vs EDF", "miss rate %", "misses", "releases"});
  const double percentiles[] = {100, 99, 95, 90, 75, 50};

  // Heavy-tailed actual demand: usually ~35%, sometimes the full worst case
  // — exactly where percentile budgeting pays and occasionally burns.
  auto make_model = [] { return std::make_unique<BimodalFractionModel>(0.5, 0.03); };

  struct Row {
    RunningStats normalized;
    int64_t misses = 0;
    int64_t releases = 0;
  };
  Row cc_row;
  std::vector<Row> stat_rows(std::size(percentiles));

  Pcg32 master(0x57a7);
  for (int64_t s = 0; s < tasksets; ++s) {
    Pcg32 rng = master.Fork();
    TaskSet tasks = generator.Generate(rng);
    uint64_t workload_seed = rng.NextU32();
    SimOptions options;
    options.horizon_ms = static_cast<double>(sim_ms);
    options.seed = workload_seed;

    auto edf = MakePolicy("edf");
    auto edf_model = make_model();
    double edf_energy =
        RunSimulation(tasks, MachineSpec::Machine0(), *edf, *edf_model, options)
            .total_energy();

    auto cc = MakePolicy("cc_edf");
    auto cc_model = make_model();
    SimResult cc_result =
        RunSimulation(tasks, MachineSpec::Machine0(), *cc, *cc_model, options);
    cc_row.normalized.Add(cc_result.total_energy() / edf_energy);
    cc_row.misses += cc_result.deadline_misses;
    cc_row.releases += cc_result.releases;

    for (size_t p = 0; p < std::size(percentiles); ++p) {
      StatEdfOptions stat_options;
      stat_options.percentile = percentiles[p];
      StatEdfPolicy policy(stat_options);
      auto model = make_model();
      SimResult result =
          RunSimulation(tasks, MachineSpec::Machine0(), policy, *model, options);
      stat_rows[p].normalized.Add(result.total_energy() / edf_energy);
      stat_rows[p].misses += result.deadline_misses;
      stat_rows[p].releases += result.releases;
    }
  }

  auto add_row = [&table](const std::string& name, const Row& row) {
    double rate = row.releases == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(row.misses) /
                            static_cast<double>(row.releases);
    table.AddRow({name, FormatDouble(row.normalized.mean(), 4),
                  FormatDouble(rate, 3), StrFormat("%lld", (long long)row.misses),
                  StrFormat("%lld", (long long)row.releases)});
  };
  add_row("ccEDF (hard)", cc_row);
  for (size_t p = 0; p < std::size(percentiles); ++p) {
    add_row(StrFormat("statEDF(p%g)", percentiles[p]), stat_rows[p]);
  }

  std::cout << "== Extension: statistical deadline guarantees (U = " << utilization
            << ", bimodal demand) ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,ablation_stat_edf");
  std::cout << "(p100 with a warm history ~ ccEDF; lower percentiles trade a "
               "bounded miss rate for energy)\n";

  BenchJson json("ablation_stat_edf");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.Config("utilization", utilization);
  json.AddTable("statEDF percentile sweep", table);
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
