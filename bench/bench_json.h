// Shared accumulator for the benches' machine-readable output.
//
// Every bench binary accepts --json=<path> and mirrors its stdout report
// into one rtdvs-bench-v1 document: a "config" object recording the flags
// the run used, plus one section per printed panel. Sections carry a
// "sweep" (full SweepResult), a "table" (the printed TextTable), or a
// "values" object (loose named numbers). tools/rtdvs-json-check validates
// this shape in CI, and the files are uploaded as build artifacts so runs
// can be diffed without scraping ASCII tables.
#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>

#include "src/util/json.h"
#include "src/util/provenance.h"
#include "src/util/table.h"

namespace rtdvs {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : name_(std::move(bench_name)),
        config_(JsonValue::Object()),
        sections_(JsonValue::Array()) {
    // Stamped first so rtdvs-benchdiff can always decide host comparability,
    // even for a bench that records no flags of its own.
    config_.Set("provenance", ProvenanceJson());
  }

  // Records one flag/parameter of the run, e.g. Config("tasksets", 50).
  void Config(const std::string& key, JsonValue value) {
    config_.Set(key, std::move(value));
  }

  // Appends a section whose payload sits under `kind` ("sweep", "table" or
  // "values"); sections keep print order so the JSON reads like the report.
  void Add(const std::string& title, const std::string& kind, JsonValue payload) {
    JsonValue section = JsonValue::Object();
    section.Set("title", title);
    section.Set(kind, std::move(payload));
    sections_.Append(std::move(section));
  }

  void AddTable(const std::string& title, const TextTable& table) {
    Add(title, "table", table.ToJson());
  }

  void AddValues(const std::string& title, JsonValue values) {
    Add(title, "values", std::move(values));
  }

  JsonValue Document() const {
    JsonValue doc = JsonValue::Object();
    doc.Set("schema", "rtdvs-bench-v1");
    doc.Set("bench", name_);
    doc.Set("config", config_);
    doc.Set("sections", sections_);
    return doc;
  }

  // Writes the document when a path was requested. Returns false (after
  // printing the reason) only on an I/O failure, so callers can fold it
  // straight into their exit code.
  bool WriteIfRequested(const std::string& path) const {
    if (path.empty()) {
      return true;
    }
    if (!WriteJsonFile(Document(), path)) {
      std::fprintf(stderr, "error: cannot write JSON to %s\n", path.c_str());
      return false;
    }
    std::printf("json written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  JsonValue config_;
  JsonValue sections_;
};

}  // namespace rtdvs

#endif  // BENCH_BENCH_JSON_H_
