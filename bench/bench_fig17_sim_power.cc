// Figure 17: the simulation counterpart of Figure 16 — identical parameters
// (5 tasks, c = 0.9, the 2-voltage-level K6 machine specification) run on
// the abstract simulator, which reports processor energy only. The paper's
// point: "except for the addition of constant overheads in the actual
// measurements, the results are nearly identical", validating the
// simulator. Compare this bench's CSV with bench_fig16's: fig16 watts ~=
// base + k * fig17 power.
#include "bench/sweep_main.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  flags.tasksets = 10;
  if (!rtdvs::ParseSweepFlags(argc, argv,
                              "Reproduces Figure 17: simulated processor power "
                              "with Figure 16's parameters.",
                              &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("fig17_sim_power");
  rtdvs::RecordSweepFlags(flags, &json);
  rtdvs::SweepBenchConfig config;
  config.title = "Figure 17: simulated platform, 5 tasks, c = 0.9";
  config.csv_tag = "fig17";
  config.normalized = false;  // absolute power, arbitrary units
  config.options.num_tasks = 5;
  config.options.machine = rtdvs::MachineSpec::K6TwoPointFour();
  config.options.policy_ids = {"edf", "static_rm", "cc_edf", "la_edf"};
  config.options.utilizations = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  config.options.exec_model_factory = [] {
    return std::make_unique<rtdvs::ConstantFractionModel>(0.9);
  };
  config.options.seed = 0xf17;
  rtdvs::ApplySweepFlags(flags, &config.options);
  rtdvs::RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));
  return json.WriteIfRequested(flags.json_path) ? 0 : 1;
}
