// Scaling efficiency of the parallel sweep harness: the Figure 9 workload
// (10 tasks, machine 0, full worst case) swept at --jobs 1, 2, 4 and
// hardware concurrency. Reports sims/sec, speedup over jobs=1, parallel
// efficiency (speedup / jobs) and shard queue-wait tails, and cross-checks
// that every jobs value produced bit-identical sweep rows — the harness's
// determinism contract under real load.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/core/sweep.h"
#include "src/util/flags.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

SweepOptions Fig09Options(int64_t tasksets, int64_t sim_ms, bool quick,
                          bool profile) {
  SweepOptions options;
  options.num_tasks = 10;
  options.idle_level = 0.0;
  options.machine = MachineSpec::Machine0();
  options.exec_model_factory = [] {
    return std::make_unique<ConstantFractionModel>(1.0);
  };
  options.tasksets_per_point = static_cast<int>(tasksets);
  options.horizon_ms = static_cast<double>(sim_ms);
  if (quick) {
    options.tasksets_per_point = 10;
    options.horizon_ms = 1000.0;
    options.utilizations = {0.1, 0.3, 0.5, 0.7, 0.9};
  }
  options.profile = profile;
  return options;
}

// The determinism contract: every jobs value must yield the same rows.
bool RowsIdentical(const SweepResult& a, const SweepResult& b) {
  if (a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    const SweepRow& ra = a.rows[r];
    const SweepRow& rb = b.rows[r];
    if (ra.cells.size() != rb.cells.size() ||
        ra.bound.mean() != rb.bound.mean()) {
      return false;
    }
    for (size_t c = 0; c < ra.cells.size(); ++c) {
      if (ra.cells[c].energy.mean() != rb.cells[c].energy.mean() ||
          ra.cells[c].normalized_energy.mean() !=
              rb.cells[c].normalized_energy.mean() ||
          ra.cells[c].deadline_misses != rb.cells[c].deadline_misses) {
        return false;
      }
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  int64_t tasksets = 50;
  int64_t sim_ms = 5000;
  int64_t max_jobs = 0;
  int64_t repeat = 1;
  bool quick = false;
  bool progress = false;
  bool profile = false;
  std::string json_path;

  FlagSet flags(
      "Parallel-sweep scaling: the Figure 9 workload at --jobs 1/2/4/all "
      "cores, with speedup, efficiency and queue-wait tails per point.");
  flags.AddInt64("tasksets", &tasksets, "random task sets per utilization point");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddInt64("max-jobs", &max_jobs,
                 "highest worker count to measure (0 = hardware concurrency)");
  flags.AddInt64("repeat", &repeat,
                 "timing repeats per jobs value (best-of sims/sec reported; "
                 "the sweep data is identical every time)");
  flags.AddBool("quick", &quick, "coarse smoke-test configuration");
  flags.AddBool("progress", &progress,
                "live progress line on stderr (shards done, elapsed, ETA)");
  flags.AddBool("profile", &profile,
                "record per-span engine timing in each run's JSON section "
                "(adds overhead: the scaling numbers stop being clean)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (max_jobs < 0) {
    std::fprintf(stderr, "error: --max-jobs must be >= 0\n");
    return 1;
  }
  if (repeat < 1) {
    std::fprintf(stderr, "error: --repeat must be >= 1\n");
    return 1;
  }

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int top = max_jobs == 0 ? hw : static_cast<int>(max_jobs);
  std::vector<int> jobs_grid;
  for (int j : {1, 2, 4, top}) {
    if (j <= top &&
        std::find(jobs_grid.begin(), jobs_grid.end(), j) == jobs_grid.end()) {
      jobs_grid.push_back(j);
    }
  }
  std::sort(jobs_grid.begin(), jobs_grid.end());

  BenchJson json("scaling_efficiency");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.Config("max_jobs", max_jobs);
  json.Config("repeat", repeat);
  json.Config("quick", quick);
  json.Config("profile", profile);

  std::cout << "== Sweep scaling efficiency (Figure 9 workload, 10 tasks) ==\n";
  std::cout << StrFormat("hardware concurrency: %d; measuring jobs = {", hw);
  for (size_t i = 0; i < jobs_grid.size(); ++i) {
    std::cout << (i == 0 ? "" : ", ") << jobs_grid[i];
  }
  std::cout << "}\n\n";

  std::vector<SweepResult> results;
  for (int j : jobs_grid) {
    SweepOptions options = Fig09Options(tasksets, sim_ms, quick, profile);
    options.jobs = j;
    if (progress) {
      options.progress = MakeStderrProgress();
    }
    SweepResult best;
    for (int64_t attempt = 0; attempt < repeat; ++attempt) {
      UtilizationSweep sweep(options);
      SweepResult this_run = sweep.Run();
      if (attempt == 0 ||
          this_run.profile.sims_per_sec > best.profile.sims_per_sec) {
        best = std::move(this_run);
      }
    }
    results.push_back(std::move(best));
    const SweepResult& result = results.back();
    std::cout << StrFormat(
        "jobs=%d: %.0f sims/s, wall %.0f ms, shard p95 %.2f ms, "
        "queue wait p95 %.2f ms\n",
        j, result.profile.sims_per_sec, result.elapsed_wall_ms,
        result.profile.p95_shard_ms, result.profile.p95_queue_wait_ms);
  }
  std::cout << "\n";

  // Any divergence across jobs values is a harness bug, not noise.
  int64_t violations = 0;
  for (size_t i = 1; i < results.size(); ++i) {
    if (!RowsIdentical(results[0], results[i])) {
      std::cout << StrFormat(
          "ERROR: jobs=%d produced different sweep rows than jobs=%d — the "
          "bit-identity contract is broken\n",
          jobs_grid[i], jobs_grid[0]);
      ++violations;
    }
    violations += results[i].audit_violations;
  }
  violations += results[0].audit_violations;

  const double base_sims_per_sec = results[0].profile.sims_per_sec;
  TextTable table({"jobs", "sims_per_sec", "speedup", "efficiency",
                   "p95_shard_ms", "p95_queue_wait_ms"});
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepProfile& p = results[i].profile;
    const double speedup =
        base_sims_per_sec > 0 ? p.sims_per_sec / base_sims_per_sec : 0.0;
    table.AddNumericRow({static_cast<double>(jobs_grid[i]), p.sims_per_sec,
                         speedup, speedup / jobs_grid[i], p.p95_shard_ms,
                         p.p95_queue_wait_ms});

    JsonValue values = JsonValue::Object();
    values.Set("jobs", static_cast<int64_t>(jobs_grid[i]));
    values.Set("sims_per_sec", p.sims_per_sec);
    values.Set("shards_per_sec", p.shards_per_sec);
    values.Set("speedup", speedup);
    values.Set("efficiency", speedup / jobs_grid[i]);
    values.Set("mean_shard_ms", p.mean_shard_ms);
    values.Set("p95_shard_ms", p.p95_shard_ms);
    values.Set("mean_queue_wait_ms", p.mean_queue_wait_ms);
    values.Set("p95_queue_wait_ms", p.p95_queue_wait_ms);
    values.Set("elapsed_wall_ms", results[i].elapsed_wall_ms);
    values.Set("audit_violations", results[i].audit_violations);
    if (!p.spans.spans.empty()) {
      values.Set("spans", p.spans.ToJson());
    }
    json.AddValues(StrFormat("jobs=%d", jobs_grid[i]), std::move(values));
  }
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,scaling");
  json.AddTable("scaling summary", table);
  std::cout << (violations == 0
                    ? "determinism: identical rows for every jobs value\n"
                    : StrFormat("violations: %lld\n",
                                static_cast<long long>(violations)));

  if (!json.WriteIfRequested(json_path)) {
    return 1;
  }
  return violations > 0 ? 3 : 0;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
