// Extension bench (footnote 1): aperiodic service through periodic /
// deferrable servers under RT-DVS. Sweeps the server bandwidth and reports
// aperiodic response time, backlog, periodic misses (must stay zero) and
// energy — the provisioning tradeoff a system designer actually turns.
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

int Main(int argc, char** argv) {
  int64_t tasksets = 20;
  int64_t sim_ms = 10'000;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Extension: aperiodic servers under RT-DVS — bandwidth vs "
                "response time vs energy.");
  flags.AddInt64("tasksets", &tasksets, "random periodic task sets");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddBool("quick", &quick, "smoke-test configuration (3 sets, 1 s horizon)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    tasksets = 3;
    sim_ms = 1000;
  }

  TextTable table({"server", "U_s", "mean resp ms", "max resp ms", "backlog",
                   "periodic misses", "energy vs EDF"});

  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = 5;
  gen_options.target_utilization = 0.5;  // leaves room for the server

  for (ServerKind kind :
       {ServerKind::kPolling, ServerKind::kDeferrable, ServerKind::kCbs}) {
    for (double server_util : {0.1, 0.2, 0.3}) {
      RunningStats mean_resp, max_resp, backlog, normalized;
      int64_t misses = 0;
      Pcg32 master(0x5e2f);
      TaskSetGenerator generator(gen_options);
      for (int64_t s = 0; s < tasksets; ++s) {
        Pcg32 rng = master.Fork();
        TaskSet tasks = generator.Generate(rng);
        SimOptions options;
        options.horizon_ms = static_cast<double>(sim_ms);
        options.seed = rng.NextU32();
        options.aperiodic.kind = kind;
        options.aperiodic.period_ms = 20.0;
        options.aperiodic.budget_ms = server_util * 20.0;
        options.aperiodic.arrivals.mean_interarrival_ms = 40.0;
        options.aperiodic.arrivals.mean_service_ms = 2.0;
        options.aperiodic.arrivals.max_service_ms = 8.0;

        auto edf = MakePolicy("edf");
        ConstantFractionModel edf_model(0.8);
        double edf_energy =
            RunSimulation(tasks, MachineSpec::Machine0(), *edf, edf_model, options)
                .total_energy();
        auto policy = MakePolicy("cc_edf");
        ConstantFractionModel model(0.8);
        SimResult result =
            RunSimulation(tasks, MachineSpec::Machine0(), *policy, model, options);
        mean_resp.Add(result.aperiodic.MeanResponseMs());
        max_resp.Add(result.aperiodic.max_response_ms);
        backlog.Add(result.aperiodic.backlog_work);
        normalized.Add(result.total_energy() / edf_energy);
        misses += result.deadline_misses;
      }
      const char* kind_name = kind == ServerKind::kPolling      ? "polling"
                              : kind == ServerKind::kDeferrable ? "deferrable"
                                                                : "CBS";
      table.AddRow({kind_name,
                    FormatDouble(server_util, 2), FormatDouble(mean_resp.mean(), 2),
                    FormatDouble(max_resp.mean(), 2), FormatDouble(backlog.mean(), 2),
                    StrFormat("%lld", static_cast<long long>(misses)),
                    FormatDouble(normalized.mean(), 4)});
    }
  }

  std::cout << "== Extension: aperiodic servers under ccEDF "
               "(5 periodic tasks at U=0.5, Poisson arrivals ~0.05 work/ms) ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,ablation_server");
  std::cout
      << "(polling and CBS must show zero periodic misses. The deferrable\n"
         " server's back-to-back budget bursts exceed periodic-task\n"
         " interference — the classic DS penalty — which is exactly what the\n"
         " CBS deadline-postponement rule repairs while keeping immediate\n"
         " response to arrivals.)\n";

  BenchJson json("ablation_server");
  json.Config("tasksets", tasksets);
  json.Config("sim_ms", sim_ms);
  json.AddTable("Aperiodic servers under ccEDF", table);
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
