// Ablation for §4.3 observation 2: "the dynamic addition of a task to the
// task set may cause transient missed deadlines unless one is very careful.
// ... One solution is to immediately insert the task into the task set, so
// DVS decisions are based on the new system characteristics, but defer the
// initial release of the new task until the current invocations of all
// existing tasks have completed."
//
// This bench joins a new task mid-invocation under the most aggressive
// policy (laEDF) across many random scenarios, with deferral disabled vs
// enabled, and counts the transient misses in a short window after the
// join. With deferral, misses must be zero.
#include <iostream>
#include <memory>

#include "bench/bench_json.h"
#include "src/kernel/kernel.h"
#include "src/rt/taskset_generator.h"
#include "src/util/flags.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

struct Outcome {
  int64_t scenarios = 0;
  int64_t scenarios_with_miss = 0;
  int64_t total_misses = 0;
};

Outcome RunScenarios(bool defer, int64_t count, uint64_t seed) {
  Outcome outcome;
  Pcg32 master(seed);
  for (int64_t s = 0; s < count; ++s) {
    Pcg32 rng = master.Fork();
    KernelOptions options;
    options.defer_first_release = defer;
    // Charge switch overheads to WCET as the paper prescribes, so any miss
    // is attributable to the admission transient alone.
    Kernel kernel(options);
    kernel.LoadPolicy(MakePolicy("la_edf"));

    // Base set: ~60% utilization so the new ~30% task still fits.
    TaskSetGeneratorOptions gen_options;
    gen_options.num_tasks = 4;
    gen_options.target_utilization = 0.6;
    // Longer periods keep the switch-overhead pad small relative to WCET.
    gen_options.short_lo_ms = 20.0;
    gen_options.short_hi_ms = 50.0;
    gen_options.medium_lo_ms = 50.0;
    gen_options.medium_hi_ms = 200.0;
    gen_options.long_lo_ms = 200.0;
    gen_options.long_hi_ms = 500.0;
    TaskSet base = TaskSetGenerator(gen_options).Generate(rng);
    for (const auto& task : base.tasks()) {
      KernelTaskParams params;
      params.name = task.name;
      params.period_ms = task.period_ms;
      params.wcet_ms = task.wcet_ms;
      // Full worst-case use: the system is "so closely matched to the
      // current task set load" (§4.3) that no slack hides the transient.
      params.exec_model = std::make_unique<ConstantFractionModel>(1.0);
      kernel.RegisterTask(std::move(params));
    }

    // Join at a random instant, very likely mid-invocation of something.
    double join_ms = rng.UniformDouble(100.0, 400.0);
    kernel.RunUntil(join_ms);
    int64_t misses_before = kernel.Report().deadline_misses;

    // A short-deadline newcomer: its first deadline lands inside the
    // in-flight invocations that past DVS decisions were sized for.
    KernelTaskParams newcomer;
    newcomer.name = "newcomer";
    newcomer.period_ms = rng.UniformDouble(10.0, 30.0);
    newcomer.wcet_ms = 0.3 * newcomer.period_ms;
    newcomer.exec_model = std::make_unique<ConstantFractionModel>(1.0);
    if (kernel.RegisterTask(std::move(newcomer)) < 0) {
      continue;  // admission rejected (rare: padding pushed it over)
    }
    kernel.RunUntil(join_ms + 1000.0);
    int64_t misses = kernel.Report().deadline_misses - misses_before;
    ++outcome.scenarios;
    outcome.total_misses += misses;
    if (misses > 0) {
      ++outcome.scenarios_with_miss;
    }
  }
  return outcome;
}

int Main(int argc, char** argv) {
  int64_t scenarios = 200;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Ablation (§4.3): transient deadline misses on dynamic task "
                "admission, with and without deferred first release.");
  flags.AddInt64("scenarios", &scenarios, "random join scenarios per mode");
  flags.AddBool("quick", &quick, "smoke-test configuration (20 scenarios)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    scenarios = 20;
  }

  TextTable table({"first release", "scenarios", "scenarios w/ miss", "total misses"});
  for (bool defer : {false, true}) {
    Outcome outcome = RunScenarios(defer, scenarios, 0xadd);
    table.AddRow({defer ? "deferred (paper's fix)" : "immediate",
                  StrFormat("%lld", static_cast<long long>(outcome.scenarios)),
                  StrFormat("%lld", static_cast<long long>(outcome.scenarios_with_miss)),
                  StrFormat("%lld", static_cast<long long>(outcome.total_misses))});
  }
  std::cout << "== Ablation: dynamic task admission under laEDF ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,ablation_admission");
  std::cout << "(the deferred row must show zero misses; the immediate row "
               "shows the transient the paper warns about)\n";

  BenchJson json("ablation_task_admission");
  json.Config("scenarios", scenarios);
  json.AddTable("Dynamic task admission under laEDF", table);
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
