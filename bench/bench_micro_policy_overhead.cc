// Micro-benchmark (google-benchmark): CPU cost of one scheduling-point
// policy invocation, vs task-set size.
//
// §2.6: "All of the RT-DVS algorithms ... do not require significant
// processing costs. The dynamic schemes all require O(n) computation
// (assuming the scheduler provides an EDF sorted task list)". Our laEDF
// re-sorts, so it is O(n log n); this bench makes the constants and the
// scaling visible.
//
// Two passes: a histogram pass measuring batched scheduling points into
// fixed-bucket histograms (mean/p50/p95/p99 ns per point — tail latency is
// what an RT kernel budgets for, and google-benchmark only reports means),
// then the google-benchmark throughput pass. --quick and --json=<path> are
// handled here and stripped before benchmark::Initialize sees argv.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/dvs/policy.h"
#include "src/rt/task.h"
#include "src/util/metrics_registry.h"
#include "src/util/random.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

// A SpeedController that just records the request.
class NullSpeed : public SpeedController {
 public:
  void SetOperatingPoint(const OperatingPoint& point) override { point_ = point; }
  const OperatingPoint& current() const override { return point_; }

 private:
  OperatingPoint point_{1.0, 5.0};
};

struct Fixture {
  TaskSet tasks;
  MachineSpec machine = MachineSpec::Machine2();
  PolicyContext ctx;

  explicit Fixture(int n) {
    Pcg32 rng(42);
    for (int i = 0; i < n; ++i) {
      double period = rng.UniformDouble(5.0, 500.0);
      tasks.AddTask({"", period, 0.4 * period / n, 0.0});
    }
    ctx.now_ms = 1.0;
    ctx.tasks = &tasks;
    ctx.machine = &machine;
    ctx.views.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& view = ctx.views[static_cast<size_t>(i)];
      view.has_active_job = (i % 2) == 0;
      view.next_deadline_ms = 1.0 + tasks.task(i).period_ms;
      view.worst_case_remaining = view.has_active_job ? tasks.task(i).wcet_ms : 0.0;
      view.last_actual_work = 0.5 * tasks.task(i).wcet_ms;
      view.cumulative_executed = 0.0;
    }
  }
};

void BM_SchedulingPoint(benchmark::State& state, const std::string& policy_id) {
  Fixture fixture(static_cast<int>(state.range(0)));
  auto policy = MakePolicy(policy_id);
  NullSpeed speed;
  policy->OnStart(fixture.ctx, speed);
  int task_id = 0;
  for (auto _ : state) {
    policy->OnTaskCompletion(task_id, fixture.ctx, speed);
    policy->OnTaskRelease(task_id, fixture.ctx, speed);
    task_id = (task_id + 1) % fixture.tasks.size();
    benchmark::DoNotOptimize(speed.current());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two scheduling points
}

void RegisterAll() {
  for (const char* id : {"cc_edf", "cc_rm", "la_edf"}) {
    benchmark::RegisterBenchmark((std::string("scheduling_point/") + id).c_str(),
                                 [id](benchmark::State& state) {
                                   BM_SchedulingPoint(state, id);
                                 })
        ->Arg(4)
        ->Arg(8)
        ->Arg(16)
        ->Arg(32)
        ->Arg(64);
  }
}

// Times `batches` batches of 64 completion+release pairs and records the
// per-scheduling-point cost. Batching amortizes the clock reads: a single
// point is tens of ns, well under steady_clock resolution + overhead.
Histogram MeasurePolicy(const std::string& policy_id, int num_tasks,
                        int batches) {
  constexpr int kPairsPerBatch = 64;
  Fixture fixture(num_tasks);
  auto policy = MakePolicy(policy_id);
  NullSpeed speed;
  policy->OnStart(fixture.ctx, speed);
  // 1 ns .. ~6 ms in 1.3x steps: covers a cache-hot ccEDF call and a
  // pathological laEDF re-sort alike.
  Histogram histogram = Histogram::Exponential(1.0, 1.3, 60);
  int task_id = 0;
  for (int b = 0; b < batches; ++b) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kPairsPerBatch; ++i) {
      policy->OnTaskCompletion(task_id, fixture.ctx, speed);
      policy->OnTaskRelease(task_id, fixture.ctx, speed);
      task_id = (task_id + 1) % fixture.tasks.size();
      benchmark::DoNotOptimize(speed.current());
    }
    auto end = std::chrono::steady_clock::now();
    double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                end - start)
                                .count());
    histogram.Record(ns / (2.0 * kPairsPerBatch));
  }
  return histogram;
}

void RunPercentilePass(bool quick, BenchJson* json) {
  const int batches = quick ? 200 : 2000;
  const std::vector<int> sizes = quick ? std::vector<int>{8, 32}
                                       : std::vector<int>{4, 8, 16, 32, 64};
  TextTable table({"policy", "tasks", "mean ns", "p50 ns", "p95 ns", "p99 ns",
                   "max ns"});
  for (const char* id : {"cc_edf", "cc_rm", "la_edf"}) {
    for (int n : sizes) {
      Histogram h = MeasurePolicy(id, n, batches);
      table.AddRow({id, StrFormat("%d", n), FormatDouble(h.mean(), 1),
                    FormatDouble(h.ValueAtPercentile(50), 1),
                    FormatDouble(h.ValueAtPercentile(95), 1),
                    FormatDouble(h.ValueAtPercentile(99), 1),
                    FormatDouble(h.max(), 1)});
    }
  }
  std::cout << "== Scheduling-point latency per invocation "
            << "(batched x64, ns per point) ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,micro_policy_percentiles");
  std::cout << "\n";
  json->AddTable("Scheduling-point latency percentiles (ns)", table);
}

int Main(int argc, char** argv) {
  // Peel off our flags; everything else passes through to google-benchmark
  // (its Initialize aborts on flags it does not know).
  bool quick = false;
  std::string json_path;
  std::vector<char*> pass_through = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pass_through.push_back(argv[i]);
    }
  }
  static char kQuickMinTime[] = "--benchmark_min_time=0.01";
  if (quick) {
    pass_through.push_back(kQuickMinTime);
  }

  BenchJson json("micro_policy_overhead");
  json.Config("quick", quick);
  RunPercentilePass(quick, &json);

  int pass_argc = static_cast<int>(pass_through.size());
  benchmark::Initialize(&pass_argc, pass_through.data());
  benchmark::RunSpecifiedBenchmarks();
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) {
  rtdvs::RegisterAll();
  return rtdvs::Main(argc, argv);
}
