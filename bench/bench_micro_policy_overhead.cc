// Micro-benchmark (google-benchmark): CPU cost of one scheduling-point
// policy invocation, vs task-set size.
//
// §2.6: "All of the RT-DVS algorithms ... do not require significant
// processing costs. The dynamic schemes all require O(n) computation
// (assuming the scheduler provides an EDF sorted task list)". Our laEDF
// re-sorts, so it is O(n log n); this bench makes the constants and the
// scaling visible.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "src/dvs/policy.h"
#include "src/rt/task.h"
#include "src/util/random.h"

namespace rtdvs {
namespace {

// A SpeedController that just records the request.
class NullSpeed : public SpeedController {
 public:
  void SetOperatingPoint(const OperatingPoint& point) override { point_ = point; }
  const OperatingPoint& current() const override { return point_; }

 private:
  OperatingPoint point_{1.0, 5.0};
};

struct Fixture {
  TaskSet tasks;
  MachineSpec machine = MachineSpec::Machine2();
  PolicyContext ctx;

  explicit Fixture(int n) {
    Pcg32 rng(42);
    for (int i = 0; i < n; ++i) {
      double period = rng.UniformDouble(5.0, 500.0);
      tasks.AddTask({"", period, 0.4 * period / n, 0.0});
    }
    ctx.now_ms = 1.0;
    ctx.tasks = &tasks;
    ctx.machine = &machine;
    ctx.views.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& view = ctx.views[static_cast<size_t>(i)];
      view.has_active_job = (i % 2) == 0;
      view.next_deadline_ms = 1.0 + tasks.task(i).period_ms;
      view.worst_case_remaining = view.has_active_job ? tasks.task(i).wcet_ms : 0.0;
      view.last_actual_work = 0.5 * tasks.task(i).wcet_ms;
      view.cumulative_executed = 0.0;
    }
  }
};

void BM_SchedulingPoint(benchmark::State& state, const std::string& policy_id) {
  Fixture fixture(static_cast<int>(state.range(0)));
  auto policy = MakePolicy(policy_id);
  NullSpeed speed;
  policy->OnStart(fixture.ctx, speed);
  int task_id = 0;
  for (auto _ : state) {
    policy->OnTaskCompletion(task_id, fixture.ctx, speed);
    policy->OnTaskRelease(task_id, fixture.ctx, speed);
    task_id = (task_id + 1) % fixture.tasks.size();
    benchmark::DoNotOptimize(speed.current());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two scheduling points
}

void RegisterAll() {
  for (const char* id : {"cc_edf", "cc_rm", "la_edf"}) {
    benchmark::RegisterBenchmark((std::string("scheduling_point/") + id).c_str(),
                                 [id](benchmark::State& state) {
                                   BM_SchedulingPoint(state, id);
                                 })
        ->Arg(4)
        ->Arg(8)
        ->Arg(16)
        ->Arg(32)
        ->Arg(64);
  }
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) {
  rtdvs::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
