// Multiprocessor scaling: simulator throughput (sims/sec) and energy for
// the same per-core utilization grid at M = 1, 2 and 4 cores, partitioned
// first-fit. The M = 1 panel uses the exact Figure 9 configuration
// (machine 0, 10 tasks, full worst-case demand), so its throughput is
// directly comparable to bench_fig09_num_tasks — the cluster driver's
// single-core path must not cost anything over the classic sweep.
#include "bench/sweep_main.h"
#include "src/engine/cluster.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  if (!rtdvs::ParseSweepFlags(
          argc, argv,
          "Multiprocessor scaling: sims/sec and energy at M = 1, 2, 4 cores "
          "(partitioned first-fit, per-core utilization axis).",
          &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("mp_scaling");
  rtdvs::RecordSweepFlags(flags, &json);

  int64_t audit_violations = 0;
  rtdvs::JsonValue summary = rtdvs::JsonValue::Object();
  for (int cores : {1, 2, 4}) {
    rtdvs::SweepOptions options;
    options.policy_ids = {"edf", "cc_edf", "la_edf"};
    options.num_tasks = 10;
    options.idle_level = 0.0;
    options.exec_model_factory = [] {
      return std::make_unique<rtdvs::ConstantFractionModel>(1.0);
    };
    options.num_cores = cores;
    options.mp_mode = rtdvs::MpMode::kPartitioned;
    options.mp_partition = rtdvs::PartitionHeuristic::kFirstFit;
    rtdvs::ApplySweepFlags(flags, &options);

    const std::string title =
        rtdvs::StrFormat("MP scaling: %d core%s (partitioned ff)", cores,
                         cores == 1 ? "" : "s");
    rtdvs::SweepResult result;
    for (int64_t attempt = 0; attempt < flags.repeat; ++attempt) {
      rtdvs::UtilizationSweep sweep(options);
      rtdvs::SweepResult this_run = sweep.Run();
      if (attempt == 0 ||
          this_run.profile.sims_per_sec > result.profile.sims_per_sec) {
        result = std::move(this_run);
      }
    }
    std::cout << "== " << title << " ==\n";
    std::cout << "machine: " << options.machine.ToString() << "\n";
    std::cout << "energy normalized to "
              << (cores == 1 ? "plain EDF" : "cluster EDF") << "\n";
    rtdvs::RenderEnergyTable(result, /*normalized=*/true).Print(std::cout);
    rtdvs::WriteCsv(result, std::cout,
                    rtdvs::StrFormat("csv,mp_scaling_m%d", cores));
    int64_t rejections = 0;
    double total_energy = 0.0;
    int64_t samples = 0;
    for (const auto& row : result.rows) {
      for (const auto& cell : row.cells) {
        rejections += cell.admission_rejections;
        total_energy +=
            cell.energy.mean() * static_cast<double>(cell.energy.count());
        samples += static_cast<int64_t>(cell.energy.count());
      }
    }
    if (rejections > 0) {
      std::cout << rtdvs::StrFormat(
          "admission: %lld policy-run(s) rejected by partitioning\n",
          static_cast<long long>(rejections));
    }
    audit_violations += result.audit_violations;
    std::cout << rtdvs::StrFormat(
        "throughput: %.0f sims/s (%lld sims, %.0f ms wall, jobs=%d)\n\n",
        result.profile.sims_per_sec,
        static_cast<long long>(result.profile.simulations),
        result.elapsed_wall_ms, result.options.jobs);
    json.Add(title, "sweep", rtdvs::SweepResultToJson(result));

    rtdvs::JsonValue& per_m =
        summary.Set(rtdvs::StrFormat("m%d", cores), rtdvs::JsonValue::Object());
    per_m.Set("sims_per_sec", result.profile.sims_per_sec);
    per_m.Set("simulations", result.profile.simulations);
    per_m.Set("mean_energy_per_sample",
              samples == 0 ? 0.0 : total_energy / static_cast<double>(samples));
    per_m.Set("admission_rejections", rejections);
  }
  json.AddValues("scaling summary", std::move(summary));
  if (!json.WriteIfRequested(flags.json_path)) {
    return 1;
  }
  return audit_violations > 0 ? 3 : 0;
}
