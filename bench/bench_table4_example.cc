// Tables 2-4 and Figures 2, 3, 5, 7: the paper's worked example.
//
// Runs the 3-task example set (Table 2) with the actual execution times of
// Table 3 on machine 0 for 16 ms under every algorithm, prints the ASCII
// execution trace (the paper's Figures 2/3/5/7) and the normalized energy
// table (Table 4). These numbers reproduce exactly; see
// tests/core/paper_example_test.cc for the pinned values.
#include <iostream>
#include <memory>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/table.h"

#include "bench/bench_json.h"

namespace rtdvs {
namespace {

std::unique_ptr<ExecTimeModel> Table3Model() {
  // Table 3: per-invocation actual computation (ms at full speed):
  //   T1: 2 then 1 (C=3);  T2: 1, 1 (C=3);  T3: 1, 1 (C=1).
  return std::make_unique<TableFractionModel>(std::vector<std::vector<double>>{
      {2.0 / 3.0, 1.0 / 3.0}, {1.0 / 3.0, 1.0 / 3.0}, {1.0, 1.0}});
}

int Main(int argc, char** argv) {
  bool show_traces = true;
  bool quick = false;
  std::string json_path;
  FlagSet flags("Reproduces Table 4 (and the example traces of Figures 2/3/5/7).");
  flags.AddBool("traces", &show_traces, "print per-policy ASCII execution traces");
  flags.AddBool("quick", &quick, "smoke-test configuration (implies --no-traces)");
  flags.AddString("json", &json_path,
                  "also write the report as rtdvs-bench-v1 JSON to this path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (quick) {
    show_traces = false;
  }

  TaskSet tasks = TaskSet::PaperExample();
  std::cout << "Task set (Table 2): " << tasks.ToString() << "\n";
  std::cout << "Machine: " << MachineSpec::Machine0().ToString() << "\n\n";

  BenchJson json("table4_example");
  json.Config("horizon_ms", 16.0);
  json.Config("machine", MachineSpec::Machine0().name());
  JsonValue energies = JsonValue::Object();
  TextTable table({"RT-DVS method", "energy", "normalized"});
  double edf_energy = 0;
  for (const auto& id : AllPaperPolicyIds()) {
    auto policy = MakePolicy(id);
    auto model = Table3Model();
    SimOptions options;
    options.horizon_ms = 16.0;
    options.record_trace = true;
    SimResult result =
        RunSimulation(tasks, MachineSpec::Machine0(), *policy, *model, options);
    if (id == "edf") {
      edf_energy = result.total_energy();
    }
    table.AddRow({result.policy_name, FormatDouble(result.total_energy(), 2),
                  FormatDouble(result.total_energy() / edf_energy, 2)});
    energies.Set(id, result.total_energy());
    if (show_traces) {
      std::cout << "--- " << result.policy_name << " (first 16 ms) ---\n"
                << result.trace.RenderGantt(tasks, 64, 16.0) << "\n";
    }
  }
  std::cout << "Table 4: normalized energy consumption for the example traces\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "csv,table4");
  json.AddTable("Table 4: normalized energy for the worked example", table);
  json.AddValues("absolute energy per policy", std::move(energies));
  return json.WriteIfRequested(json_path) ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
