// Figure 9: absolute energy consumption vs. worst-case utilization for task
// sets of 5, 10 and 15 tasks (machine 0, perfect halt, tasks consume their
// full worst case). Paper finding: utilization dominates; the number of
// tasks has very little effect, and laEDF tracks the theoretical bound.
#include "bench/sweep_main.h"

int main(int argc, char** argv) {
  rtdvs::SweepBenchFlags flags;
  if (!rtdvs::ParseSweepFlags(argc, argv,
                              "Reproduces Figure 9: energy vs utilization for "
                              "5, 10 and 15 tasks.",
                              &flags)) {
    return 1;
  }
  rtdvs::BenchJson json("fig09_num_tasks");
  rtdvs::RecordSweepFlags(flags, &json);
  for (int num_tasks : {5, 10, 15}) {
    rtdvs::SweepBenchConfig config;
    config.title = rtdvs::StrFormat("Figure 9: %d tasks", num_tasks);
    config.csv_tag = rtdvs::StrFormat("fig9_n%d", num_tasks);
    config.normalized = false;  // the paper plots absolute energy here
    config.options.num_tasks = num_tasks;
    config.options.idle_level = 0.0;
    config.options.exec_model_factory = [] {
      return std::make_unique<rtdvs::ConstantFractionModel>(1.0);
    };
    rtdvs::ApplySweepFlags(flags, &config.options);
    rtdvs::RunAndPrintSweep(config, &json, static_cast<int>(flags.repeat));
  }
  return json.WriteIfRequested(flags.json_path) ? 0 : 1;
}
