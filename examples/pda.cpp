// A PDA-style device: periodic housekeeping plus USER INPUT — the classic
// aperiodic workload (footnote 1 of the paper: aperiodic tasks are handled
// by a periodic or deferred server). Pen taps arrive at random; each needs
// a burst of computation; the user feels the response time.
//
// This example compares the three server disciplines under ccEDF:
//   polling     — strictly periodic service; cheap but sluggish
//   deferrable  — immediate service; can disturb periodic deadlines
//   CBS         — immediate service with a provable bandwidth bound
// and shows that DVS energy savings coexist with interactive response.
#include <cstdio>
#include <memory>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/sim/simulator.h"

int main() {
  using namespace rtdvs;

  // The periodic side of the PDA: display refresh, radio keepalive, sync.
  TaskSet tasks;
  tasks.AddTask({"display", 16.0, 4.0});
  tasks.AddTask({"radio", 100.0, 15.0});
  tasks.AddTask({"sync", 500.0, 60.0});
  std::printf("PDA periodic tasks: %s\n", tasks.ToString().c_str());

  SimOptions base;
  base.horizon_ms = 60'000.0;  // one minute of use
  base.idle_level = 0.05;
  base.aperiodic.period_ms = 20.0;
  base.aperiodic.budget_ms = 4.0;  // 20% of the CPU reserved for taps
  base.aperiodic.arrivals.mean_interarrival_ms = 150.0;  // a tap every ~150 ms
  base.aperiodic.arrivals.mean_service_ms = 2.5;
  base.aperiodic.arrivals.max_service_ms = 8.0;

  std::printf("taps: ~%.1f/s, %.3g ms of work each (%.0f%% CPU reserved)\n\n",
              1000.0 / base.aperiodic.arrivals.mean_interarrival_ms,
              base.aperiodic.arrivals.mean_service_ms,
              100.0 * base.aperiodic.budget_ms / base.aperiodic.period_ms);

  std::printf("%-12s %-10s %-12s %-12s %-10s %-10s\n", "server", "policy",
              "mean resp", "max resp", "misses", "energy");
  std::printf("%s\n", std::string(70, '-').c_str());

  struct Config {
    ServerKind kind;
    const char* name;
  };
  const Config configs[] = {{ServerKind::kPolling, "polling"},
                            {ServerKind::kDeferrable, "deferrable"},
                            {ServerKind::kCbs, "CBS"}};
  for (const auto& config : configs) {
    for (const char* policy_id : {"edf", "cc_edf"}) {
      SimOptions options = base;
      options.aperiodic.kind = config.kind;
      auto policy = MakePolicy(policy_id);
      // Housekeeping uses 40-90% of its worst case, invocation by invocation.
      UniformFractionModel demand(0.4, 0.9);
      SimResult result =
          RunSimulation(tasks, MachineSpec::Machine2(), *policy, demand, options);
      std::printf("%-12s %-10s %9.2f ms %9.2f ms %-10lld %-10.0f\n", config.name,
                  result.policy_name.c_str(), result.aperiodic.MeanResponseMs(),
                  result.aperiodic.max_response_ms,
                  static_cast<long long>(result.deadline_misses),
                  result.total_energy());
    }
  }

  std::printf(
      "\nTakeaways: the CBS matches the deferrable server's snappy response\n"
      "without its deadline interference, and ccEDF cuts energy ~independently\n"
      "of the server discipline — the server is just another periodic task to\n"
      "the DVS machinery.\n");
  return 0;
}
