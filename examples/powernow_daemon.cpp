// A user-level, non-real-time DVS "demon" (§4.2):
//
//   "The PowerNow! module also provides a /procfs interface. This will
//    allow for a user-level, non-RT DVS demon, implementing algorithms
//    found in other DVS literature, or to manually deal with operating
//    frequency and voltage through simple Unix shell commands."
//
// This example implements a Weiser-style utilization-feedback governor
// entirely in "user space": it reads the kernel's /proc/rtdvs/stats to
// estimate recent processor utilization and writes target frequencies to
// /proc/powernow/ctl — no kernel scheduler integration at all. It tracks
// load nicely and saves energy, but (as §2.2 predicts) it cannot promise
// deadlines: the run reports the misses it caused.
#include <iostream>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/platform/k6_cpu.h"
#include "src/rt/exec_time_model.h"
#include "src/util/strings.h"

namespace {

// Parses one "key value" line out of /proc/rtdvs/stats.
double StatValue(const std::string& stats, const std::string& key) {
  for (const auto& line : rtdvs::Split(stats, '\n')) {
    auto fields = rtdvs::Split(line, ' ');
    if (fields.size() == 2 && fields[0] == key) {
      return rtdvs::ParseDouble(fields[1]).value_or(0.0);
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace rtdvs;

  KernelOptions options;
  Kernel kernel(options);
  // No RT scheduler/DVS module loaded: plain EDF at whatever frequency the
  // daemon last wrote. The daemon is the only thing scaling the CPU.
  kernel.LoadPolicy(nullptr);

  {
    // The §2.2 sensor task: usually light, occasionally needs its full 3 ms
    // of computation — precisely what fools an average-based governor.
    KernelTaskParams sensor;
    sensor.name = "sensor";
    sensor.period_ms = 5.0;
    sensor.wcet_ms = 3.0;
    sensor.exec_model = std::make_unique<BimodalFractionModel>(
        /*typical_fraction=*/0.25, /*spike_probability=*/0.05);
    kernel.RegisterTask(std::move(sensor));

    KernelTaskParams render;
    render.name = "render";
    render.period_ms = 40.0;
    render.wcet_ms = 10.0;
    render.exec_model = std::make_unique<ConstantFractionModel>(0.5);
    kernel.RegisterTask(std::move(render));
  }

  const double kWindowMs = 50.0;
  double last_busy = 0.0;
  double predicted = 1.0;
  std::printf("%-8s %-10s %-8s %-8s\n", "t(ms)", "util", "freq", "misses");
  for (double t = kWindowMs; t <= 10'000.0; t += kWindowMs) {
    kernel.RunUntil(t);
    std::string stats = *kernel.procfs().Read("/proc/rtdvs/stats");
    double busy = StatValue(stats, "busy_ms");
    double misses = StatValue(stats, "misses");
    double utilization = (busy - last_busy) / kWindowMs;
    last_busy = busy;
    predicted = 0.5 * predicted + 0.5 * utilization;

    // Pick the lowest PLL frequency covering the predicted load.
    double current_mhz = kernel.cpu().frequency_mhz();
    double needed_mhz = predicted * current_mhz / 1.0;
    double target = K6Cpu::kMaxRatedMhz;
    for (double mhz : K6Cpu::FrequencyTableMhz()) {
      if (mhz >= needed_mhz * 1.1) {  // 10% headroom
        target = mhz;
        break;
      }
    }
    kernel.procfs().Write("/proc/powernow/ctl", StrFormat("%g", target));
    if (static_cast<long>(t) % 1000 == 0) {
      std::printf("%-8.0f %-10.3f %-8.0f %-8.0f\n", t, utilization,
                  kernel.cpu().frequency_mhz(), misses);
    }
  }

  KernelReport report = kernel.Report();
  std::printf("\nuser-level governor: avg %.2f W, %lld deadline misses out of "
              "%lld releases\n",
              report.avg_system_watts, static_cast<long long>(report.deadline_misses),
              static_cast<long long>(report.releases));
  std::printf("(energy-friendly, deadline-hostile: compare examples/camcorder "
              "and the RT-DVS policies)\n");
  return 0;
}
