// The camcorder controller from the paper's introduction (§2.2):
//
//   "suppose there is a program that must react to a change in a sensor
//    reading within a 5 ms deadline, and that it requires up to 3 ms of
//    computation time with the processor running at the maximum operating
//    frequency. With a DVS algorithm that reacts only to average throughput,
//    if the total load on the system is low, the processor would be set to
//    operate at a low frequency, say half of the maximum, and the task, now
//    requiring 6 ms of processor time, cannot meet its 5 ms deadline."
//
// This example builds that controller — a sensor-reaction task plus video
// pipeline tasks with bursty actual demand — and runs it under (a) the
// average-throughput interval governor and (b) the RT-DVS policies. The
// interval governor saves energy AND blows deadlines; RT-DVS saves
// comparable energy with zero misses.
#include <iostream>
#include <memory>

#include "src/cpu/machine_spec.h"
#include "src/dvs/interval_policy.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"

int main() {
  using namespace rtdvs;

  TaskSet tasks;
  // The motivating task: 3 ms worst case against a 5 ms deadline. It only
  // occasionally needs the full 3 ms (a sensor event), which is exactly
  // what lures a throughput governor into a low frequency.
  tasks.AddTask({"sensor", 5.0, 3.0});
  // 30 fps video pipeline stages (worst-case utilization stays below 1, so
  // EDF-based policies are provably miss-free here).
  tasks.AddTask({"capture", 33.0, 5.0});
  tasks.AddTask({"encode", 33.0, 8.0});

  MachineSpec machine = MachineSpec::Machine0();
  SimOptions options;
  options.horizon_ms = 30'000.0;
  options.idle_level = 0.05;
  // A camcorder drops the frame rather than stalling the pipeline:
  options.miss_policy = MissPolicy::kAbortJob;

  // Mostly-idle sensor handling with occasional worst-case spikes; the
  // video stages hover around 70% of worst case.
  auto make_model = [] {
    return std::make_unique<BimodalFractionModel>(/*typical_fraction=*/0.35,
                                                  /*spike_probability=*/0.08);
  };

  std::cout << "Camcorder controller: " << tasks.ToString() << "\n";
  std::cout << "U_worst = " << tasks.TotalUtilization() << "\n\n";
  std::cout << "policy            energy   vs EDF   deadline misses\n";
  std::cout << "----------------------------------------------------\n";

  double edf_energy = 0;
  for (const std::string id : {"edf", "interval", "cc_edf", "la_edf"}) {
    auto policy = MakePolicy(id);
    auto model = make_model();
    SimResult result = RunSimulation(tasks, machine, *policy, *model, options);
    if (id == "edf") {
      edf_energy = result.total_energy();
    }
    std::printf("%-16s %8.0f   %5.2f   %8lld %s\n", result.policy_name.c_str(),
                result.total_energy(), result.total_energy() / edf_energy,
                static_cast<long long>(result.deadline_misses),
                result.deadline_misses > 0 ? "<-- dropped frames / late reactions"
                                           : "");
  }

  std::cout << "\nThe interval governor tracks average load and undershoots "
               "exactly when\na worst-case sensor event lands; the RT-DVS "
               "policies reserve for the worst\ncase by construction and "
               "never miss (§2.2 of the paper).\n";
  return 0;
}
