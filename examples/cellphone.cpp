// A cellular-phone controller on the kernel substrate (§4 of the paper):
// dynamic task arrival, admission control, deferred first release, policy
// hot-swap through /proc, and oscilloscope-style power measurement.
//
// Timeline:
//   t = 0 s     idle phone: paging listener + UI + battery monitor,
//               scheduled by ccEDF on the K6-2+ platform
//   t = 2 s     an incoming call: vocoder + channel codec tasks are
//               admitted at run time (their first release is deferred past
//               all in-flight invocations, §4.3 observation 2)
//   t = 6 s     hot-swap the policy module to laEDF mid-call, via /proc
//   t = 10 s    call ends: tasks unregister; phone returns to idle
#include <iostream>
#include <memory>

#include "src/kernel/kernel.h"
#include "src/rt/exec_time_model.h"

namespace {

rtdvs::KernelTaskParams MakeTask(const char* name, double period_ms, double wcet_ms,
                                 double fraction) {
  rtdvs::KernelTaskParams params;
  params.name = name;
  params.period_ms = period_ms;
  params.wcet_ms = wcet_ms;
  params.exec_model = std::make_unique<rtdvs::ConstantFractionModel>(fraction);
  return params;
}

void Checkpoint(rtdvs::Kernel& kernel, const char* label, double since_ms) {
  rtdvs::KernelReport report = kernel.Report();
  std::printf("[%6.1f s] %-28s avg %5.2f W (window %5.2f W), misses %lld\n",
              kernel.now_ms() / 1000.0, label, report.avg_system_watts,
              kernel.power_meter().AverageWatts(since_ms, kernel.now_ms()),
              static_cast<long long>(report.deadline_misses));
}

}  // namespace

int main() {
  using namespace rtdvs;

  KernelOptions options;  // admission control + deferred release on by default
  Kernel kernel(options);
  kernel.LoadPolicy(MakePolicy("cc_edf"));

  // Idle-mode task set.
  kernel.RegisterTask(MakeTask("paging", 20.0, 2.0, 0.6));
  kernel.RegisterTask(MakeTask("ui", 50.0, 5.0, 0.4));
  kernel.RegisterTask(MakeTask("battmon", 500.0, 10.0, 0.9));
  std::cout << "procfs " << "/proc/rtdvs/tasks:\n"
            << *kernel.procfs().Read("/proc/rtdvs/tasks") << "\n";

  // Stop mid-invocation (not on a hyperperiod boundary) so the deferred
  // first release below has in-flight invocations to defer past.
  kernel.RunUntil(2003.0);
  Checkpoint(kernel, "idle (ccEDF)", 0.0);

  // Incoming call: the DSP work arrives as new periodic tasks.
  int vocoder = kernel.RegisterTask(MakeTask("vocoder", 20.0, 4.0, 0.8));
  int codec = kernel.RegisterTask(MakeTask("codec", 40.0, 8.0, 0.7));
  std::cout << "\ncall setup at t=2003 ms: vocoder handle " << vocoder
            << ", codec handle " << codec << "\n";
  if (auto deferred = kernel.FirstReleaseMs(vocoder)) {
    std::printf("vocoder admitted at t=%.1f ms, first release deferred to "
                "t=%.1f ms (past all in-flight deadlines)\n",
                kernel.now_ms(), *deferred);
  }
  // A hypothetical "video call" upgrade that would overload the set is
  // rejected by admission control:
  int video = kernel.RegisterTask(MakeTask("video", 15.0, 14.0, 0.9));
  std::printf("video upgrade request: %s\n",
              video < 0 ? "REJECTED by admission control (set would be "
                          "unschedulable)"
                        : "accepted!?");

  kernel.RunUntil(6000.0);
  Checkpoint(kernel, "in call (ccEDF)", 2000.0);

  // Hot-swap the scheduler/DVS module through /proc, like
  //   echo la_edf > /proc/rtdvs/policy
  bool swapped = kernel.procfs().Write("/proc/rtdvs/policy", "la_edf");
  std::printf("\npolicy hot-swap via /proc/rtdvs/policy: %s -> %s\n",
              swapped ? "ok" : "FAILED",
              kernel.procfs().Read("/proc/rtdvs/policy")->c_str());
  kernel.RunUntil(10'000.0);
  Checkpoint(kernel, "in call (laEDF)", 6000.0);

  // Call teardown.
  kernel.UnregisterTask(vocoder);
  kernel.UnregisterTask(codec);
  kernel.RunUntil(14'000.0);
  Checkpoint(kernel, "idle again (laEDF)", 10'000.0);

  std::cout << "\n/proc/rtdvs/stats:\n" << *kernel.procfs().Read("/proc/rtdvs/stats");
  return kernel.Report().deadline_misses == 0 ? 0 : 1;
}
