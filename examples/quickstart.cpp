// Quickstart: the 60-second tour of the library.
//
//   1. Describe a periodic task set (periods + worst-case compute times).
//   2. Pick a DVS-capable machine (frequency/voltage table).
//   3. Pick an RT-DVS policy and an actual-execution model.
//   4. Simulate, and read energy / deadline statistics.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"

int main() {
  using namespace rtdvs;

  // A small embedded controller: a fast control loop, a telemetry encoder
  // and a housekeeping task. WCETs are given at full processor speed.
  TaskSet tasks;
  tasks.AddTask({"control", /*period_ms=*/5.0, /*wcet_ms=*/1.5});
  tasks.AddTask({"encode", /*period_ms=*/20.0, /*wcet_ms=*/7.0});
  tasks.AddTask({"house", /*period_ms=*/100.0, /*wcet_ms=*/10.0});
  std::cout << tasks.ToString() << "\n\n";

  // The paper's "machine 0": 0.5/0.75/1.0 x full speed at 3/4/5 volts.
  MachineSpec machine = MachineSpec::Machine0();

  // Invocations actually use ~60% of their worst case on average.
  UniformFractionModel exec_model(0.2, 1.0);

  SimOptions options;
  options.horizon_ms = 10'000.0;  // simulate 10 seconds
  options.idle_level = 0.1;       // halted cycles cost 10% of active ones

  std::cout << "policy            energy   vs EDF   misses  switches\n";
  std::cout << "------------------------------------------------------\n";
  double edf_energy = 0;
  for (const auto& id : AllPaperPolicyIds()) {
    UniformFractionModel model = exec_model;  // same seed path for fairness
    SimResult result = RunSimulation(tasks, machine, id, model, options);
    if (id == "edf") {
      edf_energy = result.total_energy();
    }
    std::printf("%-16s %8.0f   %5.2f   %6lld  %8lld\n", result.policy_name.c_str(),
                result.total_energy(), result.total_energy() / edf_energy,
                static_cast<long long>(result.deadline_misses),
                static_cast<long long>(result.speed_switches));
  }

  // The theoretical floor for this workload (§3.2 of the paper):
  UniformFractionModel model = exec_model;
  SimResult la = RunSimulation(tasks, machine, "la_edf", model, options);
  std::printf("%-16s %8.0f   (no schedule can beat this)\n", "lower bound",
              la.lower_bound_energy);
  return 0;
}
