// rtdvs-json-check: validate machine-readable output files.
//
//   ./rtdvs-json-check BENCH_fig09.json BENCH_table1.json ...
//   ./rtdvs-json-check --kind=trace trace.json
//
// CI runs every bench with --quick --json and then this tool over the
// results; a bench that emits malformed JSON or drifts from the documented
// schema fails the build instead of silently producing undiffable artifacts.
// Exit code: 0 when every file validates, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/flags.h"
#include "src/util/json.h"

namespace rtdvs {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// One complaint per defect, so a CI log pinpoints the drift directly.
std::vector<std::string> CheckBenchDocument(const JsonValue& doc) {
  std::vector<std::string> problems;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind() != JsonValue::Kind::kString ||
      schema->AsString() != "rtdvs-bench-v1") {
    problems.push_back("missing or wrong \"schema\" (want \"rtdvs-bench-v1\")");
  }
  const JsonValue* bench = doc.Find("bench");
  if (bench == nullptr || bench->kind() != JsonValue::Kind::kString ||
      bench->AsString().empty()) {
    problems.push_back("missing or empty \"bench\" name");
  }
  if (const JsonValue* config = doc.Find("config");
      config == nullptr || config->kind() != JsonValue::Kind::kObject) {
    problems.push_back("missing \"config\" object");
  }
  const JsonValue* sections = doc.Find("sections");
  if (sections == nullptr || sections->kind() != JsonValue::Kind::kArray ||
      sections->size() == 0) {
    problems.push_back("missing or empty \"sections\" array");
    return problems;
  }
  for (size_t i = 0; i < sections->size(); ++i) {
    const JsonValue& section = sections->at(i);
    if (section.kind() != JsonValue::Kind::kObject) {
      problems.push_back("section " + std::to_string(i) + " is not an object");
      continue;
    }
    const JsonValue* title = section.Find("title");
    if (title == nullptr || title->kind() != JsonValue::Kind::kString ||
        title->AsString().empty()) {
      problems.push_back("section " + std::to_string(i) + " has no title");
    }
    const JsonValue* sweep = section.Find("sweep");
    const JsonValue* table = section.Find("table");
    const JsonValue* values = section.Find("values");
    if (sweep == nullptr && table == nullptr && values == nullptr) {
      problems.push_back("section " + std::to_string(i) +
                         " carries none of sweep/table/values");
      continue;
    }
    if (sweep != nullptr &&
        (sweep->kind() != JsonValue::Kind::kObject ||
         sweep->Find("rows") == nullptr || sweep->Find("config") == nullptr)) {
      problems.push_back("section " + std::to_string(i) +
                         " \"sweep\" lacks rows/config");
    }
    if (table != nullptr && (table->kind() != JsonValue::Kind::kObject ||
                             table->Find("header") == nullptr ||
                             table->Find("rows") == nullptr)) {
      problems.push_back("section " + std::to_string(i) +
                         " \"table\" lacks header/rows");
    }
    if (values != nullptr && values->kind() != JsonValue::Kind::kObject) {
      problems.push_back("section " + std::to_string(i) +
                         " \"values\" is not an object");
    }
  }
  return problems;
}

std::vector<std::string> CheckTraceDocument(const JsonValue& doc) {
  std::vector<std::string> problems;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || events->kind() != JsonValue::Kind::kArray) {
    problems.push_back("missing \"traceEvents\" array");
    return problems;
  }
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->kind() != JsonValue::Kind::kString) {
      problems.push_back("event " + std::to_string(i) + " has no \"ph\"");
      break;  // one structural complaint is enough for a trace
    }
  }
  const JsonValue* other = doc.Find("otherData");
  if (other == nullptr || other->Find("truncated") == nullptr) {
    problems.push_back("missing otherData.truncated flag");
  }
  return problems;
}

int Main(int argc, char** argv) {
  std::string kind = "bench";
  FlagSet flags(
      "rtdvs-json-check: validate BENCH_*.json / trace JSON files.\n"
      "usage: rtdvs-json-check [--kind=bench|trace] <file>...");
  flags.AddString("kind", &kind, "document kind to validate: bench|trace");
  flags.AllowPositional();
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (kind != "bench" && kind != "trace") {
    std::fprintf(stderr, "error: --kind must be bench or trace\n");
    return 1;
  }
  const std::vector<std::string>& paths = flags.positional();
  if (paths.empty()) {
    std::fprintf(stderr, "error: no files given\n");
    return 1;
  }

  int failures = 0;
  for (const auto& path : paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "FAIL %s: cannot read\n", path.c_str());
      ++failures;
      continue;
    }
    std::string error;
    auto doc = JsonValue::Parse(text, &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), error.c_str());
      ++failures;
      continue;
    }
    auto problems = kind == "bench" ? CheckBenchDocument(*doc)
                                    : CheckTraceDocument(*doc);
    if (problems.empty()) {
      std::printf("ok   %s\n", path.c_str());
    } else {
      for (const auto& problem : problems) {
        std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), problem.c_str());
      }
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
