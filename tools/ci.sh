#!/usr/bin/env bash
# CI driver: plain build + full test suite, then the same suite under
# ASan/UBSan, then the concurrency tests (thread pool, parallel sweep
# harness, bench smokes) under TSan, then every bench in --quick mode with
# --json output validated against the rtdvs-bench-v1 schema, then the
# rtdvs-benchdiff perf-regression gate against bench/baselines, then a
# bounded deterministic differential-fuzz campaign (production simulator vs
# the reference oracle; failing repro strings land in build-ci-plain/fuzz/).
#
#   tools/ci.sh              # all stages
#   tools/ci.sh plain        # one: plain | asan-ubsan | tsan | bench-json |
#                            #      benchdiff | tidy | fuzz
#   tools/ci.sh refresh-baselines   # regenerate bench/baselines/
#
# RTDVS_NIGHTLY=1 switches the benchdiff stage to full (non-quick) bench
# runs; those diff against the quick baselines as warnings-only (config
# mismatch), producing the nightly trend report artifact.
#
# Each stage builds into its own tree (build-ci-<stage>) so sanitizer flags
# never leak between configurations. ctest labels: tier1 = fast unit suites,
# tier2 = property/stress/sweep suites and bench smokes, threads = anything
# that exercises the thread pool.
set -euo pipefail

cd "$(dirname "$0")/.."

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

configure_and_build() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j "$(nproc)"
}

run_ctest() {
  local dir="$1"
  shift
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" "$@")
}

stage_plain() {
  echo "=== stage: plain build, full test suite ==="
  configure_and_build build-ci-plain
  run_ctest build-ci-plain
}

stage_asan_ubsan() {
  echo "=== stage: ASan+UBSan build, full test suite ==="
  configure_and_build build-ci-asan -DRTDVS_SANITIZE=address,undefined
  # halt_on_error keeps a leak from being buried mid-log; detect_leaks stays
  # on to catch trace/result buffers that escape the simulator.
  ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=print_stacktrace=1 \
    run_ctest build-ci-asan
}

stage_tsan() {
  echo "=== stage: TSan build, concurrency tests ==="
  configure_and_build build-ci-tsan -DRTDVS_SANITIZE=thread
  TSAN_OPTIONS=halt_on_error=1 run_ctest build-ci-tsan -L threads
}

stage_bench_json() {
  echo "=== stage: bench --quick --json, schema validation ==="
  configure_and_build build-ci-plain
  local out="build-ci-plain/bench-json"
  mkdir -p "$out"
  # Every bench binary must accept --quick --json=<path> and produce a
  # document that validates as rtdvs-bench-v1. Globbing keeps this in sync
  # with bench/CMakeLists.txt automatically.
  local bench
  for bench in build-ci-plain/bench/bench_*; do
    [[ -f "$bench" && -x "$bench" ]] || continue
    local name
    name="$(basename "$bench")"
    echo "--- $name --quick --json ---"
    "$bench" --quick --json="$out/BENCH_${name#bench_}.json" >/dev/null
  done
  build-ci-plain/tools/rtdvs-json-check "$out"/BENCH_*.json
}

# The regression gate's bench set. ONE list for both the gate and the
# baseline refresh: the configs must match exactly or rtdvs-benchdiff's
# comparability guard downgrades the whole diff to warnings.
# mode: quick (the CI gate and committed baselines) | full (nightly).
run_gate_benches() {
  local builddir="$1" outdir="$2" mode="${3:-quick}"
  mkdir -p "$outdir"
  # --repeat 3 re-times each configuration and reports the best-of run, so
  # the throughput metrics benchdiff gates on are not first-run noise.
  local q=(--repeat 3) sq=(--repeat 3)
  if [[ "$mode" == quick ]]; then
    q=(--quick --repeat 3)
    # --max-jobs 2 keeps the jobs grid {1,2} on every host, so the metric
    # keys are host-independent.
    sq=(--quick --max-jobs 2 --repeat 3)
  fi
  "$builddir"/bench/bench_fig09_num_tasks "${q[@]}" \
    --json="$outdir/BENCH_fig09_num_tasks.json" >/dev/null
  "$builddir"/bench/bench_fig10_idle_level "${q[@]}" \
    --json="$outdir/BENCH_fig10_idle_level.json" >/dev/null
  "$builddir"/bench/bench_fig12_const_fraction "${q[@]}" \
    --json="$outdir/BENCH_fig12_const_fraction.json" >/dev/null
  "$builddir"/bench/bench_mp_scaling "${q[@]}" \
    --json="$outdir/BENCH_mp_scaling.json" >/dev/null
  "$builddir"/bench/bench_scaling_efficiency "${sq[@]}" \
    --json="$outdir/BENCH_scaling_efficiency.json" >/dev/null
}

stage_benchdiff() {
  echo "=== stage: bench regression gate (rtdvs-benchdiff) ==="
  configure_and_build build-ci-plain
  local out="build-ci-plain/benchdiff"
  local mode=quick
  if [[ "${RTDVS_NIGHTLY:-0}" == 1 ]]; then
    mode=full  # config mismatch vs the quick baselines -> warnings-only diff
  fi
  run_gate_benches build-ci-plain "$out/fresh" "$mode"
  # Deterministic metrics (normalized energy, misses, violations) keep the
  # tight default threshold; wall-clock metrics get wide overrides so a
  # loaded runner does not fail the gate on noise. Exception: fig09
  # throughput is the hot-path headline number, so it gets a tight 10%
  # no-regress band (first matching override wins; the '*' joins ordered
  # substrings, scoping the override to the fig09 bench only). Cross-host
  # runs (any provenance mismatch vs the committed baselines) downgrade to
  # warnings.
  build-ci-plain/tools/rtdvs-benchdiff bench/baselines "$out/fresh" \
    --overrides="fig09*sims_per_sec=0.1,sims_per_sec=0.5,shards_per_sec=0.5,speedup=0.5,efficiency=0.5,_ms=0.6,elapsed=0.6" \
    --md-out="$out/report.md" --json-out="$out/report.json"
  # Self-check (cf. rtdvs-fuzz --inject-bug): the same inputs with a
  # synthetic 2x throughput regression injected MUST fail — proving the
  # gate's exit code actually fires.
  if build-ci-plain/tools/rtdvs-benchdiff "$out/fresh" "$out/fresh" \
      --inject-regression=sims_per_sec=0.5 --quiet >/dev/null; then
    echo "benchdiff self-check FAILED: injected regression not detected" >&2
    exit 1
  fi
  echo "benchdiff self-check passed: injected regression detected"
}

stage_refresh_baselines() {
  echo "=== stage: regenerate bench/baselines (review + commit the result) ==="
  configure_and_build build-ci-plain
  run_gate_benches build-ci-plain bench/baselines quick
  build-ci-plain/tools/rtdvs-json-check bench/baselines/BENCH_*.json
  echo "baselines refreshed; diff and commit bench/baselines/"
}

stage_tidy() {
  echo "=== stage: clang-tidy over src/engine src/sim src/kernel ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping tidy stage"
    return 0
  fi
  configure_and_build build-ci-plain -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  # Checks and per-check tuning live in .clang-tidy at the repo root.
  git ls-files 'src/engine/*.cc' 'src/sim/*.cc' 'src/kernel/*.cc' |
    xargs clang-tidy -p build-ci-plain --quiet
}

stage_fuzz() {
  echo "=== stage: differential fuzz, production vs reference oracle ==="
  configure_and_build build-ci-plain
  local out="build-ci-plain/fuzz"
  mkdir -p "$out"
  # Fixed seed => deterministic campaign; ~30 s wall-clock budget. Exit code
  # 4 (divergence or property violation) fails the stage; the shrunken repro
  # strings in fuzz/repros.txt replay via rtdvs-fuzz --repro=<line>.
  build-ci-plain/tools/rtdvs-fuzz --trials=500 --seed=1 --max-ms=30000 \
    --repro-out="$out/repros.txt"
  # Multiprocessor campaign: every trial draws a 2- or 4-core cluster
  # (partitioned or global) and diffs the cluster driver against the
  # reference oracle's independent implementation.
  build-ci-plain/tools/rtdvs-fuzz --trials=150 --seed=2 --cores=2,4 \
    --max-ms=30000 --repro-out="$out/repros-mp.txt"
  # Self-check: with a historical bug injected into the reference, the same
  # campaign MUST report a divergence — otherwise the oracle went blind.
  if build-ci-plain/tools/rtdvs-fuzz --trials=150 --seed=7 \
      --inject-bug=idle-switch --no-properties --no-shrink \
      --max-ms=30000 >/dev/null; then
    echo "fuzz self-check FAILED: injected bug was not detected" >&2
    exit 1
  fi
  echo "fuzz self-check passed: injected bug detected"
}

STAGE="${1:-all}"
case "$STAGE" in
  plain) stage_plain ;;
  asan-ubsan) stage_asan_ubsan ;;
  tsan) stage_tsan ;;
  bench-json) stage_bench_json ;;
  benchdiff) stage_benchdiff ;;
  refresh-baselines) stage_refresh_baselines ;;
  tidy) stage_tidy ;;
  fuzz) stage_fuzz ;;
  all)
    stage_plain
    stage_asan_ubsan
    stage_tsan
    stage_bench_json
    stage_benchdiff
    stage_tidy
    stage_fuzz
    ;;
  *)
    echo "usage: tools/ci.sh [plain|asan-ubsan|tsan|bench-json|benchdiff|tidy|fuzz|all]" >&2
    echo "       tools/ci.sh refresh-baselines   # regenerate bench/baselines" >&2
    exit 1
    ;;
esac
echo "=== ci: all requested stages passed ==="
