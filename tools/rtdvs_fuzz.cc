// rtdvs-fuzz: seeded differential fuzz campaign for the simulator pair.
//
// Each trial draws a random scenario (src/testing/generators.h), runs it
// through both the production simulator and the independently written
// reference oracle (src/sim/reference_sim.h), demands bit-tight agreement,
// and optionally checks the metamorphic properties in
// src/testing/differential.h. Failures are greedily shrunk to a minimal
// case and printed as one-line repro strings that replay exactly:
//
//   rtdvs-fuzz --trials=500 --seed=1          # CI campaign (deterministic)
//   rtdvs-fuzz --repro='rtdvs-fuzz-v1;...'    # replay one failure
//   rtdvs-fuzz --inject-bug=idle-switch       # self-test: must FAIL
//
// Exit codes: 0 all trials passed, 1 flag error, 3 malformed repro string,
// 4 at least one divergence or property violation.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "src/dvs/policy.h"
#include "src/testing/differential.h"
#include "src/testing/generators.h"
#include "src/testing/shrink.h"
#include "src/util/flags.h"
#include "src/util/random.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace rtdvs {
namespace {

struct Failure {
  int64_t trial = 0;
  FuzzCase original;
  FuzzCase shrunk;
  std::string description;
};

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

int Main(int argc, char** argv) {
  int64_t trials = 200;
  int64_t seed = 1;
  int64_t jobs = 0;
  int64_t max_ms = 0;
  std::string policies;
  std::string cores_list = "1";
  std::string repro;
  std::string inject_bug = "none";
  std::string repro_out;
  double hyperperiod_bias = 0.2;
  bool shrink = true;
  bool properties = true;
  bool verbose = false;
  bool progress = false;

  FlagSet flags(
      "Differential fuzzer: production simulator vs reference oracle.\n"
      "Prints a replayable repro string for every failure.");
  flags.AddInt64("trials", &trials, "number of generated scenarios to run");
  flags.AddInt64("seed", &seed,
                 "campaign seed; trial i uses the independent stream (seed, i), so "
                 "results are reproducible per-trial regardless of scheduling");
  flags.AddInt64("jobs", &jobs, "worker threads (0 = hardware concurrency)");
  flags.AddInt64("max-ms", &max_ms,
                 "soft wall-clock budget; stops dispatching new trials once "
                 "exceeded (0 = run all trials)");
  flags.AddString("policies", &policies,
                  "comma-separated policy pool (empty = the paper's six)");
  flags.AddString("cores", &cores_list,
                  "comma-separated cluster sizes to draw from, e.g. 1,2,4; "
                  "sizes > 1 fuzz the multiprocessor driver (partitioned and "
                  "global) against the reference oracle");
  flags.AddString("repro", &repro,
                  "replay one failure from its repro string instead of fuzzing");
  flags.AddString("inject-bug", &inject_bug,
                  "fault-inject the REFERENCE for harness self-tests: "
                  "none|idle-switch|miss-order (a healthy campaign must then fail)");
  flags.AddString("repro-out", &repro_out,
                  "append shrunken repro strings of failures to this file");
  flags.AddDouble("hyperperiod-bias", &hyperperiod_bias,
                  "probability of rewriting a trial into a long-horizon "
                  "harmonic dyadic scenario that engages hyperperiod "
                  "memoization (0 disables the bias)");
  flags.AddBool("shrink", &shrink, "greedily minimize failing cases");
  flags.AddBool("properties", &properties,
                "also check metamorphic properties (lower bound, noDVS vs "
                "static, task reorder, grid refinement)");
  flags.AddBool("verbose", &verbose, "log every trial");
  flags.AddBool("progress", &progress,
                "live progress line on stderr (trials/sec, divergences, ETA)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  ReferenceFaults faults;
  if (inject_bug == "idle-switch") {
    faults.idle_path_switch_bug = true;
  } else if (inject_bug == "miss-order") {
    faults.miss_before_completion_bug = true;
  } else if (inject_bug != "none") {
    std::fprintf(stderr, "unknown --inject-bug value: %s\n", inject_bug.c_str());
    return 1;
  }

  FuzzGenOptions gen_options;
  if (!policies.empty()) {
    for (const auto& id : Split(policies, ',')) {
      std::string trimmed(Trim(id));
      if (!IsValidPolicyId(trimmed)) {
        std::fprintf(stderr, "unknown policy id: %s\n", trimmed.c_str());
        return 1;
      }
      gen_options.policy_pool.push_back(trimmed);
    }
  }
  if (!cores_list.empty()) {
    gen_options.core_choices.clear();
    for (const auto& field : Split(cores_list, ',')) {
      auto parsed = ParseInt(Trim(field));
      if (!parsed || *parsed < 1 || *parsed > 16) {
        std::fprintf(stderr, "bad --cores entry '%s' (want integers in 1..16)\n",
                     std::string(Trim(field)).c_str());
        return 1;
      }
      gen_options.core_choices.push_back(static_cast<int>(*parsed));
    }
  }

  if (hyperperiod_bias < 0.0 || hyperperiod_bias > 1.0) {
    std::fprintf(stderr, "bad --hyperperiod-bias %g (want 0..1)\n",
                 hyperperiod_bias);
    return 1;
  }
  gen_options.hyperperiod_bias = hyperperiod_bias;

  const auto start = std::chrono::steady_clock::now();

  // --repro: replay exactly one case and report.
  if (!repro.empty()) {
    std::string error;
    auto parsed = ParseRepro(repro, &error);
    if (!parsed) {
      std::fprintf(stderr, "bad repro string: %s\n", error.c_str());
      return 3;
    }
    TrialOutcome outcome = RunFuzzTrial(*parsed, properties, faults);
    if (outcome.ok) {
      std::printf("repro PASSED (no divergence, no property violation)\n");
      return 0;
    }
    std::printf("repro FAILED:\n%s", outcome.Describe().c_str());
    if (shrink) {
      FuzzCase minimal = ShrinkFuzzCase(
          *parsed,
          [&](const FuzzCase& candidate) {
            return !RunFuzzTrial(candidate, properties, faults).ok;
          },
          {}, nullptr);
      std::printf("shrunk repro: %s\n", FuzzCaseToRepro(minimal).c_str());
    }
    return 4;
  }

  // Campaign. Trials are independent: trial i derives everything from the
  // stream (seed, i), so any subset of trials reproduces bit-identically.
  const int num_threads =
      jobs > 0 ? static_cast<int>(jobs) : ThreadPool::DefaultNumThreads();
  ThreadPool pool(num_threads);
  std::mutex mu;
  std::vector<Failure> failures;
  std::atomic<int64_t> completed{0};
  double last_progress_ms = 0;  // guarded by mu; throttles to ~5 lines/sec
  std::vector<std::future<void>> pending;
  int64_t dispatched = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    if (max_ms > 0 && ElapsedMs(start) > static_cast<double>(max_ms)) {
      break;
    }
    ++dispatched;
    pending.push_back(pool.Submit([&, trial] {
      Pcg32 rng(static_cast<uint64_t>(seed), static_cast<uint64_t>(trial));
      FuzzCase c = GenerateFuzzCase(rng, gen_options);
      TrialOutcome outcome = RunFuzzTrial(c, properties, faults);
      completed.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      if (verbose) {
        std::printf("trial %lld: %s policy=%s tasks=%zu\n",
                    static_cast<long long>(trial), outcome.ok ? "ok" : "FAIL",
                    c.policy_id.c_str(), c.tasks.size());
      }
      if (!outcome.ok) {
        failures.push_back({trial, c, c, outcome.Describe()});
      }
      if (progress) {
        const int64_t done = completed.load(std::memory_order_relaxed);
        const double elapsed = ElapsedMs(start);
        if (elapsed - last_progress_ms > 200.0 || done == trials) {
          last_progress_ms = elapsed;
          const double per_sec = elapsed > 0 ? done * 1000.0 / elapsed : 0.0;
          const double eta_s =
              per_sec > 0 ? static_cast<double>(trials - done) / per_sec : 0.0;
          std::fprintf(stderr,
                       "\rfuzz: %lld/%lld trials (%.0f%%)  %.0f trials/s  "
                       "%zu divergence(s)  eta %.1fs ",
                       static_cast<long long>(done),
                       static_cast<long long>(trials),
                       100.0 * static_cast<double>(done) /
                           static_cast<double>(trials),
                       per_sec, failures.size(), eta_s);
        }
      }
    }));
  }
  for (auto& f : pending) {
    f.get();
  }
  if (progress && dispatched > 0) {
    std::fprintf(stderr, "\n");
  }

  // Shrink serially: failures are rare and shrinking reruns many simulations.
  for (Failure& failure : failures) {
    if (!shrink) {
      break;
    }
    ShrinkStats stats;
    failure.shrunk = ShrinkFuzzCase(
        failure.original,
        [&](const FuzzCase& candidate) {
          return !RunFuzzTrial(candidate, properties, faults).ok;
        },
        {}, &stats);
    if (verbose) {
      std::printf("trial %lld shrink: %d predicate calls, %d accepted moves\n",
                  static_cast<long long>(failure.trial), stats.predicate_calls,
                  stats.accepted_moves);
    }
  }

  const double elapsed_ms = ElapsedMs(start);
  std::printf("rtdvs-fuzz: %lld/%lld trials in %.0f ms (%d threads), %zu failure(s)\n",
              static_cast<long long>(completed.load()),
              static_cast<long long>(trials), elapsed_ms, num_threads,
              failures.size());
  if (dispatched < trials) {
    std::printf("note: stopped at --max-ms=%lld with %lld trials undispatched\n",
                static_cast<long long>(max_ms),
                static_cast<long long>(trials - dispatched));
  }
  if (failures.empty()) {
    return 0;
  }
  std::ofstream out;
  if (!repro_out.empty()) {
    out.open(repro_out, std::ios::app);
  }
  for (const Failure& failure : failures) {
    std::printf("--- trial %lld FAILED\n%s", static_cast<long long>(failure.trial),
                failure.description.c_str());
    std::printf("  repro:  %s\n", FuzzCaseToRepro(failure.original).c_str());
    if (shrink) {
      std::printf("  shrunk: %s\n", FuzzCaseToRepro(failure.shrunk).c_str());
    }
    if (out.is_open()) {
      out << FuzzCaseToRepro(shrink ? failure.shrunk : failure.original) << "\n";
    }
  }
  return 4;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
