// rtdvs-benchdiff: the cross-run perf-regression gate over rtdvs-bench-v1
// documents.
//
//   ./rtdvs-benchdiff bench/baselines build-ci-plain/bench-json
//   ./rtdvs-benchdiff BENCH_fig09.json BENCH_fig09.json --threshold=0.05
//   ./rtdvs-benchdiff a/ b/ --overrides=sims_per_sec=0.25,deadline_misses=0
//   ./rtdvs-benchdiff a.json a.json --inject-regression=sims_per_sec=0.5
//
// Each argument is one rtdvs-bench-v1 file or a directory of BENCH_*.json.
// Benches match by name, metrics by flattened key; deltas beyond the noise
// threshold fail the run — unless the two runs' provenance (host, cores,
// build type, sanitizers) or configs differ, in which case regressions
// downgrade to warnings (cross-host timing is not comparable evidence).
//
// --inject-regression=substr=factor multiplies every matching candidate
// metric in memory before diffing: the CI self-check proving the gate can
// actually fail (same spirit as rtdvs-fuzz --inject-bug).
//
// Exit codes: 0 ok (or downgraded-to-warnings), 1 usage/IO error,
// 5 regression detected.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/benchdiff.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// A path names either one document or a directory of BENCH_*.json.
bool LoadDocs(const std::string& path, std::vector<BenchDoc>* docs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        files.push_back(entry.path().string());
      }
    }
    if (files.empty()) {
      std::fprintf(stderr, "error: no BENCH_*.json files under %s\n",
                   path.c_str());
      return false;
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  for (const std::string& file : files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::fprintf(stderr, "error: cannot read %s\n", file.c_str());
      return false;
    }
    std::string error;
    auto parsed = JsonValue::Parse(text, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(), error.c_str());
      return false;
    }
    auto doc = ExtractBenchDoc(*parsed, &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(), error.c_str());
      return false;
    }
    docs->push_back(std::move(*doc));
  }
  return true;
}

// "substr=value,substr=value" pairs; used by --overrides and (with factor
// semantics) --inject-regression.
bool ParsePairs(const std::string& spec,
                std::vector<std::pair<std::string, double>>* out) {
  if (spec.empty()) {
    return true;
  }
  for (const std::string& item : Split(spec, ',')) {
    const size_t eq = item.rfind('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "error: malformed pair '%s' (want substr=value)\n",
                   item.c_str());
      return false;
    }
    char* end = nullptr;
    const double value = std::strtod(item.c_str() + eq + 1, &end);
    if (end == nullptr || *end != '\0') {
      std::fprintf(stderr, "error: bad number in pair '%s'\n", item.c_str());
      return false;
    }
    out->emplace_back(item.substr(0, eq), value);
  }
  return true;
}

int Main(int argc, char** argv) {
  double threshold = 0.10;
  std::string overrides_spec;
  std::string inject_spec;
  std::string md_out;
  std::string json_out;
  bool ignore_provenance = false;
  bool quiet = false;

  FlagSet flags(
      "Compare two rtdvs-bench-v1 files (or directories of BENCH_*.json); "
      "exit 5 when the candidate regressed versus the baseline.\n"
      "usage: rtdvs-benchdiff <baseline> <candidate> [flags]");
  flags.AddDouble("threshold", &threshold,
                  "relative change tolerated before a directional metric "
                  "counts as improved/regressed");
  flags.AddString("overrides", &overrides_spec,
                  "per-metric thresholds, substr=value[,substr=value...]; "
                  "first matching substring wins");
  flags.AddString("inject-regression", &inject_spec,
                  "self-check: multiply matching candidate metrics by the "
                  "given factor before diffing (substr=factor[,...])");
  flags.AddString("md-out", &md_out, "write the markdown report here");
  flags.AddString("json-out", &json_out, "write the JSON report here");
  flags.AddBool("ignore-provenance", &ignore_provenance,
                "hard-fail even across differing hosts/configs");
  flags.AddBool("quiet", &quiet, "suppress the stdout report");
  flags.AllowPositional();
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "error: expected exactly 2 positional arguments "
                 "(baseline, candidate), got %zu\n",
                 flags.positional().size());
    return 1;
  }

  DiffOptions options;
  options.threshold = threshold;
  options.ignore_provenance = ignore_provenance;
  std::vector<std::pair<std::string, double>> injections;
  if (!ParsePairs(overrides_spec, &options.threshold_overrides) ||
      !ParsePairs(inject_spec, &injections)) {
    return 1;
  }

  std::vector<BenchDoc> baseline;
  std::vector<BenchDoc> candidate;
  if (!LoadDocs(flags.positional()[0], &baseline) ||
      !LoadDocs(flags.positional()[1], &candidate)) {
    return 1;
  }

  int64_t injected = 0;
  for (const auto& [substr, factor] : injections) {
    for (BenchDoc& doc : candidate) {
      for (auto& [key, value] : doc.metrics) {
        if (key.find(substr) != std::string::npos) {
          value *= factor;
          ++injected;
        }
      }
    }
  }
  if (!inject_spec.empty()) {
    std::fprintf(stderr, "inject-regression: perturbed %lld metrics\n",
                 static_cast<long long>(injected));
    if (injected == 0) {
      std::fprintf(stderr,
                   "error: --inject-regression matched nothing — the "
                   "self-check would pass vacuously\n");
      return 1;
    }
  }

  DiffReport report = DiffBenchDocs(baseline, candidate, options);

  if (!quiet) {
    std::fputs(report.ToMarkdown().c_str(), stdout);
  }
  if (!md_out.empty()) {
    std::ofstream out(md_out, std::ios::binary);
    out << report.ToMarkdown();
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", md_out.c_str());
      return 1;
    }
  }
  if (!json_out.empty() && !WriteJsonFile(report.ToJson(), json_out)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
    return 1;
  }
  return report.hard_fail ? 5 : 0;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
