// rtdvs-sweep: generate custom paper-style utilization sweeps from the
// command line — the generalization of the Figure 9-13 benches.
//
//   ./rtdvs-sweep --machine machine2 --demand uniform --tasksets 100
//   ./rtdvs-sweep --policies edf,cc_edf,la_edf --num-tasks 12
//       --utils 0.1:1.0:0.1 --idle-level 0.1 --normalized  (one line)
//   ./rtdvs-sweep --cores 4 --mp-mode partitioned --partition wf
//
// With --cores M > 1 the utilization axis stays PER-CORE: each point
// generates sets targeting U = u * M and runs them on the M-core cluster,
// normalizing against cluster-EDF in the same mode. Infeasible partitioned
// sets count as admission rejections and contribute no samples.
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/core/scenario.h"
#include "src/core/sweep.h"
#include "src/dvs/policy.h"
#include "src/engine/cluster.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

// Parses "lo:hi:step" into a grid; empty string -> the default grid.
bool ParseUtilGrid(const std::string& spec, std::vector<double>* grid) {
  if (spec.empty()) {
    return true;
  }
  auto parts = Split(spec, ':');
  if (parts.size() != 3) {
    return false;
  }
  auto lo = ParseDouble(parts[0]);
  auto hi = ParseDouble(parts[1]);
  auto step = ParseDouble(parts[2]);
  if (!lo || !hi || !step || *lo <= 0 || *hi > 1.0 + 1e-12 || *step <= 0 ||
      *lo > *hi) {
    return false;
  }
  // Generate by integer index: accumulating `u += step` compounds rounding
  // error and can drop the final point (0.1:1.0:0.1 ended at 0.9).
  for (int k = 0;; ++k) {
    double u = *lo + static_cast<double>(k) * *step;
    if (u > *hi + 1e-9) {
      break;
    }
    grid->push_back(std::min(u, 1.0));
  }
  return !grid->empty();
}

int Main(int argc, char** argv) {
  std::string policies = "edf,static_rm,static_edf,cc_edf,cc_rm,la_edf";
  std::string machine = "machine0";
  std::string demand = "c=1";
  std::string utils;
  int64_t num_tasks = 8;
  int64_t tasksets = 50;
  int64_t sim_ms = 5000;
  int64_t seed = 20010901;
  int64_t jobs = 0;
  double idle_level = 0.0;
  double switch_time_ms = 0.0;
  bool abort_on_miss = false;
  bool normalized = true;
  bool uunifast = false;
  bool misses = false;
  bool audit = true;
  bool progress = false;
  bool profile = false;
  std::string json_path;
  int64_t cores = 1;
  std::string mp_mode = "partitioned";
  std::string partition = "ff";

  FlagSet flags("rtdvs-sweep: custom energy-vs-utilization sweeps.");
  flags.AddString("policies", &policies, "comma-separated policy ids");
  flags.AddString("machine", &machine, "machine0|machine1|machine2|k6");
  flags.AddString("demand", &demand,
                  "actual-demand spec: c=<f> | uniform[=lo,hi] | bimodal=<t>,<p>");
  flags.AddString("utils", &utils, "utilization grid lo:hi:step (default 0.05:1:0.05)");
  flags.AddInt64("num-tasks", &num_tasks, "tasks per random set");
  flags.AddInt64("tasksets", &tasksets, "task sets per utilization point");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon per run (ms)");
  flags.AddInt64("seed", &seed, "master seed");
  flags.AddInt64("jobs", &jobs,
                 "sweep worker threads (0 = hardware concurrency); results "
                 "are identical for every value");
  flags.AddDouble("idle-level", &idle_level, "halted-cycle energy ratio");
  flags.AddDouble("switch-ms", &switch_time_ms,
                  "halt per operating-point change (ms), §4.1 transition cost");
  flags.AddBool("abort-on-miss", &abort_on_miss, "drop tardy jobs at their deadlines");
  flags.AddBool("normalized", &normalized, "normalize energies to plain EDF");
  flags.AddBool("uunifast", &uunifast, "use the UUniFast generator");
  flags.AddBool("misses", &misses, "also print the deadline-miss table");
  flags.AddBool("audit", &audit,
                "run SimAudit in every shard (--no-audit disables); audit "
                "violations make the exit code 3");
  flags.AddBool("progress", &progress,
                "live progress line on stderr (shards done, elapsed, ETA)");
  flags.AddBool("profile", &profile,
                "record per-span engine timing into the profile section "
                "(printed per span; included in --json output)");
  flags.AddString("json", &json_path,
                  "write the full SweepResult (rows, policy counters, "
                  "profile) as JSON to this path");
  flags.AddInt64("cores", &cores,
                 "sweep an M-core cluster (utilization axis stays per-core; "
                 "1 = the classic single-core sweep)");
  flags.AddString("mp-mode", &mp_mode,
                  "partitioned|global cluster scheduling (with --cores > 1)");
  flags.AddString("partition", &partition,
                  "ff|nf|bf|wf bin-packing heuristic for partitioned mode");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (jobs < 0) {
    std::fprintf(stderr, "error: --jobs must be >= 0 (0 = hardware concurrency)\n");
    return 1;
  }
  if (cores < 1 || cores > 64) {
    std::fprintf(stderr, "error: --cores must be in 1..64\n");
    return 1;
  }
  if (uunifast && cores > 1) {
    std::fprintf(stderr,
                 "error: --uunifast is single-core only (per-task utilization "
                 "is unbounded above 1 at M > 1)\n");
    return 1;
  }
  auto parsed_mode = ParseMpMode(mp_mode);
  if (!parsed_mode) {
    std::fprintf(stderr, "error: unknown --mp-mode '%s' (partitioned|global)\n",
                 mp_mode.c_str());
    return 1;
  }
  auto parsed_fit = ParsePartitionHeuristic(partition);
  if (!parsed_fit) {
    std::fprintf(stderr, "error: unknown --partition '%s' (ff|nf|bf|wf)\n",
                 partition.c_str());
    return 1;
  }

  SweepOptions options;
  for (const auto& id : Split(policies, ',')) {
    if (!IsValidPolicyId(id)) {
      std::fprintf(stderr, "error: unknown policy '%s'\n", id.c_str());
      return 1;
    }
    options.policy_ids.push_back(id);
  }
  if (!ParseUtilGrid(utils, &options.utilizations)) {
    std::fprintf(stderr, "error: bad --utils spec '%s' (want lo:hi:step)\n",
                 utils.c_str());
    return 1;
  }
  options.machine = MachineSpec::ByName(machine);
  if (MakeDemandModel(demand) == nullptr) {
    std::fprintf(stderr, "error: bad --demand spec '%s'\n", demand.c_str());
    return 1;
  }
  options.exec_model_factory = [demand] { return MakeDemandModel(demand); };
  options.num_tasks = static_cast<int>(num_tasks);
  options.tasksets_per_point = static_cast<int>(tasksets);
  options.horizon_ms = static_cast<double>(sim_ms);
  options.idle_level = idle_level;
  options.switch_time_ms = switch_time_ms;
  options.miss_policy =
      abort_on_miss ? MissPolicy::kAbortJob : MissPolicy::kContinueLate;
  options.use_uunifast = uunifast;
  options.num_cores = static_cast<int>(cores);
  options.mp_mode = *parsed_mode;
  options.mp_partition = *parsed_fit;
  options.seed = static_cast<uint64_t>(seed);
  options.jobs = static_cast<int>(jobs);
  options.audit = audit;
  if (progress) {
    options.progress = MakeStderrProgress();
  }
  options.profile = profile;

  UtilizationSweep sweep(options);
  SweepResult result = sweep.Run();
  std::cout << "machine: " << options.machine.ToString() << "\n"
            << "demand:  " << demand << "   tasks: " << num_tasks
            << "   sets/point: " << tasksets << "   horizon: " << sim_ms << " ms\n";
  if (cores > 1) {
    std::cout << StrFormat(
        "cluster: %d cores, %s mode, fit=%s (utilization axis is per-core)\n",
        options.num_cores, MpModeName(options.mp_mode),
        PartitionHeuristicName(options.mp_partition));
  }
  std::cout << (normalized
                    ? cores > 1 ? "energy normalized to cluster EDF\n"
                                : "energy normalized to plain EDF\n"
                    : "energy (arbitrary units per simulated second)\n");
  RenderEnergyTable(result, normalized).Print(std::cout);
  if (cores > 1) {
    int64_t rejections = 0;
    for (const auto& row : result.rows) {
      for (const auto& cell : row.cells) {
        rejections += cell.admission_rejections;
      }
    }
    if (rejections > 0) {
      std::cout << StrFormat(
          "admission: %lld policy-run(s) rejected by partitioning "
          "(no samples contributed)\n",
          static_cast<long long>(rejections));
    }
  }
  WriteCsv(result, std::cout, "csv,sweep");
  if (misses) {
    std::cout << "deadline misses:\n";
    RenderMissTable(result).Print(std::cout);
  }
  if (audit) {
    if (result.audit_violations == 0) {
      std::cout << "audit: OK (every shard self-checked)\n";
    } else {
      std::cout << StrFormat("audit: %lld violation(s)\n",
                             static_cast<long long>(result.audit_violations));
      for (const auto& message : result.audit_messages) {
        std::cout << "  " << message << "\n";
      }
    }
  }
  std::cout << StrFormat("elapsed: %.0f ms wall, %.0f ms cpu (jobs=%d)\n",
                         result.elapsed_wall_ms, result.elapsed_cpu_ms,
                         result.options.jobs);
  std::cout << StrFormat(
      "profile: %lld shards (%lld sims), shard p50 %.2f ms p95 %.2f ms, "
      "%.0f sims/s\n",
      static_cast<long long>(result.profile.shards),
      static_cast<long long>(result.profile.simulations),
      result.profile.p50_shard_ms, result.profile.p95_shard_ms,
      result.profile.sims_per_sec);
  for (const auto& [name, stats] : result.profile.spans.spans) {
    std::cout << StrFormat(
        "  span %-32s %9lld calls  total %9.3f ms  self %9.3f ms  "
        "p95 %.6f ms\n",
        name.c_str(), static_cast<long long>(stats.count), stats.total_ms,
        stats.self_ms(), stats.hist.ValueAtPercentile(95.0));
  }
  if (!json_path.empty()) {
    if (!WriteJsonFile(SweepResultToJson(result), json_path)) {
      std::fprintf(stderr, "error: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    std::cout << "json written to " << json_path << "\n";
  }
  return result.audit_violations > 0 ? 3 : 0;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
