// rtdvs_sim: command-line front end to the simulator — the equivalent of
// the C++ simulator the paper built for §3, as a reusable tool.
//
//   ./rtdvs_sim --scenario examples/scenarios/camcorder.scn --policy la_edf
//   ./rtdvs_sim --scenario set.scn --all-policies --sim-ms 30000 --gantt 50
//   ./rtdvs_sim --scenario set.scn --cores=4 --partition=wf --json=out.json
//
// Prints energy, deadline and aperiodic statistics, per-operating-point
// residency (per core on clusters), and (optionally) the ASCII execution
// trace. Every run goes through the cluster API (SimRequest); M = 1 output
// is byte-identical to the classic single-core tool. Exit codes: 0 ok,
// 1 usage/IO error, 2 infeasible partition or hard-policy deadline misses,
// 3 audit violations.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <variant>

#include "src/core/scenario.h"
#include "src/dvs/policy.h"
#include "src/engine/cluster.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/sim/trace_export.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/profiler.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

// The task set the simulator actually ran: the scenario's tasks plus the
// aperiodic server task when one is configured.
TaskSet SimulatedTaskSet(const Scenario& scenario, const SimResult& result) {
  TaskSet tasks = scenario.tasks;
  if (result.server_task_id >= 0) {
    tasks.AddTask({"server", scenario.server.period_ms,
                   scenario.server.budget_ms, 0.0});
  }
  return tasks;
}

// "trace.json" + "cc_edf" -> "trace.cc_edf.json", so --all-policies writes
// one Chrome trace per policy instead of overwriting a single file.
std::string InsertPolicyIntoPath(const std::string& path, const std::string& id) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + id;
  }
  return path.substr(0, dot) + "." + id + path.substr(dot);
}

void PrintResult(const SimResult& result, const Scenario& scenario, double gantt_ms) {
  std::printf("%s\n", result.Summary().c_str());
  if (result.audit.audited) {
    std::printf("  %s\n", result.audit.Summary().c_str());
  }
  const PolicyCounters& counters = result.policy_counters;
  std::printf(
      "  decisions: %lld speed requests (%lld transitions), slack reclaimed "
      "%.2f ms over %lld completions, %lld deferrals (%.2f ms deferred), "
      "mean utilization estimate %.3f over %lld samples\n",
      static_cast<long long>(counters.speed_change_requests),
      static_cast<long long>(counters.speed_transitions),
      counters.slack_reclaimed_ms,
      static_cast<long long>(counters.slack_completions),
      static_cast<long long>(counters.deferral_decisions),
      counters.work_deferred_ms,
      counters.utilization_samples == 0
          ? 0.0
          : counters.utilization_sum /
                static_cast<double>(counters.utilization_samples),
      static_cast<long long>(counters.utilization_samples));
  if (result.server_task_id >= 0) {
    std::printf(
        "  aperiodic: %lld arrivals, %lld served, mean response %.2f ms, "
        "max %.2f ms, backlog %.2f\n",
        static_cast<long long>(result.aperiodic.arrivals),
        static_cast<long long>(result.aperiodic.completions),
        result.aperiodic.MeanResponseMs(), result.aperiodic.max_response_ms,
        result.aperiodic.backlog_work);
  }
  for (const auto& res : result.residency) {
    if (res.exec_ms + res.idle_ms > 0) {
      std::printf("  %-18s exec %10.2f ms   idle %10.2f ms   energy %10.2f\n",
                  res.point.ToString().c_str(), res.exec_ms, res.idle_ms,
                  res.exec_energy + res.idle_energy);
    }
  }
  if (gantt_ms > 0) {
    std::printf("%s", result.trace.RenderGantt(SimulatedTaskSet(scenario, result),
                                               76, gantt_ms)
                          .c_str());
  }
}

// Cluster (M > 1) text report: the partition/migration picture, cluster
// totals, then each core's summary and per-operating-point residency.
void PrintMpResult(const MpSimResult& result, PartitionHeuristic fit,
                   double gantt_ms) {
  if (result.mode == MpMode::kPartitioned) {
    std::string us;
    for (size_t c = 0; c < result.partition.core_utilization.size(); ++c) {
      us += StrFormat("%s%.3f", c == 0 ? "" : " ",
                      result.partition.core_utilization[c]);
    }
    std::printf("partition (%s): %d/%d cores used, U per core [%s]\n",
                PartitionHeuristicName(fit), result.partition.cores_used,
                result.num_cores, us.c_str());
  } else {
    std::printf("global: %d cores, %lld migrations\n", result.num_cores,
                static_cast<long long>(result.migrations));
  }
  std::printf("cluster %s\n", result.cluster.Summary().c_str());
  if (result.cluster_audit.audited) {
    std::printf("  %s\n", result.cluster_audit.Summary().c_str());
  }
  for (int c = 0; c < result.num_cores; ++c) {
    const SimResult& slice = result.cores[static_cast<size_t>(c)];
    std::printf("  core %d %s\n", c, slice.Summary().c_str());
    for (const auto& res : slice.residency) {
      if (res.exec_ms + res.idle_ms > 0) {
        std::printf(
            "    %-18s exec %10.2f ms   idle %10.2f ms   energy %10.2f\n",
            res.point.ToString().c_str(), res.exec_ms, res.idle_ms,
            res.exec_energy + res.idle_energy);
      }
    }
    if (gantt_ms > 0) {
      std::printf("%s",
                  slice.trace
                      .RenderGantt(result.core_tasks[static_cast<size_t>(c)],
                                   76, gantt_ms)
                      .c_str());
    }
  }
}

int Main(int argc, char** argv) {
  std::string scenario_path;
  std::string policy_id = "la_edf";
  bool all_policies = false;
  int64_t sim_ms = 10'000;
  double idle_level = 0.0;
  double gantt_ms = 0.0;
  double switch_time_ms = 0.0;
  bool abort_on_miss = false;
  bool audit = true;
  bool profile = false;
  int64_t seed = 1;
  std::string trace_out;
  int64_t cores = 0;
  std::string mp_mode;
  std::string partition;
  std::string json_out;

  FlagSet flags("rtdvs_sim: run a scenario file through the RT-DVS simulator.");
  flags.AddString("scenario", &scenario_path, "path to the scenario file (required)");
  flags.AddString("policy", &policy_id,
                  "edf|rm|static_edf|static_rm|static_rm_exact|cc_edf|cc_rm|la_edf|"
                  "interval|stat_edf; ignored when the scenario file declares "
                  "a 'policies' line (use --all-policies to override)");
  flags.AddBool("all-policies", &all_policies, "run the paper's six policies");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon (ms)");
  flags.AddDouble("idle-level", &idle_level, "halted-cycle energy ratio (0..1)");
  flags.AddDouble("gantt", &gantt_ms, "render an ASCII trace of the first N ms");
  flags.AddDouble("switch-ms", &switch_time_ms, "halt per operating-point change (ms)");
  flags.AddBool("abort-on-miss", &abort_on_miss, "drop tardy jobs at their deadlines");
  flags.AddBool("audit", &audit,
                "run SimAudit on each result (--no-audit disables); audit "
                "violations make the exit code 3");
  flags.AddBool("profile", &profile,
                "record per-span engine timing; prints a span table and adds "
                "a 'profile' section to --json output");
  flags.AddInt64("seed", &seed, "workload random seed");
  flags.AddString("trace-out", &trace_out,
                  "write the execution trace as Chrome trace-event JSON "
                  "(open in ui.perfetto.dev or chrome://tracing); clusters "
                  "export one track group per core; with --all-policies the "
                  "policy id is inserted before the extension");
  flags.AddInt64("cores", &cores,
                 "simulate an M-core cluster (overrides the scenario's "
                 "'cluster' line; 0 keeps the scenario's value, default 1)");
  flags.AddString("mp-mode", &mp_mode,
                  "partitioned|global (overrides the scenario's cluster "
                  "mode; empty keeps it)");
  flags.AddString("partition", &partition,
                  "ff|nf|bf|wf bin-packing heuristic for partitioned mode "
                  "(overrides the scenario's; empty keeps it); an "
                  "infeasible partition makes the exit code 2");
  flags.AddString("json", &json_out,
                  "write the result as rtdvs-mpsim-v1 JSON; with "
                  "--all-policies the policy id is inserted before the "
                  "extension");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (scenario_path.empty()) {
    std::fprintf(stderr, "error: --scenario is required (see --help)\n");
    return 1;
  }
  if (!all_policies && !IsValidPolicyId(policy_id)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n", policy_id.c_str());
    return 1;
  }
  if (cores < 0 || cores > 64) {
    std::fprintf(stderr, "error: --cores must be in 1..64\n");
    return 1;
  }
  std::optional<MpMode> mode_override;
  if (!mp_mode.empty()) {
    mode_override = ParseMpMode(mp_mode);
    if (!mode_override) {
      std::fprintf(stderr, "error: unknown --mp-mode '%s' (partitioned|global)\n",
                   mp_mode.c_str());
      return 1;
    }
  }
  std::optional<PartitionHeuristic> fit_override;
  if (!partition.empty()) {
    fit_override = ParsePartitionHeuristic(partition);
    if (!fit_override) {
      std::fprintf(stderr, "error: unknown --partition '%s' (ff|nf|bf|wf)\n",
                   partition.c_str());
      return 1;
    }
  }

  auto loaded = LoadScenarioFile(scenario_path);
  if (std::holds_alternative<std::string>(loaded)) {
    std::fprintf(stderr, "error: %s\n", std::get<std::string>(loaded).c_str());
    return 1;
  }
  const Scenario& scenario = std::get<Scenario>(loaded);

  SimOptions options;
  options.horizon_ms = static_cast<double>(sim_ms);
  options.idle_level = idle_level;
  options.switch_time_ms = switch_time_ms;
  options.miss_policy =
      abort_on_miss ? MissPolicy::kAbortJob : MissPolicy::kContinueLate;
  options.record_trace = gantt_ms > 0 || !trace_out.empty();
  options.audit = audit;
  options.profile = profile;
  options.seed = static_cast<uint64_t>(seed);

  SimRequest base = scenario.ToSimRequest(options);
  if (cores > 0) {
    base.cluster.num_cores = static_cast<int>(cores);
  }
  if (mode_override) {
    base.mode = *mode_override;
  }
  if (fit_override) {
    base.partition = *fit_override;
  }
  const int num_cores = base.cluster.num_cores;
  if (base.options.aperiodic.kind != ServerKind::kNone && num_cores > 1) {
    std::fprintf(stderr,
                 "error: aperiodic servers require a single core (the "
                 "scenario declares a server)\n");
    return 1;
  }
  if (base.policy_ids.size() > 1 &&
      base.policy_ids.size() != static_cast<size_t>(num_cores)) {
    std::fprintf(stderr,
                 "error: the scenario declares %zu per-core policies but the "
                 "cluster has %d cores\n",
                 base.policy_ids.size(), num_cores);
    return 1;
  }

  std::printf("scenario: %s\n", scenario.tasks.ToString().c_str());
  std::printf("machine:  %s\n", scenario.machine.ToString().c_str());
  if (scenario.server.kind != ServerKind::kNone) {
    std::printf("server:   P=%.4g ms, C=%.4g ms (U_s=%.3f)\n",
                scenario.server.period_ms, scenario.server.budget_ms,
                scenario.server.budget_ms / scenario.server.period_ms);
  }
  if (num_cores > 1) {
    std::printf("cluster:  %d cores, %s mode, fit=%s\n", num_cores,
                MpModeName(base.mode), PartitionHeuristicName(base.partition));
  }
  std::printf("\n");

  // One run per paper policy under --all-policies; otherwise one run with
  // the scenario's 'policies' list (possibly per-core) or --policy.
  struct RunSpec {
    std::string label;
    std::vector<std::string> policy_ids;
  };
  std::vector<RunSpec> runs;
  if (all_policies) {
    for (const auto& id : AllPaperPolicyIds()) {
      runs.push_back({id, {id}});
    }
  } else if (scenario.policy_ids.size() > 1) {
    std::string label;
    for (const auto& id : scenario.policy_ids) {
      label += (label.empty() ? "" : "+") + id;
    }
    runs.push_back({label, scenario.policy_ids});
  } else if (scenario.policy_ids.size() == 1) {
    runs.push_back({scenario.policy_ids[0], scenario.policy_ids});
  } else {
    runs.push_back({policy_id, {policy_id}});
  }

  int exit_code = 0;
  for (const auto& run : runs) {
    SimRequest request = base;
    request.policy_ids = run.policy_ids;
    auto model = scenario.MakeExecModel();
    MpSimResult result = RunClusterSimulation(request, *model);
    ProfileSnapshot prof;
    if (profile) {
      prof = Profiler::Drain();  // per-run: the profiler is process-global
    }

    if (!result.admitted) {
      std::printf("%s: infeasible partition (%s): %s\n", run.label.c_str(),
                  PartitionHeuristicName(request.partition),
                  result.partition.error.c_str());
      exit_code = std::max(exit_code, 2);
      if (!json_out.empty()) {
        const std::string path = runs.size() > 1
                                     ? InsertPolicyIntoPath(json_out, run.label)
                                     : json_out;
        if (!WriteJsonFile(MpSimResultToJson(result), path)) {
          std::fprintf(stderr, "error: cannot write JSON to %s\n", path.c_str());
          exit_code = std::max(exit_code, 1);
        }
      }
      continue;
    }

    // M = 1 keeps the classic single-core report (the slice is bit-identical
    // to the legacy RunSimulation result by construction).
    bool truncated;
    if (num_cores == 1) {
      PrintResult(result.cores[0], scenario, gantt_ms);
      truncated = result.cores[0].trace.truncated();
    } else {
      PrintMpResult(result, request.partition, gantt_ms);
      truncated = result.cluster.trace.truncated();
      for (const auto& slice : result.cores) {
        truncated |= slice.trace.truncated();
      }
    }
    if (profile) {
      std::printf("  profile (%zu spans):\n", prof.spans.size());
      for (const auto& [name, stats] : prof.spans) {
        std::printf(
            "    %-32s %9lld calls  total %9.3f ms  self %9.3f ms  "
            "p95 %.6f ms\n",
            name.c_str(), static_cast<long long>(stats.count), stats.total_ms,
            stats.self_ms(), stats.hist.ValueAtPercentile(95.0));
      }
    }
    if (options.record_trace && truncated) {
      std::fprintf(stderr,
                   "warning: trace for %s truncated; the Gantt/export covers "
                   "only a prefix of the run (raise "
                   "SimOptions::max_trace_segments to capture more)\n",
                   run.label.c_str());
    }
    if (!trace_out.empty()) {
      const std::string path = runs.size() > 1
                                   ? InsertPolicyIntoPath(trace_out, run.label)
                                   : trace_out;
      const bool ok =
          num_cores == 1
              ? WriteChromeTrace(result.cores[0],
                                 SimulatedTaskSet(scenario, result.cores[0]),
                                 options, path)
              : WriteChromeTraceMp(result, request.tasks, options, path);
      if (ok) {
        std::printf("  trace written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
        exit_code = std::max(exit_code, 1);
      }
    }
    if (!json_out.empty()) {
      const std::string path = runs.size() > 1
                                   ? InsertPolicyIntoPath(json_out, run.label)
                                   : json_out;
      JsonValue doc = MpSimResultToJson(result);
      if (profile) {
        doc.Set("profile", prof.ToJson());
      }
      if (WriteJsonFile(doc, path)) {
        std::printf("  json written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write JSON to %s\n", path.c_str());
        exit_code = std::max(exit_code, 1);
      }
    }
    // Statistical policies (interval, stat_edf) may miss by design; any
    // other policy in the mix makes misses reportable.
    bool hard = false;
    for (const auto& id : run.policy_ids) {
      hard |= id != "interval" && id != "stat_edf";
    }
    if (result.cluster.deadline_misses > 0 && hard) {
      exit_code = std::max(exit_code, 2);
    }
    bool audit_failed =
        result.cluster_audit.audited && !result.cluster_audit.ok();
    for (const auto& slice : result.cores) {
      audit_failed |= slice.audit.audited && !slice.audit.ok();
    }
    if (num_cores == 1) {
      audit_failed = result.cores[0].audit.audited && !result.cores[0].audit.ok();
    }
    if (audit_failed) {
      exit_code = 3;  // accounting invariant violations trump everything
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
