// rtdvs_sim: command-line front end to the simulator — the equivalent of
// the C++ simulator the paper built for §3, as a reusable tool.
//
//   ./rtdvs_sim --scenario examples/scenarios/camcorder.scn --policy la_edf
//   ./rtdvs_sim --scenario set.scn --all-policies --sim-ms 30000 --gantt 50
//
// Prints energy, deadline and aperiodic statistics, per-operating-point
// residency, and (optionally) the ASCII execution trace.
#include <cstdio>
#include <iostream>
#include <variant>

#include "src/core/scenario.h"
#include "src/dvs/policy.h"
#include "src/sim/simulator.h"
#include "src/util/flags.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

void PrintResult(const SimResult& result, const Scenario& scenario, double gantt_ms) {
  std::printf("%s\n", result.Summary().c_str());
  if (result.audit.audited) {
    std::printf("  %s\n", result.audit.Summary().c_str());
  }
  if (result.server_task_id >= 0) {
    std::printf(
        "  aperiodic: %lld arrivals, %lld served, mean response %.2f ms, "
        "max %.2f ms, backlog %.2f\n",
        static_cast<long long>(result.aperiodic.arrivals),
        static_cast<long long>(result.aperiodic.completions),
        result.aperiodic.MeanResponseMs(), result.aperiodic.max_response_ms,
        result.aperiodic.backlog_work);
  }
  for (const auto& res : result.residency) {
    if (res.exec_ms + res.idle_ms > 0) {
      std::printf("  %-18s exec %10.2f ms   idle %10.2f ms   energy %10.2f\n",
                  res.point.ToString().c_str(), res.exec_ms, res.idle_ms,
                  res.exec_energy + res.idle_energy);
    }
  }
  if (gantt_ms > 0) {
    // Append the server task to a display copy of the task set when needed.
    TaskSet display = scenario.tasks;
    if (result.server_task_id >= 0) {
      display.AddTask({"server", scenario.server.period_ms, scenario.server.budget_ms,
                       0.0});
    }
    std::printf("%s", result.trace.RenderGantt(display, 76, gantt_ms).c_str());
  }
}

int Main(int argc, char** argv) {
  std::string scenario_path;
  std::string policy_id = "la_edf";
  bool all_policies = false;
  int64_t sim_ms = 10'000;
  double idle_level = 0.0;
  double gantt_ms = 0.0;
  double switch_time_ms = 0.0;
  bool abort_on_miss = false;
  bool audit = true;
  int64_t seed = 1;

  FlagSet flags("rtdvs_sim: run a scenario file through the RT-DVS simulator.");
  flags.AddString("scenario", &scenario_path, "path to the scenario file (required)");
  flags.AddString("policy", &policy_id,
                  "edf|rm|static_edf|static_rm|static_rm_exact|cc_edf|cc_rm|la_edf|"
                  "interval|stat_edf");
  flags.AddBool("all-policies", &all_policies, "run the paper's six policies");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon (ms)");
  flags.AddDouble("idle-level", &idle_level, "halted-cycle energy ratio (0..1)");
  flags.AddDouble("gantt", &gantt_ms, "render an ASCII trace of the first N ms");
  flags.AddDouble("switch-ms", &switch_time_ms, "halt per operating-point change (ms)");
  flags.AddBool("abort-on-miss", &abort_on_miss, "drop tardy jobs at their deadlines");
  flags.AddBool("audit", &audit,
                "run SimAudit on each result (--no-audit disables); audit "
                "violations make the exit code 3");
  flags.AddInt64("seed", &seed, "workload random seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (scenario_path.empty()) {
    std::fprintf(stderr, "error: --scenario is required (see --help)\n");
    return 1;
  }
  if (!all_policies && !IsValidPolicyId(policy_id)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n", policy_id.c_str());
    return 1;
  }

  auto loaded = LoadScenarioFile(scenario_path);
  if (std::holds_alternative<std::string>(loaded)) {
    std::fprintf(stderr, "error: %s\n", std::get<std::string>(loaded).c_str());
    return 1;
  }
  const Scenario& scenario = std::get<Scenario>(loaded);

  std::printf("scenario: %s\n", scenario.tasks.ToString().c_str());
  std::printf("machine:  %s\n", scenario.machine.ToString().c_str());
  if (scenario.server.kind != ServerKind::kNone) {
    std::printf("server:   P=%.4g ms, C=%.4g ms (U_s=%.3f)\n",
                scenario.server.period_ms, scenario.server.budget_ms,
                scenario.server.budget_ms / scenario.server.period_ms);
  }
  std::printf("\n");

  SimOptions options;
  options.horizon_ms = static_cast<double>(sim_ms);
  options.idle_level = idle_level;
  options.switch_time_ms = switch_time_ms;
  options.miss_policy =
      abort_on_miss ? MissPolicy::kAbortJob : MissPolicy::kContinueLate;
  options.record_trace = gantt_ms > 0;
  options.audit = audit;
  options.seed = static_cast<uint64_t>(seed);
  options.aperiodic = scenario.server;

  std::vector<std::string> ids =
      all_policies ? AllPaperPolicyIds() : std::vector<std::string>{policy_id};
  int exit_code = 0;
  for (const auto& id : ids) {
    auto policy = MakePolicy(id);
    auto model = scenario.MakeExecModel();
    SimResult result =
        RunSimulation(scenario.tasks, scenario.machine, *policy, *model, options);
    PrintResult(result, scenario, gantt_ms);
    if (result.deadline_misses > 0 && id != "interval" && id != "stat_edf") {
      exit_code = 2;  // hard policies missing deadlines is reportable
    }
    if (result.audit.audited && !result.audit.ok()) {
      exit_code = 3;  // accounting invariant violations trump everything
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
