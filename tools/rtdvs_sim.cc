// rtdvs_sim: command-line front end to the simulator — the equivalent of
// the C++ simulator the paper built for §3, as a reusable tool.
//
//   ./rtdvs_sim --scenario examples/scenarios/camcorder.scn --policy la_edf
//   ./rtdvs_sim --scenario set.scn --all-policies --sim-ms 30000 --gantt 50
//
// Prints energy, deadline and aperiodic statistics, per-operating-point
// residency, and (optionally) the ASCII execution trace.
#include <cstdio>
#include <iostream>
#include <variant>

#include "src/core/scenario.h"
#include "src/dvs/policy.h"
#include "src/sim/simulator.h"
#include "src/sim/trace_export.h"
#include "src/util/flags.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

// The task set the simulator actually ran: the scenario's tasks plus the
// aperiodic server task when one is configured.
TaskSet SimulatedTaskSet(const Scenario& scenario, const SimResult& result) {
  TaskSet tasks = scenario.tasks;
  if (result.server_task_id >= 0) {
    tasks.AddTask({"server", scenario.server.period_ms,
                   scenario.server.budget_ms, 0.0});
  }
  return tasks;
}

// "trace.json" + "cc_edf" -> "trace.cc_edf.json", so --all-policies writes
// one Chrome trace per policy instead of overwriting a single file.
std::string InsertPolicyIntoPath(const std::string& path, const std::string& id) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + id;
  }
  return path.substr(0, dot) + "." + id + path.substr(dot);
}

void PrintResult(const SimResult& result, const Scenario& scenario, double gantt_ms) {
  std::printf("%s\n", result.Summary().c_str());
  if (result.audit.audited) {
    std::printf("  %s\n", result.audit.Summary().c_str());
  }
  const PolicyCounters& counters = result.policy_counters;
  std::printf(
      "  decisions: %lld speed requests (%lld transitions), slack reclaimed "
      "%.2f ms over %lld completions, %lld deferrals (%.2f ms deferred), "
      "mean utilization estimate %.3f over %lld samples\n",
      static_cast<long long>(counters.speed_change_requests),
      static_cast<long long>(counters.speed_transitions),
      counters.slack_reclaimed_ms,
      static_cast<long long>(counters.slack_completions),
      static_cast<long long>(counters.deferral_decisions),
      counters.work_deferred_ms,
      counters.utilization_samples == 0
          ? 0.0
          : counters.utilization_sum /
                static_cast<double>(counters.utilization_samples),
      static_cast<long long>(counters.utilization_samples));
  if (result.server_task_id >= 0) {
    std::printf(
        "  aperiodic: %lld arrivals, %lld served, mean response %.2f ms, "
        "max %.2f ms, backlog %.2f\n",
        static_cast<long long>(result.aperiodic.arrivals),
        static_cast<long long>(result.aperiodic.completions),
        result.aperiodic.MeanResponseMs(), result.aperiodic.max_response_ms,
        result.aperiodic.backlog_work);
  }
  for (const auto& res : result.residency) {
    if (res.exec_ms + res.idle_ms > 0) {
      std::printf("  %-18s exec %10.2f ms   idle %10.2f ms   energy %10.2f\n",
                  res.point.ToString().c_str(), res.exec_ms, res.idle_ms,
                  res.exec_energy + res.idle_energy);
    }
  }
  if (gantt_ms > 0) {
    std::printf("%s", result.trace.RenderGantt(SimulatedTaskSet(scenario, result),
                                               76, gantt_ms)
                          .c_str());
  }
}

int Main(int argc, char** argv) {
  std::string scenario_path;
  std::string policy_id = "la_edf";
  bool all_policies = false;
  int64_t sim_ms = 10'000;
  double idle_level = 0.0;
  double gantt_ms = 0.0;
  double switch_time_ms = 0.0;
  bool abort_on_miss = false;
  bool audit = true;
  int64_t seed = 1;
  std::string trace_out;

  FlagSet flags("rtdvs_sim: run a scenario file through the RT-DVS simulator.");
  flags.AddString("scenario", &scenario_path, "path to the scenario file (required)");
  flags.AddString("policy", &policy_id,
                  "edf|rm|static_edf|static_rm|static_rm_exact|cc_edf|cc_rm|la_edf|"
                  "interval|stat_edf");
  flags.AddBool("all-policies", &all_policies, "run the paper's six policies");
  flags.AddInt64("sim-ms", &sim_ms, "simulated horizon (ms)");
  flags.AddDouble("idle-level", &idle_level, "halted-cycle energy ratio (0..1)");
  flags.AddDouble("gantt", &gantt_ms, "render an ASCII trace of the first N ms");
  flags.AddDouble("switch-ms", &switch_time_ms, "halt per operating-point change (ms)");
  flags.AddBool("abort-on-miss", &abort_on_miss, "drop tardy jobs at their deadlines");
  flags.AddBool("audit", &audit,
                "run SimAudit on each result (--no-audit disables); audit "
                "violations make the exit code 3");
  flags.AddInt64("seed", &seed, "workload random seed");
  flags.AddString("trace-out", &trace_out,
                  "write the execution trace as Chrome trace-event JSON "
                  "(open in ui.perfetto.dev or chrome://tracing); with "
                  "--all-policies the policy id is inserted before the "
                  "extension");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (scenario_path.empty()) {
    std::fprintf(stderr, "error: --scenario is required (see --help)\n");
    return 1;
  }
  if (!all_policies && !IsValidPolicyId(policy_id)) {
    std::fprintf(stderr, "error: unknown policy '%s'\n", policy_id.c_str());
    return 1;
  }

  auto loaded = LoadScenarioFile(scenario_path);
  if (std::holds_alternative<std::string>(loaded)) {
    std::fprintf(stderr, "error: %s\n", std::get<std::string>(loaded).c_str());
    return 1;
  }
  const Scenario& scenario = std::get<Scenario>(loaded);

  std::printf("scenario: %s\n", scenario.tasks.ToString().c_str());
  std::printf("machine:  %s\n", scenario.machine.ToString().c_str());
  if (scenario.server.kind != ServerKind::kNone) {
    std::printf("server:   P=%.4g ms, C=%.4g ms (U_s=%.3f)\n",
                scenario.server.period_ms, scenario.server.budget_ms,
                scenario.server.budget_ms / scenario.server.period_ms);
  }
  std::printf("\n");

  SimOptions options;
  options.horizon_ms = static_cast<double>(sim_ms);
  options.idle_level = idle_level;
  options.switch_time_ms = switch_time_ms;
  options.miss_policy =
      abort_on_miss ? MissPolicy::kAbortJob : MissPolicy::kContinueLate;
  options.record_trace = gantt_ms > 0 || !trace_out.empty();
  options.audit = audit;
  options.seed = static_cast<uint64_t>(seed);
  options.aperiodic = scenario.server;

  std::vector<std::string> ids =
      all_policies ? AllPaperPolicyIds() : std::vector<std::string>{policy_id};
  int exit_code = 0;
  for (const auto& id : ids) {
    auto policy = MakePolicy(id);
    auto model = scenario.MakeExecModel();
    SimResult result =
        RunSimulation(scenario.tasks, scenario.machine, *policy, *model, options);
    PrintResult(result, scenario, gantt_ms);
    if (options.record_trace && result.trace.truncated()) {
      std::fprintf(stderr,
                   "warning: trace for %s truncated at %zu segments; the "
                   "Gantt/export covers only a prefix of the run (raise "
                   "SimOptions::max_trace_segments to capture more)\n",
                   result.policy_name.c_str(), result.trace.segments().size());
    }
    if (!trace_out.empty()) {
      const std::string path = ids.size() > 1
                                   ? InsertPolicyIntoPath(trace_out, id)
                                   : trace_out;
      if (WriteChromeTrace(result, SimulatedTaskSet(scenario, result), options,
                           path)) {
        std::printf("  trace written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
        exit_code = 1;
      }
    }
    if (result.deadline_misses > 0 && id != "interval" && id != "stat_edf") {
      exit_code = 2;  // hard policies missing deadlines is reportable
    }
    if (result.audit.audited && !result.audit.ok()) {
      exit_code = 3;  // accounting invariant violations trump everything
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace rtdvs

int main(int argc, char** argv) { return rtdvs::Main(argc, argv); }
