# Empty compiler generated dependencies file for rtdvs_sweep_tool.
# This may be replaced when dependencies are built.
