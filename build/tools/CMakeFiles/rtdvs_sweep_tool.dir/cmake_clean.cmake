file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_sweep_tool.dir/rtdvs_sweep.cc.o"
  "CMakeFiles/rtdvs_sweep_tool.dir/rtdvs_sweep.cc.o.d"
  "rtdvs-sweep"
  "rtdvs-sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_sweep_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
