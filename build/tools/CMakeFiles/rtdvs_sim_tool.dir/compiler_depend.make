# Empty compiler generated dependencies file for rtdvs_sim_tool.
# This may be replaced when dependencies are built.
