file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_sim_tool.dir/rtdvs_sim.cc.o"
  "CMakeFiles/rtdvs_sim_tool.dir/rtdvs_sim.cc.o.d"
  "rtdvs-sim"
  "rtdvs-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
