# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_rtdvs_sweep "/root/repo/build/tools/rtdvs-sweep" "--policies" "edf,cc_edf" "--utils" "0.3:0.7:0.2" "--tasksets" "3" "--sim-ms" "500" "--misses")
set_tests_properties(tool_rtdvs_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
