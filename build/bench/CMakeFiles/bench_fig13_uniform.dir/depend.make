# Empty dependencies file for bench_fig13_uniform.
# This may be replaced when dependencies are built.
