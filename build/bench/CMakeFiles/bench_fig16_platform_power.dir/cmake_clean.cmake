file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_platform_power.dir/bench_fig16_platform_power.cc.o"
  "CMakeFiles/bench_fig16_platform_power.dir/bench_fig16_platform_power.cc.o.d"
  "bench_fig16_platform_power"
  "bench_fig16_platform_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_platform_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
