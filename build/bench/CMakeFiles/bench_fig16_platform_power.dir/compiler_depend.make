# Empty compiler generated dependencies file for bench_fig16_platform_power.
# This may be replaced when dependencies are built.
