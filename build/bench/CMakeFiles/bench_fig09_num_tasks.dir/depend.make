# Empty dependencies file for bench_fig09_num_tasks.
# This may be replaced when dependencies are built.
