# Empty compiler generated dependencies file for bench_ablation_interval_dvs.
# This may be replaced when dependencies are built.
