file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interval_dvs.dir/bench_ablation_interval_dvs.cc.o"
  "CMakeFiles/bench_ablation_interval_dvs.dir/bench_ablation_interval_dvs.cc.o.d"
  "bench_ablation_interval_dvs"
  "bench_ablation_interval_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interval_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
