file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_task_admission.dir/bench_ablation_task_admission.cc.o"
  "CMakeFiles/bench_ablation_task_admission.dir/bench_ablation_task_admission.cc.o.d"
  "bench_ablation_task_admission"
  "bench_ablation_task_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_task_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
