# Empty dependencies file for bench_fig17_sim_power.
# This may be replaced when dependencies are built.
