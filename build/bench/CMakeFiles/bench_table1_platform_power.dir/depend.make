# Empty dependencies file for bench_table1_platform_power.
# This may be replaced when dependencies are built.
