# Empty compiler generated dependencies file for bench_sec41_transition_latency.
# This may be replaced when dependencies are built.
