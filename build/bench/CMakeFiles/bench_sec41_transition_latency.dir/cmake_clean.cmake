file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_transition_latency.dir/bench_sec41_transition_latency.cc.o"
  "CMakeFiles/bench_sec41_transition_latency.dir/bench_sec41_transition_latency.cc.o.d"
  "bench_sec41_transition_latency"
  "bench_sec41_transition_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_transition_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
