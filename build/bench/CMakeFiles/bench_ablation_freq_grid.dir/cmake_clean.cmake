file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_freq_grid.dir/bench_ablation_freq_grid.cc.o"
  "CMakeFiles/bench_ablation_freq_grid.dir/bench_ablation_freq_grid.cc.o.d"
  "bench_ablation_freq_grid"
  "bench_ablation_freq_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_freq_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
