file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_example.dir/bench_table4_example.cc.o"
  "CMakeFiles/bench_table4_example.dir/bench_table4_example.cc.o.d"
  "bench_table4_example"
  "bench_table4_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
