# Empty dependencies file for bench_table4_example.
# This may be replaced when dependencies are built.
