# Empty dependencies file for bench_fig11_machines.
# This may be replaced when dependencies are built.
