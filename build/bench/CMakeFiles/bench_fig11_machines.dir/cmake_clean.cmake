file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_machines.dir/bench_fig11_machines.cc.o"
  "CMakeFiles/bench_fig11_machines.dir/bench_fig11_machines.cc.o.d"
  "bench_fig11_machines"
  "bench_fig11_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
