# Empty dependencies file for bench_ablation_stat_edf.
# This may be replaced when dependencies are built.
