file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stat_edf.dir/bench_ablation_stat_edf.cc.o"
  "CMakeFiles/bench_ablation_stat_edf.dir/bench_ablation_stat_edf.cc.o.d"
  "bench_ablation_stat_edf"
  "bench_ablation_stat_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stat_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
