file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_server.dir/bench_ablation_server.cc.o"
  "CMakeFiles/bench_ablation_server.dir/bench_ablation_server.cc.o.d"
  "bench_ablation_server"
  "bench_ablation_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
