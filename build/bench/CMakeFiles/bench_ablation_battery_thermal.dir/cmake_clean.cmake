file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_battery_thermal.dir/bench_ablation_battery_thermal.cc.o"
  "CMakeFiles/bench_ablation_battery_thermal.dir/bench_ablation_battery_thermal.cc.o.d"
  "bench_ablation_battery_thermal"
  "bench_ablation_battery_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_battery_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
