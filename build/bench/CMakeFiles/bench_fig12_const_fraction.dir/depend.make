# Empty dependencies file for bench_fig12_const_fraction.
# This may be replaced when dependencies are built.
