# Empty compiler generated dependencies file for bench_fig10_idle_level.
# This may be replaced when dependencies are built.
