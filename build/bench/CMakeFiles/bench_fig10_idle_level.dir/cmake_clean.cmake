file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_idle_level.dir/bench_fig10_idle_level.cc.o"
  "CMakeFiles/bench_fig10_idle_level.dir/bench_fig10_idle_level.cc.o.d"
  "bench_fig10_idle_level"
  "bench_fig10_idle_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_idle_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
