file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rm_exact.dir/bench_ablation_rm_exact.cc.o"
  "CMakeFiles/bench_ablation_rm_exact.dir/bench_ablation_rm_exact.cc.o.d"
  "bench_ablation_rm_exact"
  "bench_ablation_rm_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rm_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
