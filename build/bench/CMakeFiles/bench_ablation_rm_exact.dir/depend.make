# Empty dependencies file for bench_ablation_rm_exact.
# This may be replaced when dependencies are built.
