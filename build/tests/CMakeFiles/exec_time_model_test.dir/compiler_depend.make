# Empty compiler generated dependencies file for exec_time_model_test.
# This may be replaced when dependencies are built.
