file(REMOVE_RECURSE
  "CMakeFiles/exec_time_model_test.dir/rt/exec_time_model_test.cc.o"
  "CMakeFiles/exec_time_model_test.dir/rt/exec_time_model_test.cc.o.d"
  "exec_time_model_test"
  "exec_time_model_test.pdb"
  "exec_time_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_time_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
