
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu/machine_spec_test.cc" "tests/CMakeFiles/machine_spec_test.dir/cpu/machine_spec_test.cc.o" "gcc" "tests/CMakeFiles/machine_spec_test.dir/cpu/machine_spec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtdvs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtdvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dvs/CMakeFiles/rtdvs_dvs.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rtdvs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rtdvs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtdvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
