# Empty compiler generated dependencies file for policy_behavior_test.
# This may be replaced when dependencies are built.
