file(REMOVE_RECURSE
  "CMakeFiles/policy_behavior_test.dir/dvs/policy_behavior_test.cc.o"
  "CMakeFiles/policy_behavior_test.dir/dvs/policy_behavior_test.cc.o.d"
  "policy_behavior_test"
  "policy_behavior_test.pdb"
  "policy_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
