file(REMOVE_RECURSE
  "CMakeFiles/taskset_generator_test.dir/rt/taskset_generator_test.cc.o"
  "CMakeFiles/taskset_generator_test.dir/rt/taskset_generator_test.cc.o.d"
  "taskset_generator_test"
  "taskset_generator_test.pdb"
  "taskset_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskset_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
