# Empty compiler generated dependencies file for taskset_generator_test.
# This may be replaced when dependencies are built.
