file(REMOVE_RECURSE
  "CMakeFiles/thermal_battery_test.dir/platform/thermal_battery_test.cc.o"
  "CMakeFiles/thermal_battery_test.dir/platform/thermal_battery_test.cc.o.d"
  "thermal_battery_test"
  "thermal_battery_test.pdb"
  "thermal_battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
