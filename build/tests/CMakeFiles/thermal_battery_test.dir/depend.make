# Empty dependencies file for thermal_battery_test.
# This may be replaced when dependencies are built.
