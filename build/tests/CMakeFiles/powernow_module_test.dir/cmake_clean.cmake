file(REMOVE_RECURSE
  "CMakeFiles/powernow_module_test.dir/kernel/powernow_module_test.cc.o"
  "CMakeFiles/powernow_module_test.dir/kernel/powernow_module_test.cc.o.d"
  "powernow_module_test"
  "powernow_module_test.pdb"
  "powernow_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powernow_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
