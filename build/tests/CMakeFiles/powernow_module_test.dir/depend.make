# Empty dependencies file for powernow_module_test.
# This may be replaced when dependencies are built.
