file(REMOVE_RECURSE
  "CMakeFiles/k6_cpu_test.dir/platform/k6_cpu_test.cc.o"
  "CMakeFiles/k6_cpu_test.dir/platform/k6_cpu_test.cc.o.d"
  "k6_cpu_test"
  "k6_cpu_test.pdb"
  "k6_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k6_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
