# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for k6_cpu_test.
