# Empty dependencies file for k6_cpu_test.
# This may be replaced when dependencies are built.
