file(REMOVE_RECURSE
  "CMakeFiles/stat_edf_test.dir/dvs/stat_edf_test.cc.o"
  "CMakeFiles/stat_edf_test.dir/dvs/stat_edf_test.cc.o.d"
  "stat_edf_test"
  "stat_edf_test.pdb"
  "stat_edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
