# Empty dependencies file for stat_edf_test.
# This may be replaced when dependencies are built.
