file(REMOVE_RECURSE
  "CMakeFiles/aperiodic_test.dir/rt/aperiodic_test.cc.o"
  "CMakeFiles/aperiodic_test.dir/rt/aperiodic_test.cc.o.d"
  "aperiodic_test"
  "aperiodic_test.pdb"
  "aperiodic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aperiodic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
