# Empty dependencies file for rta_crossvalidation_test.
# This may be replaced when dependencies are built.
