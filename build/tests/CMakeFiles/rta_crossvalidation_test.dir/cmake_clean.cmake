file(REMOVE_RECURSE
  "CMakeFiles/rta_crossvalidation_test.dir/sim/rta_crossvalidation_test.cc.o"
  "CMakeFiles/rta_crossvalidation_test.dir/sim/rta_crossvalidation_test.cc.o.d"
  "rta_crossvalidation_test"
  "rta_crossvalidation_test.pdb"
  "rta_crossvalidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_crossvalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
