file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_dvs.dir/cc_edf_policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/cc_edf_policy.cc.o.d"
  "CMakeFiles/rtdvs_dvs.dir/cc_rm_policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/cc_rm_policy.cc.o.d"
  "CMakeFiles/rtdvs_dvs.dir/interval_policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/interval_policy.cc.o.d"
  "CMakeFiles/rtdvs_dvs.dir/la_edf_policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/la_edf_policy.cc.o.d"
  "CMakeFiles/rtdvs_dvs.dir/policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/policy.cc.o.d"
  "CMakeFiles/rtdvs_dvs.dir/stat_edf_policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/stat_edf_policy.cc.o.d"
  "CMakeFiles/rtdvs_dvs.dir/static_scaling_policy.cc.o"
  "CMakeFiles/rtdvs_dvs.dir/static_scaling_policy.cc.o.d"
  "librtdvs_dvs.a"
  "librtdvs_dvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
