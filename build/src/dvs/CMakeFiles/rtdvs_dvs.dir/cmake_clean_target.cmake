file(REMOVE_RECURSE
  "librtdvs_dvs.a"
)
