# Empty dependencies file for rtdvs_dvs.
# This may be replaced when dependencies are built.
