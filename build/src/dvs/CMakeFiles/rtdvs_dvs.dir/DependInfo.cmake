
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvs/cc_edf_policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/cc_edf_policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/cc_edf_policy.cc.o.d"
  "/root/repo/src/dvs/cc_rm_policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/cc_rm_policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/cc_rm_policy.cc.o.d"
  "/root/repo/src/dvs/interval_policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/interval_policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/interval_policy.cc.o.d"
  "/root/repo/src/dvs/la_edf_policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/la_edf_policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/la_edf_policy.cc.o.d"
  "/root/repo/src/dvs/policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/policy.cc.o.d"
  "/root/repo/src/dvs/stat_edf_policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/stat_edf_policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/stat_edf_policy.cc.o.d"
  "/root/repo/src/dvs/static_scaling_policy.cc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/static_scaling_policy.cc.o" "gcc" "src/dvs/CMakeFiles/rtdvs_dvs.dir/static_scaling_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/rtdvs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rtdvs_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rtdvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
