# Empty dependencies file for rtdvs_rt.
# This may be replaced when dependencies are built.
