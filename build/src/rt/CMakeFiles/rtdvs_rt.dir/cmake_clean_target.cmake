file(REMOVE_RECURSE
  "librtdvs_rt.a"
)
