
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/aperiodic.cc" "src/rt/CMakeFiles/rtdvs_rt.dir/aperiodic.cc.o" "gcc" "src/rt/CMakeFiles/rtdvs_rt.dir/aperiodic.cc.o.d"
  "/root/repo/src/rt/exec_time_model.cc" "src/rt/CMakeFiles/rtdvs_rt.dir/exec_time_model.cc.o" "gcc" "src/rt/CMakeFiles/rtdvs_rt.dir/exec_time_model.cc.o.d"
  "/root/repo/src/rt/schedulability.cc" "src/rt/CMakeFiles/rtdvs_rt.dir/schedulability.cc.o" "gcc" "src/rt/CMakeFiles/rtdvs_rt.dir/schedulability.cc.o.d"
  "/root/repo/src/rt/scheduler.cc" "src/rt/CMakeFiles/rtdvs_rt.dir/scheduler.cc.o" "gcc" "src/rt/CMakeFiles/rtdvs_rt.dir/scheduler.cc.o.d"
  "/root/repo/src/rt/task.cc" "src/rt/CMakeFiles/rtdvs_rt.dir/task.cc.o" "gcc" "src/rt/CMakeFiles/rtdvs_rt.dir/task.cc.o.d"
  "/root/repo/src/rt/taskset_generator.cc" "src/rt/CMakeFiles/rtdvs_rt.dir/taskset_generator.cc.o" "gcc" "src/rt/CMakeFiles/rtdvs_rt.dir/taskset_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtdvs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rtdvs_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
