file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_rt.dir/aperiodic.cc.o"
  "CMakeFiles/rtdvs_rt.dir/aperiodic.cc.o.d"
  "CMakeFiles/rtdvs_rt.dir/exec_time_model.cc.o"
  "CMakeFiles/rtdvs_rt.dir/exec_time_model.cc.o.d"
  "CMakeFiles/rtdvs_rt.dir/schedulability.cc.o"
  "CMakeFiles/rtdvs_rt.dir/schedulability.cc.o.d"
  "CMakeFiles/rtdvs_rt.dir/scheduler.cc.o"
  "CMakeFiles/rtdvs_rt.dir/scheduler.cc.o.d"
  "CMakeFiles/rtdvs_rt.dir/task.cc.o"
  "CMakeFiles/rtdvs_rt.dir/task.cc.o.d"
  "CMakeFiles/rtdvs_rt.dir/taskset_generator.cc.o"
  "CMakeFiles/rtdvs_rt.dir/taskset_generator.cc.o.d"
  "librtdvs_rt.a"
  "librtdvs_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
