# Empty compiler generated dependencies file for rtdvs_platform.
# This may be replaced when dependencies are built.
