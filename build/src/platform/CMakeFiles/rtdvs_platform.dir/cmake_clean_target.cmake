file(REMOVE_RECURSE
  "librtdvs_platform.a"
)
