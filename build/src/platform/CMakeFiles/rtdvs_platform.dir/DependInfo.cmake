
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/battery.cc" "src/platform/CMakeFiles/rtdvs_platform.dir/battery.cc.o" "gcc" "src/platform/CMakeFiles/rtdvs_platform.dir/battery.cc.o.d"
  "/root/repo/src/platform/k6_cpu.cc" "src/platform/CMakeFiles/rtdvs_platform.dir/k6_cpu.cc.o" "gcc" "src/platform/CMakeFiles/rtdvs_platform.dir/k6_cpu.cc.o.d"
  "/root/repo/src/platform/power_meter.cc" "src/platform/CMakeFiles/rtdvs_platform.dir/power_meter.cc.o" "gcc" "src/platform/CMakeFiles/rtdvs_platform.dir/power_meter.cc.o.d"
  "/root/repo/src/platform/system_power.cc" "src/platform/CMakeFiles/rtdvs_platform.dir/system_power.cc.o" "gcc" "src/platform/CMakeFiles/rtdvs_platform.dir/system_power.cc.o.d"
  "/root/repo/src/platform/thermal.cc" "src/platform/CMakeFiles/rtdvs_platform.dir/thermal.cc.o" "gcc" "src/platform/CMakeFiles/rtdvs_platform.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtdvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
