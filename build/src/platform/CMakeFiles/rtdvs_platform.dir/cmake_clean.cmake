file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_platform.dir/battery.cc.o"
  "CMakeFiles/rtdvs_platform.dir/battery.cc.o.d"
  "CMakeFiles/rtdvs_platform.dir/k6_cpu.cc.o"
  "CMakeFiles/rtdvs_platform.dir/k6_cpu.cc.o.d"
  "CMakeFiles/rtdvs_platform.dir/power_meter.cc.o"
  "CMakeFiles/rtdvs_platform.dir/power_meter.cc.o.d"
  "CMakeFiles/rtdvs_platform.dir/system_power.cc.o"
  "CMakeFiles/rtdvs_platform.dir/system_power.cc.o.d"
  "CMakeFiles/rtdvs_platform.dir/thermal.cc.o"
  "CMakeFiles/rtdvs_platform.dir/thermal.cc.o.d"
  "librtdvs_platform.a"
  "librtdvs_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
