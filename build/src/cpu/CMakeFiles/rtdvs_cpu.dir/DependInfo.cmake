
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/energy_model.cc" "src/cpu/CMakeFiles/rtdvs_cpu.dir/energy_model.cc.o" "gcc" "src/cpu/CMakeFiles/rtdvs_cpu.dir/energy_model.cc.o.d"
  "/root/repo/src/cpu/lower_bound.cc" "src/cpu/CMakeFiles/rtdvs_cpu.dir/lower_bound.cc.o" "gcc" "src/cpu/CMakeFiles/rtdvs_cpu.dir/lower_bound.cc.o.d"
  "/root/repo/src/cpu/machine_spec.cc" "src/cpu/CMakeFiles/rtdvs_cpu.dir/machine_spec.cc.o" "gcc" "src/cpu/CMakeFiles/rtdvs_cpu.dir/machine_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rtdvs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
