file(REMOVE_RECURSE
  "librtdvs_cpu.a"
)
