file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_cpu.dir/energy_model.cc.o"
  "CMakeFiles/rtdvs_cpu.dir/energy_model.cc.o.d"
  "CMakeFiles/rtdvs_cpu.dir/lower_bound.cc.o"
  "CMakeFiles/rtdvs_cpu.dir/lower_bound.cc.o.d"
  "CMakeFiles/rtdvs_cpu.dir/machine_spec.cc.o"
  "CMakeFiles/rtdvs_cpu.dir/machine_spec.cc.o.d"
  "librtdvs_cpu.a"
  "librtdvs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
