# Empty dependencies file for rtdvs_cpu.
# This may be replaced when dependencies are built.
