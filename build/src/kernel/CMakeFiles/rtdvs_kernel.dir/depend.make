# Empty dependencies file for rtdvs_kernel.
# This may be replaced when dependencies are built.
