file(REMOVE_RECURSE
  "librtdvs_kernel.a"
)
