file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_kernel.dir/kernel.cc.o"
  "CMakeFiles/rtdvs_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/rtdvs_kernel.dir/powernow_module.cc.o"
  "CMakeFiles/rtdvs_kernel.dir/powernow_module.cc.o.d"
  "CMakeFiles/rtdvs_kernel.dir/procfs.cc.o"
  "CMakeFiles/rtdvs_kernel.dir/procfs.cc.o.d"
  "librtdvs_kernel.a"
  "librtdvs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
