file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_core.dir/scenario.cc.o"
  "CMakeFiles/rtdvs_core.dir/scenario.cc.o.d"
  "CMakeFiles/rtdvs_core.dir/sweep.cc.o"
  "CMakeFiles/rtdvs_core.dir/sweep.cc.o.d"
  "librtdvs_core.a"
  "librtdvs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
