# Empty dependencies file for rtdvs_core.
# This may be replaced when dependencies are built.
