file(REMOVE_RECURSE
  "librtdvs_core.a"
)
