# Empty dependencies file for rtdvs_sim.
# This may be replaced when dependencies are built.
