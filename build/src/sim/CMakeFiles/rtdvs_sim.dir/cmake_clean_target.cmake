file(REMOVE_RECURSE
  "librtdvs_sim.a"
)
