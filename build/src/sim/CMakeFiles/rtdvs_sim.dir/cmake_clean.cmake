file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_sim.dir/simulator.cc.o"
  "CMakeFiles/rtdvs_sim.dir/simulator.cc.o.d"
  "CMakeFiles/rtdvs_sim.dir/trace.cc.o"
  "CMakeFiles/rtdvs_sim.dir/trace.cc.o.d"
  "librtdvs_sim.a"
  "librtdvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
