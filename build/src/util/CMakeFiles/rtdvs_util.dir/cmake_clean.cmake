file(REMOVE_RECURSE
  "CMakeFiles/rtdvs_util.dir/flags.cc.o"
  "CMakeFiles/rtdvs_util.dir/flags.cc.o.d"
  "CMakeFiles/rtdvs_util.dir/logging.cc.o"
  "CMakeFiles/rtdvs_util.dir/logging.cc.o.d"
  "CMakeFiles/rtdvs_util.dir/random.cc.o"
  "CMakeFiles/rtdvs_util.dir/random.cc.o.d"
  "CMakeFiles/rtdvs_util.dir/stats.cc.o"
  "CMakeFiles/rtdvs_util.dir/stats.cc.o.d"
  "CMakeFiles/rtdvs_util.dir/strings.cc.o"
  "CMakeFiles/rtdvs_util.dir/strings.cc.o.d"
  "CMakeFiles/rtdvs_util.dir/table.cc.o"
  "CMakeFiles/rtdvs_util.dir/table.cc.o.d"
  "CMakeFiles/rtdvs_util.dir/time_eps.cc.o"
  "CMakeFiles/rtdvs_util.dir/time_eps.cc.o.d"
  "librtdvs_util.a"
  "librtdvs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtdvs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
