file(REMOVE_RECURSE
  "librtdvs_util.a"
)
