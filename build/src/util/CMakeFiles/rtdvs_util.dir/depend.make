# Empty dependencies file for rtdvs_util.
# This may be replaced when dependencies are built.
