# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_camcorder "/root/repo/build/examples/camcorder")
set_tests_properties(example_camcorder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cellphone "/root/repo/build/examples/cellphone")
set_tests_properties(example_cellphone PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_powernow_daemon "/root/repo/build/examples/powernow_daemon")
set_tests_properties(example_powernow_daemon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pda "/root/repo/build/examples/pda")
set_tests_properties(example_pda PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_rtdvs_sim "/root/repo/build/tools/rtdvs-sim" "--scenario" "/root/repo/examples/scenarios/camcorder.scn" "--all-policies" "--sim-ms" "2000")
set_tests_properties(tool_rtdvs_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_rtdvs_sim_table2 "/root/repo/build/tools/rtdvs-sim" "--scenario" "/root/repo/examples/scenarios/paper_table2.scn" "--policy" "la_edf" "--sim-ms" "160" "--gantt" "16")
set_tests_properties(tool_rtdvs_sim_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
