# Empty compiler generated dependencies file for cellphone.
# This may be replaced when dependencies are built.
