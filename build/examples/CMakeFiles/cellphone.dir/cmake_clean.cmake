file(REMOVE_RECURSE
  "CMakeFiles/cellphone.dir/cellphone.cpp.o"
  "CMakeFiles/cellphone.dir/cellphone.cpp.o.d"
  "cellphone"
  "cellphone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellphone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
