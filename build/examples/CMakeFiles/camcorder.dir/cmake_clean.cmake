file(REMOVE_RECURSE
  "CMakeFiles/camcorder.dir/camcorder.cpp.o"
  "CMakeFiles/camcorder.dir/camcorder.cpp.o.d"
  "camcorder"
  "camcorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camcorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
