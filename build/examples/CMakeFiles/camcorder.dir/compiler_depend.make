# Empty compiler generated dependencies file for camcorder.
# This may be replaced when dependencies are built.
