# Empty dependencies file for powernow_daemon.
# This may be replaced when dependencies are built.
