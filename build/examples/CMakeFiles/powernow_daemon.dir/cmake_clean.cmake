file(REMOVE_RECURSE
  "CMakeFiles/powernow_daemon.dir/powernow_daemon.cpp.o"
  "CMakeFiles/powernow_daemon.dir/powernow_daemon.cpp.o.d"
  "powernow_daemon"
  "powernow_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powernow_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
