file(REMOVE_RECURSE
  "CMakeFiles/pda.dir/pda.cpp.o"
  "CMakeFiles/pda.dir/pda.cpp.o.d"
  "pda"
  "pda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
