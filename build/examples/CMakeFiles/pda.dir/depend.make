# Empty dependencies file for pda.
# This may be replaced when dependencies are built.
