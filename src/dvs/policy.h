// The DVS policy interface: the contract between the OS's task-management
// hooks and a voltage-scaling algorithm (§2 of the paper).
//
// Policies are invoked at exactly the points the paper's algorithms need:
// task release, task completion, start of an idle interval, and (for
// non-real-time interval-based baselines) self-scheduled timer wakeups. A
// policy observes the task set through read-only TaskRuntimeViews and acts
// by setting the operating point through a SpeedController.
#ifndef SRC_DVS_POLICY_H_
#define SRC_DVS_POLICY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy_counters.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"

namespace rtdvs {

// Per-task state a policy may observe at a scheduling point. A policy never
// sees a job's actual (future) computation requirement — only the worst case
// and what has executed so far — mirroring what a real kernel can know.
struct TaskRuntimeView {
  // True when an invocation has been released and not yet completed.
  bool has_active_job = false;
  // Deadline of the current invocation when active; otherwise the task's
  // next release time (for periodic tasks the two coincide: the deadline of
  // an invocation IS the next release). This is the "deadline in the
  // system" that ccRM and laEDF reason about.
  double next_deadline_ms = 0;
  // Work executed within the current invocation (0 when no active job).
  double executed_in_invocation = 0;
  // C_i minus executed_in_invocation, floored at 0; 0 when no active job.
  // This is the paper's c_left_i as directly observable state.
  double worst_case_remaining = 0;
  // Total work executed on behalf of this task since the policy was
  // (re)initialized; lets policies account "during task execution:
  // decrement ..." bookkeeping by differencing between callbacks.
  double cumulative_executed = 0;
  // Actual work consumed by the most recently completed invocation
  // (the paper's cc_i); defaults to C_i before the first completion.
  double last_actual_work = 0;
};

struct PolicyContext {
  double now_ms = 0;
  const TaskSet* tasks = nullptr;
  const MachineSpec* machine = nullptr;
  std::vector<TaskRuntimeView> views;
  // Wall-clock totals since start, for utilization-feedback baselines.
  double cumulative_busy_ms = 0;
  double cumulative_idle_ms = 0;
  double cumulative_work = 0;

  const TaskRuntimeView& view(int task_id) const {
    return views[static_cast<size_t>(task_id)];
  }
  // Earliest next_deadline_ms across all tasks; the "next deadline in the
  // system" (requires a non-empty task set).
  double EarliestDeadline() const;
};

// How a policy changes processor speed. Implementations count transitions
// and may model switch latency.
class SpeedController {
 public:
  virtual ~SpeedController() = default;
  virtual void SetOperatingPoint(const OperatingPoint& point) = 0;
  virtual const OperatingPoint& current() const = 0;
};

class DvsPolicy {
 public:
  virtual ~DvsPolicy() = default;

  // Display name matching the paper's figure legends (e.g. "ccEDF").
  virtual std::string name() const = 0;
  // The real-time scheduler this policy is designed for.
  virtual SchedulerKind scheduler_kind() const = 0;
  // Dynamic policies drop to the lowest operating point during idle
  // (§3.2: "the dynamic algorithms switch to the lowest frequency and
  // voltage during idle, while the static ones do not").
  virtual bool lowers_speed_when_idle() const { return false; }
  // True when the policy preserves its scheduler's deadline guarantee on
  // any task set the scheduler's admission test accepts (all the paper's
  // RT-DVS policies). Interval-based and statistical policies return false:
  // they knowingly trade deadline risk for energy. The SimAudit RT oracle
  // keys off this metadata.
  virtual bool guarantees_deadlines() const { return true; }
  // True when the policy schedules its own timer wakeups (NextWakeupMs may
  // return a value). Hosts only poll NextWakeupMs / deliver OnWakeup for
  // timer-driven policies; every event-driven policy (all the paper's RT-DVS
  // algorithms) skips that per-step work entirely. A timer-driven policy
  // also keeps absolute wakeup times, which excludes it from the simulator's
  // hyperperiod fast path (src/sim/simulator.h).
  virtual bool timer_driven() const { return false; }
  // True when every piece of the policy's internal state is either
  // window-invariant (rebuilt from scratch by the release callbacks that
  // fire at an all-task release boundary, or a rate/duration that repeats
  // across hyperperiod windows) or an absolute snapshot that OnTimeSkip can
  // resynchronize from a fresh context. This is the correctness precondition
  // for the simulator's hyperperiod replay, which skips the policy's
  // callbacks over whole verified windows and delivers OnTimeSkip once at
  // the end. Policies with cross-window history the boundary callbacks do
  // not rebuild (statEDF's completion-history ring) must return false.
  virtual bool supports_time_skip() const { return false; }

  // Called once before the first release, and again whenever the task set
  // changes (dynamic task admission/removal, §4.3). Must (re)build any
  // per-task state and set the initial operating point.
  virtual void OnStart(const PolicyContext& ctx, SpeedController& speed) = 0;

  virtual void OnTaskRelease(int task_id, const PolicyContext& ctx,
                             SpeedController& speed) {
    (void)task_id;
    (void)ctx;
    (void)speed;
  }
  virtual void OnTaskCompletion(int task_id, const PolicyContext& ctx,
                                SpeedController& speed) {
    (void)task_id;
    (void)ctx;
    (void)speed;
  }

  // Called when the processor is about to idle (no runnable job). The
  // default honors lowers_speed_when_idle().
  virtual void OnIdle(const PolicyContext& ctx, SpeedController& speed);

  // Timer-driven policies (the non-RT interval baseline) return their next
  // wakeup time; the engine calls OnWakeup when it arrives.
  virtual std::optional<double> NextWakeupMs(const PolicyContext& ctx) {
    (void)ctx;
    return std::nullopt;
  }
  virtual void OnWakeup(const PolicyContext& ctx, SpeedController& speed) {
    (void)ctx;
    (void)speed;
  }

  // Called once by a host that fast-forwarded simulated time past one or
  // more whole hyperperiod windows without delivering the usual callbacks
  // (their externally visible effects were applied from a recording). The
  // context is built at the resume boundary; implementations must
  // resynchronize any absolute snapshots (e.g. cumulative-executed
  // baselines) so the next regular callback computes correct deltas.
  virtual void OnTimeSkip(const PolicyContext& ctx) { (void)ctx; }

  // Decision counters accumulated over the policy's lifetime (they survive
  // OnStart re-initialization on task-set changes); the simulator copies
  // them into SimResult::policy_counters after a run.
  const PolicyCounters& counters() const { return counters_; }

  // Host-facing effect recording for hyperperiod replay. While a tap is
  // bound, every counter mutation (all of which route through the protected
  // helpers below) is appended to it in execution order; ApplyCounterEffect
  // re-applies one recorded mutation without running any policy logic.
  // Integer fields increment by exactly 1 per effect, double fields add the
  // recorded addend — replaying the addend sequence (not a per-window delta)
  // keeps the sums bit-identical under non-associative FP addition.
  void set_counter_tap(std::vector<PolicyCounterEffect>* tap) { tap_ = tap; }
  void ApplyCounterEffect(const PolicyCounterEffect& effect) {
    switch (effect.field) {
      case PolicyCounterField::kSpeedRequests:
        counters_.speed_change_requests += 1;
        break;
      case PolicyCounterField::kSpeedTransitions:
        counters_.speed_transitions += 1;
        break;
      case PolicyCounterField::kSlackCompletions:
        counters_.slack_completions += 1;
        break;
      case PolicyCounterField::kSlackReclaimedMs:
        counters_.slack_reclaimed_ms += effect.value;
        break;
      case PolicyCounterField::kDeferralDecisions:
        counters_.deferral_decisions += 1;
        break;
      case PolicyCounterField::kWorkDeferredMs:
        counters_.work_deferred_ms += effect.value;
        break;
      case PolicyCounterField::kUtilizationSamples:
        counters_.utilization_samples += 1;
        break;
      case PolicyCounterField::kUtilizationSum:
        counters_.utilization_sum += effect.value;
        break;
    }
  }

 protected:
  // Policy implementations change speed through this wrapper so that request
  // and transition counts stay consistent with the engine's speed_switches
  // accounting: a transition is counted iff the requested point differs from
  // the current one.
  void RequestOperatingPoint(SpeedController& speed,
                             const OperatingPoint& point) {
    CountOne(PolicyCounterField::kSpeedRequests,
             counters_.speed_change_requests);
    if (!(point == speed.current())) {
      CountOne(PolicyCounterField::kSpeedTransitions,
               counters_.speed_transitions);
    }
    speed.SetOperatingPoint(point);
  }

  // A utilization estimate was computed to select a frequency.
  void RecordUtilizationSample(double utilization) {
    CountOne(PolicyCounterField::kUtilizationSamples,
             counters_.utilization_samples);
    AddTo(PolicyCounterField::kUtilizationSum, counters_.utilization_sum,
          utilization);
  }

  // ccEDF/ccRM: a completion finished under its WCET and handed `slack_ms`
  // back to the utilization estimate.
  void RecordSlackReclaimed(double slack_ms) {
    CountOne(PolicyCounterField::kSlackCompletions,
             counters_.slack_completions);
    AddTo(PolicyCounterField::kSlackReclaimedMs, counters_.slack_reclaimed_ms,
          slack_ms);
  }

  // laEDF: one defer() pass pushed `deferred_ms` of work past the next
  // deadline in the system.
  void RecordDeferral(double deferred_ms) {
    CountOne(PolicyCounterField::kDeferralDecisions,
             counters_.deferral_decisions);
    AddTo(PolicyCounterField::kWorkDeferredMs, counters_.work_deferred_ms,
          deferred_ms);
  }

  PolicyCounters counters_;

 private:
  void CountOne(PolicyCounterField field, int64_t& slot) {
    slot += 1;
    if (tap_ != nullptr) {
      tap_->push_back({field, 1.0});
    }
  }
  void AddTo(PolicyCounterField field, double& slot, double addend) {
    slot += addend;
    if (tap_ != nullptr) {
      tap_->push_back({field, addend});
    }
  }

  std::vector<PolicyCounterEffect>* tap_ = nullptr;
};

// Factory: creates a policy by its canonical id. Valid ids:
//   "edf", "rm"            — plain schedulers, no DVS (always max speed)
//   "static_edf", "static_rm" — §2.3 static voltage scaling
//   "cc_edf", "cc_rm"      — §2.4 cycle-conserving RT-DVS
//   "la_edf"               — §2.5 look-ahead RT-DVS
//   "interval"             — non-RT utilization-feedback DVS baseline (§2.2)
// Aborts (listing valid ids) on unknown input.
std::unique_ptr<DvsPolicy> MakePolicy(const std::string& id);

// All RT policy ids in the order the paper's tables/figures list them.
const std::vector<std::string>& AllPaperPolicyIds();

// True when `id` is accepted by MakePolicy.
bool IsValidPolicyId(const std::string& id);

}  // namespace rtdvs

#endif  // SRC_DVS_POLICY_H_
