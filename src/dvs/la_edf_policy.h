// Look-ahead RT-DVS for EDF schedulers (§2.5, Figures 7 and 8).
//
// The most aggressive of the paper's algorithms: instead of assuming the
// worst case until tasks complete early, it defers as much work as possible
// past the next deadline in the system and runs just fast enough to cover
// the minimum that must execute now for every future deadline to remain
// reachable (reserving worst-case capacity for earlier-deadline tasks).
//
//   select_frequency(x):       use lowest f_i such that x <= f_i/f_m
//   upon task_release(T_i):    c_left_i = C_i; defer()
//   upon task_completion(T_i): c_left_i = 0;  defer()
//   during task execution:     decrement c_left_i
//   defer():
//     U = C_1/P_1 + ... + C_n/P_n;  s = 0
//     for i in {tasks, reverse-EDF (latest deadline first) order}:
//       U = U - C_i/P_i
//       x = max(0, c_left_i - (1 - U)(D_i - D_n))
//       U = U + (c_left_i - x)/(D_i - D_n)
//       s = s + x
//     select_frequency(s / (D_n - now))
//   (D_n: earliest deadline in the system.)
#ifndef SRC_DVS_LA_EDF_POLICY_H_
#define SRC_DVS_LA_EDF_POLICY_H_

#include <vector>

#include "src/dvs/policy.h"

namespace rtdvs {

class LaEdfPolicy : public DvsPolicy {
 public:
  std::string name() const override { return "laEDF"; }
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kEdf; }
  bool lowers_speed_when_idle() const override { return true; }
  // c_left_ is rebuilt by the boundary release callbacks (c_left_i = C_i);
  // only the cumulative-executed baseline is an absolute snapshot, which
  // OnTimeSkip resynchronizes.
  bool supports_time_skip() const override { return true; }
  void OnTimeSkip(const PolicyContext& ctx) override;

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override;
  void OnTaskRelease(int task_id, const PolicyContext& ctx,
                     SpeedController& speed) override;
  void OnTaskCompletion(int task_id, const PolicyContext& ctx,
                        SpeedController& speed) override;

 private:
  void Sync(const PolicyContext& ctx);
  void Defer(const PolicyContext& ctx, SpeedController& speed);

  std::vector<double> c_left_;
  std::vector<double> executed_snapshot_;
  // Defer()'s reverse-EDF ordering scratch; member so the per-callback
  // defer pass (2+ per scheduling point) allocates nothing.
  std::vector<int> order_;
};

}  // namespace rtdvs

#endif  // SRC_DVS_LA_EDF_POLICY_H_
