#include "src/dvs/static_scaling_policy.h"

#include "src/rt/schedulability.h"
#include "src/util/logging.h"

namespace rtdvs {

StaticScalingPolicy::StaticScalingPolicy(SchedulerKind kind, bool exact_rm)
    : kind_(kind), exact_rm_(exact_rm) {}

std::string StaticScalingPolicy::name() const {
  std::string base = (kind_ == SchedulerKind::kEdf) ? "StaticEDF" : "StaticRM";
  if (exact_rm_ && kind_ == SchedulerKind::kRm) {
    base += "(exact)";
  }
  return base;
}

void StaticScalingPolicy::OnStart(const PolicyContext& ctx, SpeedController& speed) {
  auto point = StaticScalingPoint(*ctx.tasks, *ctx.machine, kind_, exact_rm_);
  if (!point.has_value()) {
    // Even full speed fails the test; run flat out — the real-time
    // guarantee is forfeit regardless of DVS, so do not make it worse.
    // Common for RM at high utilization (its test is only sufficient), so
    // log at debug level; the sweep harness reports misses explicitly.
    RTDVS_LOG(kDebug) << name() << ": task set fails schedulability even at "
                      << "maximum frequency; running at the maximum point";
    point = ctx.machine->max_point();
  }
  chosen_ = *point;
  RequestOperatingPoint(speed, chosen_);
}

}  // namespace rtdvs
