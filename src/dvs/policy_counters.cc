#include "src/dvs/policy_counters.h"

#include "src/util/json.h"

namespace rtdvs {

JsonValue PolicyCountersToJson(const PolicyCounters& c) {
  JsonValue doc = JsonValue::Object();
  doc.Set("speed_change_requests", c.speed_change_requests);
  doc.Set("speed_transitions", c.speed_transitions);
  doc.Set("slack_completions", c.slack_completions);
  doc.Set("slack_reclaimed_ms", c.slack_reclaimed_ms);
  doc.Set("deferral_decisions", c.deferral_decisions);
  doc.Set("work_deferred_ms", c.work_deferred_ms);
  doc.Set("utilization_samples", c.utilization_samples);
  doc.Set("utilization_sum", c.utilization_sum);
  doc.Set("migrations", c.migrations);
  doc.Set("admission_rejections", c.admission_rejections);
  return doc;
}

}  // namespace rtdvs
