// Interval-based, average-throughput DVS — the class of algorithms the
// paper argues CANNOT be used in real-time systems (§1, §2.2; Weiser et al.
// OSDI'94, Govil et al. MOBICOM'95, Pering & Brodersen ISLPED'98).
//
// Every `window_ms` the policy measures processor utilization over the past
// window, smooths it with an exponentially weighted moving average, and
// picks the lowest frequency that covers the predicted load. It tracks the
// average beautifully and saves energy, but knows nothing about deadlines —
// the camcorder example (examples/camcorder.cc) and the ablation bench show
// it missing deadlines that every RT-DVS policy meets.
#ifndef SRC_DVS_INTERVAL_POLICY_H_
#define SRC_DVS_INTERVAL_POLICY_H_

#include "src/dvs/policy.h"

namespace rtdvs {

struct IntervalPolicyOptions {
  // Length of the measurement/adjustment window.
  double window_ms = 20.0;
  // EWMA smoothing weight for the newest window's measured rate.
  double ewma_weight = 0.5;
  // Multiplicative headroom applied to the predicted rate before choosing a
  // frequency (1.0 = none, matching the naive schemes the paper critiques).
  double headroom = 1.0;
};

class IntervalPolicy : public DvsPolicy {
 public:
  explicit IntervalPolicy(IntervalPolicyOptions options);

  std::string name() const override { return "intervalDVS"; }
  // Paired with EDF so that any deadline misses are attributable to the
  // frequency choice, not to priority inversion.
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kEdf; }
  // Knows nothing about deadlines — misses are expected, not audit failures.
  bool guarantees_deadlines() const override { return false; }
  // Self-scheduled periodic wakeups are the whole algorithm.
  bool timer_driven() const override { return true; }

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override;
  std::optional<double> NextWakeupMs(const PolicyContext& ctx) override;
  void OnWakeup(const PolicyContext& ctx, SpeedController& speed) override;

 private:
  IntervalPolicyOptions options_;
  double next_wakeup_ms_ = 0;
  double last_window_work_ = 0;   // cumulative work at the last wakeup
  double predicted_rate_ = 1.0;   // EWMA of work per wall-ms
};

}  // namespace rtdvs

#endif  // SRC_DVS_INTERVAL_POLICY_H_
