// Per-policy decision counters (§4.1 of the paper counts "speed changes per
// second" per policy; these make that and the other interesting decision
// rates first-class data instead of something re-derived from traces).
//
// Every field is either an exact integer count or a sum of exactly
// representable simulation quantities, accumulated in a fixed order — so
// merged counters are bit-identical regardless of sweep parallelism.
#ifndef SRC_DVS_POLICY_COUNTERS_H_
#define SRC_DVS_POLICY_COUNTERS_H_

#include <cstdint>

namespace rtdvs {

struct PolicyCounters {
  // Every call into SpeedController::SetOperatingPoint routed through
  // DvsPolicy::RequestOperatingPoint, including no-op re-requests of the
  // current point.
  int64_t speed_change_requests = 0;
  // Requests whose target differed from the current operating point — the
  // transitions a real CPU would actually pay for (§4.1 overhead analysis).
  int64_t speed_transitions = 0;
  // ccEDF/ccRM: completed invocations that finished under their WCET, and
  // the total unused allowance (C_i - cc_i, in ms of work at max speed)
  // those completions handed back to the utilization estimate.
  int64_t slack_completions = 0;
  double slack_reclaimed_ms = 0;
  // laEDF: calls to the defer() step, and the total work it pushed past the
  // next deadline in the system (ms at max speed).
  int64_t deferral_decisions = 0;
  double work_deferred_ms = 0;
  // Utilization-estimate samples (any policy that recomputes a utilization
  // figure to pick a frequency), plus their sum for averaging.
  int64_t utilization_samples = 0;
  double utilization_sum = 0;
  // Multiprocessor observability (zero for uniprocessor runs). Migrations:
  // global-mode dispatches that moved a job off its last core. Admission
  // rejections: tasks the partitioner could not fit on any core.
  int64_t migrations = 0;
  int64_t admission_rejections = 0;

  void MergeFrom(const PolicyCounters& other) {
    speed_change_requests += other.speed_change_requests;
    speed_transitions += other.speed_transitions;
    slack_completions += other.slack_completions;
    slack_reclaimed_ms += other.slack_reclaimed_ms;
    deferral_decisions += other.deferral_decisions;
    work_deferred_ms += other.work_deferred_ms;
    utilization_samples += other.utilization_samples;
    utilization_sum += other.utilization_sum;
    migrations += other.migrations;
    admission_rejections += other.admission_rejections;
  }

  // This minus `base`, field-wise; the per-run delta when `base` was
  // snapshotted before the run (policies may be reused across runs).
  PolicyCounters DiffSince(const PolicyCounters& base) const {
    PolicyCounters d;
    d.speed_change_requests = speed_change_requests - base.speed_change_requests;
    d.speed_transitions = speed_transitions - base.speed_transitions;
    d.slack_completions = slack_completions - base.slack_completions;
    d.slack_reclaimed_ms = slack_reclaimed_ms - base.slack_reclaimed_ms;
    d.deferral_decisions = deferral_decisions - base.deferral_decisions;
    d.work_deferred_ms = work_deferred_ms - base.work_deferred_ms;
    d.utilization_samples = utilization_samples - base.utilization_samples;
    d.utilization_sum = utilization_sum - base.utilization_sum;
    d.migrations = migrations - base.migrations;
    d.admission_rejections = admission_rejections - base.admission_rejections;
    return d;
  }

  friend bool operator==(const PolicyCounters&, const PolicyCounters&) = default;
};

// Which PolicyCounters field a recorded mutation touched. Only the fields a
// uniprocessor policy callback can reach appear here: the MP-only fields
// (migrations, admission_rejections) are maintained by the cluster host, not
// by policy code, so they can never show up in a recorded effect stream.
enum class PolicyCounterField : uint8_t {
  kSpeedRequests,
  kSpeedTransitions,
  kSlackCompletions,
  kSlackReclaimedMs,
  kDeferralDecisions,
  kWorkDeferredMs,
  kUtilizationSamples,
  kUtilizationSum,
};

// One recorded counter mutation: integer fields always increment by exactly
// 1 (value is ignored on replay), double fields add `value`. The simulator's
// hyperperiod replay stores these per mutation — not per-window deltas —
// because floating-point addition is not associative: replaying the exact
// addend sequence is the only way the replayed sums stay bit-identical to
// the stepped path.
struct PolicyCounterEffect {
  PolicyCounterField field;
  double value = 0;
};

class JsonValue;

// One shared serialization for sweep cells, rtdvs-sim --json, and MP slice
// output — field order fixed here so every emitter is byte-compatible.
// Defined in src/dvs/policy_counters.cc.
JsonValue PolicyCountersToJson(const PolicyCounters& c);

}  // namespace rtdvs

#endif  // SRC_DVS_POLICY_COUNTERS_H_
