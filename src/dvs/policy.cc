#include "src/dvs/policy.h"

#include "src/dvs/cc_edf_policy.h"
#include "src/dvs/cc_rm_policy.h"
#include "src/dvs/interval_policy.h"
#include "src/dvs/la_edf_policy.h"
#include "src/dvs/no_dvs_policy.h"
#include "src/dvs/stat_edf_policy.h"
#include "src/dvs/static_scaling_policy.h"
#include "src/util/check.h"

namespace rtdvs {

double PolicyContext::EarliestDeadline() const {
  RTDVS_CHECK(!views.empty());
  double earliest = views.front().next_deadline_ms;
  for (const auto& view : views) {
    earliest = std::min(earliest, view.next_deadline_ms);
  }
  return earliest;
}

void DvsPolicy::OnIdle(const PolicyContext& ctx, SpeedController& speed) {
  if (lowers_speed_when_idle()) {
    RequestOperatingPoint(speed, ctx.machine->min_point());
  }
}

bool IsValidPolicyId(const std::string& id) {
  for (const char* valid : {"edf", "rm", "static_edf", "static_rm", "static_rm_exact",
                            "cc_edf", "cc_rm", "la_edf", "interval", "stat_edf"}) {
    if (id == valid) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<DvsPolicy> MakePolicy(const std::string& id) {
  if (id == "edf") {
    return std::make_unique<NoDvsPolicy>(SchedulerKind::kEdf);
  }
  if (id == "rm") {
    return std::make_unique<NoDvsPolicy>(SchedulerKind::kRm);
  }
  if (id == "static_edf") {
    return std::make_unique<StaticScalingPolicy>(SchedulerKind::kEdf);
  }
  if (id == "static_rm") {
    return std::make_unique<StaticScalingPolicy>(SchedulerKind::kRm);
  }
  if (id == "static_rm_exact") {
    // Ablation: exact response-time analysis instead of the paper's
    // sufficient ceiling test.
    return std::make_unique<StaticScalingPolicy>(SchedulerKind::kRm,
                                                 /*exact_rm=*/true);
  }
  if (id == "cc_edf") {
    return std::make_unique<CcEdfPolicy>();
  }
  if (id == "cc_rm") {
    return std::make_unique<CcRmPolicy>();
  }
  if (id == "la_edf") {
    return std::make_unique<LaEdfPolicy>();
  }
  if (id == "interval") {
    return std::make_unique<IntervalPolicy>(IntervalPolicyOptions{});
  }
  if (id == "stat_edf") {
    // §6 future-work extension: soft deadlines, default 95th percentile.
    return std::make_unique<StatEdfPolicy>(StatEdfOptions{});
  }
  RTDVS_CHECK(false) << "unknown policy id '" << id
                     << "'; expected edf|rm|static_edf|static_rm|static_rm_exact|"
                        "cc_edf|cc_rm|la_edf|interval|stat_edf";
  return nullptr;
}

const std::vector<std::string>& AllPaperPolicyIds() {
  static const std::vector<std::string> kIds = {
      "edf", "static_rm", "static_edf", "cc_edf", "cc_rm", "la_edf"};
  return kIds;
}

}  // namespace rtdvs
