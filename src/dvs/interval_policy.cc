#include "src/dvs/interval_policy.h"

#include "src/util/check.h"

namespace rtdvs {

IntervalPolicy::IntervalPolicy(IntervalPolicyOptions options) : options_(options) {
  RTDVS_CHECK_GT(options_.window_ms, 0.0);
  RTDVS_CHECK_GT(options_.ewma_weight, 0.0);
  RTDVS_CHECK_LE(options_.ewma_weight, 1.0);
  RTDVS_CHECK_GE(options_.headroom, 1.0);
}

void IntervalPolicy::OnStart(const PolicyContext& ctx, SpeedController& speed) {
  // Start at full speed, like a governor taking over a running system.
  RequestOperatingPoint(speed, ctx.machine->max_point());
  predicted_rate_ = ctx.machine->max_point().frequency;
  last_window_work_ = ctx.cumulative_work;
  next_wakeup_ms_ = ctx.now_ms + options_.window_ms;
}

std::optional<double> IntervalPolicy::NextWakeupMs(const PolicyContext& ctx) {
  (void)ctx;
  return next_wakeup_ms_;
}

void IntervalPolicy::OnWakeup(const PolicyContext& ctx, SpeedController& speed) {
  double window_work = ctx.cumulative_work - last_window_work_;
  last_window_work_ = ctx.cumulative_work;
  double measured_rate = window_work / options_.window_ms;
  predicted_rate_ = options_.ewma_weight * measured_rate +
                    (1.0 - options_.ewma_weight) * predicted_rate_;
  const double target = predicted_rate_ * options_.headroom;
  RecordUtilizationSample(target);
  RequestOperatingPoint(speed, ctx.machine->LowestPointAtLeastClamped(target));
  next_wakeup_ms_ = ctx.now_ms + options_.window_ms;
}

}  // namespace rtdvs
