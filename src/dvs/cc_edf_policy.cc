#include "src/dvs/cc_edf_policy.h"

#include <algorithm>

#include "src/util/check.h"

namespace rtdvs {

void CcEdfPolicy::OnStart(const PolicyContext& ctx, SpeedController& speed) {
  utilization_.assign(static_cast<size_t>(ctx.tasks->size()), 0.0);
  for (int id = 0; id < ctx.tasks->size(); ++id) {
    const Task& task = ctx.tasks->task(id);
    if (ctx.view(id).has_active_job) {
      utilization_[static_cast<size_t>(id)] = task.utilization();
    } else {
      // Between invocations at (re)start: charge the last known actual use,
      // exactly as if its completion had just been observed.
      utilization_[static_cast<size_t>(id)] =
          std::min(ctx.view(id).last_actual_work, task.wcet_ms) / task.period_ms;
    }
  }
  SelectFrequency(ctx, speed);
}

void CcEdfPolicy::OnTaskRelease(int task_id, const PolicyContext& ctx,
                                SpeedController& speed) {
  const Task& task = ctx.tasks->task(task_id);
  utilization_[static_cast<size_t>(task_id)] = task.utilization();
  SelectFrequency(ctx, speed);
}

void CcEdfPolicy::OnTaskCompletion(int task_id, const PolicyContext& ctx,
                                   SpeedController& speed) {
  const Task& task = ctx.tasks->task(task_id);
  // cc_i: the actual cycles consumed this invocation, capped at the
  // specified bound (a task must not gain budget by overrunning).
  double used = std::min(ctx.view(task_id).last_actual_work, task.wcet_ms);
  const double slack = task.wcet_ms - used;
  if (slack > 0) {
    RecordSlackReclaimed(slack);
  }
  utilization_[static_cast<size_t>(task_id)] = used / task.period_ms;
  SelectFrequency(ctx, speed);
}

double CcEdfPolicy::TotalTrackedUtilization() const {
  double total = 0;
  for (double u : utilization_) {
    total += u;
  }
  return total;
}

void CcEdfPolicy::SelectFrequency(const PolicyContext& ctx, SpeedController& speed) {
  const double utilization = TotalTrackedUtilization();
  RecordUtilizationSample(utilization);
  RequestOperatingPoint(speed, ctx.machine->LowestPointAtLeastClamped(utilization));
}

}  // namespace rtdvs
