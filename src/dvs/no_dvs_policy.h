// Plain EDF / RM with no voltage scaling: the processor always runs at the
// maximum operating point. The paper's non-energy-aware baselines.
#ifndef SRC_DVS_NO_DVS_POLICY_H_
#define SRC_DVS_NO_DVS_POLICY_H_

#include "src/dvs/policy.h"

namespace rtdvs {

class NoDvsPolicy : public DvsPolicy {
 public:
  explicit NoDvsPolicy(SchedulerKind kind) : kind_(kind) {}

  std::string name() const override { return SchedulerKindName(kind_); }
  SchedulerKind scheduler_kind() const override { return kind_; }
  // Stateless after OnStart: trivially safe to skip over whole windows.
  bool supports_time_skip() const override { return true; }

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override {
    RequestOperatingPoint(speed, ctx.machine->max_point());
  }

 private:
  SchedulerKind kind_;
};

}  // namespace rtdvs

#endif  // SRC_DVS_NO_DVS_POLICY_H_
