#include "src/dvs/stat_edf_policy.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/stats.h"
#include "src/util/strings.h"

namespace rtdvs {

StatEdfPolicy::StatEdfPolicy(StatEdfOptions options) : options_(options) {
  RTDVS_CHECK_GT(options_.percentile, 0.0);
  RTDVS_CHECK_LE(options_.percentile, 100.0);
  RTDVS_CHECK_GT(options_.history_window, 0);
  RTDVS_CHECK_GT(options_.min_samples, 0);
}

std::string StatEdfPolicy::name() const {
  return StrFormat("statEDF(p%g)", options_.percentile);
}

double StatEdfPolicy::EstimateFor(int task_id, const PolicyContext& ctx) const {
  const Task& task = ctx.tasks->task(task_id);
  const auto& samples = history_[static_cast<size_t>(task_id)];
  if (static_cast<int>(samples.size()) < options_.min_samples) {
    return task.wcet_ms;  // not enough evidence: hard-real-time behaviour
  }
  double estimate = Percentile(samples, options_.percentile);
  // Never budget above the specified worst case (the spec is authoritative)
  // nor below an executing invocation's own demand floor of > 0.
  return std::min(estimate, task.wcet_ms);
}

void StatEdfPolicy::OnStart(const PolicyContext& ctx, SpeedController& speed) {
  auto n = static_cast<size_t>(ctx.tasks->size());
  utilization_.assign(n, 0.0);
  history_.assign(n, {});
  history_next_.assign(n, 0);
  for (int id = 0; id < ctx.tasks->size(); ++id) {
    utilization_[static_cast<size_t>(id)] = ctx.tasks->task(id).utilization();
  }
  SelectFrequency(ctx, speed);
}

void StatEdfPolicy::OnTaskRelease(int task_id, const PolicyContext& ctx,
                                  SpeedController& speed) {
  const Task& task = ctx.tasks->task(task_id);
  utilization_[static_cast<size_t>(task_id)] =
      EstimateFor(task_id, ctx) / task.period_ms;
  SelectFrequency(ctx, speed);
}

void StatEdfPolicy::OnTaskCompletion(int task_id, const PolicyContext& ctx,
                                     SpeedController& speed) {
  const Task& task = ctx.tasks->task(task_id);
  double used = std::min(ctx.view(task_id).last_actual_work, task.wcet_ms);
  auto i = static_cast<size_t>(task_id);
  // Record the sample in the sliding window.
  if (static_cast<int>(history_[i].size()) < options_.history_window) {
    history_[i].push_back(used);
  } else {
    history_[i][static_cast<size_t>(history_next_[i])] = used;
    history_next_[i] = (history_next_[i] + 1) % options_.history_window;
  }
  utilization_[i] = used / task.period_ms;
  SelectFrequency(ctx, speed);
}

void StatEdfPolicy::SelectFrequency(const PolicyContext& ctx, SpeedController& speed) {
  double total = 0;
  for (int id = 0; id < ctx.tasks->size(); ++id) {
    auto i = static_cast<size_t>(id);
    const auto& view = ctx.view(id);
    double u = utilization_[i];
    // Insurance against estimate busts: an active invocation that has
    // already executed past its estimate is re-charged its full remaining
    // worst case so the overload cannot compound.
    if (view.has_active_job) {
      const Task& task = ctx.tasks->task(id);
      double charged = u * task.period_ms;
      if (view.executed_in_invocation >= charged) {
        u = (view.executed_in_invocation + view.worst_case_remaining) /
            task.period_ms;
      }
    }
    total += u;
  }
  RecordUtilizationSample(total);
  RequestOperatingPoint(speed, ctx.machine->LowestPointAtLeastClamped(total));
}

}  // namespace rtdvs
