// Statistical RT-DVS (the paper's §6 future direction: "we will investigate
// DVS with probabilistic or statistical deadline guarantees"; in the spirit
// of Gruian's stochastic-data DVS [8]).
//
// ccEDF charges a released task its full worst case C_i until it completes.
// statEDF instead charges an empirical percentile of the task's OBSERVED
// per-invocation computation history. With the 100th percentile (of a
// window that has seen the worst case) it behaves like ccEDF; with lower
// percentiles it runs slower and accepts a bounded, tunable risk that an
// unusually heavy invocation pushes instantaneous demand past capacity and
// a deadline slips — soft real-time, not hard.
//
// The miss risk is asymmetric insurance: when the estimate is exceeded the
// policy immediately re-charges the offending task its full worst case
// (observable as executed work overtaking the estimate at the next
// scheduling point), so a single surprise does not cascade.
#ifndef SRC_DVS_STAT_EDF_POLICY_H_
#define SRC_DVS_STAT_EDF_POLICY_H_

#include <vector>

#include "src/dvs/policy.h"

namespace rtdvs {

struct StatEdfOptions {
  // Percentile of the observed execution-time distribution used as the
  // per-task budget estimate, in (0, 100].
  double percentile = 95.0;
  // Sliding window of samples per task.
  int history_window = 64;
  // Use the full worst case until this many samples have been observed.
  int min_samples = 8;
};

class StatEdfPolicy : public DvsPolicy {
 public:
  explicit StatEdfPolicy(StatEdfOptions options);

  std::string name() const override;
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kEdf; }
  bool lowers_speed_when_idle() const override { return true; }
  // Soft real-time by design: accepts a bounded miss risk below the 100th
  // percentile, so the audit's RT oracle must not treat misses as bugs.
  bool guarantees_deadlines() const override { return false; }

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override;
  void OnTaskRelease(int task_id, const PolicyContext& ctx,
                     SpeedController& speed) override;
  void OnTaskCompletion(int task_id, const PolicyContext& ctx,
                        SpeedController& speed) override;

  // Current budget estimate for a task (for tests).
  double EstimateFor(int task_id, const PolicyContext& ctx) const;

 private:
  void SelectFrequency(const PolicyContext& ctx, SpeedController& speed);

  StatEdfOptions options_;
  std::vector<double> utilization_;                 // U_i
  std::vector<std::vector<double>> history_;        // ring buffers of work samples
  std::vector<int> history_next_;                   // ring cursor per task
};

}  // namespace rtdvs

#endif  // SRC_DVS_STAT_EDF_POLICY_H_
