#include "src/dvs/la_edf_policy.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {

void LaEdfPolicy::OnStart(const PolicyContext& ctx, SpeedController& speed) {
  auto n = static_cast<size_t>(ctx.tasks->size());
  c_left_.assign(n, 0.0);
  executed_snapshot_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    c_left_[i] = ctx.views[i].worst_case_remaining;
    executed_snapshot_[i] = ctx.views[i].cumulative_executed;
  }
  Defer(ctx, speed);
}

void LaEdfPolicy::OnTimeSkip(const PolicyContext& ctx) {
  // See CcRmPolicy::OnTimeSkip: c_left_ holds its window-invariant boundary
  // value, but the cumulative-executed baseline is absolute and must catch
  // up to the resume boundary.
  for (size_t i = 0; i < executed_snapshot_.size(); ++i) {
    executed_snapshot_[i] = ctx.views[i].cumulative_executed;
  }
}

void LaEdfPolicy::Sync(const PolicyContext& ctx) {
  for (size_t i = 0; i < c_left_.size(); ++i) {
    double delta = ctx.views[i].cumulative_executed - executed_snapshot_[i];
    if (delta > 0) {
      c_left_[i] = std::max(0.0, c_left_[i] - delta);
      executed_snapshot_[i] = ctx.views[i].cumulative_executed;
    }
  }
}

void LaEdfPolicy::OnTaskRelease(int task_id, const PolicyContext& ctx,
                                SpeedController& speed) {
  Sync(ctx);
  c_left_[static_cast<size_t>(task_id)] = ctx.tasks->task(task_id).wcet_ms;
  Defer(ctx, speed);
}

void LaEdfPolicy::OnTaskCompletion(int task_id, const PolicyContext& ctx,
                                   SpeedController& speed) {
  Sync(ctx);
  c_left_[static_cast<size_t>(task_id)] = 0.0;
  Defer(ctx, speed);
}

void LaEdfPolicy::Defer(const PolicyContext& ctx, SpeedController& speed) {
  const double d_next = ctx.EarliestDeadline();

  // Tasks in reverse-EDF order: latest deadline first.
  order_.resize(static_cast<size_t>(ctx.tasks->size()));
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&ctx](int a, int b) {
    return ctx.view(a).next_deadline_ms > ctx.view(b).next_deadline_ms;
  });

  double utilization = ctx.tasks->TotalUtilization();
  double must_run_now = 0;  // s: work that has to execute before d_next
  for (int id : order_) {
    auto i = static_cast<size_t>(id);
    utilization -= ctx.tasks->task(id).utilization();
    double slack_window = ctx.view(id).next_deadline_ms - d_next;
    double x;
    if (slack_window <= kTimeEpsMs) {
      // This task's deadline IS the next deadline: nothing can be deferred.
      x = c_left_[i];
    } else {
      // Defer as much as fits into (D_n, D_i] after reserving worst-case
      // bandwidth (utilization so far) for earlier-deadline tasks. The
      // min() guards the transient U > 1 case, where the unclamped formula
      // would schedule more than the task's remaining worst case.
      x = std::clamp(c_left_[i] - (1.0 - utilization) * slack_window, 0.0, c_left_[i]);
      utilization += (c_left_[i] - x) / slack_window;
    }
    must_run_now += x;
  }

  // Everything not forced before d_next was pushed past it by this defer
  // pass; total remaining work minus s is the deferred amount.
  const double total_left =
      std::accumulate(c_left_.begin(), c_left_.end(), 0.0);
  RecordDeferral(std::max(0.0, total_left - must_run_now));

  const double interval = d_next - ctx.now_ms;
  OperatingPoint point;
  if (interval <= kTimeEpsMs) {
    point = (must_run_now > kWorkEps) ? ctx.machine->max_point()
                                      : ctx.machine->min_point();
  } else {
    const double required_speed = must_run_now / interval;
    RecordUtilizationSample(required_speed);
    point = ctx.machine->LowestPointAtLeastClamped(required_speed);
  }
  RequestOperatingPoint(speed, point);
}

}  // namespace rtdvs
