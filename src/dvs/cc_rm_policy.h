// Cycle-conserving RT-DVS for RM schedulers (§2.4, Figures 5 and 6).
//
// Rather than re-running the (O(n^2)) RM schedulability test at every
// scheduling point, the algorithm paces execution against the worst-case
// statically-scaled RM schedule: as long as, by each deadline, every task
// has progressed at least as far as it would have in that worst-case
// schedule, all deadlines are met. Slack from early completions lowers the
// pace, and with it the frequency and voltage.
//
//   assume f_ss = frequency set by the static RM scaling algorithm
//   select_frequency():  s_m = max cycles until next deadline;
//                        use lowest f_i s.t. d_1+...+d_n <= (f_i/f_m)*s_m
//   upon task_release(T_i):    c_left_i = C_i;
//                              s = (f_ss/f_m) * s_m; allocate_cycles(s);
//                              select_frequency()
//   upon task_completion(T_i): c_left_i = 0; d_i = 0; select_frequency()
//   during task execution(T_i): decrement c_left_i and d_i
//   allocate_cycles(k): for tasks in RM (period) order:
//                         d_j = min(c_left_j, k); k -= d_j
#ifndef SRC_DVS_CC_RM_POLICY_H_
#define SRC_DVS_CC_RM_POLICY_H_

#include <vector>

#include "src/dvs/policy.h"

namespace rtdvs {

class CcRmPolicy : public DvsPolicy {
 public:
  std::string name() const override { return "ccRM"; }
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kRm; }
  bool lowers_speed_when_idle() const override { return true; }
  // c_left_ and d_ are rebuilt by the boundary release callbacks (c_left_i =
  // C_i, then a full allocate_cycles pass); only the cumulative-executed
  // baseline is an absolute snapshot, which OnTimeSkip resynchronizes.
  bool supports_time_skip() const override { return true; }
  void OnTimeSkip(const PolicyContext& ctx) override;

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override;
  void OnTaskRelease(int task_id, const PolicyContext& ctx,
                     SpeedController& speed) override;
  void OnTaskCompletion(int task_id, const PolicyContext& ctx,
                        SpeedController& speed) override;
  // Degraded mode stays at the maximum point, idle included.
  void OnIdle(const PolicyContext& ctx, SpeedController& speed) override;

  // For tests: the statically-scaled frequency this run paces against.
  double static_scale_frequency() const { return f_ss_; }
  // True when the set fails the RM test even at full speed and the policy
  // degraded to plain RM at the maximum point.
  bool degraded() const { return degraded_; }

 private:
  // Applies "during task execution: decrement c_left_i and d_i" by
  // differencing cumulative executed work since the last callback.
  void Sync(const PolicyContext& ctx);
  void AllocateCycles(const PolicyContext& ctx);
  void SelectFrequency(const PolicyContext& ctx, SpeedController& speed);

  double f_ss_ = 1.0;
  bool degraded_ = false;
  std::vector<double> c_left_;
  std::vector<double> d_;
  std::vector<double> executed_snapshot_;
};

}  // namespace rtdvs

#endif  // SRC_DVS_CC_RM_POLICY_H_
