// Cycle-conserving RT-DVS for EDF schedulers (§2.4, Figure 4).
//
//   select_frequency():        use lowest f_i such that U_1+...+U_n <= f_i/f_m
//   upon task_release(T_i):    U_i = C_i/P_i; select_frequency()
//   upon task_completion(T_i): U_i = cc_i/P_i; select_frequency()
//                              (cc_i = actual cycles used this invocation)
//
// While a task is between completion and its next release, its utilization
// contribution is the (usually much smaller) actual use, so the whole set's
// frequency can drop without violating the EDF utilization bound.
#ifndef SRC_DVS_CC_EDF_POLICY_H_
#define SRC_DVS_CC_EDF_POLICY_H_

#include <vector>

#include "src/dvs/policy.h"

namespace rtdvs {

class CcEdfPolicy : public DvsPolicy {
 public:
  std::string name() const override { return "ccEDF"; }
  SchedulerKind scheduler_kind() const override { return SchedulerKind::kEdf; }
  bool lowers_speed_when_idle() const override { return true; }
  // The only state is U_i per task, and the release callbacks that fire at
  // an all-task release boundary reset every entry to C_i/P_i — no absolute
  // snapshot survives a skip, so no OnTimeSkip override is needed.
  bool supports_time_skip() const override { return true; }

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override;
  void OnTaskRelease(int task_id, const PolicyContext& ctx,
                     SpeedController& speed) override;
  void OnTaskCompletion(int task_id, const PolicyContext& ctx,
                        SpeedController& speed) override;

  // Current utilization bookkeeping (for tests).
  double TotalTrackedUtilization() const;

 private:
  void SelectFrequency(const PolicyContext& ctx, SpeedController& speed);

  std::vector<double> utilization_;  // U_i, indexed by task id
};

}  // namespace rtdvs

#endif  // SRC_DVS_CC_EDF_POLICY_H_
