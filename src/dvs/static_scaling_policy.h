// Static voltage scaling (§2.3, Figure 1): select the lowest operating
// frequency at which the (scaled) EDF or RM schedulability test still admits
// the task set, set it once, and change it only when the task set changes.
#ifndef SRC_DVS_STATIC_SCALING_POLICY_H_
#define SRC_DVS_STATIC_SCALING_POLICY_H_

#include "src/dvs/policy.h"

namespace rtdvs {

class StaticScalingPolicy : public DvsPolicy {
 public:
  // exact_rm: use exact response-time analysis instead of the paper's
  // sufficient ceiling test when kind == kRm (ablation; the paper's
  // configuration is exact_rm = false).
  explicit StaticScalingPolicy(SchedulerKind kind, bool exact_rm = false);

  std::string name() const override;
  SchedulerKind scheduler_kind() const override { return kind_; }
  // The chosen point depends only on the task set, fixed at OnStart: safe
  // to skip over whole windows.
  bool supports_time_skip() const override { return true; }

  void OnStart(const PolicyContext& ctx, SpeedController& speed) override;

  // The frequency chosen at the last OnStart, for inspection in tests.
  const OperatingPoint& chosen_point() const { return chosen_; }

 private:
  SchedulerKind kind_;
  bool exact_rm_;
  OperatingPoint chosen_;
};

}  // namespace rtdvs

#endif  // SRC_DVS_STATIC_SCALING_POLICY_H_
