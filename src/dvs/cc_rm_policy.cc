#include "src/dvs/cc_rm_policy.h"

#include <algorithm>

#include "src/rt/schedulability.h"
#include "src/util/check.h"
#include "src/util/time_eps.h"

namespace rtdvs {

void CcRmPolicy::OnStart(const PolicyContext& ctx, SpeedController& speed) {
  auto n = static_cast<size_t>(ctx.tasks->size());
  c_left_.assign(n, 0.0);
  d_.assign(n, 0.0);
  executed_snapshot_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& view = ctx.views[i];
    c_left_[i] = view.worst_case_remaining;  // 0 for tasks between invocations
    executed_snapshot_[i] = view.cumulative_executed;
  }
  auto static_point = StaticScalingPoint(*ctx.tasks, *ctx.machine, SchedulerKind::kRm);
  // The pacing argument ("keep up with the worst-case statically-scaled RM
  // schedule") is only meaningful when such a schedule exists. If the set
  // fails the RM test even at full speed, degrade to plain RM at the
  // maximum point, exactly like the static algorithm does.
  degraded_ = !static_point.has_value();
  f_ss_ = degraded_ ? ctx.machine->max_point().frequency : static_point->frequency;
  if (degraded_) {
    RequestOperatingPoint(speed, ctx.machine->max_point());
    return;
  }
  AllocateCycles(ctx);
  SelectFrequency(ctx, speed);
}

void CcRmPolicy::OnTimeSkip(const PolicyContext& ctx) {
  // The skipped windows' callbacks were replayed as recorded effects, so
  // c_left_ / d_ already hold their window-invariant boundary values; only
  // the cumulative-executed baseline (absolute, monotone) must catch up or
  // the next Sync() would see the whole skipped span as fresh execution.
  for (size_t i = 0; i < executed_snapshot_.size(); ++i) {
    executed_snapshot_[i] = ctx.views[i].cumulative_executed;
  }
}

void CcRmPolicy::Sync(const PolicyContext& ctx) {
  for (size_t i = 0; i < c_left_.size(); ++i) {
    double delta = ctx.views[i].cumulative_executed - executed_snapshot_[i];
    if (delta > 0) {
      c_left_[i] = std::max(0.0, c_left_[i] - delta);
      d_[i] = std::max(0.0, d_[i] - delta);
      executed_snapshot_[i] = ctx.views[i].cumulative_executed;
    }
  }
}

void CcRmPolicy::OnTaskRelease(int task_id, const PolicyContext& ctx,
                               SpeedController& speed) {
  if (degraded_) {
    return;
  }
  Sync(ctx);
  c_left_[static_cast<size_t>(task_id)] = ctx.tasks->task(task_id).wcet_ms;
  AllocateCycles(ctx);
  SelectFrequency(ctx, speed);
}

void CcRmPolicy::OnTaskCompletion(int task_id, const PolicyContext& ctx,
                                  SpeedController& speed) {
  if (degraded_) {
    return;
  }
  Sync(ctx);
  // Whatever worst-case allowance the invocation did not consume is the
  // slack this completion hands back to the pacing budget (C_i - cc_i).
  const double slack = c_left_[static_cast<size_t>(task_id)];
  if (slack > 0) {
    RecordSlackReclaimed(slack);
  }
  c_left_[static_cast<size_t>(task_id)] = 0.0;
  d_[static_cast<size_t>(task_id)] = 0.0;
  SelectFrequency(ctx, speed);
}

void CcRmPolicy::OnIdle(const PolicyContext& ctx, SpeedController& speed) {
  if (!degraded_) {
    DvsPolicy::OnIdle(ctx, speed);
  }
}

void CcRmPolicy::AllocateCycles(const PolicyContext& ctx) {
  // Budget: the work the statically-scaled schedule would retire between now
  // and the next deadline in the system (s_m is in max-frequency work units,
  // so f_m = 1 after normalization).
  double budget = f_ss_ * std::max(0.0, ctx.EarliestDeadline() - ctx.now_ms);
  for (int id : ctx.tasks->IdsByPeriod()) {
    auto i = static_cast<size_t>(id);
    d_[i] = std::min(c_left_[i], budget);
    budget -= d_[i];
  }
}

void CcRmPolicy::SelectFrequency(const PolicyContext& ctx, SpeedController& speed) {
  double interval = ctx.EarliestDeadline() - ctx.now_ms;
  double pending = 0;
  for (double d : d_) {
    pending += d;
  }
  OperatingPoint point;
  if (interval <= kTimeEpsMs) {
    point = (pending > kWorkEps) ? ctx.machine->max_point() : ctx.machine->min_point();
  } else {
    const double utilization = pending / interval;
    RecordUtilizationSample(utilization);
    point = ctx.machine->LowestPointAtLeastClamped(utilization);
  }
  RequestOperatingPoint(speed, point);
}

}  // namespace rtdvs
