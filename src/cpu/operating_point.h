// A DVS operating point: a normalized clock frequency and its supply voltage.
#ifndef SRC_CPU_OPERATING_POINT_H_
#define SRC_CPU_OPERATING_POINT_H_

#include <string>

namespace rtdvs {

struct OperatingPoint {
  // Clock frequency normalized to the platform maximum (in (0, 1]).
  double frequency = 1.0;
  // Supply voltage in volts at this frequency.
  double voltage = 1.0;

  // CMOS switching energy per cycle scales with V^2 (Burd & Brodersen);
  // this returns the per-work-unit relative energy, where one work unit is
  // one millisecond of execution at the maximum frequency.
  double EnergyPerWorkUnit() const { return voltage * voltage; }

  // Power while executing, relative: cycles per wall-ms scale with f.
  double ActivePower() const { return frequency * voltage * voltage; }

  friend bool operator==(const OperatingPoint& a, const OperatingPoint& b) {
    return a.frequency == b.frequency && a.voltage == b.voltage;
  }

  std::string ToString() const;
};

}  // namespace rtdvs

#endif  // SRC_CPU_OPERATING_POINT_H_
