#include "src/cpu/machine_spec.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

namespace {
// Relative tolerance for matching a requested frequency against a table
// entry; absorbs rounding in utilization sums like 0.75 + 1e-16.
constexpr double kFreqTolerance = 1e-9;
}  // namespace

std::string OperatingPoint::ToString() const {
  return StrFormat("(f=%.4g, V=%.4g)", frequency, voltage);
}

MachineSpec::MachineSpec(std::string name, std::vector<OperatingPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  RTDVS_CHECK(!points_.empty()) << "machine spec needs at least one operating point";
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.frequency < b.frequency;
            });
  for (size_t i = 0; i < points_.size(); ++i) {
    RTDVS_CHECK_GT(points_[i].frequency, 0.0);
    RTDVS_CHECK_LE(points_[i].frequency, 1.0);
    RTDVS_CHECK_GT(points_[i].voltage, 0.0);
    if (i > 0) {
      RTDVS_CHECK_GT(points_[i].frequency, points_[i - 1].frequency)
          << "duplicate frequency in machine spec " << name_;
      RTDVS_CHECK_GE(points_[i].voltage, points_[i - 1].voltage)
          << "voltage must be non-decreasing with frequency in " << name_;
    }
  }
  RTDVS_CHECK(std::fabs(points_.back().frequency - 1.0) < kFreqTolerance)
      << "highest frequency must be normalized to 1.0 in " << name_;
  points_.back().frequency = 1.0;
}

std::optional<OperatingPoint> MachineSpec::LowestPointAtLeast(double frequency) const {
  for (const auto& point : points_) {
    if (point.frequency + kFreqTolerance >= frequency) {
      return point;
    }
  }
  return std::nullopt;
}

OperatingPoint MachineSpec::LowestPointAtLeastClamped(double frequency) const {
  auto point = LowestPointAtLeast(frequency);
  return point.has_value() ? *point : max_point();
}

size_t MachineSpec::IndexOf(const OperatingPoint& point) const {
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i] == point) {
      return i;
    }
  }
  RTDVS_CHECK(false) << "operating point " << point.ToString() << " not in machine "
                     << name_;
  return 0;
}

std::string MachineSpec::ToString() const {
  std::string out = name_ + ": ";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += points_[i].ToString();
  }
  return out;
}

MachineSpec MachineSpec::Machine0() {
  return MachineSpec("machine0", {{0.5, 3.0}, {0.75, 4.0}, {1.0, 5.0}});
}

MachineSpec MachineSpec::Machine1() {
  return MachineSpec("machine1", {{0.5, 3.0}, {0.75, 4.0}, {0.83, 4.5}, {1.0, 5.0}});
}

MachineSpec MachineSpec::Machine2() {
  return MachineSpec("machine2", {{0.36, 1.4},
                                  {0.55, 1.5},
                                  {0.64, 1.6},
                                  {0.73, 1.7},
                                  {0.82, 1.8},
                                  {0.91, 1.9},
                                  {1.0, 2.0}});
}

MachineSpec MachineSpec::K6TwoPointFour() {
  // 200, 300, 350, 400, 450 MHz run at 1.4 V; 500 and 550 MHz need 2.0 V.
  const double kMaxMhz = 550.0;
  std::vector<OperatingPoint> points;
  for (double mhz : {200.0, 300.0, 350.0, 400.0, 450.0}) {
    points.push_back({mhz / kMaxMhz, 1.4});
  }
  points.push_back({500.0 / kMaxMhz, 2.0});
  points.push_back({550.0 / kMaxMhz, 2.0});
  return MachineSpec("k6", std::move(points));
}

MachineSpec MachineSpec::UniformGrid(size_t n, double v_min, double v_max) {
  RTDVS_CHECK_GE(n, 1u);
  RTDVS_CHECK_LE(v_min, v_max);
  std::vector<OperatingPoint> points;
  points.reserve(n);
  const double f_min = 1.0 / static_cast<double>(n);
  for (size_t i = 1; i <= n; ++i) {
    double f = static_cast<double>(i) / static_cast<double>(n);
    double v = (n == 1) ? v_max : v_min + (v_max - v_min) * (f - f_min) / (1.0 - f_min);
    points.push_back({f, v});
  }
  return MachineSpec(StrFormat("grid%zu", n), std::move(points));
}

MachineSpec MachineSpec::ByName(const std::string& name) {
  if (name == "machine0") {
    return Machine0();
  }
  if (name == "machine1") {
    return Machine1();
  }
  if (name == "machine2") {
    return Machine2();
  }
  if (name == "k6") {
    return K6TwoPointFour();
  }
  RTDVS_CHECK(false) << "unknown machine '" << name
                     << "'; expected machine0|machine1|machine2|k6";
  return Machine0();
}

}  // namespace rtdvs
