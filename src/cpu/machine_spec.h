// The table of (frequency, voltage) settings available on a DVS platform.
//
// Mirrors the paper's "machine specification" input (§3.1): the software is
// given a table of operating frequencies and the matching regulator voltages.
// Includes the three simulated machines of §3.2 and the AMD K6-2+ platform
// of §4.1.
#ifndef SRC_CPU_MACHINE_SPEC_H_
#define SRC_CPU_MACHINE_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "src/cpu/operating_point.h"

namespace rtdvs {

class MachineSpec {
 public:
  // Points may be passed in any order; they are sorted by frequency.
  // Requirements: nonempty, frequencies strictly increasing after sort and
  // in (0, 1], the highest frequency must be exactly 1.0, voltages positive
  // and non-decreasing with frequency.
  MachineSpec(std::string name, std::vector<OperatingPoint> points);

  const std::string& name() const { return name_; }
  const std::vector<OperatingPoint>& points() const { return points_; }
  size_t num_points() const { return points_.size(); }
  const OperatingPoint& min_point() const { return points_.front(); }
  const OperatingPoint& max_point() const { return points_.back(); }

  // Lowest operating point whose frequency is >= the requested (normalized)
  // frequency, with a relative tolerance so that a computed requirement of
  // 0.7500000001 still selects the 0.75 setting. Returns nullopt when the
  // request exceeds the maximum frequency beyond tolerance.
  std::optional<OperatingPoint> LowestPointAtLeast(double frequency) const;

  // As above but saturates at the maximum point instead of failing; this is
  // what a governor does when a transient demand overshoots capacity.
  OperatingPoint LowestPointAtLeastClamped(double frequency) const;

  // Index of an exact point, for frequency-residency histograms.
  size_t IndexOf(const OperatingPoint& point) const;

  std::string ToString() const;

  // --- The paper's machine specifications ---
  // machine 0: (0.5, 3), (0.75, 4), (1.0, 5)
  static MachineSpec Machine0();
  // machine 1: machine 0 plus (0.83, 4.5)
  static MachineSpec Machine1();
  // machine 2: 7 points, (0.36, 1.4) ... (1.0, 2.0) — AMD PowerNow!-like
  static MachineSpec Machine2();
  // The HP N3350 / AMD K6-2+ prototype (§4.1): PLL steps 200..550 MHz
  // (50 MHz increments, skipping 250), 1.4 V up to 450 MHz, 2.0 V above;
  // frequencies normalized to 550 MHz.
  static MachineSpec K6TwoPointFour();
  // Ablation helper: n evenly spaced frequencies in (0, 1] with voltage
  // linear between v_min at the lowest point and v_max at 1.0.
  static MachineSpec UniformGrid(size_t n, double v_min, double v_max);
  // Lookup by name ("machine0", "machine1", "machine2", "k6"); aborts on
  // unknown names listing the valid ones.
  static MachineSpec ByName(const std::string& name);

 private:
  std::string name_;
  std::vector<OperatingPoint> points_;
};

}  // namespace rtdvs

#endif  // SRC_CPU_MACHINE_SPEC_H_
