// Energy accounting for the simulated processor (§3.1 of the paper).
//
// Model: a constant quantum of energy per cycle, scaled by V^2 (CMOS).
// Work is measured in "milliseconds of execution at maximum frequency", so
// executing work w at operating point (f, V) takes w/f wall-milliseconds and
// dissipates w * V^2 * coefficient. A halted (idle) wall-millisecond at
// (f, V) burns f idle cycles, each at idle_level times the energy of a
// normal cycle: t * f * V^2 * idle_level * coefficient.
#ifndef SRC_CPU_ENERGY_MODEL_H_
#define SRC_CPU_ENERGY_MODEL_H_

#include "src/cpu/operating_point.h"

namespace rtdvs {

class EnergyModel {
 public:
  // idle_level: ratio of halted-cycle energy to active-cycle energy
  // (0 = perfect software-controlled halt, 1 = halt saves nothing).
  // coefficient: joules (or arbitrary units) per work-unit at 1 V.
  explicit EnergyModel(double idle_level = 0.0, double coefficient = 1.0);

  double idle_level() const { return idle_level_; }
  double coefficient() const { return coefficient_; }

  // Energy to execute `work` work-units at `point`.
  double ExecutionEnergy(double work, const OperatingPoint& point) const {
    return work * point.EnergyPerWorkUnit() * coefficient_;
  }

  // Energy dissipated while halted for `wall_ms` at `point`.
  double IdleEnergy(double wall_ms, const OperatingPoint& point) const {
    return wall_ms * point.frequency * point.EnergyPerWorkUnit() * idle_level_ *
           coefficient_;
  }

  // Instantaneous power (energy per wall-ms) in the two states.
  double ActivePower(const OperatingPoint& point) const {
    return point.ActivePower() * coefficient_;
  }
  double IdlePower(const OperatingPoint& point) const {
    return point.ActivePower() * idle_level_ * coefficient_;
  }

 private:
  double idle_level_;
  double coefficient_;
};

}  // namespace rtdvs

#endif  // SRC_CPU_ENERGY_MODEL_H_
