// Theoretical lower bound on execution energy (§3.2 of the paper).
//
// "It is computed by taking the total number of task computation cycles in
// the simulation, and determining the absolute minimum energy with which
// these can be executed over the simulation time duration with the given
// platform frequency and voltage specification."
//
// Formally: minimize sum_j w_j * V_j^2 subject to sum_j w_j = W and
// sum_j w_j / f_j <= T, w_j >= 0 — a two-constraint LP whose optimum lies at
// a basic solution using at most two operating points. We enumerate all
// single points and pairs, which is exact and trivially fast for the <= 8
// point tables real platforms have.
#ifndef SRC_CPU_LOWER_BOUND_H_
#define SRC_CPU_LOWER_BOUND_H_

#include "src/cpu/energy_model.h"
#include "src/cpu/machine_spec.h"

namespace rtdvs {

// Returns the minimum energy to execute total_work work-units within
// horizon_ms wall-milliseconds on `machine` (idle assumed free, matching the
// paper's bound). If the workload is infeasible even at full speed
// (total_work > horizon), the bound is the cost of running everything at the
// maximum point — still a valid lower bound on whatever any schedule does.
double MinimumExecutionEnergy(double total_work, double horizon_ms,
                              const MachineSpec& machine,
                              const EnergyModel& energy = EnergyModel());

// The energy-optimal frequency mix is sometimes useful for reporting: the
// two points and the work split the LP chose.
struct EnergyOptimalMix {
  OperatingPoint low;
  OperatingPoint high;
  double work_at_low = 0;
  double work_at_high = 0;
  double energy = 0;
};

EnergyOptimalMix MinimumExecutionEnergyMix(double total_work, double horizon_ms,
                                           const MachineSpec& machine,
                                           const EnergyModel& energy = EnergyModel());

}  // namespace rtdvs

#endif  // SRC_CPU_LOWER_BOUND_H_
