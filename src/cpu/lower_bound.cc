#include "src/cpu/lower_bound.h"

#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace rtdvs {

EnergyOptimalMix MinimumExecutionEnergyMix(double total_work, double horizon_ms,
                                           const MachineSpec& machine,
                                           const EnergyModel& energy) {
  RTDVS_CHECK_GE(total_work, 0.0);
  RTDVS_CHECK_GT(horizon_ms, 0.0);
  const auto& points = machine.points();

  EnergyOptimalMix best;
  best.energy = std::numeric_limits<double>::infinity();

  auto consider = [&](const OperatingPoint& lo, const OperatingPoint& hi, double w_lo,
                      double w_hi) {
    if (w_lo < 0 || w_hi < 0) {
      return;
    }
    double cost = energy.ExecutionEnergy(w_lo, lo) + energy.ExecutionEnergy(w_hi, hi);
    if (cost < best.energy) {
      best = EnergyOptimalMix{lo, hi, w_lo, w_hi, cost};
    }
  };

  // Single-point candidates: all work at one frequency, feasible if it fits
  // in the horizon.
  for (const auto& p : points) {
    if (total_work <= horizon_ms * p.frequency * (1.0 + 1e-12)) {
      consider(p, p, 0.0, total_work);
    }
  }

  // Two-point candidates: the time constraint tight.
  //   w_lo + w_hi = W,  w_lo/f_lo + w_hi/f_hi = T
  // => w_hi = f_hi * (W - T*f_lo) / (f_hi - f_lo)
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const auto& lo = points[i];
      const auto& hi = points[j];
      double w_hi =
          hi.frequency * (total_work - horizon_ms * lo.frequency) / (hi.frequency - lo.frequency);
      double w_lo = total_work - w_hi;
      consider(lo, hi, w_lo, w_hi);
    }
  }

  if (!std::isfinite(best.energy)) {
    // Infeasible even at full speed; the cheapest conceivable execution of
    // this many cycles still pays max-point energy per cycle at best.
    const auto& p = machine.max_point();
    best = EnergyOptimalMix{p, p, 0.0, total_work, energy.ExecutionEnergy(total_work, p)};
  }
  return best;
}

double MinimumExecutionEnergy(double total_work, double horizon_ms,
                              const MachineSpec& machine, const EnergyModel& energy) {
  return MinimumExecutionEnergyMix(total_work, horizon_ms, machine, energy).energy;
}

}  // namespace rtdvs
