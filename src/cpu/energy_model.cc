#include "src/cpu/energy_model.h"

#include "src/util/check.h"

namespace rtdvs {

EnergyModel::EnergyModel(double idle_level, double coefficient)
    : idle_level_(idle_level), coefficient_(coefficient) {
  RTDVS_CHECK_GE(idle_level_, 0.0);
  RTDVS_CHECK_LE(idle_level_, 1.0);
  RTDVS_CHECK_GT(coefficient_, 0.0);
}

}  // namespace rtdvs
