#include "src/util/table.h"

#include <algorithm>
#include <cctype>

#include "src/util/check.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace rtdvs {

std::string FormatDouble(double value, int precision) {
  std::string text = StrFormat("%.*f", precision, value);
  if (text.find('.') != std::string::npos) {
    size_t last = text.find_last_not_of('0');
    if (text[last] == '.') {
      --last;
    }
    text.erase(last + 1);
  }
  return text;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  RTDVS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    cells.push_back(FormatDouble(v, precision));
  }
  AddRow(std::move(cells));
}

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E' && c != 'n' && c != 'a') {  // allow nan
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out << "  ";
      }
      const std::string& cell = row[i];
      size_t pad = widths[i] - cell.size();
      if (LooksNumeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
    }
    out << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

JsonValue TextTable::ToJson() const {
  JsonValue doc = JsonValue::Object();
  JsonValue& header = doc.Set("header", JsonValue::Array());
  for (const auto& cell : header_) header.Append(cell);
  JsonValue& rows = doc.Set("rows", JsonValue::Array());
  for (const auto& row : rows_) {
    JsonValue& out_row = rows.Append(JsonValue::Array());
    for (const auto& cell : row) out_row.Append(cell);
  }
  return doc;
}

void TextTable::PrintCsv(std::ostream& out, const std::string& prefix) const {
  auto emit = [&](const std::vector<std::string>& row) {
    out << prefix;
    for (const auto& cell : row) {
      out << "," << cell;
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace rtdvs
