#include "src/util/provenance.h"

#include <unistd.h>

#include <string>
#include <thread>

#include "src/util/json.h"

// The build system stamps these; fall back to "unknown" so a hand-rolled
// compile (or a source tarball without .git) still produces a valid
// document rather than a build error.
#ifndef RTDVS_GIT_SHA
#define RTDVS_GIT_SHA "unknown"
#endif
#ifndef RTDVS_BUILD_TYPE
#define RTDVS_BUILD_TYPE "unknown"
#endif
#ifndef RTDVS_SANITIZE_FLAGS
#define RTDVS_SANITIZE_FLAGS "none"
#endif

namespace rtdvs {

JsonValue ProvenanceJson() {
  JsonValue out = JsonValue::Object();
  out.Set("git_sha", RTDVS_GIT_SHA);
  char host[256] = "unknown";
  if (gethostname(host, sizeof(host)) != 0) {
    host[0] = '\0';
  }
  host[sizeof(host) - 1] = '\0';
  out.Set("hostname", std::string(host[0] ? host : "unknown"));
  out.Set("hardware_concurrency",
          static_cast<int64_t>(std::thread::hardware_concurrency()));
  out.Set("build_type", RTDVS_BUILD_TYPE);
  out.Set("sanitize", RTDVS_SANITIZE_FLAGS);
  return out;
}

}  // namespace rtdvs
