// A minimal, dependency-free JSON value with a writer and a strict parser.
//
// Grown for the observability layer: the Chrome-trace exporter and the
// bench --json emitters build documents through this type, the CI validator
// and the golden tests parse them back. Object keys keep insertion order so
// emitted documents are byte-stable across runs — a requirement for golden
// tests and for diffing BENCH_*.json files between commits.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtdvs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}            // NOLINT
  JsonValue(int value) : kind_(Kind::kInt), int_(value) {}               // NOLINT
  JsonValue(int64_t value) : kind_(Kind::kInt), int_(value) {}           // NOLINT
  JsonValue(uint64_t value)                                              // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}      // NOLINT
  JsonValue(std::string value)                                           // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }

  // Scalar accessors; aborting on a kind mismatch keeps test code terse.
  bool AsBool() const;
  int64_t AsInt() const;          // also accepts an integral double
  double AsDouble() const;        // accepts kInt
  const std::string& AsString() const;

  // Array interface.
  JsonValue& Append(JsonValue value);  // returns the appended element
  size_t size() const;                 // array or object element count
  const JsonValue& at(size_t index) const;
  const std::vector<JsonValue>& items() const { return array_; }

  // Object interface (insertion-ordered; Set on an existing key overwrites
  // in place, preserving the original position).
  JsonValue& Set(std::string key, JsonValue value);  // returns the stored value
  const JsonValue* Find(std::string_view key) const;
  // Find + abort if missing: doc.Get("rows").at(0).Get("policy").AsString().
  const JsonValue& Get(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& entries() const {
    return object_;
  }

  // Serialization. indent < 0: compact single line; indent >= 0: pretty-print
  // with that many spaces per level. Doubles use the shortest representation
  // that round-trips; NaN/Inf (not representable in JSON) emit null.
  void Write(std::ostream& out, int indent = -1) const;
  std::string ToString(int indent = -1) const;

  // Strict parser: exactly one JSON value followed by whitespace. On failure
  // returns nullopt and, when `error` is non-null, a message with the byte
  // offset of the problem.
  static std::optional<JsonValue> Parse(std::string_view text,
                                        std::string* error = nullptr);

 private:
  void WriteIndented(std::ostream& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Writes `value` to `path` with a trailing newline; returns false (and logs
// nothing) on I/O failure so CLI callers can report the path themselves.
bool WriteJsonFile(const JsonValue& value, const std::string& path,
                   int indent = 1);

}  // namespace rtdvs

#endif  // SRC_UTIL_JSON_H_
