#include "src/util/random.h"

namespace rtdvs {

size_t Pcg32::WeightedIndex(const std::vector<double>& weights) {
  RTDVS_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    RTDVS_CHECK_GE(w, 0.0);
    total += w;
  }
  RTDVS_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace rtdvs
