// Streaming and batch summary statistics used by the benchmark harnesses.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace rtdvs {

// Welford's online algorithm: numerically stable mean/variance without
// storing samples. Used for per-sweep-point aggregation across task sets.
class RunningStats {
 public:
  void Add(double sample);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Linear-interpolated percentile (p in [0,100]) of a sample vector.
// The input is copied and sorted; intended for end-of-run reporting.
double Percentile(std::vector<double> samples, double p);

}  // namespace rtdvs

#endif  // SRC_UTIL_STATS_H_
