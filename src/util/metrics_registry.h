// A lightweight counter/histogram registry for the observability layer.
//
// Design constraints, in order:
//   deterministic — snapshots iterate in lexicographic name order, so any
//     serialization (JSON, logs) is byte-stable across runs and platforms;
//   mergeable     — sweep shards each record into a private registry and the
//     harness merges snapshots in serial grid order, keeping aggregate
//     counters bit-identical for every --jobs value;
//   allocation-cheap — hot paths hold a Counter*/Histogram* handle resolved
//     once by name; recording a sample is an integer bump, never a lookup.
//
// Not thread-safe by design: one registry per shard/thread, merge after.
#ifndef SRC_UTIL_METRICS_REGISTRY_H_
#define SRC_UTIL_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rtdvs {

class JsonValue;

// A monotonically increasing named count.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  int64_t value_ = 0;
};

// A fixed-bucket histogram: `bounds` are inclusive upper bucket edges, plus
// an implicit overflow bucket. Fixed buckets keep Record() O(log buckets),
// make merges exact (bucket-wise integer adds), and make percentile
// estimates deterministic functions of the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  // `count` buckets whose edges grow geometrically from `start` by `factor`
  // — the standard latency shape (e.g. 1us..10s at 2x).
  static Histogram Exponential(double start, double factor, int count);

  void Record(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Linear interpolation within the owning bucket; p in [0, 100]. The
  // overflow bucket reports the observed max. 0 when empty.
  double ValueAtPercentile(double p) const;

  // Bucket-wise add; aborts if bucket edges differ.
  void MergeFrom(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<int64_t>& bucket_counts() const { return buckets_; }

 private:
  std::vector<double> bounds_;    // ascending upper edges
  std::vector<int64_t> buckets_;  // bounds_.size() + 1 (overflow last)
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  // Handles are stable for the registry's lifetime (node-based storage).
  Counter* GetCounter(const std::string& name);
  // Creates with `bounds` on first use; later calls return the existing
  // histogram (bounds argument ignored then).
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  // Convenience one-shot forms for cold paths.
  void Increment(const std::string& name, int64_t delta = 1);

  // A snapshot is plain data, ordered by name: merge/diff/serialize freely.
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, Histogram> histograms;

    // Adds `other` into this snapshot (counters add; histograms merge
    // bucket-wise; names only in `other` are copied in).
    void MergeFrom(const Snapshot& other);

    // Counters as this - other (names missing in `other` count as 0).
    // Histograms are not diffed — they are omitted from the result.
    Snapshot DiffFrom(const Snapshot& other) const;

    bool CountersEqual(const Snapshot& other) const;

    // {"counters": {...}, "histograms": {name: {count, mean, p50, p95,
    // p99, max}}} — name-ordered, hence byte-stable.
    JsonValue ToJson() const;
  };

  Snapshot TakeSnapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rtdvs

#endif  // SRC_UTIL_METRICS_REGISTRY_H_
