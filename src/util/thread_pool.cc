#include "src/util/thread_pool.h"

#include <algorithm>

namespace rtdvs {

int ThreadPool::DefaultNumThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    const auto started = std::chrono::steady_clock::now();
    task.fn();  // exceptions are captured by the packaged_task wrapper
    if (observer_) {
      using Ms = std::chrono::duration<double, std::milli>;
      const auto finished = std::chrono::steady_clock::now();
      observer_(Ms(started - task.enqueued).count(),
                Ms(finished - started).count());
    }
  }
}

}  // namespace rtdvs
