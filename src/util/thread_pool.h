// A fixed-size worker pool with futures-based submission.
//
// Deliberately minimal — no work stealing, no priorities, no resizing: tasks
// are executed in FIFO submission order by whichever worker frees up first.
// The sweep engine (src/core/sweep.cc) relies only on Submit() returning a
// std::future, so determinism is the *caller's* job: shard the work so each
// task is independent, then merge results in a fixed order.
//
// Exceptions thrown by a task are captured in its future (via
// std::packaged_task) and rethrow from future::get() on the caller's thread.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rtdvs {

class ThreadPool {
 public:
  // Starts `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  // Per-task timing hook: called once per completed task, from the worker
  // thread that ran it, with the time the task spent queued and the time it
  // spent executing. Set it before the first Submit and do not change it
  // while tasks are in flight; the observer itself must be thread-safe
  // (concurrent workers finish concurrently). Used by the sweep engine to
  // build SweepResult::profile.
  void SetTaskObserver(
      std::function<void(double queue_wait_ms, double run_ms)> observer) {
    observer_ = std::move(observer);
  }

  // Drains nothing: joins after finishing every task already submitted.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `f` and returns a future for its result. If `f` throws, the
  // exception is delivered by the future's get().
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push({[task] { (*task)(); }, std::chrono::steady_clock::now()});
    }
    wake_.notify_one();
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // The machine's hardware concurrency, floored at 1 (the standard permits
  // hardware_concurrency() == 0 when unknowable).
  static int DefaultNumThreads();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::function<void(double, double)> observer_;
};

}  // namespace rtdvs

#endif  // SRC_UTIL_THREAD_POOL_H_
