// Central tolerance policy for simulated time and work arithmetic.
//
// The simulator keeps time in double-precision milliseconds. Periods are
// generated on a 1 microsecond grid (exactly representable), but completion
// times divide remaining work by a frequency, so comparisons at scheduling
// points must tolerate rounding on the order of a few ULPs of the simulated
// horizon. kTimeEpsMs = 1e-9 ms = 1 femtosecond-ish slack at millisecond
// scale: far below any real scheduling quantum yet far above accumulated
// double error for horizons of minutes.
#ifndef SRC_UTIL_TIME_EPS_H_
#define SRC_UTIL_TIME_EPS_H_

#include <cmath>

namespace rtdvs {

inline constexpr double kTimeEpsMs = 1e-9;
// Work is measured in "milliseconds of execution at maximum frequency".
inline constexpr double kWorkEps = 1e-9;

inline bool ApproxEq(double a, double b, double eps = kTimeEpsMs) {
  return std::fabs(a - b) <= eps;
}
inline bool ApproxLe(double a, double b, double eps = kTimeEpsMs) { return a <= b + eps; }
inline bool ApproxGe(double a, double b, double eps = kTimeEpsMs) { return a + eps >= b; }
inline bool ApproxLt(double a, double b, double eps = kTimeEpsMs) { return a < b - eps; }
inline bool ApproxGt(double a, double b, double eps = kTimeEpsMs) { return a > b + eps; }

// Clamps tiny negative values (rounding residue) to zero; aborts on values
// that are genuinely negative, which would indicate an accounting bug.
double ClampTinyNegative(double value, double eps = kWorkEps);

}  // namespace rtdvs

#endif  // SRC_UTIL_TIME_EPS_H_
