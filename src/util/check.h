// Lightweight invariant-checking macros.
//
// RTDVS_CHECK is always on (including release builds): simulator state
// corruption must abort rather than silently produce bogus energy numbers.
// RTDVS_DCHECK compiles out in NDEBUG builds and is meant for hot paths.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rtdvs {

[[noreturn]] inline void FatalError(const char* file, int line, const char* expr,
                                    const std::string& message) {
  std::fprintf(stderr, "FATAL %s:%d: CHECK failed: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream-capture helper so call sites can write RTDVS_CHECK(x) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { FatalError(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace rtdvs

#define RTDVS_CHECK(condition)                                         \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::rtdvs::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define RTDVS_CHECK_OP(lhs, op, rhs) \
  RTDVS_CHECK((lhs)op(rhs)) << " (" << (lhs) << " vs " << (rhs) << ") "
#define RTDVS_CHECK_EQ(lhs, rhs) RTDVS_CHECK_OP(lhs, ==, rhs)
#define RTDVS_CHECK_NE(lhs, rhs) RTDVS_CHECK_OP(lhs, !=, rhs)
#define RTDVS_CHECK_LE(lhs, rhs) RTDVS_CHECK_OP(lhs, <=, rhs)
#define RTDVS_CHECK_LT(lhs, rhs) RTDVS_CHECK_OP(lhs, <, rhs)
#define RTDVS_CHECK_GE(lhs, rhs) RTDVS_CHECK_OP(lhs, >=, rhs)
#define RTDVS_CHECK_GT(lhs, rhs) RTDVS_CHECK_OP(lhs, >, rhs)

#ifdef NDEBUG
#define RTDVS_DCHECK(condition) RTDVS_CHECK(true || (condition))
#else
#define RTDVS_DCHECK(condition) RTDVS_CHECK(condition)
#endif

#endif  // SRC_UTIL_CHECK_H_
