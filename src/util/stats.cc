#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace rtdvs {

void RunningStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (count_ < 2) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double Percentile(std::vector<double> samples, double p) {
  RTDVS_CHECK(!samples.empty());
  RTDVS_CHECK_GE(p, 0.0);
  RTDVS_CHECK_LE(p, 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples[0];
  }
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace rtdvs
