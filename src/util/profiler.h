// Low-overhead hierarchical scoped profiler for the engine's hot seams.
//
// Usage: drop RTDVS_PROF_SCOPE("engine/event_queue/pop") at the top of a
// scope. The span is a no-op (one relaxed atomic load and a predicted-
// not-taken branch, ~1 ns) unless profiling was enabled — via
// SimOptions::profile, SweepOptions::profile, or a tool's --profile flag,
// all of which call Profiler::Enable(). tests/util/profiler_test.cc
// measures that disabled cost and asserts the end-to-end overhead bound
// (span hits per run x disabled cost <= 2% of the run).
//
// Concurrency model (TSan-clean by construction):
//   * every thread records into its own thread-local log — span entry/exit
//     touches no shared state;
//   * Profiler::FlushThisThread() folds the local log into the global
//     accumulator under a mutex. Simulator::Run() and every sweep shard
//     flush at the end, so worker-thread samples are never lost when the
//     pool retires a thread;
//   * Profiler::Drain() (main thread, after the pool joined) returns the
//     accumulated snapshot and clears it for the next run.
//
// Aggregation is by span name into the MetricsRegistry Histogram type
// (shared exponential bucket layout, so snapshots merge exactly). Span
// names are expected to be string literals: the thread-local fast path is
// keyed by the literal's address, and equal names from different call
// sites merge at flush time.
//
// Determinism note: span COUNTS for a deterministic workload are
// deterministic and name order is lexicographic; the recorded durations
// are wall-clock measurements and vary run to run — diagnostics, not
// results.
#ifndef SRC_UTIL_PROFILER_H_
#define SRC_UTIL_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "src/util/metrics_registry.h"

namespace rtdvs {

class JsonValue;

// Aggregated statistics for one span name. total_ms is inclusive (children
// counted); child_ms is the part spent inside nested spans, so
// self_ms() = total_ms - child_ms is the span's own cost.
struct ProfileSpanStats {
  int64_t count = 0;
  double total_ms = 0;
  double child_ms = 0;
  double max_ms = 0;
  Histogram hist;  // per-call duration (ms), shared exponential buckets

  ProfileSpanStats();
  double self_ms() const { return total_ms - child_ms; }
  void MergeFrom(const ProfileSpanStats& other);
};

// A plain-data aggregation over span names, lexicographically ordered.
struct ProfileSnapshot {
  std::map<std::string, ProfileSpanStats> spans;

  bool empty() const { return spans.empty(); }
  void MergeFrom(const ProfileSnapshot& other);
  // {"span/name": {count, total_ms, self_ms, mean_ms, p50_ms, p95_ms,
  //  max_ms}, ...} — name-ordered, hence byte-stable apart from the timing
  // values themselves.
  JsonValue ToJson() const;
  // Folds every span into `registry` as counter "profile/<name>/count" and
  // histogram "profile/<name>/ms".
  void ToRegistry(MetricsRegistry* registry) const;
};

class Profiler {
 public:
  // Process-global switch; spans check it with a relaxed load. Enable is
  // idempotent and safe to call from concurrent shards.
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool IsEnabled() { return enabled_.load(std::memory_order_relaxed); }

  // Folds this thread's local log into the global accumulator and clears
  // the local log. Cheap no-op when the thread recorded nothing. Callers:
  // end of Simulator::Run, end of each sweep shard, and any driver about
  // to Drain() on the same thread it recorded on.
  static void FlushThisThread();

  // Returns the accumulated snapshot and clears it. Call from the driver
  // after worker threads have flushed (e.g. after the sweep pool joined);
  // flushes the calling thread first for the single-threaded case.
  static ProfileSnapshot Drain();

  // Drops everything recorded so far (global and this thread).
  static void Reset();

 private:
  friend class ProfScope;
  static void SpanStart(const char* name);
  static void SpanFinish();

  static std::atomic<bool> enabled_;
};

// RAII span. Construction/destruction compile to a flag check when
// profiling is disabled; the slow paths live in profiler.cc.
class ProfScope {
 public:
  explicit ProfScope(const char* name) {
    if (Profiler::IsEnabled()) [[unlikely]] {
      active_ = true;
      Profiler::SpanStart(name);
    }
  }
  ~ProfScope() {
    if (active_) [[unlikely]] {
      Profiler::SpanFinish();
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool active_ = false;
};

#define RTDVS_PROF_CONCAT_INNER(a, b) a##b
#define RTDVS_PROF_CONCAT(a, b) RTDVS_PROF_CONCAT_INNER(a, b)
// `name` must be a string literal (or otherwise outlive the profiler): the
// fast path keys on the pointer, and the flush keeps the pointer until the
// name is copied into the snapshot.
#define RTDVS_PROF_SCOPE(name) \
  ::rtdvs::ProfScope RTDVS_PROF_CONCAT(rtdvs_prof_scope_, __LINE__)(name)

}  // namespace rtdvs

#endif  // SRC_UTIL_PROFILER_H_
