// PCG32 pseudo-random number generator (O'Neill, 2014).
//
// Deterministic and seedable so that every experiment in EXPERIMENTS.md is
// exactly reproducible from its command line. We deliberately avoid
// std::mt19937 + std::uniform_real_distribution because their outputs are not
// guaranteed identical across standard-library implementations.
#ifndef SRC_UTIL_RANDOM_H_
#define SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace rtdvs {

class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  // Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform in [0, bound) without modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    RTDVS_CHECK_GT(bound, 0u);
    uint32_t threshold = (-bound) % bound;
    while (true) {
      uint32_t r = NextU32();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    // 53 random bits -> uniform double with full mantissa resolution.
    uint64_t hi = NextU32();
    uint64_t lo = NextU32();
    uint64_t bits = ((hi << 32) | lo) >> 11;
    return static_cast<double>(bits) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    RTDVS_CHECK_LE(lo, hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    RTDVS_CHECK_LE(lo, hi);
    auto span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<int64_t>((static_cast<uint64_t>(NextU32()) << 32) | NextU32());
    }
    // Two 32-bit draws give enough entropy for any span we use (<= 2^33).
    uint64_t r = (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
    return lo + static_cast<int64_t>(r % span);
  }

  // Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; used to give each task set its
  // own stream so adding sweep points does not perturb earlier ones.
  Pcg32 Fork() {
    uint64_t seed = (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
    uint64_t stream = (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
    return Pcg32(seed, stream);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace rtdvs

#endif  // SRC_UTIL_RANDOM_H_
