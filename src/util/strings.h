// Small string helpers shared by the procfs layer and the CLI parser.
#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rtdvs {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// Strict numeric parsers: the whole (trimmed) string must be consumed.
std::optional<double> ParseDouble(std::string_view text);
std::optional<int64_t> ParseInt(std::string_view text);

}  // namespace rtdvs

#endif  // SRC_UTIL_STRINGS_H_
