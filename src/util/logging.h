// Minimal leveled logging to stderr.
//
// The simulator is a library first; logging defaults to kWarning so that
// benches and tests stay quiet unless something is wrong. Examples raise the
// level to kInfo for narrative output. The RTDVS_LOG environment variable
// (debug|info|warn|error, or 0-3) overrides the default without recompiling;
// SetLogLevel() wins over the environment.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rtdvs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLogLine(LogLevel level, const char* file, int line, const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLogLine(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rtdvs

#define RTDVS_LOG(level)                                                      \
  if (::rtdvs::LogLevel::level < ::rtdvs::GetLogLevel()) {                    \
  } else /* NOLINT */                                                         \
    ::rtdvs::internal::LogMessage(::rtdvs::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
