#include "src/util/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/json.h"

namespace rtdvs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  RTDVS_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  RTDVS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  buckets_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::Exponential(double start, double factor, int count) {
  RTDVS_CHECK(start > 0 && factor > 1 && count >= 1)
      << "exponential buckets need start > 0, factor > 1, count >= 1";
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

double Histogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; percentile 0 maps to the first.
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(count_));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const int64_t next = seen + buckets_[i];
    if (rank <= static_cast<double>(next)) {
      if (i == buckets_.size() - 1) return max_;  // overflow bucket
      const double lo = i == 0 ? std::min(min_, bounds_[0]) : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  RTDVS_CHECK(bounds_ == other.bounds_)
      << "cannot merge histograms with different bucket bounds";
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricsRegistry::Increment(const std::string& name, int64_t delta) {
  GetCounter(name)->Increment(delta);
}

void MetricsRegistry::Snapshot::MergeFrom(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, histogram] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, histogram);
    } else {
      it->second.MergeFrom(histogram);
    }
  }
}

MetricsRegistry::Snapshot MetricsRegistry::Snapshot::DiffFrom(
    const Snapshot& other) const {
  Snapshot diff;
  for (const auto& [name, value] : counters) {
    const auto it = other.counters.find(name);
    diff.counters[name] = value - (it == other.counters.end() ? 0 : it->second);
  }
  return diff;
}

bool MetricsRegistry::Snapshot::CountersEqual(const Snapshot& other) const {
  return counters == other.counters;
}

JsonValue MetricsRegistry::Snapshot::ToJson() const {
  JsonValue doc = JsonValue::Object();
  JsonValue& counter_obj = doc.Set("counters", JsonValue::Object());
  for (const auto& [name, value] : counters) counter_obj.Set(name, value);
  JsonValue& histogram_obj = doc.Set("histograms", JsonValue::Object());
  for (const auto& [name, histogram] : histograms) {
    JsonValue& entry = histogram_obj.Set(name, JsonValue::Object());
    entry.Set("count", histogram.count());
    entry.Set("mean", histogram.mean());
    entry.Set("p50", histogram.ValueAtPercentile(50));
    entry.Set("p95", histogram.ValueAtPercentile(95));
    entry.Set("p99", histogram.ValueAtPercentile(99));
    entry.Set("max", histogram.max());
  }
  return doc;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, *histogram);
  }
  return snapshot;
}

}  // namespace rtdvs
