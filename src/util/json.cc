#include "src/util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/check.h"

namespace rtdvs {
namespace {

void WriteEscapedString(std::ostream& out, const std::string& text) {
  out << '"';
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

void WriteDouble(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  RTDVS_CHECK(ec == std::errc());
  std::string_view text(buf, static_cast<size_t>(ptr - buf));
  out << text;
  // std::to_chars emits "1" for 1.0; keep it — integers-as-doubles parsing
  // back as kInt is fine for every consumer in this repo.
}

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    auto value = ParseValue();
    if (!value.has_value()) {
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  std::optional<JsonValue> Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (ConsumeLiteral("null")) {
          return JsonValue();
        }
        return Fail("bad literal");
      case 't':
        if (ConsumeLiteral("true")) {
          return JsonValue(true);
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          return JsonValue(false);
        }
        return Fail("bad literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  std::optional<JsonValue> ParseString() {
    std::string out;
    if (!ParseRawString(&out)) {
      return std::nullopt;
    }
    return JsonValue(std::move(out));
  }

  bool ParseRawString(std::string* out) {
    if (!Consume('"')) {
      Fail("expected '\"'");
      return false;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape digit");
              return false;
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; no emitter in this repo
          // produces them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("bad escape character");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Fail("expected a value");
    }
    if (integral) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Fall through: out-of-range integers parse as doubles.
    }
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("malformed number");
    }
    return JsonValue(value);
  }

  std::optional<JsonValue> ParseArray() {
    Consume('[');
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return out;
    }
    while (true) {
      auto element = ParseValue();
      if (!element.has_value()) {
        return std::nullopt;
      }
      out.Append(std::move(*element));
      SkipWhitespace();
      if (Consume(']')) {
        return out;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  std::optional<JsonValue> ParseObject() {
    Consume('{');
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return out;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseRawString(&key)) {
        return std::nullopt;
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      auto value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      out.Set(std::move(key), std::move(*value));
      SkipWhitespace();
      if (Consume('}')) {
        return out;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::AsBool() const {
  RTDVS_CHECK(kind_ == Kind::kBool) << "JsonValue is not a bool";
  return bool_;
}

int64_t JsonValue::AsInt() const {
  if (kind_ == Kind::kDouble) {
    auto truncated = static_cast<int64_t>(double_);
    RTDVS_CHECK(static_cast<double>(truncated) == double_)
        << "JsonValue double is not integral";
    return truncated;
  }
  RTDVS_CHECK(kind_ == Kind::kInt) << "JsonValue is not an integer";
  return int_;
}

double JsonValue::AsDouble() const {
  if (kind_ == Kind::kInt) {
    return static_cast<double>(int_);
  }
  RTDVS_CHECK(kind_ == Kind::kDouble) << "JsonValue is not a number";
  return double_;
}

const std::string& JsonValue::AsString() const {
  RTDVS_CHECK(kind_ == Kind::kString) << "JsonValue is not a string";
  return string_;
}

JsonValue& JsonValue::Append(JsonValue value) {
  RTDVS_CHECK(kind_ == Kind::kArray) << "Append on a non-array JsonValue";
  array_.push_back(std::move(value));
  return array_.back();
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) {
    return array_.size();
  }
  RTDVS_CHECK(kind_ == Kind::kObject) << "size() on a non-container JsonValue";
  return object_.size();
}

const JsonValue& JsonValue::at(size_t index) const {
  RTDVS_CHECK(kind_ == Kind::kArray) << "at() on a non-array JsonValue";
  RTDVS_CHECK(index < array_.size()) << "JsonValue index out of range";
  return array_[index];
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  RTDVS_CHECK(kind_ == Kind::kObject) << "Set on a non-object JsonValue";
  for (auto& entry : object_) {
    if (entry.first == key) {
      entry.second = std::move(value);
      return entry.second;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return object_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& entry : object_) {
    if (entry.first == key) {
      return &entry.second;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::Get(std::string_view key) const {
  const JsonValue* found = Find(key);
  RTDVS_CHECK(found != nullptr) << "missing JSON key '" << std::string(key) << "'";
  return *found;
}

void JsonValue::WriteIndented(std::ostream& out, int indent, int depth) const {
  auto newline_pad = [&](int d) {
    if (indent >= 0) {
      out << '\n';
      for (int i = 0; i < indent * d; ++i) {
        out << ' ';
      }
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      out << int_;
      break;
    case Kind::kDouble:
      WriteDouble(out, double_);
      break;
    case Kind::kString:
      WriteEscapedString(out, string_);
      break;
    case Kind::kArray: {
      out << '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out << ',';
          if (indent < 0) {
            // compact: no space
          }
        }
        newline_pad(depth + 1);
        array_[i].WriteIndented(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline_pad(depth);
      }
      out << ']';
      break;
    }
    case Kind::kObject: {
      out << '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out << ',';
        }
        newline_pad(depth + 1);
        WriteEscapedString(out, object_[i].first);
        out << ':';
        if (indent >= 0) {
          out << ' ';
        }
        object_[i].second.WriteIndented(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline_pad(depth);
      }
      out << '}';
      break;
    }
  }
}

void JsonValue::Write(std::ostream& out, int indent) const {
  WriteIndented(out, indent, 0);
}

std::string JsonValue::ToString(int indent) const {
  std::ostringstream out;
  Write(out, indent);
  return out.str();
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text,
                                          std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  return Parser(text, error).Run();
}

bool WriteJsonFile(const JsonValue& value, const std::string& path, int indent) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  value.Write(out, indent);
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace rtdvs
