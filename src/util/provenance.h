// Build/host provenance for machine-readable reports.
//
// Every rtdvs-bench-v1 document carries a config.provenance object so a
// later rtdvs-benchdiff run can tell whether two files are comparable:
// timing metrics from different hosts, core counts, build types, or
// sanitizer configurations are apples-to-oranges, and the comparator
// downgrades regressions to warnings when these fields differ.
#ifndef SRC_UTIL_PROVENANCE_H_
#define SRC_UTIL_PROVENANCE_H_

namespace rtdvs {

class JsonValue;

// {"git_sha", "hostname", "hardware_concurrency", "build_type",
//  "sanitize"} — git_sha/build_type/sanitize are baked in at configure
// time (RTDVS_GIT_SHA etc.), hostname and core count read at runtime.
JsonValue ProvenanceJson();

}  // namespace rtdvs

#endif  // SRC_UTIL_PROVENANCE_H_
