#include "src/util/profiler.h"

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace rtdvs {
namespace {

// Per-call durations span sub-microsecond engine primitives up to
// multi-second sweep shards: 1 ns .. ~16 s at 2x, 35 buckets. Every span
// histogram shares this layout so snapshots merge bucket-wise.
std::vector<double> SpanBounds() {
  return Histogram::Exponential(1e-6, 2.0, 35).bounds();
}

using Clock = std::chrono::steady_clock;

double ToMs(Clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

// An open span on this thread's stack. child_ms accumulates the elapsed
// time of directly nested spans so the parent can compute self time.
struct Frame {
  const char* name;
  Clock::time_point start;
  double child_ms;
};

struct ThreadLog {
  // Keyed by string-literal address: the common case (one RTDVS_PROF_SCOPE
  // per call site) hits a single hash lookup; distinct literals with equal
  // text merge by name at flush time.
  std::unordered_map<const char*, ProfileSpanStats> spans;
  std::vector<Frame> stack;
};

ThreadLog& Log() {
  thread_local ThreadLog log;
  return log;
}

std::mutex& GlobalMutex() {
  static std::mutex mu;
  return mu;
}

ProfileSnapshot& GlobalSnapshot() {
  static ProfileSnapshot snap;
  return snap;
}

}  // namespace

std::atomic<bool> Profiler::enabled_{false};

ProfileSpanStats::ProfileSpanStats() : hist(SpanBounds()) {}

void ProfileSpanStats::MergeFrom(const ProfileSpanStats& other) {
  count += other.count;
  total_ms += other.total_ms;
  child_ms += other.child_ms;
  if (other.max_ms > max_ms) max_ms = other.max_ms;
  hist.MergeFrom(other.hist);
}

void ProfileSnapshot::MergeFrom(const ProfileSnapshot& other) {
  for (const auto& [name, stats] : other.spans) {
    auto it = spans.find(name);
    if (it == spans.end()) {
      spans.emplace(name, stats);
    } else {
      it->second.MergeFrom(stats);
    }
  }
}

JsonValue ProfileSnapshot::ToJson() const {
  JsonValue out = JsonValue::Object();
  for (const auto& [name, s] : spans) {
    JsonValue span = JsonValue::Object();
    span.Set("count", s.count);
    span.Set("total_ms", s.total_ms);
    span.Set("self_ms", s.self_ms());
    span.Set("mean_ms", s.count == 0 ? 0.0
                                     : s.total_ms / static_cast<double>(s.count));
    span.Set("p50_ms", s.hist.ValueAtPercentile(50));
    span.Set("p95_ms", s.hist.ValueAtPercentile(95));
    span.Set("max_ms", s.max_ms);
    out.Set(name, std::move(span));
  }
  return out;
}

void ProfileSnapshot::ToRegistry(MetricsRegistry* registry) const {
  for (const auto& [name, s] : spans) {
    registry->Increment("profile/" + name + "/count", s.count);
    registry->GetHistogram("profile/" + name + "/ms", SpanBounds())
        ->MergeFrom(s.hist);
  }
}

void Profiler::SpanStart(const char* name) {
  Log().stack.push_back(Frame{name, Clock::now(), 0.0});
}

void Profiler::SpanFinish() {
  ThreadLog& log = Log();
  // A scope opened while disabled never pushed; ProfScope tracks that with
  // `active_`, so the stack here is never empty — but guard anyway so a
  // mid-run Enable() cannot corrupt the log.
  if (log.stack.empty()) return;
  Frame frame = log.stack.back();
  log.stack.pop_back();
  const double elapsed_ms = ToMs(Clock::now() - frame.start);
  ProfileSpanStats& stats = log.spans[frame.name];
  ++stats.count;
  stats.total_ms += elapsed_ms;
  stats.child_ms += frame.child_ms;
  if (elapsed_ms > stats.max_ms) stats.max_ms = elapsed_ms;
  stats.hist.Record(elapsed_ms);
  if (!log.stack.empty()) log.stack.back().child_ms += elapsed_ms;
}

void Profiler::FlushThisThread() {
  ThreadLog& log = Log();
  if (log.spans.empty()) return;
  ProfileSnapshot local;
  for (auto& [name, stats] : log.spans) {
    auto it = local.spans.find(name);
    if (it == local.spans.end()) {
      local.spans.emplace(std::string(name), std::move(stats));
    } else {
      it->second.MergeFrom(stats);
    }
  }
  log.spans.clear();
  std::lock_guard<std::mutex> lock(GlobalMutex());
  GlobalSnapshot().MergeFrom(local);
}

ProfileSnapshot Profiler::Drain() {
  FlushThisThread();
  std::lock_guard<std::mutex> lock(GlobalMutex());
  ProfileSnapshot out = std::move(GlobalSnapshot());
  GlobalSnapshot().spans.clear();
  return out;
}

void Profiler::Reset() {
  ThreadLog& log = Log();
  log.spans.clear();
  log.stack.clear();
  std::lock_guard<std::mutex> lock(GlobalMutex());
  GlobalSnapshot().spans.clear();
}

}  // namespace rtdvs
