#include "src/util/flags.h"

#include <cstdio>

#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::AddDouble(const std::string& name, double* target, const std::string& help) {
  RTDVS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, FormatDouble(*target, 6), false,
                        [target](const std::string& text) {
                          auto value = ParseDouble(text);
                          if (!value) {
                            return false;
                          }
                          *target = *value;
                          return true;
                        }});
}

void FlagSet::AddInt64(const std::string& name, int64_t* target, const std::string& help) {
  RTDVS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, std::to_string(*target), false,
                        [target](const std::string& text) {
                          auto value = ParseInt(text);
                          if (!value) {
                            return false;
                          }
                          *target = *value;
                          return true;
                        }});
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  RTDVS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, *target, false, [target](const std::string& text) {
                          *target = text;
                          return true;
                        }});
}

void FlagSet::AddBool(const std::string& name, bool* target, const std::string& help) {
  RTDVS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, *target ? "true" : "false", true,
                        [target](const std::string& text) {
                          if (text == "true" || text == "1" || text.empty()) {
                            *target = true;
                          } else if (text == "false" || text == "0") {
                            *target = false;
                          } else {
                            return false;
                          }
                          return true;
                        }});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    }
    if (!StartsWith(arg, "--")) {
      if (allow_positional_) {
        positional_.push_back(std::move(arg));
        continue;
      }
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n", arg.c_str());
      return false;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    const Flag* flag = Find(name);
    bool negated = false;
    if (flag == nullptr && StartsWith(name, "no-")) {
      flag = Find(name.substr(3));
      if (flag != nullptr && flag->is_bool) {
        negated = true;
      } else {
        flag = nullptr;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "error: unknown flag --%s (try --help)\n", name.c_str());
      return false;
    }

    if (negated) {
      RTDVS_CHECK(flag->setter("false"));
      continue;
    }
    if (!has_value) {
      if (flag->is_bool) {
        RTDVS_CHECK(flag->setter("true"));
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: flag --%s requires a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!flag->setter(value)) {
      std::fprintf(stderr, "error: invalid value '%s' for flag --%s\n", value.c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

void FlagSet::PrintUsage(const std::string& program_name) const {
  std::fprintf(stderr, "%s\n\nusage: %s [flags]\n\nflags:\n", description_.c_str(),
               program_name.c_str());
  for (const auto& flag : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", flag.name.c_str(),
                 flag.help.c_str(), flag.default_text.c_str());
  }
}

}  // namespace rtdvs
