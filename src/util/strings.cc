#include "src/util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rtdvs {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), static_cast<size_t>(needed) + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  size_t begin = 0;
  while (begin < text.size() && is_space(text[begin])) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && is_space(text[end - 1])) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size()) {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

}  // namespace rtdvs
