#include "src/util/time_eps.h"

#include "src/util/check.h"

namespace rtdvs {

double ClampTinyNegative(double value, double eps) {
  if (value >= 0) {
    return value;
  }
  RTDVS_CHECK_GE(value, -eps) << "value is negative beyond rounding tolerance";
  return 0.0;
}

}  // namespace rtdvs
