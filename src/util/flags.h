// Tiny command-line flag parser for the bench/example binaries.
//
// Supports --name=value and --name value forms, plus --help. Bool flags also
// accept bare --name / --no-name. Unknown flags are an error so typos in a
// long experiment command line fail loudly instead of silently running the
// default configuration.
#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rtdvs {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  void AddDouble(const std::string& name, double* target, const std::string& help);
  void AddInt64(const std::string& name, int64_t* target, const std::string& help);
  void AddString(const std::string& name, std::string* target, const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);

  // Accept non-flag arguments (collected via positional()) instead of
  // rejecting them; for tools taking file lists, e.g. rtdvs-json-check.
  void AllowPositional() { allow_positional_ = true; }
  const std::vector<std::string>& positional() const { return positional_; }

  // Parses argv. Returns false (after printing usage or an error) if the
  // program should exit; positional arguments are rejected unless
  // AllowPositional() was called.
  [[nodiscard]] bool Parse(int argc, char** argv);

  void PrintUsage(const std::string& program_name) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_text;
    bool is_bool = false;
    // Returns false if the value fails to parse.
    std::function<bool(const std::string&)> setter;
  };

  const Flag* Find(const std::string& name) const;

  std::string description_;
  std::vector<Flag> flags_;
  bool allow_positional_ = false;
  std::vector<std::string> positional_;
};

}  // namespace rtdvs

#endif  // SRC_UTIL_FLAGS_H_
