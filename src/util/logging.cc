#include "src/util/logging.h"

#include <atomic>
#include <cstdio>

namespace rtdvs {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

void EmitLogLine(LogLevel level, const char* file, int line, const std::string& message) {
  // Strip directories for readability; paths are repo-root-relative anyway.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace internal
}  // namespace rtdvs
