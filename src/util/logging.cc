#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtdvs {
namespace {

// -1 = not yet initialized; the first GetLogLevel() consults RTDVS_LOG.
constexpr int kUninitialized = -1;

std::atomic<int> g_min_level{kUninitialized};

// Accepts level names (debug|info|warn|warning|error) or the numeric enum
// values 0-3; anything else falls back to the kWarning default.
int LevelFromEnv() {
  const char* env = std::getenv("RTDVS_LOG");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kWarning);
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    return static_cast<int>(LogLevel::kDebug);
  }
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "warning") == 0 ||
      std::strcmp(env, "2") == 0) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    return static_cast<int>(LogLevel::kError);
  }
  std::fprintf(stderr, "[WARN logging.cc] unrecognized RTDVS_LOG=%s (want debug|info|warn|error or 0-3)\n",
               env);
  return static_cast<int>(LogLevel::kWarning);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() {
  int level = g_min_level.load();
  if (level == kUninitialized) {
    // Benign race: every loser computes the same value from the environment.
    level = LevelFromEnv();
    int expected = kUninitialized;
    g_min_level.compare_exchange_strong(expected, level);
    level = g_min_level.load();
  }
  return static_cast<LogLevel>(level);
}

namespace internal {

void EmitLogLine(LogLevel level, const char* file, int line, const std::string& message) {
  // Strip directories for readability; paths are repo-root-relative anyway.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace internal
}  // namespace rtdvs
