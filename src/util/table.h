// Aligned text tables and CSV emission for the benchmark harnesses.
//
// Every figure/table bench prints (a) a human-readable aligned table and
// (b) machine-readable CSV (prefixed lines) so results can be re-plotted.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace rtdvs {

class JsonValue;

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision. (Named, not an
  // AddRow overload: string literals convert to bool and then to double, so
  // an overload set would be ambiguous for brace-initialized string rows.)
  void AddNumericRow(const std::vector<double>& row, int precision = 4);

  // Renders with column alignment; numeric-looking cells right-align.
  void Print(std::ostream& out) const;

  // Emits "csv,<col1>,<col2>,..." lines (header first). The prefix keeps CSV
  // greppable out of mixed stdout.
  void PrintCsv(std::ostream& out, const std::string& prefix = "csv") const;

  // {"header": [...], "rows": [[...], ...]} with every cell a string —
  // formatting already happened at AddRow time, and re-parsing cells would
  // lose the bench's intended precision. Used by the bench --json emitters.
  JsonValue ToJson() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly (trailing zeros trimmed).
std::string FormatDouble(double value, int precision = 4);

}  // namespace rtdvs

#endif  // SRC_UTIL_TABLE_H_
