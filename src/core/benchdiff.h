// Cross-run comparison of rtdvs-bench-v1 documents — the library behind
// tools/rtdvs-benchdiff and the CI perf-regression gate.
//
// A bench document is flattened into named scalar metrics
// ("fig09/absolute energy/profile/sims_per_sec"), two runs are matched
// metric-by-metric, and each delta is judged against a noise threshold
// using per-metric direction metadata (throughput up = good, latency up =
// bad). The report serializes as markdown (CI artifact) and JSON, and
// carries a single hard_fail bit for the exit code.
//
// Comparability guard: rtdvs-bench-v1 documents stamp provenance (host,
// core count, build type, sanitizers — see src/util/provenance.h) and
// their run configuration. When those differ between baseline and
// candidate, timing deltas are apples-to-oranges, so the report downgrades
// every would-be failure to a warning instead of hard-failing CI.
#ifndef SRC_CORE_BENCHDIFF_H_
#define SRC_CORE_BENCHDIFF_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json.h"

namespace rtdvs {

// One bench document reduced to comparable data.
struct BenchDoc {
  std::string bench;  // the document's "bench" name; metric keys prefix it
  // Flattened provenance fields, e.g. {"hostname": "ci-runner-3", ...}.
  std::map<std::string, std::string> provenance;
  // Compact serialization of config minus provenance: two runs with
  // different flags (e.g. --quick vs full) are not comparable either.
  std::string config_fingerprint;
  std::map<std::string, double> metrics;
};

// Flattens one parsed rtdvs-bench-v1 document. Returns nullopt (with
// *error set) when the document does not carry the expected schema tag.
// Extracted metrics:
//   values sections — every numeric entry;
//   sweep sections  — profile throughput/latency figures, wall time, audit
//                     violations, and per-(utilization, policy) normalized
//                     energy + deadline misses;
//   table sections  — every numeric-looking cell, keyed by first-column
//                     row label and column header.
std::optional<BenchDoc> ExtractBenchDoc(const JsonValue& doc,
                                        std::string* error);

enum class MetricDirection {
  kHigherIsBetter,   // throughput, efficiency, speedup
  kLowerIsBetter,    // latency, energy, misses, violations
  kInformational,    // counters with no quality ordering (e.g. seeds)
};

// Substring-based classification of a metric key; see benchdiff.cc for the
// exact rules. Lower-is-better wins over higher-is-better when both match
// ("energy_per_sec" is an energy rate, not a throughput).
MetricDirection DirectionForMetric(std::string_view key);

enum class DeltaVerdict {
  kOk,         // within threshold (or informational)
  kImproved,   // beyond threshold in the good direction
  kRegressed,  // beyond threshold in the bad direction
  kMissing,    // in baseline, absent from candidate — treated as regression
  kNew,        // in candidate only — informational
};

const char* DeltaVerdictName(DeltaVerdict verdict);

struct MetricDelta {
  std::string key;
  double baseline = 0;
  double candidate = 0;
  // (candidate - baseline) / |baseline|; 0 when baseline == 0 (the
  // absolute values carry the story then).
  double rel_change = 0;
  MetricDirection direction = MetricDirection::kInformational;
  DeltaVerdict verdict = DeltaVerdict::kOk;
};

struct DiffOptions {
  // Relative change a directional metric may move before it counts as an
  // improvement/regression.
  double threshold = 0.10;
  // Per-metric overrides: first entry whose pattern matches the key wins.
  // A pattern is one or more substrings joined by '*', all of which must
  // appear in the key in order — "fig09*sims_per_sec" matches the
  // throughput metrics of the fig09 bench only, while a plain
  // "sims_per_sec" matches every bench's.
  std::vector<std::pair<std::string, double>> threshold_overrides;
  // Compare timing metrics across differing hosts/configs as if they were
  // comparable (no downgrade). For local experiments only.
  bool ignore_provenance = false;
};

struct DiffReport {
  std::vector<MetricDelta> deltas;  // key order; all verdicts included
  int64_t ok = 0;
  int64_t improved = 0;
  int64_t regressed = 0;
  int64_t missing = 0;
  int64_t added = 0;
  // True when provenance/config differences forced warnings-only mode;
  // `notes` says why (also used for bench-level mismatches).
  bool downgraded = false;
  std::vector<std::string> notes;
  // The exit-code bit: regressions or missing metrics, not downgraded.
  bool hard_fail = false;

  JsonValue ToJson() const;
  std::string ToMarkdown() const;
};

// Compares two sets of bench documents (matched by bench name). A bench
// present only in the baseline is a regression-level event (downgradeable
// like any other); one only in the candidate is informational.
DiffReport DiffBenchDocs(const std::vector<BenchDoc>& baseline,
                         const std::vector<BenchDoc>& candidate,
                         const DiffOptions& options);

}  // namespace rtdvs

#endif  // SRC_CORE_BENCHDIFF_H_
