#include "src/core/benchdiff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/util/strings.h"
#include "src/util/table.h"

namespace rtdvs {
namespace {

// Near-zero baselines make relative change meaningless; below this the
// comparison falls back to absolute semantics (0 -> 0 is Ok, 0 -> anything
// is a full-threshold move in the sign's direction).
constexpr double kZeroEps = 1e-12;

bool NumericCell(const std::string& text, double* value) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

void AddMetric(const std::string& key, double value, BenchDoc* doc) {
  doc->metrics[key] = value;
}

void ExtractValuesSection(const std::string& prefix, const JsonValue& values,
                          BenchDoc* doc) {
  for (const auto& [key, value] : values.entries()) {
    if (value.is_number()) {
      AddMetric(prefix + "/" + key, value.AsDouble(), doc);
    }
  }
}

void ExtractTableSection(const std::string& prefix, const JsonValue& table,
                         BenchDoc* doc) {
  const JsonValue* header = table.Find("header");
  const JsonValue* rows = table.Find("rows");
  if (header == nullptr || rows == nullptr) {
    return;
  }
  for (size_t r = 0; r < rows->size(); ++r) {
    const JsonValue& row = rows->at(r);
    if (row.size() == 0) {
      continue;
    }
    // The first column labels the row (utilization, jobs count, ...).
    const std::string label = row.at(0).AsString();
    for (size_t c = 1; c < row.size() && c < header->size(); ++c) {
      double value = 0;
      if (NumericCell(row.at(c).AsString(), &value)) {
        AddMetric(prefix + "/" + label + "/" + header->at(c).AsString(), value,
                  doc);
      }
    }
  }
}

void ExtractSweepSection(const std::string& prefix, const JsonValue& sweep,
                         BenchDoc* doc) {
  if (const JsonValue* profile = sweep.Find("profile")) {
    for (const char* key :
         {"sims_per_sec", "shards_per_sec", "mean_shard_ms", "p95_shard_ms",
          "mean_queue_wait_ms", "p95_queue_wait_ms"}) {
      if (const JsonValue* value = profile->Find(key); value != nullptr &&
                                                       value->is_number()) {
        AddMetric(prefix + "/profile/" + key, value->AsDouble(), doc);
      }
    }
  }
  if (const JsonValue* wall = sweep.Find("elapsed_wall_ms")) {
    AddMetric(prefix + "/elapsed_wall_ms", wall->AsDouble(), doc);
  }
  if (const JsonValue* violations = sweep.Find("audit_violations")) {
    AddMetric(prefix + "/audit_violations", violations->AsDouble(), doc);
  }
  const JsonValue* rows = sweep.Find("rows");
  if (rows == nullptr) {
    return;
  }
  for (size_t r = 0; r < rows->size(); ++r) {
    const JsonValue& row = rows->at(r);
    const JsonValue* policies = row.Find("policies");
    if (policies == nullptr) {
      continue;
    }
    const std::string row_key =
        prefix + "/u=" + FormatDouble(row.Get("utilization").AsDouble(), 2);
    for (size_t p = 0; p < policies->size(); ++p) {
      const JsonValue& cell = policies->at(p);
      const std::string cell_key = row_key + "/" + cell.Get("id").AsString();
      AddMetric(cell_key + "/normalized", cell.Get("normalized").AsDouble(),
                doc);
      AddMetric(cell_key + "/deadline_misses",
                cell.Get("deadline_misses").AsDouble(), doc);
    }
  }
}

std::string ConfigFingerprint(const JsonValue& config) {
  JsonValue stripped = JsonValue::Object();
  for (const auto& [key, value] : config.entries()) {
    if (key != "provenance") {
      stripped.Set(key, value);
    }
  }
  return stripped.ToString();
}

// '*'-joined substring pattern: every part must appear in the key, in
// order (see DiffOptions::threshold_overrides).
bool PatternMatches(const std::string& pattern, const std::string& key) {
  size_t pos = 0;
  size_t part_start = 0;
  while (part_start <= pattern.size()) {
    const size_t star = pattern.find('*', part_start);
    const std::string part = pattern.substr(
        part_start, star == std::string::npos ? std::string::npos
                                              : star - part_start);
    if (!part.empty()) {
      pos = key.find(part, pos);
      if (pos == std::string::npos) {
        return false;
      }
      pos += part.size();
    }
    if (star == std::string::npos) {
      break;
    }
    part_start = star + 1;
  }
  return true;
}

double ThresholdFor(const std::string& key, const DiffOptions& options) {
  for (const auto& [pattern, threshold] : options.threshold_overrides) {
    if (PatternMatches(pattern, key)) {
      return threshold;
    }
  }
  return options.threshold;
}

DeltaVerdict Judge(const MetricDelta& delta, double threshold) {
  if (delta.direction == MetricDirection::kInformational) {
    return DeltaVerdict::kOk;
  }
  double goodness;  // positive = moved in the good direction
  if (std::abs(delta.baseline) < kZeroEps) {
    if (std::abs(delta.candidate) < kZeroEps) {
      return DeltaVerdict::kOk;
    }
    // 0 -> nonzero: e.g. deadline misses appearing, or throughput on a
    // previously-empty metric. Always beyond any relative threshold.
    goodness = delta.candidate > 0 ? 2 * threshold : -2 * threshold;
    if (delta.direction == MetricDirection::kLowerIsBetter) {
      goodness = -goodness;
    }
  } else {
    goodness = delta.rel_change;
    if (delta.direction == MetricDirection::kLowerIsBetter) {
      goodness = -goodness;
    }
  }
  if (goodness > threshold) {
    return DeltaVerdict::kImproved;
  }
  if (goodness < -threshold) {
    return DeltaVerdict::kRegressed;
  }
  return DeltaVerdict::kOk;
}

const BenchDoc* FindBench(const std::vector<BenchDoc>& docs,
                          const std::string& name) {
  for (const BenchDoc& doc : docs) {
    if (doc.bench == name) {
      return &doc;
    }
  }
  return nullptr;
}

}  // namespace

std::optional<BenchDoc> ExtractBenchDoc(const JsonValue& doc,
                                        std::string* error) {
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->AsString() != "rtdvs-bench-v1") {
    if (error != nullptr) {
      *error = "not an rtdvs-bench-v1 document";
    }
    return std::nullopt;
  }
  BenchDoc out;
  out.bench = doc.Get("bench").AsString();
  if (const JsonValue* config = doc.Find("config")) {
    out.config_fingerprint = ConfigFingerprint(*config);
    if (const JsonValue* provenance = config->Find("provenance")) {
      for (const auto& [key, value] : provenance->entries()) {
        out.provenance[key] = value.kind() == JsonValue::Kind::kString
                                  ? value.AsString()
                                  : value.ToString();
      }
    }
  }
  if (const JsonValue* sections = doc.Find("sections")) {
    for (size_t s = 0; s < sections->size(); ++s) {
      const JsonValue& section = sections->at(s);
      const std::string prefix =
          out.bench + "/" + section.Get("title").AsString();
      if (const JsonValue* values = section.Find("values")) {
        ExtractValuesSection(prefix, *values, &out);
      } else if (const JsonValue* table = section.Find("table")) {
        ExtractTableSection(prefix, *table, &out);
      } else if (const JsonValue* sweep = section.Find("sweep")) {
        ExtractSweepSection(prefix, *sweep, &out);
      }
    }
  }
  return out;
}

MetricDirection DirectionForMetric(std::string_view key) {
  std::string lower(key);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  auto has = [&lower](const char* needle) {
    return lower.find(needle) != std::string::npos;
  };
  // Lower-is-better is checked first: "energy_per_sec" is an energy rate
  // (lower = better), not a throughput, despite the "per_sec" suffix.
  if (has("energy") || has("_ms") || has("elapsed") || has("miss") ||
      has("violation") || has("wait") || has("normalized") ||
      has("rejection") || has("overrun") || has("bound")) {
    return MetricDirection::kLowerIsBetter;
  }
  if (has("per_sec") || has("throughput") || has("efficiency") ||
      has("speedup") || has("completions")) {
    return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kInformational;
}

const char* DeltaVerdictName(DeltaVerdict verdict) {
  switch (verdict) {
    case DeltaVerdict::kOk:
      return "ok";
    case DeltaVerdict::kImproved:
      return "improved";
    case DeltaVerdict::kRegressed:
      return "regressed";
    case DeltaVerdict::kMissing:
      return "missing";
    case DeltaVerdict::kNew:
      return "new";
  }
  return "unknown";
}

DiffReport DiffBenchDocs(const std::vector<BenchDoc>& baseline,
                         const std::vector<BenchDoc>& candidate,
                         const DiffOptions& options) {
  DiffReport report;

  // Comparability: any provenance or config mismatch on a matched bench
  // downgrades the WHOLE report — a regression verdict in one section is
  // not trustworthy when the run environments differ anywhere.
  for (const BenchDoc& base : baseline) {
    const BenchDoc* cand = FindBench(candidate, base.bench);
    if (cand == nullptr) {
      report.notes.push_back("bench '" + base.bench +
                             "' missing from candidate");
      continue;
    }
    if (options.ignore_provenance) {
      continue;
    }
    for (const char* field :
         {"hostname", "hardware_concurrency", "build_type", "sanitize"}) {
      auto b = base.provenance.find(field);
      auto c = cand->provenance.find(field);
      const std::string bv = b == base.provenance.end() ? "?" : b->second;
      const std::string cv = c == cand->provenance.end() ? "?" : c->second;
      if (bv != cv) {
        report.downgraded = true;
        report.notes.push_back(StrFormat(
            "%s: provenance mismatch (%s: %s vs %s) — regressions downgraded "
            "to warnings",
            base.bench.c_str(), field, bv.c_str(), cv.c_str()));
      }
    }
    if (base.config_fingerprint != cand->config_fingerprint) {
      report.downgraded = true;
      report.notes.push_back(
          base.bench +
          ": config mismatch (different flags/quick mode?) — regressions "
          "downgraded to warnings");
    }
  }
  for (const BenchDoc& cand : candidate) {
    if (FindBench(baseline, cand.bench) == nullptr) {
      report.notes.push_back("bench '" + cand.bench +
                             "' new in candidate (no baseline)");
    }
  }

  // Union of metric keys, in lexicographic order for a stable report.
  std::map<std::string, std::pair<const double*, const double*>> joined;
  for (const BenchDoc& doc : baseline) {
    for (const auto& [key, value] : doc.metrics) {
      joined[key].first = &value;
    }
  }
  for (const BenchDoc& doc : candidate) {
    for (const auto& [key, value] : doc.metrics) {
      joined[key].second = &value;
    }
  }

  for (const auto& [key, pair] : joined) {
    MetricDelta delta;
    delta.key = key;
    delta.direction = DirectionForMetric(key);
    if (pair.first == nullptr) {
      delta.candidate = *pair.second;
      delta.verdict = DeltaVerdict::kNew;
      ++report.added;
    } else if (pair.second == nullptr) {
      delta.baseline = *pair.first;
      delta.verdict = DeltaVerdict::kMissing;
      ++report.missing;
    } else {
      delta.baseline = *pair.first;
      delta.candidate = *pair.second;
      if (std::abs(delta.baseline) >= kZeroEps) {
        delta.rel_change =
            (delta.candidate - delta.baseline) / std::abs(delta.baseline);
      }
      delta.verdict = Judge(delta, ThresholdFor(key, options));
      switch (delta.verdict) {
        case DeltaVerdict::kOk:
          ++report.ok;
          break;
        case DeltaVerdict::kImproved:
          ++report.improved;
          break;
        case DeltaVerdict::kRegressed:
          ++report.regressed;
          break;
        default:
          break;
      }
    }
    report.deltas.push_back(std::move(delta));
  }

  const bool any_bad = report.regressed > 0 || report.missing > 0 ||
                       [&] {
                         for (const auto& note : report.notes) {
                           if (note.find("missing from candidate") !=
                               std::string::npos) {
                             return true;
                           }
                         }
                         return false;
                       }();
  report.hard_fail = any_bad && !report.downgraded;
  return report;
}

JsonValue DiffReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "rtdvs-benchdiff-v1");
  JsonValue& summary = doc.Set("summary", JsonValue::Object());
  summary.Set("ok", ok);
  summary.Set("improved", improved);
  summary.Set("regressed", regressed);
  summary.Set("missing", missing);
  summary.Set("new", added);
  summary.Set("downgraded", downgraded);
  summary.Set("hard_fail", hard_fail);
  JsonValue& notes_doc = doc.Set("notes", JsonValue::Array());
  for (const std::string& note : notes) {
    notes_doc.Append(note);
  }
  JsonValue& deltas_doc = doc.Set("deltas", JsonValue::Array());
  for (const MetricDelta& delta : deltas) {
    if (delta.verdict == DeltaVerdict::kOk) {
      continue;  // the summary counts them; listing thousands helps no one
    }
    JsonValue& entry = deltas_doc.Append(JsonValue::Object());
    entry.Set("metric", delta.key);
    entry.Set("verdict", DeltaVerdictName(delta.verdict));
    entry.Set("baseline", delta.baseline);
    entry.Set("candidate", delta.candidate);
    entry.Set("rel_change", delta.rel_change);
  }
  return doc;
}

std::string DiffReport::ToMarkdown() const {
  std::ostringstream out;
  out << "# rtdvs-benchdiff report\n\n";
  out << "| verdict | count |\n|---|---|\n";
  out << "| ok | " << ok << " |\n";
  out << "| improved | " << improved << " |\n";
  out << "| regressed | " << regressed << " |\n";
  out << "| missing | " << missing << " |\n";
  out << "| new | " << added << " |\n\n";
  if (!notes.empty()) {
    out << "## Notes\n\n";
    for (const std::string& note : notes) {
      out << "- " << note << "\n";
    }
    out << "\n";
  }
  bool any = false;
  for (const MetricDelta& delta : deltas) {
    if (delta.verdict == DeltaVerdict::kOk) {
      continue;
    }
    if (!any) {
      out << "## Changed metrics\n\n";
      out << "| metric | verdict | baseline | candidate | change |\n";
      out << "|---|---|---|---|---|\n";
      any = true;
    }
    out << "| `" << delta.key << "` | " << DeltaVerdictName(delta.verdict)
        << " | " << FormatDouble(delta.baseline, 6) << " | "
        << FormatDouble(delta.candidate, 6) << " | "
        << FormatDouble(delta.rel_change * 100.0, 2) << "% |\n";
  }
  if (!any) {
    out << "No metric moved beyond its threshold.\n";
  }
  out << "\nresult: "
      << (hard_fail ? "REGRESSED"
                    : (downgraded ? "DOWNGRADED (warnings only)" : "OK"))
      << "\n";
  return out.str();
}

}  // namespace rtdvs
