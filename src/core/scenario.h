// Scenario files: a small text format describing a complete simulation
// setup (task set, per-task actual-demand model, machine, optional
// aperiodic server), consumed by the rtdvs_sim command-line tool and usable
// by downstream test rigs.
//
//   # comment (also after '#' on a line)
//   machine machine0                 # machine0|machine1|machine2|k6
//   task <name> <period_ms> <wcet_ms> [demand]
//   server <polling|deferrable|cbs> <period_ms> <budget_ms>
//          [interarrival=<ms>] [service=<ms>] [maxservice=<ms>]   (one line)
//   cluster <num_cores> [mode=partitioned|global] [fit=ff|nf|bf|wf]
//   policies <id> [<id> ...]         # DVS policy per core (one = every core)
//
// [demand] is one of:
//   c=<fraction>           constant fraction of the worst case (default 1)
//   uniform                uniform in (0, 1]
//   uniform=<lo>,<hi>      uniform in (lo, hi]
//   bimodal=<typ>,<p>      mostly <= typ, spikes near 1 with probability p
//   cold=<factor>          first invocation costs <factor> x (capped at 1)
//
// The `cluster` and `policies` lines are optional; files without them are
// the classic single-core scenarios and parse exactly as before (the
// extension adds keywords, it never reinterprets existing ones). A server
// line requires a single-core scenario. Versioning policy: the format is
// line-keyword based, unknown keywords are hard errors (not skipped), so a
// file using a newer keyword fails loudly on older parsers; see DESIGN.md.
#ifndef SRC_CORE_SCENARIO_H_
#define SRC_CORE_SCENARIO_H_

#include <memory>
#include <string>
#include <string_view>
#include <variant>

#include "src/cpu/machine_spec.h"
#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"

namespace rtdvs {

struct Scenario {
  TaskSet tasks;
  MachineSpec machine = MachineSpec::Machine0();
  AperiodicServerConfig server;  // kind == kNone when no server line

  // From the optional `cluster` line; num_cores == 1 (the default) is the
  // classic single-core setup and mode/fit are then inert.
  int num_cores = 1;
  MpMode mp_mode = MpMode::kPartitioned;
  PartitionHeuristic mp_partition = PartitionHeuristic::kFirstFit;
  // From the optional `policies` line: DVS policy ids, one entry for every
  // core or exactly num_cores entries (the SimRequest contract). Empty when
  // the file declares none — the tool's --policy flag then applies.
  std::vector<std::string> policy_ids;

  // Builds the per-task execution-time model declared in the file. Each
  // call returns a fresh instance (models are stateful).
  std::unique_ptr<ExecTimeModel> MakeExecModel() const;

  // The cluster-API request this scenario describes: tasks, machine,
  // cluster geometry, and the file's policy ids (kept as the SimRequest
  // default when the file declares none). `options` is copied through with
  // the server config attached.
  SimRequest ToSimRequest(const SimOptions& options) const;

  // The demand spec strings per task, for MakeExecModel and round-tripping.
  std::vector<std::string> demand_specs;
};

// Parses scenario text. Returns the scenario or a human-readable error
// (with a line number) — file-format problems are user errors, not
// programming errors, so no CHECK-aborts here.
std::variant<Scenario, std::string> ParseScenario(std::string_view text);

// Convenience: reads and parses a file.
std::variant<Scenario, std::string> LoadScenarioFile(const std::string& path);

// Parses one demand spec (see header comment); nullptr on syntax error.
std::unique_ptr<ExecTimeModel> MakeDemandModel(std::string_view spec);

}  // namespace rtdvs

#endif  // SRC_CORE_SCENARIO_H_
