#include "src/core/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <future>
#include <memory>
#include <utility>

#include <mutex>

#include "src/dvs/policy.h"
#include "src/rt/job_pool.h"
#include "src/sim/mp_simulator.h"
#include "src/util/check.h"
#include "src/util/json.h"
#include "src/util/profiler.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace rtdvs {
namespace {

// Everything one (utilization, task set) shard produces: the raw per-run
// numbers, NOT RunningStats. Shards run concurrently in arbitrary order;
// the merge loop replays these into RunningStats in serial grid order so
// the aggregate floating-point arithmetic is identical for every jobs
// value (Welford updates are order-sensitive).
struct ShardOutcome {
  double edf_energy = 0;
  double lower_bound = 0;
  // Violations from the EDF normalization baseline run (reported even when
  // "edf" is not among the swept policy ids).
  int64_t baseline_audit_violations = 0;
  // Multiprocessor shards only: false when the baseline / a policy's
  // partitioned admission rejected the generated set (its energy fields are
  // then meaningless and the merge loop skips them). Always true at M = 1.
  bool baseline_admitted = true;
  struct PerPolicy {
    double energy = 0;
    int64_t deadline_misses = 0;
    int64_t audit_violations = 0;
    bool admitted = true;
    PolicyCounters counters;
  };
  std::vector<PerPolicy> policies;  // parallel to options.policy_ids
  std::vector<std::string> audit_messages;  // capped per shard
  // Fast-path coverage over every run in the shard (baseline included).
  FastPathStats fastpath;
};

// Multiprocessor variant of RunShard: the same draw structure (task set,
// then one workload seed), but every run goes through the cluster API and
// the generator targets utilization * num_cores (per-core axis, see
// SweepOptions). Kept as a separate function so the single-core path stays
// byte-for-byte the legacy code — the M = 1 bit-identity guarantee is
// structural.
ShardOutcome RunMpShard(const SweepOptions& options, double utilization,
                        Pcg32 set_rng) {
  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = options.num_tasks;
  gen_options.target_utilization =
      utilization * static_cast<double>(options.num_cores);
  TaskSetGenerator generator(gen_options);
  TaskSet tasks = generator.Generate(set_rng);
  uint64_t workload_seed =
      (static_cast<uint64_t>(set_rng.NextU32()) << 32) | set_rng.NextU32();

  SimRequest request;
  request.tasks = tasks;
  request.cluster.num_cores = options.num_cores;
  request.cluster.machine = options.machine;
  request.mode = options.mp_mode;
  request.partition = options.mp_partition;
  request.options.horizon_ms = options.horizon_ms;
  request.options.idle_level = options.idle_level;
  request.options.switch_time_ms = options.switch_time_ms;
  request.options.miss_policy = options.miss_policy;
  request.options.energy_coefficient = options.energy_coefficient;
  request.options.audit = options.audit;
  request.options.seed = workload_seed;
  // Recycle job storage across this worker thread's runs (results are
  // identical; see src/rt/job_pool.h).
  request.options.job_pool = &ThreadLocalJobPool();

  ShardOutcome outcome;
  outcome.policies.resize(options.policy_ids.size());
  // Cluster audit plus every per-core slice audit (partitioned slices carry
  // their own single-core reports; powered-down cores audit nothing).
  auto record_audit = [&outcome, utilization](const MpSimResult& result,
                                              const char* policy_id,
                                              int64_t* counter) {
    constexpr size_t kMaxMessagesPerShard = 4;
    auto add = [&](const AuditReport& report) {
      *counter += static_cast<int64_t>(report.violations.size());
      for (const auto& violation : report.violations) {
        if (outcome.audit_messages.size() >= kMaxMessagesPerShard) {
          break;
        }
        outcome.audit_messages.push_back(
            StrFormat("[%s] u=%.2f %s: %s", AuditCheckName(violation.check),
                      utilization, policy_id, violation.message.c_str()));
      }
    };
    add(result.cluster_audit);
    for (const SimResult& slice : result.cores) {
      add(slice.audit);
    }
  };
  auto run = [&options, &request](const std::string& id) {
    SimRequest shard_request = request;
    shard_request.policy_ids = {id};
    auto model = options.exec_model_factory();
    return RunClusterSimulation(shard_request, *model);
  };

  // Cluster-EDF baseline (partitioned-EDF or global-EDF, matching the
  // sweep's mode) for normalization and the cluster-level bound.
  MpSimResult edf_result = run("edf");
  outcome.baseline_admitted = edf_result.admitted;
  if (edf_result.admitted) {
    outcome.edf_energy = edf_result.cluster.total_energy();
    outcome.lower_bound = edf_result.cluster.lower_bound_energy;
  }

  for (size_t p = 0; p < options.policy_ids.size(); ++p) {
    MpSimResult policy_result;
    const MpSimResult* result = &edf_result;
    if (options.policy_ids[p] != "edf") {
      policy_result = run(options.policy_ids[p]);
      result = &policy_result;
    }
    ShardOutcome::PerPolicy& per = outcome.policies[p];
    per.admitted = result->admitted;
    if (!result->admitted) {
      continue;  // merge loop counts the rejection, no samples to add
    }
    per.energy = result->cluster.total_energy();
    per.deadline_misses = result->cluster.deadline_misses;
    per.counters = result->cluster.policy_counters;
    outcome.fastpath.MergeFrom(result->cluster.fastpath);
    record_audit(*result, options.policy_ids[p].c_str(),
                 &per.audit_violations);
  }
  bool edf_in_list = false;
  for (const auto& id : options.policy_ids) {
    edf_in_list |= id == "edf";
  }
  if (!edf_in_list && edf_result.admitted) {
    record_audit(edf_result, "edf", &outcome.baseline_audit_violations);
    outcome.fastpath.MergeFrom(edf_result.cluster.fastpath);
  }
  return outcome;
}

// Runs every policy on one generated task set. `set_rng` must be the fork
// the serial grid order assigns to this shard; the draw sequence below is
// byte-for-byte the one the original serial loop performed.
ShardOutcome RunShard(const SweepOptions& options, double utilization,
                      Pcg32 set_rng) {
  if (options.num_cores > 1) {
    return RunMpShard(options, utilization, std::move(set_rng));
  }
  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = options.num_tasks;
  gen_options.target_utilization = utilization;
  TaskSetGenerator generator(gen_options);

  TaskSet tasks = options.use_uunifast
                      ? GenerateUUniFast(options.num_tasks, utilization, set_rng)
                      : generator.Generate(set_rng);
  // One seed per task set: every policy replays the same actual
  // execution-time draws (see the determinism note in the header).
  uint64_t workload_seed =
      (static_cast<uint64_t>(set_rng.NextU32()) << 32) | set_rng.NextU32();

  SimOptions sim_options;
  sim_options.horizon_ms = options.horizon_ms;
  sim_options.idle_level = options.idle_level;
  sim_options.switch_time_ms = options.switch_time_ms;
  sim_options.miss_policy = options.miss_policy;
  sim_options.energy_coefficient = options.energy_coefficient;
  sim_options.audit = options.audit;
  sim_options.seed = workload_seed;
  // Recycle job storage across this worker thread's runs (results are
  // identical; see src/rt/job_pool.h).
  sim_options.job_pool = &ThreadLocalJobPool();

  ShardOutcome outcome;
  outcome.policies.resize(options.policy_ids.size());
  auto record_audit = [&outcome, utilization](const SimResult& result,
                                              int64_t* counter) {
    *counter += static_cast<int64_t>(result.audit.violations.size());
    constexpr size_t kMaxMessagesPerShard = 4;
    for (const auto& violation : result.audit.violations) {
      if (outcome.audit_messages.size() >= kMaxMessagesPerShard) {
        break;
      }
      outcome.audit_messages.push_back(
          StrFormat("[%s] u=%.2f %s: %s", AuditCheckName(violation.check),
                    utilization, result.policy_name.c_str(),
                    violation.message.c_str()));
    }
  };

  // Baseline first: plain EDF energy for normalization, and the bound.
  auto edf = MakePolicy("edf");
  auto edf_model = options.exec_model_factory();
  SimResult edf_result =
      RunSimulation(tasks, options.machine, *edf, *edf_model, sim_options);
  outcome.edf_energy = edf_result.total_energy();
  outcome.lower_bound = edf_result.lower_bound_energy;

  for (size_t p = 0; p < options.policy_ids.size(); ++p) {
    SimResult result;
    if (options.policy_ids[p] == "edf") {
      result = edf_result;  // no need to rerun the baseline
    } else {
      auto policy = MakePolicy(options.policy_ids[p]);
      auto model = options.exec_model_factory();
      result = RunSimulation(tasks, options.machine, *policy, *model, sim_options);
    }
    outcome.policies[p].energy = result.total_energy();
    outcome.policies[p].deadline_misses = result.deadline_misses;
    outcome.policies[p].counters = result.policy_counters;
    outcome.fastpath.MergeFrom(result.fastpath);
    record_audit(result, &outcome.policies[p].audit_violations);
  }
  // The baseline's own violations, unless they were already counted via an
  // "edf" entry in the policy list.
  bool edf_in_list = false;
  for (const auto& id : options.policy_ids) {
    edf_in_list |= id == "edf";
  }
  if (!edf_in_list) {
    record_audit(edf_result, &outcome.baseline_audit_violations);
    outcome.fastpath.MergeFrom(edf_result.fastpath);
  }
  return outcome;
}

std::vector<std::string> PolicyHeader(const SweepResult& result,
                                      bool with_bound) {
  std::vector<std::string> header = {"utilization"};
  for (const auto& id : result.options.policy_ids) {
    header.push_back(MakePolicy(id)->name());
  }
  if (with_bound) {
    header.push_back("bound");
  }
  return header;
}

}  // namespace

std::function<void(int64_t, int64_t)> MakeStderrProgress() {
  struct State {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point last_print = start;
    bool printed = false;
  };
  auto state = std::make_shared<State>();
  // Already serialized by the sweep's internal mutex (see
  // SweepOptions::progress), so plain shared state is fine.
  return [state](int64_t done, int64_t total) {
    const auto now = std::chrono::steady_clock::now();
    using Sec = std::chrono::duration<double>;
    const bool final = done >= total;
    if (!final && state->printed &&
        Sec(now - state->last_print).count() < 0.2) {
      return;
    }
    state->last_print = now;
    state->printed = true;
    const double elapsed = Sec(now - state->start).count();
    const double eta =
        done > 0 ? elapsed / static_cast<double>(done) *
                       static_cast<double>(total - done)
                 : 0.0;
    std::fprintf(stderr, "\rsweep: %lld/%lld shards (%d%%)  elapsed %.1fs  eta %.1fs ",
                 static_cast<long long>(done), static_cast<long long>(total),
                 static_cast<int>(100 * done / std::max<int64_t>(total, 1)),
                 elapsed, eta);
    if (final) {
      std::fprintf(stderr, "\n");
    }
  };
}

std::vector<double> DefaultUtilizationGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 20; ++i) {
    grid.push_back(static_cast<double>(i) * 0.05);
  }
  return grid;
}

UtilizationSweep::UtilizationSweep(SweepOptions options) : options_(std::move(options)) {
  if (options_.policy_ids.empty()) {
    options_.policy_ids = AllPaperPolicyIds();
  }
  if (options_.utilizations.empty()) {
    options_.utilizations = DefaultUtilizationGrid();
  }
  RTDVS_CHECK_GT(options_.tasksets_per_point, 0);
  RTDVS_CHECK_GT(options_.num_tasks, 0);
  RTDVS_CHECK_GE(options_.jobs, 0);
  RTDVS_CHECK_GE(options_.num_cores, 1);
  // UUniFast's per-task utilizations are unbounded above 1 once the total
  // exceeds 1, so it cannot feed the scaled multiprocessor target.
  RTDVS_CHECK(!(options_.use_uunifast && options_.num_cores > 1));
  RTDVS_CHECK(options_.exec_model_factory != nullptr);
}

SweepResult UtilizationSweep::Run() const {
  const int jobs =
      options_.jobs > 0 ? options_.jobs : ThreadPool::DefaultNumThreads();
  const auto wall_start = std::chrono::steady_clock::now();
  const std::clock_t cpu_start = std::clock();

  SweepResult result = RunShards(jobs);

  result.options = options_;
  result.options.jobs = jobs;  // echo the resolved value
  result.elapsed_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  result.elapsed_cpu_ms = (std::clock() - cpu_start) * 1000.0 /
                          static_cast<double>(CLOCKS_PER_SEC);
  if (result.elapsed_wall_ms > 0) {
    result.profile.shards_per_sec =
        static_cast<double>(result.profile.shards) / result.elapsed_wall_ms *
        1000.0;
    result.profile.sims_per_sec =
        static_cast<double>(result.profile.simulations) /
        result.elapsed_wall_ms * 1000.0;
  }
  return result;
}

SweepResult UtilizationSweep::RunShards(int jobs) const {
  const size_t num_utils = options_.utilizations.size();
  const size_t sets = static_cast<size_t>(options_.tasksets_per_point);

  // Fork every shard's RNG from the master in serial grid order, before any
  // shard runs: the streams each shard sees are independent of jobs, and
  // adding sweep points still does not perturb earlier ones.
  Pcg32 master(options_.seed);
  std::vector<Pcg32> shard_rngs;
  shard_rngs.reserve(num_utils * sets);
  for (size_t ui = 0; ui < num_utils; ++ui) {
    for (size_t si = 0; si < sets; ++si) {
      shard_rngs.push_back(master.Fork());
    }
  }

  if (options_.profile) {
    Profiler::Enable();
  }

  std::vector<ShardOutcome> outcomes(num_utils * sets);
  // Shard timing, collected by the thread pool's observer in completion
  // order (diagnostics only — see SweepProfile), and progress bookkeeping.
  std::vector<double> queue_waits, run_times;
  queue_waits.reserve(outcomes.size());
  run_times.reserve(outcomes.size());
  std::mutex profile_mutex;
  const auto total_shards = static_cast<int64_t>(outcomes.size());
  int64_t shards_done = 0;
  {
    ThreadPool pool(jobs);
    pool.SetTaskObserver([&](double queue_wait_ms, double run_ms) {
      std::lock_guard<std::mutex> lock(profile_mutex);
      queue_waits.push_back(queue_wait_ms);
      run_times.push_back(run_ms);
      ++shards_done;
      if (options_.progress) {
        options_.progress(shards_done, total_shards);
      }
    });
    std::vector<std::future<void>> pending;
    pending.reserve(outcomes.size());
    for (size_t ui = 0; ui < num_utils; ++ui) {
      const double utilization = options_.utilizations[ui];
      for (size_t si = 0; si < sets; ++si) {
        const size_t shard = ui * sets + si;
        pending.push_back(pool.Submit([this, utilization, shard, &shard_rngs,
                                       &outcomes] {
          {
            RTDVS_PROF_SCOPE("sweep/shard/execute");
            outcomes[shard] = RunShard(options_, utilization, shard_rngs[shard]);
          }
          // Worker threads may be retired with the pool; bank this thread's
          // samples into the global accumulator while it is still alive.
          Profiler::FlushThisThread();
        }));
      }
    }
    for (auto& future : pending) {
      future.get();  // rethrows the first shard failure on this thread
    }
  }

  // Merge in serial grid order. The Add() sequence below is exactly the one
  // the serial implementation performed inline, so means/variances are
  // bit-identical regardless of how shards interleaved above.
  SweepResult result;
  result.rows.reserve(num_utils);
  for (size_t ui = 0; ui < num_utils; ++ui) {
    SweepRow row;
    row.utilization = options_.utilizations[ui];
    row.cells.resize(options_.policy_ids.size());
    for (size_t si = 0; si < sets; ++si) {
      const ShardOutcome& outcome = outcomes[ui * sets + si];
      // Shards whose baseline was rejected by admission (MP only) carry no
      // meaningful bound; the condition is always true at M = 1, so the
      // single-core Add() sequence is unchanged.
      if (outcome.baseline_admitted) {
        row.bound.Add(outcome.lower_bound);
        if (outcome.edf_energy > 0) {
          row.normalized_bound.Add(outcome.lower_bound / outcome.edf_energy);
        }
      }
      result.audit_violations += outcome.baseline_audit_violations;
      result.profile.fastpath.MergeFrom(outcome.fastpath);
      constexpr size_t kMaxMessages = 10;
      for (const auto& message : outcome.audit_messages) {
        if (result.audit_messages.size() >= kMaxMessages) {
          break;
        }
        result.audit_messages.push_back(message);
      }
      for (size_t p = 0; p < options_.policy_ids.size(); ++p) {
        PolicyCell& cell = row.cells[p];
        if (!outcome.policies[p].admitted) {
          ++cell.admission_rejections;
          // Mirrored into the mergeable counters so rejections surface in
          // profile.policy_counters totals alongside migrations.
          ++cell.counters.admission_rejections;
          continue;
        }
        cell.energy.Add(outcome.policies[p].energy);
        if (outcome.edf_energy > 0) {
          cell.normalized_energy.Add(outcome.policies[p].energy /
                                     outcome.edf_energy);
        }
        cell.deadline_misses += outcome.policies[p].deadline_misses;
        if (outcome.policies[p].deadline_misses > 0) {
          ++cell.tasksets_with_misses;
        }
        cell.audit_violations += outcome.policies[p].audit_violations;
        result.audit_violations += outcome.policies[p].audit_violations;
        cell.counters.MergeFrom(outcome.policies[p].counters);
      }
    }
    result.rows.push_back(std::move(row));
  }

  // Profile: grid-wide counter totals fold the per-cell merges (still serial
  // order, still bit-identical); timing summarizes the observer's samples.
  result.profile.shards = total_shards;
  bool edf_in_list = false;
  for (const auto& id : options_.policy_ids) {
    edf_in_list |= id == "edf";
  }
  result.profile.simulations =
      total_shards * static_cast<int64_t>(options_.policy_ids.size() +
                                          (edf_in_list ? 0 : 1));
  result.profile.policy_counters.resize(options_.policy_ids.size());
  for (const auto& row : result.rows) {
    for (size_t p = 0; p < row.cells.size(); ++p) {
      result.profile.policy_counters[p].MergeFrom(row.cells[p].counters);
    }
  }
  if (!run_times.empty()) {
    double sum = 0, max = 0;
    for (double t : run_times) {
      sum += t;
      max = std::max(max, t);
    }
    result.profile.mean_shard_ms = sum / static_cast<double>(run_times.size());
    result.profile.max_shard_ms = max;
    result.profile.p50_shard_ms = Percentile(run_times, 50);
    result.profile.p95_shard_ms = Percentile(run_times, 95);
    sum = max = 0;
    for (double t : queue_waits) {
      sum += t;
      max = std::max(max, t);
    }
    result.profile.mean_queue_wait_ms =
        sum / static_cast<double>(queue_waits.size());
    result.profile.p95_queue_wait_ms = Percentile(queue_waits, 95);
    result.profile.max_queue_wait_ms = max;
  }
  if (options_.profile) {
    // The pool joined above, so every worker flushed; Drain also flushes
    // this (the driver) thread for the jobs == 1 in-line case.
    result.profile.spans = Profiler::Drain();
  }
  return result;
}

TextTable RenderEnergyTable(const SweepResult& result, bool normalized) {
  TextTable table(PolicyHeader(result, /*with_bound=*/true));
  const double horizon_ms = result.options.horizon_ms;
  for (const auto& row : result.rows) {
    std::vector<std::string> cells = {FormatDouble(row.utilization, 2)};
    for (const auto& cell : row.cells) {
      double value = normalized ? cell.normalized_energy.mean()
                                : cell.energy.mean() / horizon_ms * 1000.0;  // per second
      cells.push_back(FormatDouble(value, 4));
    }
    cells.push_back(FormatDouble(normalized ? row.normalized_bound.mean()
                                            : row.bound.mean() / horizon_ms * 1000.0,
                                 4));
    table.AddRow(std::move(cells));
  }
  return table;
}

TextTable RenderMissTable(const SweepResult& result) {
  TextTable table(PolicyHeader(result, /*with_bound=*/false));
  for (const auto& row : result.rows) {
    std::vector<std::string> cells = {FormatDouble(row.utilization, 2)};
    for (const auto& cell : row.cells) {
      cells.push_back(StrFormat("%lld", static_cast<long long>(cell.deadline_misses)));
    }
    table.AddRow(std::move(cells));
  }
  return table;
}

bool AnyDeadlineMiss(const SweepResult& result) {
  for (const auto& row : result.rows) {
    for (const auto& cell : row.cells) {
      if (cell.deadline_misses > 0) {
        return true;
      }
    }
  }
  return false;
}

JsonValue SweepResultToJson(const SweepResult& result) {
  const SweepOptions& options = result.options;
  JsonValue doc = JsonValue::Object();

  JsonValue& config = doc.Set("config", JsonValue::Object());
  JsonValue& ids = config.Set("policy_ids", JsonValue::Array());
  for (const auto& id : options.policy_ids) {
    ids.Append(id);
  }
  JsonValue& utils = config.Set("utilizations", JsonValue::Array());
  for (double u : options.utilizations) {
    utils.Append(u);
  }
  config.Set("num_tasks", options.num_tasks);
  config.Set("tasksets_per_point", options.tasksets_per_point);
  config.Set("horizon_ms", options.horizon_ms);
  config.Set("idle_level", options.idle_level);
  config.Set("switch_time_ms", options.switch_time_ms);
  config.Set("energy_coefficient", options.energy_coefficient);
  config.Set("use_uunifast", options.use_uunifast);
  config.Set("seed", options.seed);
  config.Set("jobs", options.jobs);
  config.Set("num_cores", options.num_cores);
  config.Set("mp_mode", MpModeName(options.mp_mode));
  config.Set("partition", PartitionHeuristicName(options.mp_partition));

  const double horizon_ms = options.horizon_ms;
  JsonValue& rows = doc.Set("rows", JsonValue::Array());
  for (const auto& row : result.rows) {
    JsonValue& row_doc = rows.Append(JsonValue::Object());
    row_doc.Set("utilization", row.utilization);
    row_doc.Set("bound_per_sec", row.bound.mean() / horizon_ms * 1000.0);
    row_doc.Set("normalized_bound", row.normalized_bound.mean());
    JsonValue& policies = row_doc.Set("policies", JsonValue::Array());
    for (size_t p = 0; p < row.cells.size(); ++p) {
      const PolicyCell& cell = row.cells[p];
      JsonValue& cell_doc = policies.Append(JsonValue::Object());
      cell_doc.Set("id", options.policy_ids[p]);
      cell_doc.Set("energy_per_sec", cell.energy.mean() / horizon_ms * 1000.0);
      cell_doc.Set("normalized", cell.normalized_energy.mean());
      cell_doc.Set("stderr_normalized", cell.normalized_energy.stderr_mean());
      cell_doc.Set("deadline_misses", cell.deadline_misses);
      cell_doc.Set("tasksets_with_misses", cell.tasksets_with_misses);
      cell_doc.Set("audit_violations", cell.audit_violations);
      cell_doc.Set("admission_rejections", cell.admission_rejections);
      cell_doc.Set("counters", PolicyCountersToJson(cell.counters));
    }
  }

  JsonValue& profile = doc.Set("profile", JsonValue::Object());
  profile.Set("shards", result.profile.shards);
  profile.Set("simulations", result.profile.simulations);
  profile.Set("mean_shard_ms", result.profile.mean_shard_ms);
  profile.Set("p50_shard_ms", result.profile.p50_shard_ms);
  profile.Set("p95_shard_ms", result.profile.p95_shard_ms);
  profile.Set("max_shard_ms", result.profile.max_shard_ms);
  profile.Set("mean_queue_wait_ms", result.profile.mean_queue_wait_ms);
  profile.Set("p95_queue_wait_ms", result.profile.p95_queue_wait_ms);
  profile.Set("max_queue_wait_ms", result.profile.max_queue_wait_ms);
  profile.Set("shards_per_sec", result.profile.shards_per_sec);
  profile.Set("sims_per_sec", result.profile.sims_per_sec);
  JsonValue& totals = profile.Set("policy_counters", JsonValue::Object());
  for (size_t p = 0; p < result.profile.policy_counters.size(); ++p) {
    totals.Set(options.policy_ids[p],
               PolicyCountersToJson(result.profile.policy_counters[p]));
  }
  profile.Set("fastpath", FastPathStatsToJson(result.profile.fastpath));
  if (!result.profile.spans.empty()) {
    profile.Set("spans", result.profile.spans.ToJson());
  }

  doc.Set("audit_violations", result.audit_violations);
  doc.Set("elapsed_wall_ms", result.elapsed_wall_ms);
  doc.Set("elapsed_cpu_ms", result.elapsed_cpu_ms);
  return doc;
}

void WriteCsv(const SweepResult& result, std::ostream& out,
              const std::string& prefix) {
  out << prefix
      << ",utilization,policy,energy,normalized,stderr_normalized,"
         "deadline_misses,tasksets_with_misses\n";
  const double horizon_ms = result.options.horizon_ms;
  for (const auto& row : result.rows) {
    for (size_t p = 0; p < row.cells.size(); ++p) {
      const PolicyCell& cell = row.cells[p];
      out << prefix << ',' << FormatDouble(row.utilization, 2) << ','
          << result.options.policy_ids[p] << ','
          << FormatDouble(cell.energy.mean() / horizon_ms * 1000.0, 6) << ','
          << FormatDouble(cell.normalized_energy.mean(), 6) << ','
          << FormatDouble(cell.normalized_energy.stderr_mean(), 6) << ','
          << cell.deadline_misses << ',' << cell.tasksets_with_misses << '\n';
    }
    out << prefix << ',' << FormatDouble(row.utilization, 2) << ",bound,"
        << FormatDouble(row.bound.mean() / horizon_ms * 1000.0, 6) << ','
        << FormatDouble(row.normalized_bound.mean(), 6) << ','
        << FormatDouble(row.normalized_bound.stderr_mean(), 6) << ",0,0\n";
  }
}

}  // namespace rtdvs
