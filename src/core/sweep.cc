#include "src/core/sweep.h"

#include "src/dvs/policy.h"
#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

std::vector<double> DefaultUtilizationGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 20; ++i) {
    grid.push_back(static_cast<double>(i) * 0.05);
  }
  return grid;
}

UtilizationSweep::UtilizationSweep(SweepOptions options) : options_(std::move(options)) {
  if (options_.policy_ids.empty()) {
    options_.policy_ids = AllPaperPolicyIds();
  }
  if (options_.utilizations.empty()) {
    options_.utilizations = DefaultUtilizationGrid();
  }
  RTDVS_CHECK_GT(options_.tasksets_per_point, 0);
  RTDVS_CHECK_GT(options_.num_tasks, 0);
  RTDVS_CHECK(options_.exec_model_factory != nullptr);
}

std::vector<SweepRow> UtilizationSweep::Run() const {
  std::vector<SweepRow> rows;
  Pcg32 master(options_.seed);

  for (double utilization : options_.utilizations) {
    SweepRow row;
    row.utilization = utilization;
    row.cells.resize(options_.policy_ids.size());

    TaskSetGeneratorOptions gen_options;
    gen_options.num_tasks = options_.num_tasks;
    gen_options.target_utilization = utilization;
    TaskSetGenerator generator(gen_options);

    for (int set_index = 0; set_index < options_.tasksets_per_point; ++set_index) {
      Pcg32 set_rng = master.Fork();
      TaskSet tasks = options_.use_uunifast
                          ? GenerateUUniFast(options_.num_tasks, utilization, set_rng)
                          : generator.Generate(set_rng);
      // One seed per task set: every policy replays the same actual
      // execution-time draws (see the determinism note in the header).
      uint64_t workload_seed =
          (static_cast<uint64_t>(set_rng.NextU32()) << 32) | set_rng.NextU32();

      SimOptions sim_options;
      sim_options.horizon_ms = options_.horizon_ms;
      sim_options.idle_level = options_.idle_level;
      sim_options.seed = workload_seed;

      // Baseline first: plain EDF energy for normalization, and the bound.
      auto edf = MakePolicy("edf");
      auto edf_model = options_.exec_model_factory();
      SimResult edf_result =
          RunSimulation(tasks, options_.machine, *edf, *edf_model, sim_options);
      const double edf_energy = edf_result.total_energy();
      row.bound.Add(edf_result.lower_bound_energy);
      if (edf_energy > 0) {
        row.normalized_bound.Add(edf_result.lower_bound_energy / edf_energy);
      }

      for (size_t p = 0; p < options_.policy_ids.size(); ++p) {
        SimResult result;
        if (options_.policy_ids[p] == "edf") {
          result = edf_result;  // no need to rerun the baseline
        } else {
          auto policy = MakePolicy(options_.policy_ids[p]);
          auto model = options_.exec_model_factory();
          result = RunSimulation(tasks, options_.machine, *policy, *model, sim_options);
        }
        PolicyCell& cell = row.cells[p];
        cell.energy.Add(result.total_energy());
        if (edf_energy > 0) {
          cell.normalized_energy.Add(result.total_energy() / edf_energy);
        }
        cell.deadline_misses += result.deadline_misses;
        if (result.deadline_misses > 0) {
          ++cell.tasksets_with_misses;
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TextTable UtilizationSweep::ToTable(const std::vector<SweepRow>& rows,
                                    bool normalized) const {
  std::vector<std::string> header = {"utilization"};
  for (const auto& id : options_.policy_ids) {
    header.push_back(MakePolicy(id)->name());
  }
  header.push_back("bound");
  TextTable table(std::move(header));
  for (const auto& row : rows) {
    std::vector<std::string> cells = {FormatDouble(row.utilization, 2)};
    for (const auto& cell : row.cells) {
      double value =
          normalized ? cell.normalized_energy.mean()
                     : cell.energy.mean() / options_.horizon_ms * 1000.0;  // per second
      cells.push_back(FormatDouble(value, 4));
    }
    cells.push_back(FormatDouble(normalized ? row.normalized_bound.mean()
                                            : row.bound.mean() / options_.horizon_ms * 1000.0,
                                 4));
    table.AddRow(std::move(cells));
  }
  return table;
}

TextTable UtilizationSweep::MissTable(const std::vector<SweepRow>& rows) const {
  std::vector<std::string> header = {"utilization"};
  for (const auto& id : options_.policy_ids) {
    header.push_back(MakePolicy(id)->name());
  }
  TextTable table(std::move(header));
  for (const auto& row : rows) {
    std::vector<std::string> cells = {FormatDouble(row.utilization, 2)};
    for (const auto& cell : row.cells) {
      cells.push_back(StrFormat("%lld", static_cast<long long>(cell.deadline_misses)));
    }
    table.AddRow(std::move(cells));
  }
  return table;
}

}  // namespace rtdvs
