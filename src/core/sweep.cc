#include "src/core/sweep.h"

#include <chrono>
#include <ctime>
#include <future>
#include <utility>

#include "src/dvs/policy.h"
#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace rtdvs {
namespace {

// Everything one (utilization, task set) shard produces: the raw per-run
// numbers, NOT RunningStats. Shards run concurrently in arbitrary order;
// the merge loop replays these into RunningStats in serial grid order so
// the aggregate floating-point arithmetic is identical for every jobs
// value (Welford updates are order-sensitive).
struct ShardOutcome {
  double edf_energy = 0;
  double lower_bound = 0;
  // Violations from the EDF normalization baseline run (reported even when
  // "edf" is not among the swept policy ids).
  int64_t baseline_audit_violations = 0;
  struct PerPolicy {
    double energy = 0;
    int64_t deadline_misses = 0;
    int64_t audit_violations = 0;
  };
  std::vector<PerPolicy> policies;  // parallel to options.policy_ids
  std::vector<std::string> audit_messages;  // capped per shard
};

// Runs every policy on one generated task set. `set_rng` must be the fork
// the serial grid order assigns to this shard; the draw sequence below is
// byte-for-byte the one the original serial loop performed.
ShardOutcome RunShard(const SweepOptions& options, double utilization,
                      Pcg32 set_rng) {
  TaskSetGeneratorOptions gen_options;
  gen_options.num_tasks = options.num_tasks;
  gen_options.target_utilization = utilization;
  TaskSetGenerator generator(gen_options);

  TaskSet tasks = options.use_uunifast
                      ? GenerateUUniFast(options.num_tasks, utilization, set_rng)
                      : generator.Generate(set_rng);
  // One seed per task set: every policy replays the same actual
  // execution-time draws (see the determinism note in the header).
  uint64_t workload_seed =
      (static_cast<uint64_t>(set_rng.NextU32()) << 32) | set_rng.NextU32();

  SimOptions sim_options;
  sim_options.horizon_ms = options.horizon_ms;
  sim_options.idle_level = options.idle_level;
  sim_options.switch_time_ms = options.switch_time_ms;
  sim_options.miss_policy = options.miss_policy;
  sim_options.energy_coefficient = options.energy_coefficient;
  sim_options.audit = options.audit;
  sim_options.seed = workload_seed;

  ShardOutcome outcome;
  outcome.policies.resize(options.policy_ids.size());
  auto record_audit = [&outcome, utilization](const SimResult& result,
                                              int64_t* counter) {
    *counter += static_cast<int64_t>(result.audit.violations.size());
    constexpr size_t kMaxMessagesPerShard = 4;
    for (const auto& violation : result.audit.violations) {
      if (outcome.audit_messages.size() >= kMaxMessagesPerShard) {
        break;
      }
      outcome.audit_messages.push_back(
          StrFormat("[%s] u=%.2f %s: %s", AuditCheckName(violation.check),
                    utilization, result.policy_name.c_str(),
                    violation.message.c_str()));
    }
  };

  // Baseline first: plain EDF energy for normalization, and the bound.
  auto edf = MakePolicy("edf");
  auto edf_model = options.exec_model_factory();
  SimResult edf_result =
      RunSimulation(tasks, options.machine, *edf, *edf_model, sim_options);
  outcome.edf_energy = edf_result.total_energy();
  outcome.lower_bound = edf_result.lower_bound_energy;

  for (size_t p = 0; p < options.policy_ids.size(); ++p) {
    SimResult result;
    if (options.policy_ids[p] == "edf") {
      result = edf_result;  // no need to rerun the baseline
    } else {
      auto policy = MakePolicy(options.policy_ids[p]);
      auto model = options.exec_model_factory();
      result = RunSimulation(tasks, options.machine, *policy, *model, sim_options);
    }
    outcome.policies[p].energy = result.total_energy();
    outcome.policies[p].deadline_misses = result.deadline_misses;
    record_audit(result, &outcome.policies[p].audit_violations);
  }
  // The baseline's own violations, unless they were already counted via an
  // "edf" entry in the policy list.
  bool edf_in_list = false;
  for (const auto& id : options.policy_ids) {
    edf_in_list |= id == "edf";
  }
  if (!edf_in_list) {
    record_audit(edf_result, &outcome.baseline_audit_violations);
  }
  return outcome;
}

std::vector<std::string> PolicyHeader(const SweepResult& result,
                                      bool with_bound) {
  std::vector<std::string> header = {"utilization"};
  for (const auto& id : result.options.policy_ids) {
    header.push_back(MakePolicy(id)->name());
  }
  if (with_bound) {
    header.push_back("bound");
  }
  return header;
}

}  // namespace

std::vector<double> DefaultUtilizationGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 20; ++i) {
    grid.push_back(static_cast<double>(i) * 0.05);
  }
  return grid;
}

UtilizationSweep::UtilizationSweep(SweepOptions options) : options_(std::move(options)) {
  if (options_.policy_ids.empty()) {
    options_.policy_ids = AllPaperPolicyIds();
  }
  if (options_.utilizations.empty()) {
    options_.utilizations = DefaultUtilizationGrid();
  }
  RTDVS_CHECK_GT(options_.tasksets_per_point, 0);
  RTDVS_CHECK_GT(options_.num_tasks, 0);
  RTDVS_CHECK_GE(options_.jobs, 0);
  RTDVS_CHECK(options_.exec_model_factory != nullptr);
}

SweepResult UtilizationSweep::Run() const {
  const int jobs =
      options_.jobs > 0 ? options_.jobs : ThreadPool::DefaultNumThreads();
  const auto wall_start = std::chrono::steady_clock::now();
  const std::clock_t cpu_start = std::clock();

  SweepResult result = RunShards(jobs);

  result.options = options_;
  result.options.jobs = jobs;  // echo the resolved value
  result.elapsed_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  result.elapsed_cpu_ms = (std::clock() - cpu_start) * 1000.0 /
                          static_cast<double>(CLOCKS_PER_SEC);
  return result;
}

SweepResult UtilizationSweep::RunShards(int jobs) const {
  const size_t num_utils = options_.utilizations.size();
  const size_t sets = static_cast<size_t>(options_.tasksets_per_point);

  // Fork every shard's RNG from the master in serial grid order, before any
  // shard runs: the streams each shard sees are independent of jobs, and
  // adding sweep points still does not perturb earlier ones.
  Pcg32 master(options_.seed);
  std::vector<Pcg32> shard_rngs;
  shard_rngs.reserve(num_utils * sets);
  for (size_t ui = 0; ui < num_utils; ++ui) {
    for (size_t si = 0; si < sets; ++si) {
      shard_rngs.push_back(master.Fork());
    }
  }

  std::vector<ShardOutcome> outcomes(num_utils * sets);
  {
    ThreadPool pool(jobs);
    std::vector<std::future<void>> pending;
    pending.reserve(outcomes.size());
    for (size_t ui = 0; ui < num_utils; ++ui) {
      const double utilization = options_.utilizations[ui];
      for (size_t si = 0; si < sets; ++si) {
        const size_t shard = ui * sets + si;
        pending.push_back(pool.Submit([this, utilization, shard, &shard_rngs,
                                       &outcomes] {
          outcomes[shard] = RunShard(options_, utilization, shard_rngs[shard]);
        }));
      }
    }
    for (auto& future : pending) {
      future.get();  // rethrows the first shard failure on this thread
    }
  }

  // Merge in serial grid order. The Add() sequence below is exactly the one
  // the serial implementation performed inline, so means/variances are
  // bit-identical regardless of how shards interleaved above.
  SweepResult result;
  result.rows.reserve(num_utils);
  for (size_t ui = 0; ui < num_utils; ++ui) {
    SweepRow row;
    row.utilization = options_.utilizations[ui];
    row.cells.resize(options_.policy_ids.size());
    for (size_t si = 0; si < sets; ++si) {
      const ShardOutcome& outcome = outcomes[ui * sets + si];
      row.bound.Add(outcome.lower_bound);
      if (outcome.edf_energy > 0) {
        row.normalized_bound.Add(outcome.lower_bound / outcome.edf_energy);
      }
      result.audit_violations += outcome.baseline_audit_violations;
      constexpr size_t kMaxMessages = 10;
      for (const auto& message : outcome.audit_messages) {
        if (result.audit_messages.size() >= kMaxMessages) {
          break;
        }
        result.audit_messages.push_back(message);
      }
      for (size_t p = 0; p < options_.policy_ids.size(); ++p) {
        PolicyCell& cell = row.cells[p];
        cell.energy.Add(outcome.policies[p].energy);
        if (outcome.edf_energy > 0) {
          cell.normalized_energy.Add(outcome.policies[p].energy /
                                     outcome.edf_energy);
        }
        cell.deadline_misses += outcome.policies[p].deadline_misses;
        if (outcome.policies[p].deadline_misses > 0) {
          ++cell.tasksets_with_misses;
        }
        cell.audit_violations += outcome.policies[p].audit_violations;
        result.audit_violations += outcome.policies[p].audit_violations;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

TextTable RenderEnergyTable(const SweepResult& result, bool normalized) {
  TextTable table(PolicyHeader(result, /*with_bound=*/true));
  const double horizon_ms = result.options.horizon_ms;
  for (const auto& row : result.rows) {
    std::vector<std::string> cells = {FormatDouble(row.utilization, 2)};
    for (const auto& cell : row.cells) {
      double value = normalized ? cell.normalized_energy.mean()
                                : cell.energy.mean() / horizon_ms * 1000.0;  // per second
      cells.push_back(FormatDouble(value, 4));
    }
    cells.push_back(FormatDouble(normalized ? row.normalized_bound.mean()
                                            : row.bound.mean() / horizon_ms * 1000.0,
                                 4));
    table.AddRow(std::move(cells));
  }
  return table;
}

TextTable RenderMissTable(const SweepResult& result) {
  TextTable table(PolicyHeader(result, /*with_bound=*/false));
  for (const auto& row : result.rows) {
    std::vector<std::string> cells = {FormatDouble(row.utilization, 2)};
    for (const auto& cell : row.cells) {
      cells.push_back(StrFormat("%lld", static_cast<long long>(cell.deadline_misses)));
    }
    table.AddRow(std::move(cells));
  }
  return table;
}

bool AnyDeadlineMiss(const SweepResult& result) {
  for (const auto& row : result.rows) {
    for (const auto& cell : row.cells) {
      if (cell.deadline_misses > 0) {
        return true;
      }
    }
  }
  return false;
}

void WriteCsv(const SweepResult& result, std::ostream& out,
              const std::string& prefix) {
  out << prefix
      << ",utilization,policy,energy,normalized,stderr_normalized,"
         "deadline_misses,tasksets_with_misses\n";
  const double horizon_ms = result.options.horizon_ms;
  for (const auto& row : result.rows) {
    for (size_t p = 0; p < row.cells.size(); ++p) {
      const PolicyCell& cell = row.cells[p];
      out << prefix << ',' << FormatDouble(row.utilization, 2) << ','
          << result.options.policy_ids[p] << ','
          << FormatDouble(cell.energy.mean() / horizon_ms * 1000.0, 6) << ','
          << FormatDouble(cell.normalized_energy.mean(), 6) << ','
          << FormatDouble(cell.normalized_energy.stderr_mean(), 6) << ','
          << cell.deadline_misses << ',' << cell.tasksets_with_misses << '\n';
    }
    out << prefix << ',' << FormatDouble(row.utilization, 2) << ",bound,"
        << FormatDouble(row.bound.mean() / horizon_ms * 1000.0, 6) << ','
        << FormatDouble(row.normalized_bound.mean(), 6) << ','
        << FormatDouble(row.normalized_bound.stderr_mean(), 6) << ",0,0\n";
  }
}

}  // namespace rtdvs
