#include "src/core/scenario.h"

#include <fstream>
#include <sstream>

#include "src/dvs/policy.h"
#include "src/util/strings.h"

namespace rtdvs {

namespace {

std::vector<std::string> Fields(std::string_view line) {
  std::vector<std::string> fields;
  for (auto& field : Split(std::string(line), ' ')) {
    if (!field.empty()) {
      fields.push_back(field);
    }
  }
  return fields;
}

std::string Error(int line_number, const std::string& message) {
  return StrFormat("line %d: %s", line_number, message.c_str());
}

}  // namespace

std::unique_ptr<ExecTimeModel> MakeDemandModel(std::string_view spec) {
  std::string text(Trim(spec));
  if (text.empty()) {
    return std::make_unique<ConstantFractionModel>(1.0);
  }
  if (text == "uniform") {
    return std::make_unique<UniformFractionModel>(0.0, 1.0);
  }
  size_t eq = text.find('=');
  std::string key = text.substr(0, eq == std::string::npos ? text.size() : eq);
  std::string value = eq == std::string::npos ? "" : text.substr(eq + 1);
  if (key == "c") {
    auto fraction = ParseDouble(value);
    if (!fraction || *fraction <= 0 || *fraction > 1) {
      return nullptr;
    }
    return std::make_unique<ConstantFractionModel>(*fraction);
  }
  if (key == "uniform") {
    auto parts = Split(value, ',');
    if (parts.size() != 2) {
      return nullptr;
    }
    auto lo = ParseDouble(parts[0]);
    auto hi = ParseDouble(parts[1]);
    if (!lo || !hi || *lo < 0 || *hi <= *lo || *hi > 1) {
      return nullptr;
    }
    return std::make_unique<UniformFractionModel>(*lo, *hi);
  }
  if (key == "bimodal") {
    auto parts = Split(value, ',');
    if (parts.size() != 2) {
      return nullptr;
    }
    auto typical = ParseDouble(parts[0]);
    auto probability = ParseDouble(parts[1]);
    if (!typical || !probability || *typical <= 0 || *typical > 1 ||
        *probability < 0 || *probability > 1) {
      return nullptr;
    }
    return std::make_unique<BimodalFractionModel>(*typical, *probability);
  }
  if (key == "cold") {
    auto factor = ParseDouble(value);
    if (!factor || *factor < 1) {
      return nullptr;
    }
    return std::make_unique<ColdStartModel>(
        std::make_unique<ConstantFractionModel>(1.0), *factor);
  }
  return nullptr;
}

SimRequest Scenario::ToSimRequest(const SimOptions& options) const {
  SimRequest request;
  request.tasks = tasks;
  request.cluster.num_cores = num_cores;
  request.cluster.machine = machine;
  request.mode = mp_mode;
  request.partition = mp_partition;
  if (!policy_ids.empty()) {
    request.policy_ids = policy_ids;
  }
  request.options = options;
  request.options.aperiodic = server;
  return request;
}

std::unique_ptr<ExecTimeModel> Scenario::MakeExecModel() const {
  std::vector<std::unique_ptr<ExecTimeModel>> models;
  models.reserve(demand_specs.size());
  for (const auto& spec : demand_specs) {
    auto model = MakeDemandModel(spec);
    if (model == nullptr) {
      model = std::make_unique<ConstantFractionModel>(1.0);
    }
    models.push_back(std::move(model));
  }
  return std::make_unique<PerTaskModel>(std::move(models));
}

std::variant<Scenario, std::string> ParseScenario(std::string_view text) {
  Scenario scenario;
  bool saw_machine = false;
  int line_number = 0;
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string_view line(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    auto fields = Fields(Trim(line));
    if (fields.empty()) {
      continue;
    }
    const std::string& keyword = fields[0];

    if (keyword == "machine") {
      if (fields.size() != 2) {
        return Error(line_number, "machine takes exactly one argument");
      }
      for (const char* name : {"machine0", "machine1", "machine2", "k6"}) {
        if (fields[1] == name) {
          scenario.machine = MachineSpec::ByName(fields[1]);
          saw_machine = true;
          break;
        }
      }
      if (!saw_machine) {
        return Error(line_number, "unknown machine '" + fields[1] +
                                      "' (machine0|machine1|machine2|k6)");
      }
      continue;
    }

    if (keyword == "task") {
      if (fields.size() < 4 || fields.size() > 5) {
        return Error(line_number,
                     "task needs: task <name> <period_ms> <wcet_ms> [demand]");
      }
      auto period = ParseDouble(fields[2]);
      auto wcet = ParseDouble(fields[3]);
      if (!period || !wcet || *period <= 0 || *wcet <= 0 || *wcet > *period) {
        return Error(line_number, "invalid period/wcet (need 0 < wcet <= period)");
      }
      std::string demand = fields.size() == 5 ? fields[4] : "";
      if (MakeDemandModel(demand) == nullptr) {
        return Error(line_number, "invalid demand spec '" + demand + "'");
      }
      scenario.tasks.AddTask({fields[1], *period, *wcet, 0.0});
      scenario.demand_specs.push_back(demand);
      continue;
    }

    if (keyword == "server") {
      if (fields.size() < 4) {
        return Error(line_number,
                     "server needs: server <kind> <period_ms> <budget_ms> [...]");
      }
      if (fields[1] == "polling") {
        scenario.server.kind = ServerKind::kPolling;
      } else if (fields[1] == "deferrable") {
        scenario.server.kind = ServerKind::kDeferrable;
      } else if (fields[1] == "cbs") {
        scenario.server.kind = ServerKind::kCbs;
      } else {
        return Error(line_number,
                     "unknown server kind '" + fields[1] + "' (polling|deferrable|cbs)");
      }
      auto period = ParseDouble(fields[2]);
      auto budget = ParseDouble(fields[3]);
      if (!period || !budget || *period <= 0 || *budget <= 0 || *budget > *period) {
        return Error(line_number, "invalid server period/budget");
      }
      scenario.server.period_ms = *period;
      scenario.server.budget_ms = *budget;
      for (size_t i = 4; i < fields.size(); ++i) {
        size_t eq = fields[i].find('=');
        if (eq == std::string::npos) {
          return Error(line_number, "expected key=value, got '" + fields[i] + "'");
        }
        std::string key = fields[i].substr(0, eq);
        auto value = ParseDouble(fields[i].substr(eq + 1));
        if (!value || *value <= 0) {
          return Error(line_number, "invalid value in '" + fields[i] + "'");
        }
        if (key == "interarrival") {
          scenario.server.arrivals.mean_interarrival_ms = *value;
        } else if (key == "service") {
          scenario.server.arrivals.mean_service_ms = *value;
        } else if (key == "maxservice") {
          scenario.server.arrivals.max_service_ms = *value;
        } else {
          return Error(line_number, "unknown server option '" + key + "'");
        }
      }
      if (scenario.server.arrivals.max_service_ms <
          scenario.server.arrivals.mean_service_ms) {
        return Error(line_number, "maxservice must be >= service");
      }
      continue;
    }

    if (keyword == "cluster") {
      if (fields.size() < 2 || fields.size() > 4) {
        return Error(line_number,
                     "cluster needs: cluster <num_cores> "
                     "[mode=partitioned|global] [fit=ff|nf|bf|wf]");
      }
      auto cores = ParseInt(fields[1]);
      if (!cores || *cores < 1 || *cores > 64) {
        return Error(line_number, "cluster cores must be an integer in 1..64");
      }
      scenario.num_cores = static_cast<int>(*cores);
      for (size_t i = 2; i < fields.size(); ++i) {
        size_t eq = fields[i].find('=');
        if (eq == std::string::npos) {
          return Error(line_number, "expected key=value, got '" + fields[i] + "'");
        }
        std::string key = fields[i].substr(0, eq);
        std::string value = fields[i].substr(eq + 1);
        if (key == "mode") {
          auto mode = ParseMpMode(value);
          if (!mode) {
            return Error(line_number,
                         "unknown mode '" + value + "' (partitioned|global)");
          }
          scenario.mp_mode = *mode;
        } else if (key == "fit") {
          auto fit = ParsePartitionHeuristic(value);
          if (!fit) {
            return Error(line_number,
                         "unknown fit '" + value + "' (ff|nf|bf|wf)");
          }
          scenario.mp_partition = *fit;
        } else {
          return Error(line_number, "unknown cluster option '" + key + "'");
        }
      }
      continue;
    }

    if (keyword == "policies") {
      if (fields.size() < 2) {
        return Error(line_number, "policies needs: policies <id> [<id> ...]");
      }
      scenario.policy_ids.assign(fields.begin() + 1, fields.end());
      for (const std::string& id : scenario.policy_ids) {
        if (!IsValidPolicyId(id)) {
          return Error(line_number, "unknown policy id '" + id + "'");
        }
      }
      continue;
    }

    return Error(line_number, "unknown keyword '" + keyword + "'");
  }

  if (scenario.tasks.empty()) {
    return std::string("scenario declares no tasks");
  }
  if (scenario.policy_ids.size() > 1 &&
      scenario.policy_ids.size() != static_cast<size_t>(scenario.num_cores)) {
    return StrFormat(
        "policies declares %zu ids for %d cores (need one for every core, or "
        "exactly one applied to all)",
        scenario.policy_ids.size(), scenario.num_cores);
  }
  if (scenario.server.kind != ServerKind::kNone && scenario.num_cores > 1) {
    return std::string(
        "aperiodic servers require a single-core scenario (cluster 1)");
  }
  return scenario;
}

std::variant<Scenario, std::string> LoadScenarioFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return "cannot open scenario file: " + path;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseScenario(buffer.str());
}

}  // namespace rtdvs
