// Utilization-sweep experiment harness (§3.2 of the paper).
//
// Every evaluation figure in the paper has the same skeleton: generate many
// random task sets at each worst-case utilization, run every policy on the
// SAME task set with the SAME actual-execution draws, and plot energy
// (absolute for Fig 9, EDF-normalized for Figs 10-13) against utilization,
// together with the theoretical lower bound. This harness implements that
// skeleton once; each bench binary configures it.
//
// Determinism note: releases are periodic and processed in task-id order, so
// the execution-time model consumes randomness identically under every
// policy. Re-seeding per (utilization, task set) therefore gives all
// policies an identical workload — paired comparison, not just equal
// distributions.
//
// Parallelism note: the grid is embarrassingly parallel at the
// (utilization, task set) granularity, and Run() shards it exactly there
// across a fixed worker pool (SweepOptions::jobs). Each shard's generator
// stream is forked from the master RNG in serial grid order BEFORE any
// shard runs, and shard outputs are merged into RunningStats in the same
// serial order, so the result is bit-identical for every jobs value — the
// paired-comparison guarantee above survives parallel execution.
#ifndef SRC_CORE_SWEEP_H_
#define SRC_CORE_SWEEP_H_

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy_counters.h"
#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/taskset_generator.h"
#include "src/sim/simulator.h"
#include "src/util/profiler.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace rtdvs {

class JsonValue;

struct SweepOptions {
  // Policies to run, by factory id; defaults to the paper's six.
  std::vector<std::string> policy_ids;
  // Worst-case utilization grid; defaults to 0.05 .. 1.0 step 0.05.
  std::vector<double> utilizations;
  int num_tasks = 8;
  int tasksets_per_point = 50;
  double horizon_ms = 5000.0;
  double idle_level = 0.0;
  // Per-shard SimOptions pass-through (§4.1-style transition-latency sweeps
  // and firm-deadline ablations run on this same parallel harness).
  double switch_time_ms = 0.0;
  MissPolicy miss_policy = MissPolicy::kContinueLate;
  double energy_coefficient = 1.0;
  // Run SimAudit in every shard; violations are aggregated into
  // SweepResult::audit_violations (never aborting mid-sweep).
  bool audit = true;
  MachineSpec machine = MachineSpec::Machine0();
  // Multiprocessor sweep (the partitioned-vs-global energy comparisons):
  // each generated task set runs on an M-core cluster through the cluster
  // API instead of a single Simulator. The utilization axis stays PER-CORE
  // — the generator targets utilization * num_cores over the whole set —
  // so M = 2 at u = 0.5 means a half-loaded dual-core cluster. num_cores
  // == 1 (the default) takes the legacy single-core code path untouched,
  // so existing sweeps stay bit-identical. Partitioned shards a policy's
  // admission test rejects contribute no energy samples and are counted in
  // PolicyCell::admission_rejections. UUniFast is single-core only (its
  // per-task utilizations are unbounded above 1 when the total exceeds 1).
  int num_cores = 1;
  MpMode mp_mode = MpMode::kPartitioned;
  PartitionHeuristic mp_partition = PartitionHeuristic::kFirstFit;
  // Fresh execution-time model per run (models may keep no cross-run
  // state). Invoked concurrently from worker threads, so the factory must
  // be thread-safe; stateless lambdas capturing by value (every current
  // caller) trivially are.
  std::function<std::unique_ptr<ExecTimeModel>()> exec_model_factory =
      [] { return std::make_unique<ConstantFractionModel>(1.0); };
  // Optional non-paper generator (UUniFast ablation).
  bool use_uunifast = false;
  uint64_t seed = 20010901;  // SOSP'01
  // Worker threads for the sweep; 0 = hardware concurrency. Any value
  // produces bit-identical results (see the parallelism note above).
  int jobs = 0;
  // Optional progress hook, invoked once per completed shard with
  // (shards done, shards total). Calls are serialized by an internal mutex
  // but arrive from worker threads in completion order — keep it fast and
  // do not touch sweep state from it.
  std::function<void(int64_t done, int64_t total)> progress;
  // Collect RTDVS_PROF_SCOPE span timings during the sweep and report them
  // in SweepProfile::spans. Enables the process-global Profiler, so spans
  // from anything else running concurrently in the process fold in too —
  // one profiled sweep at a time. Off: spans cost one predicted branch.
  bool profile = false;
};

// Aggregated outcome of one policy at one utilization point.
struct PolicyCell {
  RunningStats energy;             // absolute energy units
  RunningStats normalized_energy;  // ratio to plain EDF on the same workload
  int64_t deadline_misses = 0;
  int64_t tasksets_with_misses = 0;
  int64_t audit_violations = 0;    // SimAudit violations across this cell
  // Multiprocessor sweeps only: task sets this policy's partitioned
  // admission (bin-packing) rejected; those shards add no energy samples.
  // Always 0 at num_cores == 1 and in global mode (no admission test).
  int64_t admission_rejections = 0;
  // Policy decision counters summed over the cell's simulations, merged in
  // serial grid order — bit-identical for every jobs value.
  PolicyCounters counters;
};

struct SweepRow {
  double utilization = 0;
  std::vector<PolicyCell> cells;   // parallel to options.policy_ids
  RunningStats bound;              // absolute lower bound
  RunningStats normalized_bound;   // bound / EDF energy
};

// Execution profile of one sweep run: shard timing measured by the thread
// pool around each shard task, plus grid-wide policy counter totals.
//
// The timing statistics accumulate in shard *completion* order and measure
// wall time on a loaded machine, so they vary run to run — diagnostics, not
// results. The policy counter totals are merged in serial grid order and
// are bit-identical for every jobs value, like everything else in rows.
struct SweepProfile {
  int64_t shards = 0;
  int64_t simulations = 0;  // policy runs + EDF baselines across the grid
  double mean_shard_ms = 0;
  double p50_shard_ms = 0;
  double p95_shard_ms = 0;
  double max_shard_ms = 0;
  double mean_queue_wait_ms = 0;
  double p95_queue_wait_ms = 0;
  double max_queue_wait_ms = 0;
  double shards_per_sec = 0;  // over Run()'s wall time
  double sims_per_sec = 0;
  // Grid-wide totals per policy, parallel to options.policy_ids.
  std::vector<PolicyCounters> policy_counters;
  // Grid-wide fast-path coverage (FastPathStats::MergeFrom over every
  // simulation, EDF baselines included) — benchdiff tracks coverage, not
  // just wall-clock.
  FastPathStats fastpath;
  // RTDVS_PROF_SCOPE span aggregation, drained after the pool joined.
  // Empty unless SweepOptions::profile; span counts are deterministic,
  // durations are wall-clock diagnostics.
  ProfileSnapshot spans;
};

// The complete outcome of one sweep: the data, an echo of the (resolved)
// options that produced it, and how long it took. A plain value type —
// renderers below consume it, and callers can persist or merge it freely.
struct SweepResult {
  std::vector<SweepRow> rows;
  SweepOptions options;        // as resolved by UtilizationSweep (defaults
                               // filled in, jobs echoed as actually used)
  double elapsed_wall_ms = 0;  // wall-clock time of Run()
  double elapsed_cpu_ms = 0;   // process CPU time of Run(), all threads
  // SimAudit violations over every simulation in the sweep (including the
  // EDF normalization baseline), with a capped sample of messages. Zero is
  // the only acceptable value for a healthy build.
  int64_t audit_violations = 0;
  std::vector<std::string> audit_messages;  // first few, for diagnostics
  SweepProfile profile;
};

class UtilizationSweep {
 public:
  explicit UtilizationSweep(SweepOptions options);

  // Runs the full grid. Cost: |utilizations| * tasksets_per_point *
  // (|policies|+1) simulations, spread over options.jobs workers.
  SweepResult Run() const;

  const SweepOptions& options() const { return options_; }

 private:
  SweepResult RunShards(int jobs) const;

  SweepOptions options_;
};

// Renders a result as the paper's figures do: one column per policy plus
// the bound. `normalized` selects EDF-relative values (Figs 10-13) vs
// absolute energy per second (Fig 9).
TextTable RenderEnergyTable(const SweepResult& result, bool normalized);

// A table of total deadline misses per policy/utilization; all-zero rows
// are the expected outcome for RT-DVS policies.
TextTable RenderMissTable(const SweepResult& result);

// True when any policy missed a deadline anywhere in the sweep.
bool AnyDeadlineMiss(const SweepResult& result);

// Emits the result as long-form CSV, one "<prefix>,..." line per
// (utilization, policy) plus one per-utilization "bound" row:
//   <prefix>,utilization,policy,energy,normalized,stderr_normalized,
//            deadline_misses,tasksets_with_misses
// The prefix keeps CSV greppable out of mixed stdout; energy is absolute
// units per simulated second, matching RenderEnergyTable(normalized=false).
void WriteCsv(const SweepResult& result, std::ostream& out,
              const std::string& prefix = "csv");

// The default utilization grid 0.05, 0.10, ..., 1.0.
std::vector<double> DefaultUtilizationGrid();

// A SweepOptions::progress callback rendering a single in-place updating
// stderr line: "sweep: 37/200 shards (18%)  elapsed 1.2s  eta 5.3s". Prints
// at most ~5 times/sec plus a final newline when done == total. Off by
// default everywhere; opt in with --progress.
std::function<void(int64_t done, int64_t total)> MakeStderrProgress();

// Machine-readable form of a SweepResult, used by the bench --json emitters:
//   {"config": {...},            // resolved options echo
//    "rows": [{"utilization", "bound", "normalized_bound",
//              "policies": [{"id", "energy_per_sec", "normalized",
//                            "stderr_normalized", "deadline_misses",
//                            "tasksets_with_misses", "audit_violations",
//                            "admission_rejections",
//                            "counters": {...}}, ...]}, ...],
//    "profile": {...},           // SweepProfile incl. per-policy counters
//    "audit_violations": N, "elapsed_wall_ms": ..., "elapsed_cpu_ms": ...}
JsonValue SweepResultToJson(const SweepResult& result);

}  // namespace rtdvs

#endif  // SRC_CORE_SWEEP_H_
