#include "src/kernel/kernel.h"

#include <algorithm>
#include <limits>

#include "src/rt/schedulability.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/util/time_eps.h"

namespace rtdvs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// Bridges DvsPolicy speed requests to PowerNow! register writes: the
// DeviceSpeedController (src/engine/speed_controller.h) calls Apply and then
// mirrors whatever point the hardware settled on.
class Kernel::PowerNowDevice : public SpeedDevice {
 public:
  explicit PowerNowDevice(Kernel* kernel) : kernel_(kernel) {}

  void Apply(double now_ms, const OperatingPoint& point) override {
    bool ok = kernel_->powernow_->SetNormalizedPoint(now_ms, point);
    RTDVS_CHECK(ok) << "policy requested frequency the PLL cannot produce: "
                    << point.ToString();
  }

  OperatingPoint Current() const override {
    return {kernel_->cpu_.frequency_mhz() / K6Cpu::kMaxRatedMhz,
            kernel_->cpu_.voltage()};
  }

 private:
  Kernel* kernel_;
};

// The kernel's EnergyAccountant (src/engine/energy_accountant.h): meters
// SystemPowerModel watts into the PowerMeter, Figure 15 style, while the
// base class keeps the busy/idle/halt wall-clock partition and work totals.
class Kernel::MeteredAccountant : public EnergyAccountant {
 public:
  explicit MeteredAccountant(Kernel* kernel) : kernel_(kernel) {}

 protected:
  double ExecutionJoules(double start_ms, double end_ms, double work,
                         const OperatingPoint& point) override {
    (void)work;
    (void)point;
    // Watts from the live hardware registers, not the normalized point: a
    // round-trip through MachineSpec would perturb the metered value.
    const double watts = kernel_->options_.power.ActiveWatts(
        kernel_->cpu_.frequency_mhz(), kernel_->cpu_.voltage());
    kernel_->meter_.Accumulate(start_ms, end_ms, watts);
    return watts * (end_ms - start_ms) / 1000.0;
  }

  double IdleJoules(double start_ms, double end_ms,
                    const OperatingPoint& point) override {
    (void)point;
    const double watts = kernel_->options_.power.HaltedWatts();
    kernel_->meter_.Accumulate(start_ms, end_ms, watts);
    return watts * (end_ms - start_ms) / 1000.0;
  }

  void OnSwitchHalt(double start_ms, double end_ms,
                    const OperatingPoint& point) override {
    (void)point;
    kernel_->meter_.Accumulate(start_ms, end_ms,
                               kernel_->options_.power.HaltedWatts());
  }

 private:
  Kernel* kernel_;
};

Kernel::Kernel(KernelOptions options)
    : options_(options),
      scheduler_(MakeScheduler(SchedulerKind::kEdf)),
      machine_(PowerNowModule::ExportedMachineSpec()) {
  if (options_.ideal_transitions) {
    cpu_.set_allow_zero_sgtc(true);
  }
  powernow_ = std::make_unique<PowerNowModule>(&cpu_, &procfs_);
  powernow_->set_procfs_clock(&now_ms_);
  powernow_->set_ideal_transitions(options_.ideal_transitions);
  device_ = std::make_unique<PowerNowDevice>(this);
  speed_ = std::make_unique<DeviceSpeedController>(device_.get(), &now_ms_);
  accountant_ = std::make_unique<MeteredAccountant>(this);
  context_builder_.Bind(&snapshot_, &machine_);
  ready_.BindScheduler(scheduler_.get());
  procfs_.RegisterFile(
      "/proc/rtdvs/tasks", [this] { return ReadTasksFile(); },
      [this](const std::string& data) { return WriteTasksFile(data); });
  procfs_.RegisterFile(
      "/proc/rtdvs/policy",
      [this] { return policy_ ? policy_->name() + "\n" : "(none)\n"; },
      [this](const std::string& data) {
        std::string id(Trim(data));
        if (!IsValidPolicyId(id)) {
          return false;
        }
        LoadPolicy(MakePolicy(id));
        return true;
      });
  procfs_.RegisterFile("/proc/rtdvs/stats", [this] { return ReadStatsFile(); },
                       nullptr);
}

Kernel::~Kernel() = default;

TaskSet Kernel::SnapshotTaskSet() const {
  TaskSet set;
  for (const auto& task : tasks_) {
    double padded =
        std::min(task.params.wcet_ms + options_.wcet_pad_ms, task.params.period_ms);
    set.AddTask({task.params.name, task.params.period_ms, padded, 0.0});
  }
  return set;
}

void Kernel::LoadPolicy(std::unique_ptr<DvsPolicy> policy) {
  policy_ = std::move(policy);
  scheduler_ =
      MakeScheduler(policy_ ? policy_->scheduler_kind() : SchedulerKind::kEdf);
  ready_.BindScheduler(scheduler_.get());
  ReinitializePolicy();
}

void Kernel::ReinitializePolicy() {
  snapshot_ = SnapshotTaskSet();
  if (tasks_.empty()) {
    wakeup_ms_.reset();
    return;
  }
  BuildContext();
  if (policy_) {
    policy_->OnStart(ctx_, *speed_);
    wakeup_ms_ = policy_->NextWakeupMs(ctx_);
  } else {
    // No RT scheduler/DVS module loaded: full speed, no guarantees (§4.2).
    speed_->SetOperatingPoint(PowerNowModule::ExportedMachineSpec().max_point());
    wakeup_ms_.reset();
  }
}

int Kernel::RegisterTask(KernelTaskParams params) {
  RTDVS_CHECK_GT(params.period_ms, 0.0);
  RTDVS_CHECK_GT(params.wcet_ms, 0.0);
  RTDVS_CHECK_LE(params.wcet_ms, params.period_ms);
  RTDVS_CHECK(params.exec_model != nullptr);

  if (options_.admission_control) {
    TaskSet prospective = SnapshotTaskSet();
    prospective.AddTask(
        {params.name, params.period_ms,
         std::min(params.wcet_ms + options_.wcet_pad_ms, params.period_ms), 0.0});
    SchedulerKind kind = policy_ ? policy_->scheduler_kind() : SchedulerKind::kEdf;
    bool admitted = kind == SchedulerKind::kEdf
                        ? EdfSchedulable(prospective, 1.0)
                        : RmSchedulableSufficient(prospective, 1.0);
    if (!admitted) {
      ++report_.rejected_admissions;
      RTDVS_LOG(kInfo) << "admission control rejected task '" << params.name
                       << "' (set would be unschedulable)";
      return -1;
    }
  }

  KernelTask task;
  task.handle = next_handle_++;
  task.last_actual_work = params.wcet_ms;
  task.params = std::move(params);
  // §4.3: insert the task immediately (so DVS decisions account for it) but
  // defer its first release past every in-flight invocation's deadline, by
  // which time the effects of stale DVS decisions have expired.
  task.next_release_ms = now_ms_;
  if (options_.defer_first_release) {
    for (const auto& job : jobs_) {
      if (!job.finished) {
        task.next_release_ms = std::max(task.next_release_ms, job.deadline_ms);
      }
    }
  }
  tasks_.push_back(std::move(task));
  ReinitializePolicy();
  return tasks_.back().handle;
}

int Kernel::DenseIndexOf(int handle) const {
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].handle == handle) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool Kernel::UnregisterTask(int handle) {
  int dense = DenseIndexOf(handle);
  if (dense < 0) {
    return false;
  }
  tasks_.erase(tasks_.begin() + dense);
  // Drop the task's jobs and remap the dense ids of the ones above it.
  jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                             [dense](const Job& job) { return job.task_id == dense; }),
              jobs_.end());
  for (auto& job : jobs_) {
    if (job.task_id > dense) {
      --job.task_id;
    }
  }
  ReinitializePolicy();
  return true;
}

std::optional<double> Kernel::FirstReleaseMs(int handle) const {
  int dense = DenseIndexOf(handle);
  if (dense < 0) {
    return std::nullopt;
  }
  const KernelTask& task = tasks_[static_cast<size_t>(dense)];
  // Only meaningful before the first release.
  return task.next_invocation == 0 ? std::optional<double>(task.next_release_ms)
                                   : std::nullopt;
}

void Kernel::BuildContext() {
  context_builder_.Build(
      now_ms_, jobs_, accountant_->totals(),
      [this](int id) {
        const KernelTask& task = tasks_[static_cast<size_t>(id)];
        return ContextBuilder::TaskSnapshot{task.next_release_ms,
                                            task.cumulative_executed,
                                            task.last_actual_work};
      },
      &ctx_);
}

size_t Kernel::PickJobIndex() const { return ready_.Pick(jobs_, snapshot_); }

double Kernel::NextReleaseTime() const {
  double t = kInf;
  for (const auto& task : tasks_) {
    t = std::min(t, task.next_release_ms);
  }
  return t;
}

double Kernel::EarliestActiveDeadlineAfter(double t) const {
  double earliest = kInf;
  for (const auto& job : jobs_) {
    if (!job.finished && job.deadline_ms > t + kTimeEpsMs) {
      earliest = std::min(earliest, job.deadline_ms);
    }
  }
  return earliest;
}

void Kernel::ReleaseDueJobs(std::vector<int>* released_dense) {
  for (size_t i = 0; i < tasks_.size(); ++i) {
    KernelTask& task = tasks_[i];
    while (task.next_release_ms <= now_ms_ + kTimeEpsMs) {
      // Per-task models receive task_id = 0 (see KernelTaskParams).
      double fraction =
          task.params.exec_model->DrawFraction(0, task.next_invocation, rng_);
      RTDVS_CHECK_GT(fraction, 0.0);
      Job job;
      job.task_id = static_cast<int>(i);
      job.invocation = task.next_invocation;
      job.release_ms = task.next_release_ms;
      job.deadline_ms = task.next_release_ms + task.params.period_ms;
      // Policies budget against the padded WCET (switch overheads, see
      // KernelOptions::wcet_pad_ms); the job's real demand is unpadded.
      job.wcet_work =
          std::min(task.params.wcet_ms + options_.wcet_pad_ms, task.params.period_ms);
      job.actual_work = fraction * task.params.wcet_ms;
      jobs_.push_back(job);
      ++task.next_invocation;
      task.next_release_ms += task.params.period_ms;
      ++report_.releases;
      released_dense->push_back(static_cast<int>(i));
    }
  }
}

void Kernel::RunUntil(double t_ms) {
  RTDVS_CHECK_GE(t_ms, now_ms_);

  while (now_ms_ < t_ms - kTimeEpsMs) {
    size_t running = PickJobIndex();

    double t_next = t_ms;
    t_next = std::min(t_next, NextReleaseTime());
    t_next = std::min(t_next, EarliestActiveDeadlineAfter(now_ms_));
    if (wakeup_ms_.has_value() && *wakeup_ms_ > now_ms_ + kTimeEpsMs) {
      t_next = std::min(t_next, *wakeup_ms_);
    }
    double exec_start = now_ms_;
    double f_norm = cpu_.frequency_mhz() / K6Cpu::kMaxRatedMhz;
    if (running != Scheduler::kNone) {
      exec_start = std::max(now_ms_, cpu_.transition_end_ms());
      t_next = std::min(t_next,
                        exec_start + jobs_[running].RemainingActualWork() / f_norm);
    }
    RTDVS_CHECK_GT(t_next, now_ms_ - kTimeEpsMs);
    t_next = std::max(t_next, now_ms_);
    t_next = std::min(t_next, t_ms);

    // Integrate power over [now_ms_, t_next) through the shared accountant
    // (the MeteredAccountant reads watts off the live cpu_ registers).
    const OperatingPoint point = speed_->current();
    if (running != Scheduler::kNone) {
      exec_start = std::min(std::max(exec_start, now_ms_), t_next);
      // Halted in a mandatory stop interval.
      accountant_->RecordSwitchHalt(now_ms_, exec_start, point);
      if (t_next > exec_start) {
        Job& job = jobs_[running];
        double work = std::min((t_next - exec_start) * f_norm,
                               job.RemainingActualWork());
        job.executed_work += work;
        tasks_[static_cast<size_t>(job.task_id)].cumulative_executed += work;
        accountant_->RecordExecution(exec_start, t_next, work, job.task_id, point);
      }
    } else if (t_next > now_ms_) {
      // A transition can overlap an idle window; the prototype halts either
      // way, so the whole span is charged as idle at halted watts.
      accountant_->RecordIdle(now_ms_, t_next, point);
    }
    now_ms_ = t_next;
    if (now_ms_ >= t_ms - kTimeEpsMs) {
      break;
    }

    // Completions, misses, releases — then policy hooks.
    std::vector<int> completed;
    for (auto& job : jobs_) {
      if (!job.finished && job.RemainingActualWork() <= kWorkEps) {
        job.finished = true;
        job.completion_ms = now_ms_;
        completed.push_back(job.task_id);
        ++report_.completions;
        tasks_[static_cast<size_t>(job.task_id)].last_actual_work = job.actual_work;
      }
    }
    for (auto& job : jobs_) {
      if (!job.finished && !job.missed && job.deadline_ms <= now_ms_ + kTimeEpsMs) {
        job.missed = true;  // tardy jobs keep running (Linux prototype style)
        ++report_.deadline_misses;
      }
    }
    std::vector<int> released;
    ReleaseDueJobs(&released);
    jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                               [](const Job& job) { return job.finished; }),
                jobs_.end());

    BuildContext();
    if (policy_) {
      for (int dense : completed) {
        policy_->OnTaskCompletion(dense, ctx_, *speed_);
      }
      for (int dense : released) {
        policy_->OnTaskRelease(dense, ctx_, *speed_);
      }
      if (wakeup_ms_.has_value() && *wakeup_ms_ <= now_ms_ + kTimeEpsMs) {
        policy_->OnWakeup(ctx_, *speed_);
      }
      wakeup_ms_ = policy_->NextWakeupMs(ctx_);
    }

    bool any_unfinished = false;
    for (const auto& job : jobs_) {
      any_unfinished = any_unfinished || !job.finished;
    }
    if (!any_unfinished && !was_idle_ && policy_ && !tasks_.empty()) {
      policy_->OnIdle(ctx_, *speed_);
    }
    was_idle_ = !any_unfinished;
  }
  now_ms_ = t_ms;
  cpu_.SyncTsc(now_ms_);
}

KernelReport Kernel::Report() const {
  KernelReport report = report_;
  report.now_ms = now_ms_;
  report.avg_system_watts = meter_.AverageWatts();
  report.total_joules = meter_.TotalJoules();
  report.voltage_transitions = powernow_->voltage_transitions();
  report.frequency_transitions = powernow_->frequency_only_transitions();
  report.cpu_crashed = cpu_.crashed();
  const EngineTotals& totals = accountant_->totals();
  report.busy_ms = totals.busy_ms;
  report.idle_ms = totals.idle_ms;
  report.transition_halt_ms = totals.switching_ms;
  report.total_work_executed = totals.work;
  return report;
}

std::string Kernel::ReadTasksFile() const {
  std::string out = "handle name period_ms wcet_ms invocations\n";
  for (const auto& task : tasks_) {
    out += StrFormat("%d %s %.6g %.6g %lld\n", task.handle, task.params.name.c_str(),
                     task.params.period_ms, task.params.wcet_ms,
                     static_cast<long long>(task.next_invocation));
  }
  return out;
}

bool Kernel::WriteTasksFile(const std::string& data) {
  // Commands: "register <name> <period_ms> <wcet_ms> [fraction]"
  //           "unregister <handle>"
  std::vector<std::string> fields;
  for (auto& field : Split(std::string(Trim(data)), ' ')) {
    if (!field.empty()) {
      fields.push_back(field);
    }
  }
  if (fields.empty()) {
    return false;
  }
  if (fields[0] == "register" && (fields.size() == 4 || fields.size() == 5)) {
    auto period = ParseDouble(fields[2]);
    auto wcet = ParseDouble(fields[3]);
    double fraction = 1.0;
    if (fields.size() == 5) {
      auto parsed = ParseDouble(fields[4]);
      if (!parsed.has_value()) {
        return false;
      }
      fraction = *parsed;
    }
    if (!period || !wcet || *period <= 0 || *wcet <= 0 || *wcet > *period ||
        fraction <= 0 || fraction > 1) {
      return false;
    }
    KernelTaskParams params;
    params.name = fields[1];
    params.period_ms = *period;
    params.wcet_ms = *wcet;
    params.exec_model = std::make_unique<ConstantFractionModel>(fraction);
    return RegisterTask(std::move(params)) >= 0;
  }
  if (fields[0] == "unregister" && fields.size() == 2) {
    auto handle = ParseInt(fields[1]);
    return handle.has_value() && UnregisterTask(static_cast<int>(*handle));
  }
  return false;
}

std::string Kernel::ReadStatsFile() const {
  KernelReport report = Report();
  return StrFormat(
      "now_ms %.3f\navg_watts %.3f\njoules %.3f\nreleases %lld\ncompletions %lld\n"
      "misses %lld\nvolt_transitions %lld\nfreq_transitions %lld\nbusy_ms %.3f\n"
      "idle_ms %.3f\nhalt_ms %.3f\n",
      report.now_ms, report.avg_system_watts, report.total_joules,
      static_cast<long long>(report.releases),
      static_cast<long long>(report.completions),
      static_cast<long long>(report.deadline_misses),
      static_cast<long long>(report.voltage_transitions),
      static_cast<long long>(report.frequency_transitions), report.busy_ms,
      report.idle_ms, report.transition_halt_ms);
}

}  // namespace rtdvs
