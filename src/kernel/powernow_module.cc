#include "src/kernel/powernow_module.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

PowerNowModule::PowerNowModule(K6Cpu* cpu, ProcFs* procfs)
    : cpu_(cpu), procfs_(procfs) {
  RTDVS_CHECK(cpu_ != nullptr);
  if (procfs_ != nullptr) {
    procfs_->RegisterFile(
        "/proc/powernow/ctl", [this] { return ReadCtl(); },
        [this](const std::string& data) { return WriteCtl(data); });
  }
}

PowerNowModule::~PowerNowModule() {
  if (procfs_ != nullptr) {
    procfs_->UnregisterFile("/proc/powernow/ctl");
  }
}

bool PowerNowModule::SetFrequencyMhz(double now_ms, double mhz) {
  const auto& table = K6Cpu::FrequencyTableMhz();
  int fid = -1;
  for (size_t i = 0; i < table.size(); ++i) {
    if (std::fabs(table[i] - mhz) < 0.5) {
      fid = static_cast<int>(i);
      break;
    }
  }
  if (fid < 0) {
    return false;  // PLL cannot produce this frequency
  }
  // Empirical voltage map: lowest stable setting for the target frequency.
  uint8_t vid = K6Cpu::IsStable(table[static_cast<size_t>(fid)],
                                K6Cpu::VoltageTable()[0])
                    ? 0
                    : 1;
  bool voltage_changes =
      std::fabs(K6Cpu::VoltageTable()[vid] - cpu_->voltage()) > 1e-9;
  if (!voltage_changes &&
      std::fabs(table[static_cast<size_t>(fid)] - cpu_->frequency_mhz()) < 0.5) {
    return true;  // already there; no transition needed
  }
  K6Cpu::Epmr epmr;
  epmr.fid = static_cast<uint8_t>(fid);
  epmr.vid = vid;
  epmr.sgtc_units = ideal_transitions_
                        ? 0u
                        : (voltage_changes ? kSgtcVoltageChange : kSgtcFrequencyOnly);
  cpu_->WriteEpmr(now_ms, epmr);
  if (voltage_changes) {
    ++voltage_transitions_;
  } else {
    ++frequency_only_transitions_;
  }
  return true;
}

bool PowerNowModule::SetNormalizedPoint(double now_ms, const OperatingPoint& point) {
  return SetFrequencyMhz(now_ms, std::round(point.frequency * K6Cpu::kMaxRatedMhz));
}

std::string PowerNowModule::ReadCtl() const {
  return StrFormat("%g MHz %.2f V%s\n", cpu_->frequency_mhz(), cpu_->voltage(),
                   cpu_->crashed() ? " CRASHED" : "");
}

bool PowerNowModule::WriteCtl(const std::string& data) {
  auto mhz = ParseDouble(data);
  if (!mhz.has_value()) {
    return false;
  }
  double now = procfs_now_ms_ != nullptr ? *procfs_now_ms_ : 0.0;
  return SetFrequencyMhz(now, *mhz);
}

}  // namespace rtdvs
