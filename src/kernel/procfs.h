// A /procfs-like string filesystem, mirroring how the paper's prototype
// exposes its kernel modules to user level: "tasks can use ordinary file
// read and write mechanisms to interact with our modules" (§4.2).
#ifndef SRC_KERNEL_PROCFS_H_
#define SRC_KERNEL_PROCFS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rtdvs {

class ProcFs {
 public:
  using ReadHandler = std::function<std::string()>;
  // Returns false to signal EINVAL-style rejection of the written string.
  using WriteHandler = std::function<bool(const std::string&)>;

  // Registers a file; either handler may be null (file is then write- or
  // read-only). Re-registering an existing path aborts: module name
  // collisions are programming errors.
  void RegisterFile(const std::string& path, ReadHandler read, WriteHandler write);
  void UnregisterFile(const std::string& path);
  bool Exists(const std::string& path) const;

  // nullopt: no such file or not readable.
  std::optional<std::string> Read(const std::string& path) const;
  // false: no such file, not writable, or the handler rejected the data.
  bool Write(const std::string& path, const std::string& data);

  std::vector<std::string> ListFiles() const;

 private:
  struct Node {
    ReadHandler read;
    WriteHandler write;
  };
  std::map<std::string, Node> nodes_;
};

}  // namespace rtdvs

#endif  // SRC_KERNEL_PROCFS_H_
