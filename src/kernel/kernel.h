// The miniature embedded OS of Figure 14, hosting the RT-DVS prototype:
//
//   * a periodic real-time task service (tasks registered at run time, each
//     released every period and blocked again on completion),
//   * a single hot-swappable scheduler/DVS policy module slot ("one such RT
//     scheduler/DVS module can be loaded on the system at a time"; with
//     none loaded the system falls back to plain EDF at full speed, and
//     timeliness is not guaranteed — §4.2),
//   * the PowerNow! module driving the register-level K6-2+ device with
//     its mandatory stop intervals,
//   * a /procfs interface for tasks, policy and stats, and
//   * the measurement rig of Figure 15 (system power into a PowerMeter).
//
// This is the paper's "implementation" substrate; src/sim is its
// "simulation" substrate. bench_fig16/17 validate one against the other the
// same way §4.3 does.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dvs/policy.h"
#include "src/engine/context_builder.h"
#include "src/engine/energy_accountant.h"
#include "src/engine/ready_queue.h"
#include "src/engine/speed_controller.h"
#include "src/kernel/powernow_module.h"
#include "src/kernel/procfs.h"
#include "src/platform/k6_cpu.h"
#include "src/platform/power_meter.h"
#include "src/platform/system_power.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/job.h"

namespace rtdvs {

struct KernelOptions {
  SystemPowerModel power;
  // Reject tasks whose admission would break the loaded policy's
  // schedulability test (at full speed).
  bool admission_control = true;
  // §4.3 observation 2: defer a new task's first release until the current
  // invocations of all existing tasks have completed, so stale DVS
  // decisions cannot cause transient misses.
  bool defer_first_release = true;
  // §2.5/§4.1: "no more than two switches can occur per task per invocation
  // period, so these overheads can easily be accounted for, and added to,
  // the worst-case task computation times." This pad (in ms of work) is
  // added to every task's WCET as seen by schedulability tests and DVS
  // policies — actual execution is unaffected. Default: two worst-case
  // voltage transitions. Clamped so padded WCET never exceeds the period.
  double wcet_pad_ms = 2 * 10 * 4096.0 / (100.0 * 1000.0);  // 2 x 0.4096 ms
  // Program SGTC = 0 on every PowerNow! transition, eliminating the
  // mandatory stop interval. Not real hardware behaviour — used by
  // validation rigs comparing the kernel against switch_time_ms = 0
  // simulations (tests/kernel/sim_kernel_parity_test.cc).
  bool ideal_transitions = false;
};

struct KernelTaskParams {
  std::string name;
  double period_ms = 0;
  double wcet_ms = 0;  // at 550 MHz
  // Actual per-invocation behaviour; the kernel passes task_id = 0.
  std::unique_ptr<ExecTimeModel> exec_model;
};

struct KernelReport {
  double now_ms = 0;
  double avg_system_watts = 0;
  double total_joules = 0;
  int64_t releases = 0;
  int64_t completions = 0;
  int64_t deadline_misses = 0;
  int64_t rejected_admissions = 0;
  int64_t voltage_transitions = 0;
  int64_t frequency_transitions = 0;
  double busy_ms = 0;
  double idle_ms = 0;
  double transition_halt_ms = 0;
  double total_work_executed = 0;  // in 550 MHz-milliseconds
  bool cpu_crashed = false;
};

class Kernel {
 public:
  explicit Kernel(KernelOptions options);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  ProcFs& procfs() { return procfs_; }
  K6Cpu& cpu() { return cpu_; }
  PowerNowModule& powernow() { return *powernow_; }
  double now_ms() const { return now_ms_; }

  // Loads a policy module (replacing any loaded one; nullptr unloads).
  // Running tasks keep running; the new policy re-derives its state from
  // the live task set — the paper's "dynamic switching ... without shutting
  // down the system or the running RT tasks".
  void LoadPolicy(std::unique_ptr<DvsPolicy> policy);
  const DvsPolicy* policy() const { return policy_.get(); }

  // Registers a periodic task at the current time. Returns a stable handle,
  // or -1 when admission control rejects the set.
  int RegisterTask(KernelTaskParams params);
  bool UnregisterTask(int handle);
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  // The deferred first release chosen for a task (equals registration time
  // when deferral is off or nothing was active).
  std::optional<double> FirstReleaseMs(int handle) const;

  // Advances simulated time, executing tasks, firing the policy hooks and
  // integrating power. May be called repeatedly with increasing times.
  void RunUntil(double t_ms);

  KernelReport Report() const;
  const PowerMeter& power_meter() const { return meter_; }

 private:
  // SpeedDevice bridging DeviceSpeedController to the PowerNow module.
  class PowerNowDevice;
  // EnergyAccountant metering SystemPowerModel watts into the PowerMeter.
  class MeteredAccountant;

  struct KernelTask {
    int handle = -1;
    KernelTaskParams params;
    double next_release_ms = 0;
    int64_t next_invocation = 0;
    double cumulative_executed = 0;
    double last_actual_work = 0;
  };

  TaskSet SnapshotTaskSet() const;
  void BuildContext();
  void ReinitializePolicy();
  size_t PickJobIndex() const;
  double NextReleaseTime() const;
  double EarliestActiveDeadlineAfter(double t) const;
  void ReleaseDueJobs(std::vector<int>* released_dense);
  int DenseIndexOf(int handle) const;
  std::string ReadTasksFile() const;
  bool WriteTasksFile(const std::string& data);
  std::string ReadStatsFile() const;

  KernelOptions options_;
  ProcFs procfs_;
  K6Cpu cpu_;
  std::unique_ptr<PowerNowModule> powernow_;
  PowerMeter meter_;
  std::unique_ptr<DvsPolicy> policy_;
  std::unique_ptr<Scheduler> scheduler_;  // fallback EDF when no policy

  std::vector<KernelTask> tasks_;   // dense; order defines policy task ids
  TaskSet snapshot_;                // dense TaskSet view handed to policies
  std::vector<Job> jobs_;           // Job::task_id holds the DENSE index
  PolicyContext ctx_;

  // Engine components (src/engine/) composed on the kernel's hardware; the
  // simulator composes the same ContextBuilder / EnergyAccountant /
  // SpeedController seams on modeled state.
  MachineSpec machine_;             // = PowerNowModule::ExportedMachineSpec()
  ContextBuilder context_builder_;
  ReadyQueue ready_;
  std::unique_ptr<SpeedDevice> device_;
  std::unique_ptr<DeviceSpeedController> speed_;
  std::unique_ptr<EnergyAccountant> accountant_;

  std::optional<double> wakeup_ms_;
  Pcg32 rng_{0x6b65726e656cULL};  // feeds the per-task execution-time models
  bool was_idle_ = false;
  int next_handle_ = 0;
  double now_ms_ = 0;

  KernelReport report_;
};

}  // namespace rtdvs

#endif  // SRC_KERNEL_KERNEL_H_
