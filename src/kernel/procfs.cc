#include "src/kernel/procfs.h"

#include "src/util/check.h"

namespace rtdvs {

void ProcFs::RegisterFile(const std::string& path, ReadHandler read,
                          WriteHandler write) {
  RTDVS_CHECK(!path.empty());
  RTDVS_CHECK(nodes_.find(path) == nodes_.end())
      << "procfs path already registered: " << path;
  nodes_[path] = Node{std::move(read), std::move(write)};
}

void ProcFs::UnregisterFile(const std::string& path) {
  RTDVS_CHECK(nodes_.erase(path) == 1) << "procfs path not registered: " << path;
}

bool ProcFs::Exists(const std::string& path) const {
  return nodes_.find(path) != nodes_.end();
}

std::optional<std::string> ProcFs::Read(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || !it->second.read) {
    return std::nullopt;
  }
  return it->second.read();
}

bool ProcFs::Write(const std::string& path, const std::string& data) {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || !it->second.write) {
    return false;
  }
  return it->second.write(data);
}

std::vector<std::string> ProcFs::ListFiles() const {
  std::vector<std::string> paths;
  paths.reserve(nodes_.size());
  for (const auto& [path, node] : nodes_) {
    paths.push_back(path);
  }
  return paths;
}

}  // namespace rtdvs
