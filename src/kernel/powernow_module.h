// The PowerNow! kernel module (§4.2): "handles the access to the PowerNow!
// mechanism to adjust clock speed and voltage. This provides a clean,
// high-level interface for setting the appropriate bits of the processor's
// special feature register for any desired frequency and voltage level."
//
// It owns the empirically determined frequency -> voltage map (1.4 V up to
// 450 MHz, 2.0 V above), programs the stop-grant timeout like the prototype
// (10 units ~ 0.41 ms when the voltage changes, 1 unit ~ 41 us when only
// the frequency does), and exposes /proc/powernow/ctl so "a user-level,
// non-RT DVS demon" or plain shell commands can drive it.
#ifndef SRC_KERNEL_POWERNOW_MODULE_H_
#define SRC_KERNEL_POWERNOW_MODULE_H_

#include <cstdint>
#include <string>

#include "src/cpu/machine_spec.h"
#include "src/kernel/procfs.h"
#include "src/platform/k6_cpu.h"

namespace rtdvs {

class PowerNowModule {
 public:
  // `cpu` must outlive the module. Registers /proc/powernow/ctl.
  PowerNowModule(K6Cpu* cpu, ProcFs* procfs);
  ~PowerNowModule();

  // Sets the clock to `mhz` (must be a PLL table entry) at time now_ms,
  // choosing the lowest stable voltage and an SGTC long enough for the kind
  // of transition. Returns false for frequencies the PLL cannot produce.
  bool SetFrequencyMhz(double now_ms, double mhz);

  // Governor-facing convenience: maps a normalized operating point from
  // MachineSpec::K6TwoPointFour() onto the PLL table.
  bool SetNormalizedPoint(double now_ms, const OperatingPoint& point);

  // The machine specification this module exports to DVS policies.
  static MachineSpec ExportedMachineSpec() { return MachineSpec::K6TwoPointFour(); }

  double frequency_mhz() const { return cpu_->frequency_mhz(); }
  double voltage() const { return cpu_->voltage(); }
  int64_t voltage_transitions() const { return voltage_transitions_; }
  int64_t frequency_only_transitions() const { return frequency_only_transitions_; }

  // The SGTC programming the prototype used.
  static constexpr uint32_t kSgtcVoltageChange = 10;  // ~0.41 ms
  static constexpr uint32_t kSgtcFrequencyOnly = 1;   // ~41 us

  // The procfs clock used to timestamp writes arriving through /proc.
  void set_procfs_clock(const double* now_ms) { procfs_now_ms_ = now_ms; }

  // Program SGTC = 0 on every transition (no stop interval). Requires the
  // CPU to allow zero SGTC (K6Cpu::set_allow_zero_sgtc); used by validation
  // rigs comparing against ideal-switch simulations.
  void set_ideal_transitions(bool ideal) { ideal_transitions_ = ideal; }

 private:
  std::string ReadCtl() const;
  bool WriteCtl(const std::string& data);

  K6Cpu* cpu_;
  ProcFs* procfs_;
  const double* procfs_now_ms_ = nullptr;
  bool ideal_transitions_ = false;
  int64_t voltage_transitions_ = 0;
  int64_t frequency_only_transitions_ = 0;
};

}  // namespace rtdvs

#endif  // SRC_KERNEL_POWERNOW_MODULE_H_
