// Register-level simulation of the AMD K6-2+ PowerNow! mechanism on the
// HP N3350 (§4.1 of the paper).
//
// Modelled hardware behaviour:
//  * A built-in PLL clock generator offering 200-600 MHz in 50 MHz steps,
//    skipping 250 MHz, capped at the chip's 550 MHz rating.
//  * 5 voltage-ID pins driving an external regulator. 32 encodings are
//    possible, but HP wired up only two: 1.4 V and 2.0 V.
//  * Writes to the EPMR (enhanced power-management register) select a new
//    frequency ID, voltage ID and a stop-grant timeout count (SGTC). The
//    processor halts for SGTC x 4096 bus-clock cycles (40.96 us at the
//    100 MHz bus) while the clock and supply stabilize.
//  * The TSC keeps counting during the halt — at (approximately) the target
//    frequency, which is how the paper measured ~8200 cycles for a
//    transition to 200 MHz and ~22500 for one to 550 MHz at the minimum
//    SGTC of one unit (41 us).
//  * Empirical stability envelope: 1.4 V suffices up to 450 MHz; 500 and
//    550 MHz require 2.0 V. Programming an unstable combination crashes the
//    (simulated) processor.
//
// All methods take the current simulated time in ms; the device itself
// holds no clock.
#ifndef SRC_PLATFORM_K6_CPU_H_
#define SRC_PLATFORM_K6_CPU_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rtdvs {

class K6Cpu {
 public:
  // Frequency IDs: index into the PLL table below.
  static constexpr double kBusClockMhz = 100.0;
  static constexpr double kSgtcUnitMs = 4096.0 / (kBusClockMhz * 1000.0);  // 40.96 us
  static constexpr double kMaxRatedMhz = 550.0;

  // PLL settings within the chip's rating (250 MHz is skipped by the PLL).
  static const std::vector<double>& FrequencyTableMhz();
  // The two regulator voltages HP wired: index 0 -> 1.4 V, 1 -> 2.0 V.
  static const std::vector<double>& VoltageTable();

  struct Epmr {
    uint8_t fid = 6;        // frequency ID (defaults to 550 MHz)
    uint8_t vid = 1;        // voltage ID (defaults to 2.0 V)
    uint32_t sgtc_units = 1;  // halt duration in 40.96 us units (>= 1)
  };

  K6Cpu();

  // Programs a transition at time now_ms. The processor halts until
  // transition_end_ms(); frequency and voltage take effect at the write
  // (the clock retargets quickly; most of the halt is stabilization time —
  // matching the paper's TSC observations). Writing an out-of-envelope
  // combination sets crashed().
  void WriteEpmr(double now_ms, const Epmr& value);

  double frequency_mhz() const { return FrequencyTableMhz()[epmr_.fid]; }
  double voltage() const { return VoltageTable()[epmr_.vid]; }
  const Epmr& epmr() const { return epmr_; }

  // True while the mandatory stop interval of the last transition is
  // still running at now_ms.
  bool InTransition(double now_ms) const { return now_ms < transition_end_ms_; }
  double transition_end_ms() const { return transition_end_ms_; }

  // Time-stamp counter value at now_ms (cycles since construction at t=0).
  // Advances at the programmed frequency, including during halts — callers
  // must pass non-decreasing times.
  uint64_t Tsc(double now_ms) const;
  // Bookkeeping hook: commits TSC up to now_ms; called on every state
  // change so Tsc() stays O(1).
  void SyncTsc(double now_ms);

  bool crashed() const { return crashed_; }
  // True when (mhz, volts) is within the empirically determined envelope.
  static bool IsStable(double mhz, double volts);

  // Real hardware requires SGTC >= 1; validation rigs (e.g. the sim/kernel
  // parity test) may opt into SGTC = 0 writes, which transition with no
  // stop interval at all.
  void set_allow_zero_sgtc(bool allow) { allow_zero_sgtc_ = allow; }

  int64_t transition_count() const { return transition_count_; }
  std::string ToString() const;

 private:
  Epmr epmr_;
  double transition_end_ms_ = 0;
  double tsc_synced_ms_ = 0;
  double tsc_cycles_ = 0;  // cycles accumulated up to tsc_synced_ms_
  int64_t transition_count_ = 0;
  bool crashed_ = false;
  bool allow_zero_sgtc_ = false;
};

}  // namespace rtdvs

#endif  // SRC_PLATFORM_K6_CPU_H_
