#include "src/platform/system_power.h"

#include "src/util/strings.h"

namespace rtdvs {

std::string SystemPowerModel::Table1() const {
  SystemPowerModel m = *this;  // local copy to toggle screen/disk states
  std::string out = "CPU subsystem  Screen  Disk      Power\n";
  m.screen_on = true;
  m.disk_spinning = true;
  out += StrFormat("Idle           On      Spinning  %.1f W\n", m.HaltedWatts());
  m.disk_spinning = false;
  out += StrFormat("Idle           On      Standby   %.1f W\n", m.HaltedWatts());
  m.screen_on = false;
  out += StrFormat("Idle           Off     Standby   %.1f W\n", m.HaltedWatts());
  out += StrFormat("Max. Load      Off     Standby   %.1f W\n",
                   m.ActiveWatts(m.cpu_max_mhz, m.cpu_max_volt));
  return out;
}

}  // namespace rtdvs
