// The measurement rig of Figure 15: battery removed, a current probe on the
// DC adapter feeding a digital oscilloscope whose long-duration acquisition
// averages true power over 15-30 second intervals.
#ifndef SRC_PLATFORM_POWER_METER_H_
#define SRC_PLATFORM_POWER_METER_H_

#include <vector>

namespace rtdvs {

class PowerMeter {
 public:
  // Records that the system drew `watts` over [start_ms, end_ms).
  // Segments must be appended in non-decreasing time order.
  void Accumulate(double start_ms, double end_ms, double watts);

  // True average power over everything recorded (the oscilloscope's
  // long-acquisition mean).
  double AverageWatts() const;
  // Average over a window, for transient inspection.
  double AverageWatts(double start_ms, double end_ms) const;

  double TotalJoules() const { return total_watt_ms_ / 1000.0; }
  double DurationMs() const { return duration_ms_; }

  struct Segment {
    double start_ms;
    double end_ms;
    double watts;
  };
  // The recorded (merged) power waveform; feeds e.g. the thermal model.
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
  double total_watt_ms_ = 0;
  double duration_ms_ = 0;
};

}  // namespace rtdvs

#endif  // SRC_PLATFORM_POWER_METER_H_
