// Battery-life model: the paper's whole motivation is "the most serious
// limitation on these devices is the available battery life" — this module
// turns the power numbers of Figure 16 into hours.
//
// Model: a battery of nominal capacity (watt-hours) drained through a DC-DC
// conversion path of efficiency eta, with rate-dependent capacity loss per
// Peukert's law: effective capacity shrinks as the discharge rate rises,
//   life = (capacity / P_drawn) * (P_rated / P_drawn)^(k - 1)
// with k = 1 an ideal battery and k ~ 1.1-1.3 typical of Li-ion/NiMH packs.
#ifndef SRC_PLATFORM_BATTERY_H_
#define SRC_PLATFORM_BATTERY_H_

namespace rtdvs {

struct BatteryParams {
  // Nominal pack energy in watt-hours (the N3350-era packs were ~40 Wh).
  double capacity_wh = 40.0;
  // Discharge power at which the nominal capacity was rated.
  double rated_power_w = 15.0;
  // Peukert exponent (1.0 = ideal; higher = worse under high drain).
  double peukert_exponent = 1.15;
  // DC-DC conversion efficiency from pack to system rails.
  double converter_efficiency = 0.90;
};

class BatteryModel {
 public:
  explicit BatteryModel(BatteryParams params);

  // Hours of runtime when the system draws `system_watts` continuously.
  double LifeHours(double system_watts) const;

  // Pack-side power for a given system draw (conversion losses included).
  double PackWatts(double system_watts) const;

  const BatteryParams& params() const { return params_; }

 private:
  BatteryParams params_;
};

}  // namespace rtdvs

#endif  // SRC_PLATFORM_BATTERY_H_
