#include "src/platform/thermal.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace rtdvs {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), temperature_c_(params.ambient_c), peak_c_(params.ambient_c) {
  RTDVS_CHECK_GT(params_.resistance_c_per_w, 0.0);
  RTDVS_CHECK_GT(params_.capacitance_j_per_c, 0.0);
}

double ThermalModel::SteadyStateC(double watts) const {
  return params_.ambient_c + watts * params_.resistance_c_per_w;
}

void ThermalModel::Advance(double duration_ms, double watts) {
  RTDVS_CHECK_GE(duration_ms, 0.0);
  RTDVS_CHECK_GE(watts, 0.0);
  if (duration_ms == 0) {
    return;
  }
  // Exact solution of the first-order ODE over a constant-power segment:
  // T(t) = T_ss + (T0 - T_ss) * exp(-t / tau), tau = R * C.
  const double tau_ms = params_.resistance_c_per_w * params_.capacitance_j_per_c * 1000.0;
  const double t_ss = SteadyStateC(watts);
  const double t0 = temperature_c_;
  const double decay = std::exp(-duration_ms / tau_ms);
  temperature_c_ = t_ss + (t0 - t_ss) * decay;

  // Peak within the segment is at whichever end is hotter (monotone curve).
  peak_c_ = std::max(peak_c_, std::max(t0, temperature_c_));

  // Exact integral of T over the segment for the running mean.
  integral_c_ms_ += t_ss * duration_ms + (t0 - t_ss) * tau_ms * (1.0 - decay);
  elapsed_ms_ += duration_ms;
}

double ThermalModel::MeanC() const {
  return elapsed_ms_ == 0 ? temperature_c_ : integral_c_ms_ / elapsed_ms_;
}

}  // namespace rtdvs
