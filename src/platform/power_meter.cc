#include "src/platform/power_meter.h"

#include <algorithm>

#include "src/util/check.h"

namespace rtdvs {

void PowerMeter::Accumulate(double start_ms, double end_ms, double watts) {
  RTDVS_CHECK_LE(start_ms, end_ms + 1e-9);
  if (end_ms <= start_ms) {
    return;
  }
  RTDVS_CHECK_GE(watts, 0.0);
  if (!segments_.empty()) {
    RTDVS_CHECK_GE(start_ms, segments_.back().start_ms - 1e-9)
        << "power segments must arrive in time order";
  }
  // Merge contiguous equal-power segments to keep the record compact.
  if (!segments_.empty() && segments_.back().watts == watts &&
      std::abs(segments_.back().end_ms - start_ms) < 1e-9) {
    segments_.back().end_ms = end_ms;
  } else {
    segments_.push_back({start_ms, end_ms, watts});
  }
  total_watt_ms_ += watts * (end_ms - start_ms);
  duration_ms_ += end_ms - start_ms;
}

double PowerMeter::AverageWatts() const {
  return duration_ms_ == 0 ? 0.0 : total_watt_ms_ / duration_ms_;
}

double PowerMeter::AverageWatts(double start_ms, double end_ms) const {
  RTDVS_CHECK_LT(start_ms, end_ms);
  double watt_ms = 0;
  double covered = 0;
  for (const auto& seg : segments_) {
    double lo = std::max(seg.start_ms, start_ms);
    double hi = std::min(seg.end_ms, end_ms);
    if (hi > lo) {
      watt_ms += seg.watts * (hi - lo);
      covered += hi - lo;
    }
  }
  return covered == 0 ? 0.0 : watt_ms / covered;
}

}  // namespace rtdvs
