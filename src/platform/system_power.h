// Whole-system power model of the prototype platform (HP N3350 laptop),
// calibrated from Table 1 of the paper:
//
//   CPU subsystem   Screen  Disk      Power
//   Idle            On      Spinning  13.5 W
//   Idle            On      Standby   13.0 W
//   Idle            Off     Standby    7.1 W
//   Max. Load       Off     Standby   27.3 W
//
// Decomposition: a 7.1 W irreducible floor (system board + halted CPU), a
// 5.9 W backlit screen, a 0.5 W spinning disk, and a CPU active swing of
// 20.2 W at the maximum operating point (550 MHz, 2.0 V) that scales with
// f * V^2 like any CMOS part.
#ifndef SRC_PLATFORM_SYSTEM_POWER_H_
#define SRC_PLATFORM_SYSTEM_POWER_H_

#include <string>

namespace rtdvs {

struct SystemPowerModel {
  double floor_w = 7.1;          // board + halted CPU, screen off, disk standby
  double screen_w = 5.9;         // backlighting
  double disk_w = 0.5;           // spindle
  double cpu_active_max_w = 20.2;  // CPU swing at f_max, V_max over halted
  double cpu_max_mhz = 550.0;
  double cpu_max_volt = 2.0;

  bool screen_on = false;   // the paper measured with backlighting off
  bool disk_spinning = false;

  // CPU active-power swing at (mhz, volts): cycles/s scale with f, energy
  // per cycle with V^2.
  double CpuActiveWatts(double mhz, double volts) const {
    return cpu_active_max_w * (mhz / cpu_max_mhz) *
           (volts * volts) / (cpu_max_volt * cpu_max_volt);
  }

  double BaseWatts() const {
    return floor_w + (screen_on ? screen_w : 0.0) + (disk_spinning ? disk_w : 0.0);
  }

  // Total system draw while the CPU executes at (mhz, volts).
  double ActiveWatts(double mhz, double volts) const {
    return BaseWatts() + CpuActiveWatts(mhz, volts);
  }
  // Total system draw while the CPU is halted (idle or mid-transition);
  // the halted CPU is inside the floor.
  double HaltedWatts() const { return BaseWatts(); }

  // Renders the Table 1 rows this model reproduces.
  std::string Table1() const;
};

}  // namespace rtdvs

#endif  // SRC_PLATFORM_SYSTEM_POWER_H_
