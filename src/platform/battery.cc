#include "src/platform/battery.h"

#include <cmath>

#include "src/util/check.h"

namespace rtdvs {

BatteryModel::BatteryModel(BatteryParams params) : params_(params) {
  RTDVS_CHECK_GT(params_.capacity_wh, 0.0);
  RTDVS_CHECK_GT(params_.rated_power_w, 0.0);
  RTDVS_CHECK_GE(params_.peukert_exponent, 1.0);
  RTDVS_CHECK_GT(params_.converter_efficiency, 0.0);
  RTDVS_CHECK_LE(params_.converter_efficiency, 1.0);
}

double BatteryModel::PackWatts(double system_watts) const {
  RTDVS_CHECK_GE(system_watts, 0.0);
  return system_watts / params_.converter_efficiency;
}

double BatteryModel::LifeHours(double system_watts) const {
  double pack_watts = PackWatts(system_watts);
  if (pack_watts <= 0) {
    return 0.0;  // nothing draining; call it flat rather than infinite
  }
  double ideal_hours = params_.capacity_wh / pack_watts;
  double rate_penalty =
      std::pow(params_.rated_power_w / pack_watts, params_.peukert_exponent - 1.0);
  return ideal_hours * rate_penalty;
}

}  // namespace rtdvs
