#include "src/platform/k6_cpu.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/strings.h"

namespace rtdvs {

const std::vector<double>& K6Cpu::FrequencyTableMhz() {
  // 200-600 MHz in 50 MHz steps skipping 250, limited by the 550 MHz rating.
  static const std::vector<double> kTable = {200, 300, 350, 400, 450, 500, 550};
  return kTable;
}

const std::vector<double>& K6Cpu::VoltageTable() {
  static const std::vector<double> kTable = {1.4, 2.0};
  return kTable;
}

K6Cpu::K6Cpu() = default;

bool K6Cpu::IsStable(double mhz, double volts) {
  if (volts >= 2.0) {
    return mhz <= kMaxRatedMhz;
  }
  if (volts >= 1.4) {
    return mhz <= 450.0;  // determined experimentally in §4.1
  }
  return false;
}

void K6Cpu::WriteEpmr(double now_ms, const Epmr& value) {
  RTDVS_CHECK_LT(value.fid, FrequencyTableMhz().size()) << "invalid FID";
  RTDVS_CHECK_LT(value.vid, VoltageTable().size()) << "unsupported VID on this board";
  RTDVS_CHECK(value.sgtc_units >= 1u || allow_zero_sgtc_)
      << "SGTC must be at least one unit";
  SyncTsc(now_ms);
  epmr_ = value;
  transition_end_ms_ = now_ms + static_cast<double>(value.sgtc_units) * kSgtcUnitMs;
  ++transition_count_;
  if (!IsStable(frequency_mhz(), voltage())) {
    crashed_ = true;
  }
}

void K6Cpu::SyncTsc(double now_ms) {
  RTDVS_CHECK_GE(now_ms, tsc_synced_ms_ - 1e-9) << "time moved backwards";
  if (now_ms > tsc_synced_ms_) {
    // The TSC runs at the programmed core frequency, halted or not; after a
    // WriteEpmr it counts at the (new) target frequency, which is what made
    // the paper's 41 us transitions read as ~8200 / ~22500 cycles.
    tsc_cycles_ += (now_ms - tsc_synced_ms_) * frequency_mhz() * 1000.0;
    tsc_synced_ms_ = now_ms;
  }
}

uint64_t K6Cpu::Tsc(double now_ms) const {
  double cycles = tsc_cycles_;
  if (now_ms > tsc_synced_ms_) {
    cycles += (now_ms - tsc_synced_ms_) * frequency_mhz() * 1000.0;
  }
  return static_cast<uint64_t>(std::llround(cycles));
}

std::string K6Cpu::ToString() const {
  return StrFormat("K6-2+ %g MHz @ %.1f V%s", frequency_mhz(), voltage(),
                   crashed_ ? " (CRASHED: unstable f/V)" : "");
}

}  // namespace rtdvs
