// Multiprocessor cluster composition: the platform description and the
// partitioned-scheduling admission layer for M identical DVS cores.
//
// The paper's RT-DVS policies (§3) are per-processor; the engine
// decomposition (EventQueue / ReadyQueue / EnergyAccountant /
// SpeedController) was built so M independent per-core instances can be
// composed under one simulated clock. This header holds the pieces that are
// pure scheduling theory — the cluster spec, the scheduling mode, and the
// bin-packing task partitioner — while src/sim/mp_simulator.h owns the
// driver that actually runs a cluster.
//
// Partitioned admission contract (shared with the reference oracle in
// src/sim/reference_sim.cc, which reimplements it independently):
//   - tasks are offered to cores in task-id order;
//   - a core admits a task iff the core's utilization test passes with the
//     task added: EDF cores use sum(U) <= 1, RM cores use the Liu-Layland
//     bound sum(U) <= n*(2^(1/n) - 1) with n tasks on the core (the
//     utilization-table shape of the classic partitioned schedulers);
//     both tests carry a +1e-9 tolerance and sum utilizations in ascending
//     task-id order so production and reference agree bitwise;
//   - FF picks the lowest-index admitting core; NF keeps a cursor that only
//     moves forward; BF picks the admitting core with the highest current
//     utilization (ties to the lowest index); WF the lowest current
//     utilization (ties likewise);
//   - a task no core admits makes the whole partition infeasible.
// Cores that end up with no tasks are powered down by the driver (zero
// energy for the whole horizon).
#ifndef SRC_ENGINE_CLUSTER_H_
#define SRC_ENGINE_CLUSTER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"

namespace rtdvs {

// How jobs are mapped onto the cluster's cores.
enum class MpMode {
  // Tasks are statically assigned to cores by bin-packing admission; each
  // core runs its own single-processor scheduler + DVS policy instance.
  kPartitioned,
  // One cluster-wide ready queue; at every event the M highest-priority
  // jobs run, one per core, with per-core speed selection. No admission
  // test (global EDF has no utilization-based guarantee — Dhall's effect).
  kGlobal,
};

enum class PartitionHeuristic {
  kFirstFit,
  kNextFit,
  kBestFit,
  kWorstFit,
};

const char* MpModeName(MpMode mode);  // "partitioned" | "global"
const char* PartitionHeuristicName(PartitionHeuristic heuristic);  // "ff" etc.
std::optional<MpMode> ParseMpMode(std::string_view text);
// Accepts the short ids "ff" | "nf" | "bf" | "wf".
std::optional<PartitionHeuristic> ParsePartitionHeuristic(std::string_view text);

// An identical-multiprocessor platform: num_cores copies of one machine
// table, each independently voltage-scalable.
struct ClusterSpec {
  int num_cores = 1;
  MachineSpec machine = MachineSpec::Machine0();
};

// Outcome of bin-packing a task set onto a cluster.
struct PartitionResult {
  bool feasible = false;
  // Task id -> core index; -1 for every task when infeasible.
  std::vector<int> core_of_task;
  // Worst-case utilization packed onto each core (ascending task-id sums).
  std::vector<double> core_utilization;
  std::vector<int> core_task_count;
  // Cores with at least one task; the rest are powered down.
  int cores_used = 0;
  // Human-readable reason when !feasible (which task fit nowhere).
  std::string error;
};

// Bin-packs `tasks` onto `num_cores` cores under the admission contract
// above. `core_kinds` gives each core's scheduler kind (size num_cores):
// heterogeneous clusters admit per the destination core's own test.
PartitionResult PartitionTasks(const TaskSet& tasks, int num_cores,
                               PartitionHeuristic heuristic,
                               const std::vector<SchedulerKind>& core_kinds);

// Homogeneous convenience overload: every core uses `kind`.
PartitionResult PartitionTasks(const TaskSet& tasks, int num_cores,
                               PartitionHeuristic heuristic,
                               SchedulerKind kind = SchedulerKind::kEdf);

// The Liu-Layland RM utilization bound n*(2^(1/n) - 1) for n tasks
// (1.0 for n <= 0, matching the EDF bound as n grows the limit is ln 2).
double RmUtilizationBound(int num_tasks);

}  // namespace rtdvs

#endif  // SRC_ENGINE_CLUSTER_H_
