// SpeedController implementations shared by the two production hosts,
// lifted out of Simulator::Speed and Kernel::Speed:
//
//   * ModeledSpeedController — the simulation host. Validates requests
//     against the MachineSpec, counts transitions, models the mandatory
//     stop interval (§4.1) as a blocked-until timestamp, and emits
//     kSpeedChange trace events.
//   * DeviceSpeedController  — the implementation host. Forwards requests
//     to a SpeedDevice (the PowerNow! register device in the kernel) and
//     mirrors whatever point the hardware actually settled on; the device
//     itself models its transition halt.
#ifndef SRC_ENGINE_SPEED_CONTROLLER_H_
#define SRC_ENGINE_SPEED_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/cpu/operating_point.h"
#include "src/dvs/policy.h"
#include "src/engine/trace_sink.h"

namespace rtdvs {

class ModeledSpeedController : public SpeedController {
 public:
  // `machine` and `now_ms` (the host's clock) must outlive the controller;
  // `sink` may be null. Starts at the machine's maximum point.
  ModeledSpeedController(const MachineSpec* machine, double switch_time_ms,
                         const double* now_ms, TraceSink* sink);

  // Validates the request exists on the machine, then applies it; a
  // same-point request is a no-op (no transition counted, no halt).
  void SetOperatingPoint(const OperatingPoint& point) override;
  const OperatingPoint& current() const override { return point_; }

  // Execution resumes only after this time (mandatory stop interval, §4.1).
  double blocked_until_ms() const { return blocked_until_; }
  int64_t switch_count() const { return switch_count_; }

  // Host-facing effect recording for hyperperiod replay: while bound, every
  // SetOperatingPoint call (no-op re-requests included) appends the
  // requested point's machine index. Replaying the recorded requests against
  // this controller reproduces switch_count and blocked_until_ms exactly,
  // because both derive deterministically from the request sequence.
  void set_request_tap(std::vector<int>* tap) { request_tap_ = tap; }

 private:
  const MachineSpec* machine_;
  double switch_time_ms_;
  const double* now_ms_;
  TraceSink* sink_;
  OperatingPoint point_;
  double blocked_until_ = 0;
  int64_t switch_count_ = 0;
  std::vector<int>* request_tap_ = nullptr;
};

// Host-specific hardware behind DeviceSpeedController: applying a point may
// round to the device's grid, halt the processor, or crash it — the
// controller only reflects the resulting state.
class SpeedDevice {
 public:
  virtual ~SpeedDevice() = default;
  virtual void Apply(double now_ms, const OperatingPoint& point) = 0;
  virtual OperatingPoint Current() const = 0;
};

class DeviceSpeedController : public SpeedController {
 public:
  // `device` and `now_ms` must outlive the controller.
  DeviceSpeedController(SpeedDevice* device, const double* now_ms);

  void SetOperatingPoint(const OperatingPoint& point) override;
  const OperatingPoint& current() const override { return point_; }

  // Re-reads the device state (e.g. after out-of-band /procfs writes).
  void SyncFromDevice() { point_ = device_->Current(); }

 private:
  SpeedDevice* device_;
  const double* now_ms_;
  OperatingPoint point_;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_SPEED_CONTROLLER_H_
