#include "src/engine/speed_controller.h"

#include <algorithm>

#include "src/util/check.h"

namespace rtdvs {

ModeledSpeedController::ModeledSpeedController(const MachineSpec* machine,
                                               double switch_time_ms,
                                               const double* now_ms,
                                               TraceSink* sink)
    : machine_(machine),
      switch_time_ms_(switch_time_ms),
      now_ms_(now_ms),
      sink_(sink),
      point_(machine->max_point()) {
  RTDVS_CHECK(machine_ != nullptr);
  RTDVS_CHECK(now_ms_ != nullptr);
}

void ModeledSpeedController::SetOperatingPoint(const OperatingPoint& point) {
  // Validate that policies only request points that exist on this machine.
  const size_t index = machine_->IndexOf(point);
  if (request_tap_ != nullptr) {
    // Recorded before the same-point early-out: replay must re-issue no-op
    // requests too, or a replayed window whose first request matches the
    // current point would diverge from the recorded switch sequence.
    request_tap_->push_back(static_cast<int>(index));
  }
  if (point == point_) {
    return;
  }
  point_ = point;
  ++switch_count_;
  if (switch_time_ms_ > 0) {
    blocked_until_ = std::max(blocked_until_, *now_ms_ + switch_time_ms_);
  }
  if (sink_ != nullptr) {
    sink_->OnEvent({*now_ms_, TraceEventKind::kSpeedChange, -1, point_});
  }
}

DeviceSpeedController::DeviceSpeedController(SpeedDevice* device,
                                             const double* now_ms)
    : device_(device), now_ms_(now_ms) {
  RTDVS_CHECK(device_ != nullptr);
  RTDVS_CHECK(now_ms_ != nullptr);
  SyncFromDevice();
}

void DeviceSpeedController::SetOperatingPoint(const OperatingPoint& point) {
  device_->Apply(*now_ms_, point);
  SyncFromDevice();
}

}  // namespace rtdvs
