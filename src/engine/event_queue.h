// Typed simulation event queue: a binary min-heap ordered by (time, push
// sequence). Replaces the per-event linear rescans of jobs_/task_states_ the
// monolithic simulator used to find its next scheduling point with O(log n)
// push/pop.
//
// Ordering contract: events pop in exactly nondecreasing time order, with
// FIFO order among equal timestamps (the push sequence number breaks ties).
// Timestamps are compared EXACTLY — two events kTimeEpsMs apart are distinct
// and pop in timestamp order, so a driver that drains everything due within
// `now + kTimeEpsMs` observes epsilon-close events in a deterministic order.
// Pop() enforces the monotonicity invariant with a fatal check, so a
// corrupted heap can never silently reorder simulated time.
//
// Invalidation is lazy and driver-owned: events carry an opaque payload (a
// job uid for deadlines, a generation counter for policy timers) and the
// driver discards stale entries when they surface at the top. The queue
// itself never rescans.
#ifndef SRC_ENGINE_EVENT_QUEUE_H_
#define SRC_ENGINE_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/check.h"
#include "src/util/profiler.h"

namespace rtdvs {

// The event classes a simulation driver schedules. Completion and
// switch-halt-end times depend on the mutable processor state (current
// frequency, pending transition), so drivers typically derive those two
// analytically per step and queue the rest; both kinds still flow through
// the same (time, seq) ordering when queued.
enum class EngineEventType {
  kRelease,        // a task's next periodic release
  kCompletion,     // the running job exhausts its remaining work
  kDeadline,       // a live job's absolute deadline
  kPolicyTimer,    // DvsPolicy::NextWakeupMs expiry
  kSwitchHaltEnd,  // the mandatory stop interval of a speed switch ends
  kHorizon,        // end of the simulated horizon
};

struct EngineEvent {
  double time_ms = 0;
  EngineEventType type = EngineEventType::kRelease;
  // Task the event concerns (kRelease/kDeadline), -1 otherwise.
  int task_id = -1;
  // Driver-defined validity token: job uid for kDeadline, timer generation
  // for kPolicyTimer. Stale events are discarded by the driver at pop time.
  uint64_t payload = 0;
  // Assigned by Push; breaks ties among equal timestamps (FIFO).
  uint64_t seq = 0;
};

class EventQueue {
 public:
  // Push/Top/Pop are defined inline: they sit on the per-step hot path of
  // both hosts, and the comparator must inline into the std heap algorithms.
  void Push(double time_ms, EngineEventType type, int task_id = -1,
            uint64_t payload = 0) {
    RTDVS_PROF_SCOPE("engine/event_queue/push");
    EngineEvent event;
    event.time_ms = time_ms;
    event.type = type;
    event.task_id = task_id;
    event.payload = payload;
    event.seq = next_seq_++;
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  // The earliest event; fatal when Empty().
  const EngineEvent& Top() const {
    RTDVS_CHECK(!heap_.empty()) << "Top() on an empty event queue";
    return heap_.front();
  }

  // Removes and returns the earliest event. Fatal when Empty() or when the
  // popped event outranks an event still queued (heap corruption).
  EngineEvent Pop() {
    RTDVS_PROF_SCOPE("engine/event_queue/pop");
    RTDVS_CHECK(!heap_.empty()) << "Pop() on an empty event queue";
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    EngineEvent event = heap_.back();
    heap_.pop_back();
    // The popped event must not outrank anything still queued. (A global
    // time watermark would be too strong: hosts lazily discard stale events
    // that lie in the future, then push nearer valid ones.)
    RTDVS_CHECK(heap_.empty() || !Later{}(event, heap_.front()))
        << "event queue popped out of time order at t=" << event.time_ms;
    return event;
  }

  // Drops all events (the sequence counter keeps running; only relative
  // order matters).
  void Clear() { heap_.clear(); }

  // True when every parent is not later than its children, i.e. the
  // structural heap property holds. O(n); meant for tests and audits.
  bool HeapInvariantHolds() const;

  // TEST ONLY: swaps two raw heap slots to inject a heap-property fault so
  // tests can prove the monotone-pop guard catches a corrupted heap.
  void TestOnlySwapSlots(size_t a, size_t b);

 private:
  // True when `a` pops after `b` — the std::push_heap comparator (max-heap
  // semantics inverted into a min-heap on (time_ms, seq)). A stateless
  // functor so the heap algorithms inline the comparison.
  struct Later {
    bool operator()(const EngineEvent& a, const EngineEvent& b) const {
      if (a.time_ms != b.time_ms) {
        return a.time_ms > b.time_ms;
      }
      return a.seq > b.seq;
    }
  };

  std::vector<EngineEvent> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_EVENT_QUEUE_H_
