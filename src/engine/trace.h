// Execution trace recording and ASCII Gantt rendering, used to reproduce
// the paper's example figures (2, 3, 5, 7) and for debugging.
#ifndef SRC_ENGINE_TRACE_H_
#define SRC_ENGINE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/operating_point.h"
#include "src/rt/task.h"

namespace rtdvs {

enum class CpuState {
  kExecuting,
  kIdle,
  kSwitching,  // halted during a voltage/frequency transition
};

struct TraceSegment {
  double start_ms = 0;
  double end_ms = 0;
  CpuState state = CpuState::kIdle;
  int task_id = -1;  // valid when state == kExecuting
  OperatingPoint point;
};

enum class TraceEventKind {
  kRelease,
  kCompletion,
  kDeadlineMiss,
  kSpeedChange,
  kIdleStart,
};

struct TraceEvent {
  double time_ms = 0;
  TraceEventKind kind = TraceEventKind::kRelease;
  int task_id = -1;  // -1 for events not tied to a task
  OperatingPoint point;  // valid for kSpeedChange
};

class Trace {
 public:
  // Appends a segment, merging with the previous one when contiguous and
  // identical in (state, task, point).
  void AddSegment(const TraceSegment& segment);
  void AddEvent(const TraceEvent& event);

  void set_capacity_limit(size_t max_segments) { max_segments_ = max_segments; }
  bool truncated() const { return truncated_; }

  // Pre-sizes the backing vectors (recording hosts call this once per run).
  // Purely an allocation hint: the capacity LIMIT and the truncation
  // accounting are untouched — a reserve beyond max_segments_ still
  // truncates at exactly max_segments_ segments.
  void Reserve(size_t segments, size_t events) {
    segments_.reserve(segments);
    events_.reserve(events);
  }

  const std::vector<TraceSegment>& segments() const { return segments_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  // Renders the paper-figure style view: one row per task plus an idle row,
  // a frequency row on top, time ticks below. `columns` characters span
  // [0, end_ms] (end of the last segment when 0).
  std::string RenderGantt(const TaskSet& tasks, int columns = 76,
                          double end_ms = 0) const;

  // One line per segment / event, for golden tests.
  std::string RenderList(const TaskSet& tasks) const;

 private:
  std::vector<TraceSegment> segments_;
  std::vector<TraceEvent> events_;
  size_t max_segments_ = 1u << 20;
  bool truncated_ = false;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_TRACE_H_
