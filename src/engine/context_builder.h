// The single implementation of PolicyContext construction, shared by the
// simulator and the kernel. Before this existed each host re-derived the
// context by hand and the two copies drifted: the simulator forgot the
// cumulative busy/idle/work totals (the PR-4 interval-policy bug), and the
// kernel picked a task's "current invocation" by comparing a candidate's
// release against the chosen DEADLINE — correct only while deadline ==
// release + period, wrong for backlogged tasks under continue-late misses
// and for CBS replacement jobs. Both fixes now live here, once.
#ifndef SRC_ENGINE_CONTEXT_BUILDER_H_
#define SRC_ENGINE_CONTEXT_BUILDER_H_

#include <limits>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/energy_accountant.h"
#include "src/rt/job.h"
#include "src/rt/task.h"

namespace rtdvs {

class ContextBuilder {
 public:
  // The host-side per-task release bookkeeping the context is derived from.
  struct TaskSnapshot {
    double next_release_ms = 0;
    double cumulative_executed = 0;
    double last_actual_work = 0;
  };

  // `tasks` and `machine` must outlive the builder (rebind when they move).
  void Bind(const TaskSet* tasks, const MachineSpec* machine) {
    tasks_ = tasks;
    machine_ = machine;
  }

  // Fills `ctx` for time `now_ms`: wall-clock totals from the accountant,
  // one TaskRuntimeView per task (defaults from `snapshot(id)`, then the
  // earliest-released unfinished job in `jobs` defines the task's current
  // invocation). `snapshot` is called once per task id in id order.
  template <typename SnapshotFn>
  void Build(double now_ms, const std::vector<Job>& jobs,
             const EngineTotals& totals, SnapshotFn&& snapshot,
             PolicyContext* ctx) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    ctx->now_ms = now_ms;
    ctx->tasks = tasks_;
    ctx->machine = machine_;
    // Wall-clock totals for utilization-feedback policies (the interval
    // baseline measures load as work per window; leaving these zero decays
    // it to the minimum frequency regardless of load — found by
    // differential testing, tests/sim/differential_test.cc).
    ctx->cumulative_busy_ms = totals.busy_ms;
    ctx->cumulative_idle_ms = totals.idle_ms;
    ctx->cumulative_work = totals.work;
    const size_t n = static_cast<size_t>(tasks_->size());
    ctx->views.resize(n);
    chosen_release_.resize(n);
    for (size_t id = 0; id < n; ++id) {
      auto& view = ctx->views[id];
      const TaskSnapshot snap = snapshot(static_cast<int>(id));
      view.has_active_job = false;
      view.next_deadline_ms = snap.next_release_ms;
      view.executed_in_invocation = 0;
      view.worst_case_remaining = 0;
      view.cumulative_executed = snap.cumulative_executed;
      view.last_actual_work = snap.last_actual_work;
      chosen_release_[id] = kInf;
    }
    // Earliest unfinished job per task defines the "current invocation".
    // Track the chosen job's release explicitly: comparing a candidate's
    // release against the chosen DEADLINE happens to work for strictly
    // periodic jobs (deadline = release + period) but resolves wrongly for
    // backlogged tasks under MissPolicy::kContinueLate and for CBS
    // replacement jobs, whose release/deadline ordering differs.
    for (const auto& job : jobs) {
      if (job.finished) {
        continue;
      }
      auto& view = ctx->views[static_cast<size_t>(job.task_id)];
      double& chosen = chosen_release_[static_cast<size_t>(job.task_id)];
      if (!view.has_active_job || job.release_ms < chosen) {
        view.has_active_job = true;
        chosen = job.release_ms;
        view.next_deadline_ms = job.deadline_ms;
        view.executed_in_invocation = job.executed_work;
        view.worst_case_remaining = job.RemainingWorstCaseWork();
      }
    }
  }

 private:
  const TaskSet* tasks_ = nullptr;
  const MachineSpec* machine_ = nullptr;
  // Release time of each task's chosen invocation; member to avoid
  // per-event allocation.
  std::vector<double> chosen_release_;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_CONTEXT_BUILDER_H_
