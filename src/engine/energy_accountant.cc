#include "src/engine/energy_accountant.h"

namespace rtdvs {

void EnergyAccountant::OnSwitchHalt(double start_ms, double end_ms,
                                    const OperatingPoint& point) {
  (void)start_ms;
  (void)end_ms;
  (void)point;
}

}  // namespace rtdvs
