// Ready-job selection keyed by the active Scheduler's priority order, plus
// the preemption accounting both hosts derive from consecutive picks. The
// job vector stays owned by the host (jobs are value types that hosts erase
// and remap freely — the kernel renumbers dense task ids on unregister), so
// selection is a scan under Scheduler::HigherPriority rather than a
// persistent index; the scan is O(active jobs), which event-queue
// scheduling already made the cheap part of a step.
#ifndef SRC_ENGINE_READY_QUEUE_H_
#define SRC_ENGINE_READY_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/rt/job.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"
#include "src/util/check.h"
#include "src/util/profiler.h"

namespace rtdvs {

class ReadyQueue {
 public:
  // `scheduler` must outlive the queue; rebind on policy hot-swap.
  void BindScheduler(const Scheduler* scheduler) { scheduler_ = scheduler; }

  // Highest-priority runnable job (finished/suspended skipped), or
  // Scheduler::kNone. Inline: selection runs once per step on both hosts.
  size_t Pick(const std::vector<Job>& jobs, const TaskSet& tasks) const {
    RTDVS_PROF_SCOPE("engine/ready_queue/pick");
    RTDVS_CHECK(scheduler_ != nullptr) << "ReadyQueue used before BindScheduler";
    return scheduler_->PickJob(jobs, tasks);
  }

  // Pick() plus preemption detection: increments *preemptions when a
  // different job wins while the previously picked invocation is still
  // unfinished in `jobs`. Idle intervals do not reset the tracking (a job
  // resuming after idle is not a preemption).
  size_t PickTracked(const std::vector<Job>& jobs, const TaskSet& tasks,
                     int64_t* preemptions) {
    size_t running = Pick(jobs, tasks);
    if (running == Scheduler::kNone) {
      return running;
    }
    const Job& job = jobs[running];
    if (previous_task_ >= 0 && (job.task_id != previous_task_ ||
                                job.invocation != previous_invocation_)) {
      // Was the previously running job still unfinished?
      for (const auto& other : jobs) {
        if (other.task_id == previous_task_ &&
            other.invocation == previous_invocation_ && !other.finished) {
          ++*preemptions;
          break;
        }
      }
    }
    previous_task_ = job.task_id;
    previous_invocation_ = job.invocation;
    return running;
  }

  // PickTracked with an inline comparator (EdfComparator / RmComparator or
  // any callable matching Scheduler::HigherPriority's order): for hosts
  // that know the scheduler kind statically, the whole selection+tracking
  // step compiles down to one loop with zero virtual dispatch. Must be
  // handed a comparator implementing the SAME order as the bound
  // scheduler — both routes share the comparison functions in
  // src/rt/scheduler.h, so that holds by construction.
  template <typename HigherPri>
  size_t PickTrackedWith(const std::vector<Job>& jobs, const HigherPri& higher,
                         int64_t* preemptions) {
    size_t running;
    {
      RTDVS_PROF_SCOPE("engine/ready_queue/pick");
      running = PickJobWith(jobs, higher);
    }
    if (running == Scheduler::kNone) {
      return running;
    }
    const Job& job = jobs[running];
    if (previous_task_ >= 0 && (job.task_id != previous_task_ ||
                                job.invocation != previous_invocation_)) {
      for (const auto& other : jobs) {
        if (other.task_id == previous_task_ &&
            other.invocation == previous_invocation_ && !other.finished) {
          ++*preemptions;
          break;
        }
      }
    }
    previous_task_ = job.task_id;
    previous_invocation_ = job.invocation;
    return running;
  }

  // Global-mode selection (multiprocessor cluster, src/sim/mp_simulator.h):
  // up to `k` highest-priority runnable jobs in priority order, at most one
  // job per task — a task's backlogged invocations never run in parallel.
  // Deterministic: ties resolve by the scheduler's total order (EDF/RM both
  // break ties by task id then release), and the stable sort preserves
  // creation order beyond that. Returns indices into `jobs`.
  // Returns a reference to member scratch, valid until the next PickTopK
  // call on this queue (the global-mode loop consumes it immediately; it
  // previously returned a fresh vector per step, three allocations per
  // global scheduling decision).
  const std::vector<size_t>& PickTopK(const std::vector<Job>& jobs,
                                      const TaskSet& tasks, size_t k) {
    RTDVS_PROF_SCOPE("engine/ready_queue/pick_top_k");
    RTDVS_CHECK(scheduler_ != nullptr) << "ReadyQueue used before BindScheduler";
    ready_scratch_.clear();
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!jobs[i].finished && !jobs[i].suspended) {
        ready_scratch_.push_back(i);
      }
    }
    std::stable_sort(ready_scratch_.begin(), ready_scratch_.end(),
                     [&](size_t a, size_t b) {
                       return scheduler_->HigherPriority(jobs[a], jobs[b], tasks);
                     });
    picked_scratch_.clear();
    claimed_scratch_.assign(static_cast<size_t>(tasks.size()), 0);
    for (size_t index : ready_scratch_) {
      if (picked_scratch_.size() >= k) {
        break;
      }
      auto task = static_cast<size_t>(jobs[index].task_id);
      if (claimed_scratch_[task]) {
        continue;
      }
      claimed_scratch_[task] = 1;
      picked_scratch_.push_back(index);
    }
    return picked_scratch_;
  }

  // Forgets the previously picked invocation (call before a fresh run).
  void ResetTracking() {
    previous_task_ = -1;
    previous_invocation_ = -1;
  }

 private:
  const Scheduler* scheduler_ = nullptr;
  int previous_task_ = -1;
  int64_t previous_invocation_ = -1;
  // PickTopK scratch (see its doc comment).
  std::vector<size_t> ready_scratch_;
  std::vector<size_t> picked_scratch_;
  std::vector<char> claimed_scratch_;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_READY_QUEUE_H_
