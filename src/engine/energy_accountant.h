// Segment-level time/energy accounting shared by the simulation and kernel
// hosts. Between events the processor state is constant, so each segment
// integrates in closed form; the accountant owns the wall-clock partition
// (busy/idle/switching), total work, energy sums, per-operating-point
// residency and trace emission, while the host-specific energy arithmetic
// lives behind three virtual hooks:
//
//   * ModelEnergyAccountant      — the simulator's normalized EnergyModel
//                                  (work·V² exec, t·f·V²·idle_level idle,
//                                  switch halts cost time but ~no energy).
//   * the kernel's metered variant (kernel.cc) — SystemPowerModel watts into
//                                  a PowerMeter, Figure 15 style.
//
// The reference simulator (src/sim/reference_sim.cc) deliberately does NOT
// use this class: it re-integrates energy from first principles so the
// differential fuzzer cross-checks this accounting rather than inheriting
// its bugs.
#ifndef SRC_ENGINE_ENERGY_ACCOUNTANT_H_
#define SRC_ENGINE_ENERGY_ACCOUNTANT_H_

#include <vector>

#include "src/cpu/energy_model.h"
#include "src/cpu/machine_spec.h"
#include "src/cpu/operating_point.h"
#include "src/engine/trace_sink.h"
#include "src/util/profiler.h"

namespace rtdvs {

// Time and energy spent at one operating point.
struct PointResidency {
  OperatingPoint point;
  double exec_ms = 0;
  double idle_ms = 0;
  double exec_energy = 0;
  double idle_energy = 0;
};

// Wall-clock and energy totals accumulated over a run. The partition
// invariant busy + idle + switching == horizon is what SimAudit checks.
struct EngineTotals {
  double busy_ms = 0;
  double idle_ms = 0;
  double switching_ms = 0;  // halted during voltage/frequency transitions
  double work = 0;          // in max-frequency milliseconds
  double exec_energy = 0;
  double idle_energy = 0;
};

class EnergyAccountant {
 public:
  virtual ~EnergyAccountant() = default;

  // Optional per-point residency output; `machine` resolves point indices.
  // Both must outlive the accountant (or be rebound). Pass nullptrs to
  // disable residency tracking (the kernel host does).
  void BindResidency(const MachineSpec* machine,
                     std::vector<PointResidency>* residency) {
    machine_ = machine;
    residency_ = residency;
  }
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }

  void Reset() { totals_ = EngineTotals{}; }

  // The Record* methods are defined inline: they run once per integrated
  // segment on both hosts' hot paths, and a caller holding a concrete
  // accountant (the simulator holds a ModelEnergyAccountant by value) can
  // then devirtualize and inline the Joules hooks.
  //
  // Zero-length segments are ignored; callers need not guard.
  void RecordExecution(double start_ms, double end_ms, double work, int task_id,
                       const OperatingPoint& point) {
    RTDVS_PROF_SCOPE("engine/energy/record_execution");
    const double dt = end_ms - start_ms;
    if (dt <= 0) {
      return;
    }
    totals_.work += work;
    totals_.busy_ms += dt;
    const double joules = ExecutionJoules(start_ms, end_ms, work, point);
    totals_.exec_energy += joules;
    if (residency_ != nullptr) {
      auto& res = (*residency_)[machine_->IndexOf(point)];
      res.exec_ms += dt;
      res.exec_energy += joules;
    }
    if (sink_ != nullptr) {
      sink_->OnSegment({start_ms, end_ms, CpuState::kExecuting, task_id, point});
    }
  }

  void RecordIdle(double start_ms, double end_ms, const OperatingPoint& point) {
    RTDVS_PROF_SCOPE("engine/energy/record_idle");
    const double dt = end_ms - start_ms;
    if (dt <= 0) {
      return;
    }
    totals_.idle_ms += dt;
    const double joules = IdleJoules(start_ms, end_ms, point);
    totals_.idle_energy += joules;
    if (residency_ != nullptr) {
      auto& res = (*residency_)[machine_->IndexOf(point)];
      res.idle_ms += dt;
      res.idle_energy += joules;
    }
    if (sink_ != nullptr) {
      sink_->OnSegment({start_ms, end_ms, CpuState::kIdle, -1, point});
    }
  }

  // Halted during a mandatory stop interval (§4.1): time passes, charged to
  // switching_ms; energy is host-defined (the model host charges none).
  void RecordSwitchHalt(double start_ms, double end_ms,
                        const OperatingPoint& point) {
    RTDVS_PROF_SCOPE("engine/energy/record_switch_halt");
    const double dt = end_ms - start_ms;
    if (dt <= 0) {
      return;
    }
    totals_.switching_ms += dt;
    OnSwitchHalt(start_ms, end_ms, point);
    if (sink_ != nullptr) {
      sink_->OnSegment({start_ms, end_ms, CpuState::kSwitching, -1, point});
    }
  }

  const EngineTotals& totals() const { return totals_; }

 protected:
  // Joules consumed executing `work` over [start, end) at `point`.
  virtual double ExecutionJoules(double start_ms, double end_ms, double work,
                                 const OperatingPoint& point) = 0;
  // Joules consumed idling over [start, end) at `point`.
  virtual double IdleJoules(double start_ms, double end_ms,
                            const OperatingPoint& point) = 0;
  // Side-effect hook for switch-halt intervals (e.g. metering halted watts).
  // The default charges nothing: halted cycles draw ~no energy (§3.1).
  virtual void OnSwitchHalt(double start_ms, double end_ms,
                            const OperatingPoint& point);

 private:
  EngineTotals totals_;
  TraceSink* sink_ = nullptr;
  const MachineSpec* machine_ = nullptr;
  std::vector<PointResidency>* residency_ = nullptr;
};

// The simulation host's accountant: closed-form EnergyModel integration.
// `final` (with inline hooks) so a host holding it by value pays no virtual
// dispatch per segment.
class ModelEnergyAccountant final : public EnergyAccountant {
 public:
  explicit ModelEnergyAccountant(const EnergyModel& model) : model_(model) {}

 protected:
  double ExecutionJoules(double start_ms, double end_ms, double work,
                         const OperatingPoint& point) final {
    (void)start_ms;
    (void)end_ms;
    return model_.ExecutionEnergy(work, point);
  }
  double IdleJoules(double start_ms, double end_ms,
                    const OperatingPoint& point) final {
    return model_.IdleEnergy(end_ms - start_ms, point);
  }

 private:
  EnergyModel model_;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_ENERGY_ACCOUNTANT_H_
