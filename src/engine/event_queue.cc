#include "src/engine/event_queue.h"

#include <utility>

#include "src/util/check.h"

namespace rtdvs {

bool EventQueue::HeapInvariantHolds() const {
  for (size_t i = 1; i < heap_.size(); ++i) {
    const size_t parent = (i - 1) / 2;
    if (Later{}(heap_[parent], heap_[i])) {
      return false;
    }
  }
  return true;
}

void EventQueue::TestOnlySwapSlots(size_t a, size_t b) {
  RTDVS_CHECK_LT(a, heap_.size());
  RTDVS_CHECK_LT(b, heap_.size());
  std::swap(heap_[a], heap_[b]);
}

}  // namespace rtdvs
