#include "src/engine/trace.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/util/time_eps.h"

namespace rtdvs {

void Trace::AddSegment(const TraceSegment& segment) {
  if (truncated_) {
    return;
  }
  if (segment.end_ms <= segment.start_ms + kTimeEpsMs) {
    return;  // zero-length; nothing to record
  }
  if (!segments_.empty()) {
    TraceSegment& last = segments_.back();
    if (last.state == segment.state && last.task_id == segment.task_id &&
        last.point == segment.point && ApproxEq(last.end_ms, segment.start_ms)) {
      last.end_ms = segment.end_ms;
      return;
    }
  }
  if (segments_.size() >= max_segments_) {
    truncated_ = true;
    return;
  }
  segments_.push_back(segment);
}

void Trace::AddEvent(const TraceEvent& event) {
  if (truncated_ || events_.size() >= max_segments_) {
    truncated_ = true;
    return;
  }
  events_.push_back(event);
}

namespace {

const char* EventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kCompletion:
      return "complete";
    case TraceEventKind::kDeadlineMiss:
      return "MISS";
    case TraceEventKind::kSpeedChange:
      return "speed";
    case TraceEventKind::kIdleStart:
      return "idle";
  }
  return "?";
}

}  // namespace

std::string Trace::RenderGantt(const TaskSet& tasks, int columns, double end_ms) const {
  if (segments_.empty()) {
    return "(empty trace)\n";
  }
  if (end_ms <= 0) {
    end_ms = segments_.back().end_ms;
  }
  RTDVS_CHECK_GT(end_ms, 0.0);
  columns = std::max(columns, 10);
  auto col_of = [&](double t) {
    int c = static_cast<int>(std::floor(t / end_ms * columns));
    return std::clamp(c, 0, columns - 1);
  };

  // Frequency row: show the dominant frequency per column as a digit 0-9
  // (tenths of full speed).
  std::string freq_row(static_cast<size_t>(columns), ' ');
  // One row per task (# = executing), plus an idle row.
  std::vector<std::string> rows(static_cast<size_t>(tasks.size()) + 1,
                                std::string(static_cast<size_t>(columns), '.'));
  for (const auto& seg : segments_) {
    if (seg.start_ms >= end_ms) {
      continue;
    }
    int c0 = col_of(seg.start_ms);
    int c1 = col_of(std::min(seg.end_ms, end_ms) - kTimeEpsMs);
    for (int c = c0; c <= c1; ++c) {
      int digit = std::clamp(static_cast<int>(std::lround(seg.point.frequency * 10.0)), 0, 9);
      freq_row[static_cast<size_t>(c)] =
          seg.state == CpuState::kIdle ? '-' : static_cast<char>('0' + digit);
      if (seg.state == CpuState::kExecuting && seg.task_id >= 0) {
        rows[static_cast<size_t>(seg.task_id)][static_cast<size_t>(c)] = '#';
      } else if (seg.state == CpuState::kIdle) {
        rows[static_cast<size_t>(tasks.size())][static_cast<size_t>(c)] = '_';
      } else if (seg.state == CpuState::kSwitching) {
        rows[static_cast<size_t>(tasks.size())][static_cast<size_t>(c)] = 's';
      }
    }
  }

  std::string out;
  out += StrFormat("%-6s|%s|\n", "f/10", freq_row.c_str());
  for (int id = 0; id < tasks.size(); ++id) {
    out += StrFormat("%-6s|%s|\n", tasks.task(id).name.c_str(),
                     rows[static_cast<size_t>(id)].c_str());
  }
  out += StrFormat("%-6s|%s|\n", "idle", rows[static_cast<size_t>(tasks.size())].c_str());
  out += StrFormat("%-6s 0%*s\n", "t(ms)", columns - 1,
                   FormatDouble(end_ms, 2).c_str());
  return out;
}

std::string Trace::RenderList(const TaskSet& tasks) const {
  std::string out;
  for (const auto& seg : segments_) {
    const char* what = seg.state == CpuState::kExecuting
                           ? tasks.task(seg.task_id).name.c_str()
                           : (seg.state == CpuState::kIdle ? "idle" : "switch");
    out += StrFormat("[%9.4f, %9.4f) f=%.3g %s\n", seg.start_ms, seg.end_ms,
                     seg.point.frequency, what);
  }
  for (const auto& event : events_) {
    out += StrFormat("@%9.4f %s%s%s\n", event.time_ms, EventKindName(event.kind),
                     event.task_id >= 0 ? " " : "",
                     event.task_id >= 0 ? tasks.task(event.task_id).name.c_str() : "");
  }
  return out;
}

}  // namespace rtdvs
