#include "src/engine/cluster.h"

#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace rtdvs {
namespace {

// Shared admission tolerance: a task set generated to land exactly on the
// utilization bound must not be rejected for the last few ulps.
constexpr double kAdmissionEps = 1e-9;

// Would `core`'s test still pass with `candidate` added? `utilization` is
// the core's current sum (ascending task-id order) and `count` its task
// count, both pre-candidate.
bool CoreAdmits(SchedulerKind kind, double utilization, int count,
                double candidate_utilization) {
  const double total = utilization + candidate_utilization;
  if (kind == SchedulerKind::kEdf) {
    return total <= 1.0 + kAdmissionEps;
  }
  return total <= RmUtilizationBound(count + 1) + kAdmissionEps;
}

}  // namespace

double RmUtilizationBound(int num_tasks) {
  if (num_tasks <= 0) {
    return 1.0;
  }
  const double n = static_cast<double>(num_tasks);
  return n * (std::pow(2.0, 1.0 / n) - 1.0);
}

const char* MpModeName(MpMode mode) {
  return mode == MpMode::kPartitioned ? "partitioned" : "global";
}

const char* PartitionHeuristicName(PartitionHeuristic heuristic) {
  switch (heuristic) {
    case PartitionHeuristic::kFirstFit:
      return "ff";
    case PartitionHeuristic::kNextFit:
      return "nf";
    case PartitionHeuristic::kBestFit:
      return "bf";
    case PartitionHeuristic::kWorstFit:
      return "wf";
  }
  return "ff";
}

std::optional<MpMode> ParseMpMode(std::string_view text) {
  if (text == "partitioned") {
    return MpMode::kPartitioned;
  }
  if (text == "global") {
    return MpMode::kGlobal;
  }
  return std::nullopt;
}

std::optional<PartitionHeuristic> ParsePartitionHeuristic(std::string_view text) {
  if (text == "ff") {
    return PartitionHeuristic::kFirstFit;
  }
  if (text == "nf") {
    return PartitionHeuristic::kNextFit;
  }
  if (text == "bf") {
    return PartitionHeuristic::kBestFit;
  }
  if (text == "wf") {
    return PartitionHeuristic::kWorstFit;
  }
  return std::nullopt;
}

PartitionResult PartitionTasks(const TaskSet& tasks, int num_cores,
                               PartitionHeuristic heuristic,
                               const std::vector<SchedulerKind>& core_kinds) {
  RTDVS_CHECK(num_cores >= 1);
  RTDVS_CHECK(static_cast<int>(core_kinds.size()) == num_cores);
  PartitionResult result;
  result.core_of_task.assign(static_cast<size_t>(tasks.size()), -1);
  result.core_utilization.assign(static_cast<size_t>(num_cores), 0.0);
  result.core_task_count.assign(static_cast<size_t>(num_cores), 0);

  int next_fit_cursor = 0;  // only ever advances
  for (int id = 0; id < tasks.size(); ++id) {
    const double u = tasks.task(id).utilization();
    int chosen = -1;
    switch (heuristic) {
      case PartitionHeuristic::kFirstFit:
        for (int c = 0; c < num_cores; ++c) {
          if (CoreAdmits(core_kinds[static_cast<size_t>(c)],
                         result.core_utilization[static_cast<size_t>(c)],
                         result.core_task_count[static_cast<size_t>(c)], u)) {
            chosen = c;
            break;
          }
        }
        break;
      case PartitionHeuristic::kNextFit:
        for (; next_fit_cursor < num_cores; ++next_fit_cursor) {
          const size_t c = static_cast<size_t>(next_fit_cursor);
          if (CoreAdmits(core_kinds[c], result.core_utilization[c],
                         result.core_task_count[c], u)) {
            chosen = next_fit_cursor;
            break;
          }
        }
        break;
      case PartitionHeuristic::kBestFit:
      case PartitionHeuristic::kWorstFit:
        for (int c = 0; c < num_cores; ++c) {
          const size_t cc = static_cast<size_t>(c);
          if (!CoreAdmits(core_kinds[cc], result.core_utilization[cc],
                          result.core_task_count[cc], u)) {
            continue;
          }
          if (chosen < 0) {
            chosen = c;
            continue;
          }
          const double best = result.core_utilization[static_cast<size_t>(chosen)];
          const double cur = result.core_utilization[cc];
          // Strict comparison keeps ties at the lowest-index admitting core.
          if (heuristic == PartitionHeuristic::kBestFit ? cur > best
                                                        : cur < best) {
            chosen = c;
          }
        }
        break;
    }
    if (chosen < 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "task %d (%s, U=%.4f) fits on no core under %s/%d cores",
                    id, tasks.task(id).name.c_str(), u,
                    PartitionHeuristicName(heuristic), num_cores);
      result.feasible = false;
      result.error = buf;
      result.core_of_task.assign(static_cast<size_t>(tasks.size()), -1);
      result.core_utilization.assign(static_cast<size_t>(num_cores), 0.0);
      result.core_task_count.assign(static_cast<size_t>(num_cores), 0);
      result.cores_used = 0;
      return result;
    }
    const size_t cc = static_cast<size_t>(chosen);
    result.core_of_task[static_cast<size_t>(id)] = chosen;
    result.core_utilization[cc] += u;
    result.core_task_count[cc] += 1;
  }

  result.feasible = true;
  for (int c = 0; c < num_cores; ++c) {
    if (result.core_task_count[static_cast<size_t>(c)] > 0) {
      ++result.cores_used;
    }
  }
  return result;
}

PartitionResult PartitionTasks(const TaskSet& tasks, int num_cores,
                               PartitionHeuristic heuristic, SchedulerKind kind) {
  return PartitionTasks(tasks, num_cores, heuristic,
                        std::vector<SchedulerKind>(static_cast<size_t>(num_cores),
                                                   kind));
}

}  // namespace rtdvs
