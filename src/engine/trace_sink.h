// Observer interface for execution traces. The EnergyAccountant and
// SpeedController emit segments/events through this seam so the engine does
// not care whether a host records a full Trace (simulation with
// record_trace), nothing (kernel, sweep shards), or something custom.
#ifndef SRC_ENGINE_TRACE_SINK_H_
#define SRC_ENGINE_TRACE_SINK_H_

#include "src/engine/trace.h"

namespace rtdvs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSegment(const TraceSegment& segment) = 0;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Records into a Trace (merging/capacity rules live in Trace itself).
class TraceRecorderSink : public TraceSink {
 public:
  explicit TraceRecorderSink(Trace* trace) : trace_(trace) {}
  void OnSegment(const TraceSegment& segment) override {
    trace_->AddSegment(segment);
  }
  void OnEvent(const TraceEvent& event) override { trace_->AddEvent(event); }

 private:
  Trace* trace_;
};

}  // namespace rtdvs

#endif  // SRC_ENGINE_TRACE_SINK_H_
