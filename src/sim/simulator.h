// Event-driven simulator for DVS-capable hardware with real-time scheduling
// (§3.1 of the paper). Execution is modelled by counting work (cycles
// normalized to milliseconds at maximum frequency); the only events are task
// releases, task completions, deadline checks, policy timer wakeups, and the
// horizon — between events the processor state is constant, so energy
// integrates in closed form.
//
// The simulator is a thin driver over the shared engine components
// (src/engine/): an EventQueue schedules releases/deadlines/policy timers
// in O(log n) instead of rescanning every job per event, a ReadyQueue picks
// the running job under the active Scheduler, a ContextBuilder derives the
// PolicyContext, a ModelEnergyAccountant integrates time/energy per
// segment, and a ModeledSpeedController services policy speed requests.
// The kernel (src/kernel/) composes the same ContextBuilder /
// EnergyAccountant / SpeedController seams on its register-level hardware.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/energy_model.h"
#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/context_builder.h"
#include "src/engine/energy_accountant.h"
#include "src/engine/event_queue.h"
#include "src/engine/ready_queue.h"
#include "src/engine/speed_controller.h"
#include "src/engine/trace_sink.h"
#include "src/rt/aperiodic.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/job.h"
#include "src/rt/job_pool.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"
#include "src/sim/hyperperiod.h"
#include "src/sim/metrics.h"

namespace rtdvs {

// What happens to a job whose deadline passes before it completes.
enum class MissPolicy {
  // Keep executing; the tardy job finishes late (Unix-like behaviour).
  kContinueLate,
  // Abandon remaining work at the deadline (firm real-time semantics).
  kAbortJob,
};

// Analytic fast paths (ROADMAP item 2). Both default on: every fast path is
// bit-identical to the stepped path by construction — forced-off runs exist
// for the equivalence suite (tests/sim/fastpath_test.cc) and for debugging,
// not because results differ. See DESIGN.md "Hot-path fast paths" for when
// each path disarms itself at runtime.
struct FastPathOptions {
  // Closed-form idle-interval skipping: with no runnable job (and no
  // aperiodic server), jump straight to the next release/timer wakeup and
  // charge the idle time/energy as one EnergyAccountant segment.
  bool idle_skip = true;
  // Hyperperiod memoization: once the scheduler+policy decision sequence
  // over one whole hyperperiod is verified to repeat exactly, fast-forward
  // the remaining whole cycles by replaying the recorded decisions (the
  // same segment arithmetic, minus scheduling and policy work). Arms only
  // for stationary exec models, non-timer-driven policies, no trace, no
  // server; see Simulator::HyperperiodGate.
  bool hyperperiod = true;
};

struct SimOptions {
  double horizon_ms = 10'000.0;
  // Ratio of halted-cycle to active-cycle energy (§3.1 "idle level").
  double idle_level = 0.0;
  // Energy units per work-unit at 1 V; scales all reported energies.
  double energy_coefficient = 1.0;
  MissPolicy miss_policy = MissPolicy::kContinueLate;
  // Wall time the processor halts on every operating-point change (§4.1
  // measured ~0.4 ms for voltage transitions). 0 = ideal instantaneous.
  double switch_time_ms = 0.0;
  bool record_trace = false;
  size_t max_trace_segments = 1u << 20;
  // Run SimAudit over the finished result (SimResult::audit). On by default
  // so every test and every sweep shard self-checks; violations are
  // reported in the result, never aborted on (see src/sim/audit.h).
  bool audit = true;
  // Seed for the execution-time model's randomness.
  uint64_t seed = 1;
  // Analytic fast paths; results are bit-identical for every setting
  // (SimResult::fastpath records the coverage).
  FastPathOptions fast_paths;
  // Optional arena recycling the job vector's heap block across runs on one
  // thread (src/rt/job_pool.h); the sweep runner wires each worker thread's
  // pool in. Null = plain per-run allocation. Results are identical either
  // way (capacity is not observable).
  JobPool* job_pool = nullptr;
  // Turn on the process-global RTDVS_PROF_SCOPE profiler for this run; span
  // aggregates are flushed at the end of Run() and surface via
  // Profiler::Drain() (rtdvs-sim --profile wires this). Off: each span
  // costs one predicted branch.
  bool profile = false;
  // Optional aperiodic server (footnote 1 of the paper): when kind is not
  // kNone, the simulator appends a periodic "server" task of the given
  // period/budget to the task set and serves the configured arrival stream
  // through it. Schedulers, schedulability tests and DVS policies see the
  // server as an ordinary periodic task, so deadline guarantees for the
  // real periodic tasks are preserved.
  AperiodicServerConfig aperiodic;
};

class Simulator {
 public:
  // `policy` and `exec_model` must outlive Run(); they are mutated (policies
  // keep bookkeeping, models consume randomness).
  Simulator(TaskSet tasks, MachineSpec machine, DvsPolicy* policy,
            ExecTimeModel* exec_model, SimOptions options);
  ~Simulator();

  // Runs the full horizon and returns the metrics. May be called once.
  SimResult Run();

 private:
  struct TaskState {
    double next_release_ms = 0;
    int64_t next_invocation = 0;
    double cumulative_executed = 0;
    double last_actual_work = 0;  // defaults to C_i
  };

  // The event loop, instantiated once per (host mode, scheduler kind).
  // kServer == true is the aperiodic-server configuration: it keeps the
  // event queue (server deadlines track no release) and the per-step server
  // bookkeeping. kServer == false is the pure-periodic configuration every
  // sweep and bench runs: the only queued events would be releases and the
  // policy timer, both of which derive from O(num_tasks) state the
  // simulator already owns — so this instantiation runs queue-free (next
  // event = min over task next_release, plus the single pending wakeup) and
  // hosts the idle-skip and hyperperiod fast paths. kKind statically
  // selects the priority comparator (src/rt/scheduler.h) so the per-step
  // pick runs with zero virtual dispatch; RM compares through periods_.
  template <bool kServer, SchedulerKind kKind>
  void RunLoop();
  // Evaluates the hyperperiod fast path's static gate (stationary exec
  // model, time-skippable policy, all phases zero, µs-grid periods with a
  // bounded LCM, horizon covering warmup + two recorded windows + at least
  // one replayable window) and arms hp_ when it passes; otherwise records
  // the first failing condition in result_.fastpath.hyperperiod_gate.
  void ArmHyperperiod();
  // Queue-free mode: earliest pending periodic release across all tasks.
  double NextPeriodicReleaseMs() const;
  // Queue-free mode: fills due_releases_ (task-id order, the same order the
  // event-queue path produces after its sort) with every task whose next
  // release is due at now_.
  void CollectDueReleases();
  // Creates all invocations due at `now` for the tasks in due_releases_
  // (set by ConsumeDueEvents), queueing each new job's deadline event and
  // the task's next release event.
  void ReleaseDueJobs(double now, std::vector<int>* released);
  void BuildContext(double now);
  // Registers the job with the event queue (uid + deadline event).
  void QueueJobDeadline(Job* job);
  // Earliest valid queued event time, discarding stale entries (deadline
  // events whose job died or already passed, superseded policy timers).
  double NextQueuedEventTime();
  // Pops every event due at now_ (within kTimeEpsMs) and collects the due
  // release task ids, sorted, into due_releases_.
  void ConsumeDueEvents();
  // Re-arms the policy-timer event when the policy's requested wakeup
  // changed; older timer events are superseded via the generation counter.
  void SyncPolicyTimer(const std::optional<double>& wakeup);
  bool IsServerJob(const Job& job) const {
    return server_task_id_ >= 0 && job.task_id == server_task_id_;
  }
  // Remaining work the running job can execute right now (queue/budget
  // limited for the server job, actual remaining otherwise).
  double EffectiveRemaining(const Job& job) const;
  // Applies the server completion rule to an active server job; returns
  // true (and finalizes the job) when it completes.
  bool MaybeCompleteServerJob(Job* job, double now);
  void FinalizeJobCompletion(Job* job, double now);

  TaskSet tasks_;
  MachineSpec machine_;
  DvsPolicy* policy_;
  ExecTimeModel* exec_model_;
  SimOptions options_;

  std::unique_ptr<Scheduler> scheduler_;
  EnergyModel energy_;
  Pcg32 rng_;

  std::vector<TaskState> task_states_;
  std::vector<Job> jobs_;
  PolicyContext ctx_;
  SimResult result_;

  // Engine components (src/engine/).
  EventQueue events_;
  ReadyQueue ready_;
  ContextBuilder context_builder_;
  ModelEnergyAccountant accountant_;
  TraceRecorderSink trace_sink_;
  std::unique_ptr<ModeledSpeedController> speed_;
  // Liveness of job uid u at [u - 1]; validates queued deadline events.
  // Uids are assigned densely from 1 per run, so a flat vector beats a hash
  // set (no allocation per job on the release hot path).
  std::vector<uint8_t> deadline_live_;
  uint64_t next_job_uid_ = 1;
  // Only the newest queued policy-timer event is valid.
  uint64_t timer_generation_ = 0;
  std::optional<double> queued_wakeup_;
  std::vector<int> due_releases_;
  // False in the queue-free (no-server) loop: events_ / deadline_live_ stay
  // untouched and scheduling points derive from task state directly.
  bool use_events_ = false;
  // Cached policy_->timer_driven(): gates every NextWakeupMs/OnWakeup call.
  bool timer_driven_ = false;
  // Jobs in jobs_ with finished == false, maintained incrementally so the
  // idle transition needs no per-step scan.
  int64_t unfinished_count_ = 0;
  // Per-step scratch, hoisted out of the loop (a per-step heap allocation
  // for each was the largest single cost in the profiled step).
  std::vector<int> completed_;
  std::vector<int> released_;
  std::vector<int> completed_after_release_;
  // Dense SoA period cache (indexed by task id) feeding the RM comparator;
  // avoids gathering period_ms through the Task struct every comparison.
  std::vector<double> periods_;
  // Cached ExecTimeModel::constant_fraction(): skips the virtual draw per
  // release for constant models (bit-identical by that method's contract).
  std::optional<double> const_fraction_;
  // Hyperperiod record/verify/replay state machine (src/sim/hyperperiod.h);
  // inert (Mode::kOff) unless ArmHyperperiod's gate passes.
  HyperperiodMemo hp_;

  std::optional<AperiodicServerState> aperiodic_;
  int server_task_id_ = -1;
  double now_ = 0;
  bool ran_ = false;
};

// Convenience wrapper: builds the policy's matching scheduler and runs.
SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        DvsPolicy& policy, ExecTimeModel& exec_model,
                        const SimOptions& options);

// Same, resolving the policy from its factory id (see MakePolicy for the
// valid ids) so callers need not hand-wire a policy object per run.
SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        const std::string& policy_id, ExecTimeModel& exec_model,
                        const SimOptions& options);

}  // namespace rtdvs

#endif  // SRC_SIM_SIMULATOR_H_
