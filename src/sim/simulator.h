// Event-driven simulator for DVS-capable hardware with real-time scheduling
// (§3.1 of the paper). Execution is modelled by counting work (cycles
// normalized to milliseconds at maximum frequency); the only events are task
// releases, task completions, deadline checks, policy timer wakeups, and the
// horizon — between events the processor state is constant, so energy
// integrates in closed form.
//
// The simulator is a thin driver over the shared engine components
// (src/engine/): an EventQueue schedules releases/deadlines/policy timers
// in O(log n) instead of rescanning every job per event, a ReadyQueue picks
// the running job under the active Scheduler, a ContextBuilder derives the
// PolicyContext, a ModelEnergyAccountant integrates time/energy per
// segment, and a ModeledSpeedController services policy speed requests.
// The kernel (src/kernel/) composes the same ContextBuilder /
// EnergyAccountant / SpeedController seams on its register-level hardware.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cpu/energy_model.h"
#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/context_builder.h"
#include "src/engine/energy_accountant.h"
#include "src/engine/event_queue.h"
#include "src/engine/ready_queue.h"
#include "src/engine/speed_controller.h"
#include "src/engine/trace_sink.h"
#include "src/rt/aperiodic.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/job.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"
#include "src/sim/metrics.h"

namespace rtdvs {

// What happens to a job whose deadline passes before it completes.
enum class MissPolicy {
  // Keep executing; the tardy job finishes late (Unix-like behaviour).
  kContinueLate,
  // Abandon remaining work at the deadline (firm real-time semantics).
  kAbortJob,
};

struct SimOptions {
  double horizon_ms = 10'000.0;
  // Ratio of halted-cycle to active-cycle energy (§3.1 "idle level").
  double idle_level = 0.0;
  // Energy units per work-unit at 1 V; scales all reported energies.
  double energy_coefficient = 1.0;
  MissPolicy miss_policy = MissPolicy::kContinueLate;
  // Wall time the processor halts on every operating-point change (§4.1
  // measured ~0.4 ms for voltage transitions). 0 = ideal instantaneous.
  double switch_time_ms = 0.0;
  bool record_trace = false;
  size_t max_trace_segments = 1u << 20;
  // Run SimAudit over the finished result (SimResult::audit). On by default
  // so every test and every sweep shard self-checks; violations are
  // reported in the result, never aborted on (see src/sim/audit.h).
  bool audit = true;
  // Seed for the execution-time model's randomness.
  uint64_t seed = 1;
  // Turn on the process-global RTDVS_PROF_SCOPE profiler for this run; span
  // aggregates are flushed at the end of Run() and surface via
  // Profiler::Drain() (rtdvs-sim --profile wires this). Off: each span
  // costs one predicted branch.
  bool profile = false;
  // Optional aperiodic server (footnote 1 of the paper): when kind is not
  // kNone, the simulator appends a periodic "server" task of the given
  // period/budget to the task set and serves the configured arrival stream
  // through it. Schedulers, schedulability tests and DVS policies see the
  // server as an ordinary periodic task, so deadline guarantees for the
  // real periodic tasks are preserved.
  AperiodicServerConfig aperiodic;
};

class Simulator {
 public:
  // `policy` and `exec_model` must outlive Run(); they are mutated (policies
  // keep bookkeeping, models consume randomness).
  Simulator(TaskSet tasks, MachineSpec machine, DvsPolicy* policy,
            ExecTimeModel* exec_model, SimOptions options);
  ~Simulator();

  // Runs the full horizon and returns the metrics. May be called once.
  SimResult Run();

 private:
  struct TaskState {
    double next_release_ms = 0;
    int64_t next_invocation = 0;
    double cumulative_executed = 0;
    double last_actual_work = 0;  // defaults to C_i
  };

  // Creates all invocations due at `now` for the tasks in due_releases_
  // (set by ConsumeDueEvents), queueing each new job's deadline event and
  // the task's next release event.
  void ReleaseDueJobs(double now, std::vector<int>* released);
  void BuildContext(double now);
  // Registers the job with the event queue (uid + deadline event).
  void QueueJobDeadline(Job* job);
  // Earliest valid queued event time, discarding stale entries (deadline
  // events whose job died or already passed, superseded policy timers).
  double NextQueuedEventTime();
  // Pops every event due at now_ (within kTimeEpsMs) and collects the due
  // release task ids, sorted, into due_releases_.
  void ConsumeDueEvents();
  // Re-arms the policy-timer event when the policy's requested wakeup
  // changed; older timer events are superseded via the generation counter.
  void SyncPolicyTimer(const std::optional<double>& wakeup);
  bool IsServerJob(const Job& job) const {
    return server_task_id_ >= 0 && job.task_id == server_task_id_;
  }
  // Remaining work the running job can execute right now (queue/budget
  // limited for the server job, actual remaining otherwise).
  double EffectiveRemaining(const Job& job) const;
  // Applies the server completion rule to an active server job; returns
  // true (and finalizes the job) when it completes.
  bool MaybeCompleteServerJob(Job* job, double now);
  void FinalizeJobCompletion(Job* job, double now);

  TaskSet tasks_;
  MachineSpec machine_;
  DvsPolicy* policy_;
  ExecTimeModel* exec_model_;
  SimOptions options_;

  std::unique_ptr<Scheduler> scheduler_;
  EnergyModel energy_;
  Pcg32 rng_;

  std::vector<TaskState> task_states_;
  std::vector<Job> jobs_;
  PolicyContext ctx_;
  SimResult result_;

  // Engine components (src/engine/).
  EventQueue events_;
  ReadyQueue ready_;
  ContextBuilder context_builder_;
  ModelEnergyAccountant accountant_;
  TraceRecorderSink trace_sink_;
  std::unique_ptr<ModeledSpeedController> speed_;
  // Liveness of job uid u at [u - 1]; validates queued deadline events.
  // Uids are assigned densely from 1 per run, so a flat vector beats a hash
  // set (no allocation per job on the release hot path).
  std::vector<uint8_t> deadline_live_;
  uint64_t next_job_uid_ = 1;
  // Only the newest queued policy-timer event is valid.
  uint64_t timer_generation_ = 0;
  std::optional<double> queued_wakeup_;
  std::vector<int> due_releases_;

  std::optional<AperiodicServerState> aperiodic_;
  int server_task_id_ = -1;
  double now_ = 0;
  bool ran_ = false;
};

// Convenience wrapper: builds the policy's matching scheduler and runs.
SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        DvsPolicy& policy, ExecTimeModel& exec_model,
                        const SimOptions& options);

// Same, resolving the policy from its factory id (see MakePolicy for the
// valid ids) so callers need not hand-wire a policy object per run.
SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        const std::string& policy_id, ExecTimeModel& exec_model,
                        const SimOptions& options);

}  // namespace rtdvs

#endif  // SRC_SIM_SIMULATOR_H_
