// Event-driven simulator for DVS-capable hardware with real-time scheduling
// (§3.1 of the paper). Execution is modelled by counting work (cycles
// normalized to milliseconds at maximum frequency); the only events are task
// releases, task completions, deadline checks, policy timer wakeups, and the
// horizon — between events the processor state is constant, so energy
// integrates in closed form.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "src/cpu/energy_model.h"
#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/rt/aperiodic.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/job.h"
#include "src/rt/scheduler.h"
#include "src/rt/task.h"
#include "src/sim/metrics.h"

namespace rtdvs {

// What happens to a job whose deadline passes before it completes.
enum class MissPolicy {
  // Keep executing; the tardy job finishes late (Unix-like behaviour).
  kContinueLate,
  // Abandon remaining work at the deadline (firm real-time semantics).
  kAbortJob,
};

struct SimOptions {
  double horizon_ms = 10'000.0;
  // Ratio of halted-cycle to active-cycle energy (§3.1 "idle level").
  double idle_level = 0.0;
  // Energy units per work-unit at 1 V; scales all reported energies.
  double energy_coefficient = 1.0;
  MissPolicy miss_policy = MissPolicy::kContinueLate;
  // Wall time the processor halts on every operating-point change (§4.1
  // measured ~0.4 ms for voltage transitions). 0 = ideal instantaneous.
  double switch_time_ms = 0.0;
  bool record_trace = false;
  size_t max_trace_segments = 1u << 20;
  // Run SimAudit over the finished result (SimResult::audit). On by default
  // so every test and every sweep shard self-checks; violations are
  // reported in the result, never aborted on (see src/sim/audit.h).
  bool audit = true;
  // Seed for the execution-time model's randomness.
  uint64_t seed = 1;
  // Optional aperiodic server (footnote 1 of the paper): when kind is not
  // kNone, the simulator appends a periodic "server" task of the given
  // period/budget to the task set and serves the configured arrival stream
  // through it. Schedulers, schedulability tests and DVS policies see the
  // server as an ordinary periodic task, so deadline guarantees for the
  // real periodic tasks are preserved.
  AperiodicServerConfig aperiodic;
};

class Simulator {
 public:
  // `policy` and `exec_model` must outlive Run(); they are mutated (policies
  // keep bookkeeping, models consume randomness).
  Simulator(TaskSet tasks, MachineSpec machine, DvsPolicy* policy,
            ExecTimeModel* exec_model, SimOptions options);
  ~Simulator();  // out of line: Speed is an incomplete type here

  // Runs the full horizon and returns the metrics. May be called once.
  SimResult Run();

 private:
  class Speed;  // SpeedController implementation

  struct TaskState {
    double next_release_ms = 0;
    int64_t next_invocation = 0;
    double cumulative_executed = 0;
    double last_actual_work = 0;  // defaults to C_i
  };

  void ReleaseDueJobs(double now, std::vector<int>* released);
  void BuildContext(double now);
  double EarliestActiveDeadlineAfter(double now) const;
  double NextReleaseTime() const;
  bool IsServerJob(const Job& job) const {
    return server_task_id_ >= 0 && job.task_id == server_task_id_;
  }
  // Remaining work the running job can execute right now (queue/budget
  // limited for the server job, actual remaining otherwise).
  double EffectiveRemaining(const Job& job) const;
  // Applies the server completion rule to an active server job; returns
  // true (and finalizes the job) when it completes.
  bool MaybeCompleteServerJob(Job* job, double now);
  void FinalizeJobCompletion(Job* job, double now);

  TaskSet tasks_;
  MachineSpec machine_;
  DvsPolicy* policy_;
  ExecTimeModel* exec_model_;
  SimOptions options_;

  std::unique_ptr<Scheduler> scheduler_;
  EnergyModel energy_;
  Pcg32 rng_;

  std::vector<TaskState> task_states_;
  std::vector<Job> jobs_;
  // Release time of each task's chosen "current invocation"; scratch for
  // BuildContext (member to avoid per-event allocation).
  std::vector<double> chosen_release_;
  PolicyContext ctx_;
  SimResult result_;
  std::unique_ptr<Speed> speed_;
  std::optional<AperiodicServerState> aperiodic_;
  int server_task_id_ = -1;
  double now_ = 0;
  bool ran_ = false;
};

// Convenience wrapper: builds the policy's matching scheduler and runs.
SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        DvsPolicy& policy, ExecTimeModel& exec_model,
                        const SimOptions& options);

// Same, resolving the policy from its factory id (see MakePolicy for the
// valid ids) so callers need not hand-wire a policy object per run.
SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        const std::string& policy_id, ExecTimeModel& exec_model,
                        const SimOptions& options);

}  // namespace rtdvs

#endif  // SRC_SIM_SIMULATOR_H_
