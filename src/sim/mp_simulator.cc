#include "src/sim/mp_simulator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "src/cpu/lower_bound.h"
#include "src/util/check.h"
#include "src/util/json.h"
#include "src/util/profiler.h"
#include "src/util/time_eps.h"

namespace rtdvs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-core RNG stream for partitioned mode. Core 0 keeps the request seed,
// so an M=1 request is bit-identical to the legacy single-core path; higher
// cores decorrelate via the golden-ratio multiplier.
uint64_t CoreSeed(uint64_t seed, int core) {
  return seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(core));
}

// Translates a core's local task ids back to the global ids the shared
// execution-time model keys on. Invocation indices pass through unchanged:
// a partitioned task runs wholly on one core, so its local invocation
// sequence IS its global one.
class CoreExecModelAdapter : public ExecTimeModel {
 public:
  CoreExecModelAdapter(ExecTimeModel* inner, const std::vector<int>* global_ids)
      : inner_(inner), global_ids_(global_ids) {}
  std::string name() const override { return inner_->name(); }
  double DrawFraction(int task_id, int64_t invocation, Pcg32& rng) override {
    return inner_->DrawFraction((*global_ids_)[static_cast<size_t>(task_id)],
                                invocation, rng);
  }

 private:
  ExecTimeModel* inner_;
  const std::vector<int>* global_ids_;
};

// A core the partition left without tasks is powered down for the whole
// horizon: wall time is all idle at the lowest operating point, energy is
// zero (the core is off, not halted). The reference oracle reproduces this
// slice independently; keep the two definitions in sync.
SimResult PoweredDownSlice(const MachineSpec& machine, const SimOptions& options) {
  SimResult slice;
  slice.policy_name = "off";
  slice.horizon_ms = options.horizon_ms;
  slice.idle_ms = options.horizon_ms;
  for (const OperatingPoint& point : machine.points()) {
    slice.residency.push_back(PointResidency{point, 0, 0, 0, 0});
  }
  slice.residency.front().idle_ms = options.horizon_ms;
  return slice;
}

// Folds one core's slice into the cluster totals. Never touches traces
// (they stay per-core) and maps per-task stats back to global ids.
void AccumulateSlice(const SimResult& slice, const std::vector<int>& global_ids,
                     SimResult* cluster) {
  cluster->exec_energy += slice.exec_energy;
  cluster->idle_energy += slice.idle_energy;
  cluster->busy_ms += slice.busy_ms;
  cluster->idle_ms += slice.idle_ms;
  cluster->switching_ms += slice.switching_ms;
  cluster->total_work_executed += slice.total_work_executed;
  cluster->releases += slice.releases;
  cluster->completions += slice.completions;
  cluster->deadline_misses += slice.deadline_misses;
  cluster->aborted += slice.aborted;
  cluster->unfinished_at_horizon += slice.unfinished_at_horizon;
  cluster->wcet_overruns += slice.wcet_overruns;
  cluster->speed_switches += slice.speed_switches;
  cluster->preemptions += slice.preemptions;
  cluster->policy_counters.MergeFrom(slice.policy_counters);
  cluster->fastpath.MergeFrom(slice.fastpath);
  cluster->lower_bound_energy += slice.lower_bound_energy;
  for (size_t i = 0; i < slice.residency.size(); ++i) {
    PointResidency& sum = cluster->residency[i];
    const PointResidency& res = slice.residency[i];
    sum.exec_ms += res.exec_ms;
    sum.idle_ms += res.idle_ms;
    sum.exec_energy += res.exec_energy;
    sum.idle_energy += res.idle_energy;
  }
  for (size_t local = 0; local < slice.task_stats.size(); ++local) {
    cluster->task_stats[static_cast<size_t>(global_ids[local])] =
        slice.task_stats[local];
  }
}

void InitClusterResult(int num_tasks, const MachineSpec& machine,
                       const SimOptions& options, SimResult* cluster) {
  cluster->horizon_ms = options.horizon_ms;
  cluster->task_stats.assign(static_cast<size_t>(num_tasks), TaskStats{});
  for (const OperatingPoint& point : machine.points()) {
    cluster->residency.push_back(PointResidency{point, 0, 0, 0, 0});
  }
}

std::string ClusterPolicyName(const std::vector<DvsPolicy*>& policies) {
  std::string name = policies.front()->name();
  for (const DvsPolicy* policy : policies) {
    if (policy->name() != name) {
      name += "+" + policy->name();
    }
  }
  return name;
}

// --- M = 1: route straight to the single-core Simulator with untouched
// options, making the new API bit-identical to the legacy path (the legacy
// RunSimulation overloads are wrappers over this branch). ---
void RunSingleCore(const SimRequest& request, DvsPolicy* policy,
                   ExecTimeModel& exec_model, MpSimResult* out) {
  Simulator sim(request.tasks, request.cluster.machine, policy, &exec_model,
                request.options);
  out->admitted = true;
  out->partition.feasible = true;
  out->partition.core_of_task.assign(static_cast<size_t>(request.tasks.size()), 0);
  out->partition.core_utilization = {request.tasks.TotalUtilization()};
  out->partition.core_task_count = {request.tasks.size()};
  out->partition.cores_used = 1;
  out->core_tasks = {request.tasks};
  out->core_global_ids.resize(1);
  for (int id = 0; id < request.tasks.size(); ++id) {
    out->core_global_ids[0].push_back(id);
  }
  out->cores[0] = sim.Run();
  // The simulated set may have grown a server task; size the cluster stats
  // to what the core actually reported.
  if (out->cores[0].server_task_id >= 0) {
    out->core_global_ids[0].push_back(request.tasks.size());
  }
  InitClusterResult(static_cast<int>(out->cores[0].task_stats.size()),
                    request.cluster.machine, request.options, &out->cluster);
  AccumulateSlice(out->cores[0], out->core_global_ids[0], &out->cluster);
  out->cluster.server_task_id = out->cores[0].server_task_id;
  out->cluster.aperiodic = out->cores[0].aperiodic;
}

// --- Partitioned mode (M > 1): bin-pack, then one independent single-core
// Simulator per non-empty core. ---
void RunPartitioned(const SimRequest& request,
                    const std::vector<DvsPolicy*>& policies,
                    ExecTimeModel& exec_model, MpSimResult* out) {
  const int num_cores = request.cluster.num_cores;
  RTDVS_CHECK(request.options.aperiodic.kind == ServerKind::kNone)
      << "aperiodic servers are supported only at num_cores == 1";
  std::vector<SchedulerKind> kinds;
  kinds.reserve(static_cast<size_t>(num_cores));
  for (const DvsPolicy* policy : policies) {
    kinds.push_back(policy->scheduler_kind());
  }
  out->partition = PartitionTasks(request.tasks, num_cores, request.partition, kinds);
  if (!out->partition.feasible) {
    out->admitted = false;
    return;
  }
  out->admitted = true;

  out->core_tasks.assign(static_cast<size_t>(num_cores), TaskSet{});
  out->core_global_ids.assign(static_cast<size_t>(num_cores), {});
  for (int id = 0; id < request.tasks.size(); ++id) {
    const int core = out->partition.core_of_task[static_cast<size_t>(id)];
    out->core_tasks[static_cast<size_t>(core)].AddTask(request.tasks.task(id));
    out->core_global_ids[static_cast<size_t>(core)].push_back(id);
  }

  InitClusterResult(request.tasks.size(), request.cluster.machine,
                    request.options, &out->cluster);
  for (int core = 0; core < num_cores; ++core) {
    RTDVS_PROF_SCOPE("mp/core/run");
    const auto c = static_cast<size_t>(core);
    if (out->core_tasks[c].empty()) {
      out->cores[c] = PoweredDownSlice(request.cluster.machine, request.options);
    } else {
      SimOptions core_options = request.options;
      core_options.seed = CoreSeed(request.options.seed, core);
      CoreExecModelAdapter adapter(&exec_model, &out->core_global_ids[c]);
      Simulator sim(out->core_tasks[c], request.cluster.machine,
                    policies[c], &adapter, core_options);
      out->cores[c] = sim.Run();
    }
    AccumulateSlice(out->cores[c], out->core_global_ids[c], &out->cluster);
  }
}

// --- Global mode (M > 1): one cluster-wide ReadyQueue over a shared clock,
// per-core engine components (EnergyAccountant + SpeedController), and the
// dispatch/migration contract documented in mp_simulator.h. ---
class GlobalClusterEngine {
 public:
  GlobalClusterEngine(const SimRequest& request,
                      const std::vector<DvsPolicy*>& policies,
                      ExecTimeModel& exec_model, MpSimResult* out)
      : tasks_(request.tasks),
        machine_(request.cluster.machine),
        options_(request.options),
        policies_(policies),
        exec_model_(exec_model),
        num_cores_(request.cluster.num_cores),
        scheduler_(MakeScheduler(policies.front()->scheduler_kind())),
        rng_(request.options.seed),
        out_(out) {
    RTDVS_CHECK(options_.aperiodic.kind == ServerKind::kNone)
        << "aperiodic servers are supported only at num_cores == 1";
    for (const DvsPolicy* policy : policies_) {
      RTDVS_CHECK(policy->scheduler_kind() == scheduler_->kind())
          << "global mode needs one scheduler kind across all cores";
    }
  }

  void Run() {
    const auto n = static_cast<size_t>(tasks_.size());
    const auto m = static_cast<size_t>(num_cores_);
    out_->admitted = true;  // global scheduling has no admission test
    out_->partition.feasible = true;
    out_->partition.cores_used = num_cores_;
    out_->core_tasks.assign(m, tasks_);
    out_->core_global_ids.assign(m, {});
    for (size_t c = 0; c < m; ++c) {
      for (int id = 0; id < tasks_.size(); ++id) {
        out_->core_global_ids[c].push_back(id);
      }
    }
    InitClusterResult(tasks_.size(), machine_, options_, &out_->cluster);
    SimResult& cluster = out_->cluster;
    cluster.trace.set_capacity_limit(options_.max_trace_segments);

    next_release_.assign(n, 0.0);
    next_invocation_.assign(n, 0);
    cumulative_executed_.assign(n, 0.0);
    last_actual_work_.assign(n, 0.0);
    for (int id = 0; id < tasks_.size(); ++id) {
      next_release_[static_cast<size_t>(id)] = tasks_.task(id).phase_ms;
      last_actual_work_[static_cast<size_t>(id)] = tasks_.task(id).wcet_ms;
    }

    // Per-core engine components over the one shared clock.
    std::vector<ModelEnergyAccountant> accountants(
        m, ModelEnergyAccountant(
               EnergyModel(options_.idle_level, options_.energy_coefficient)));
    std::vector<std::unique_ptr<TraceRecorderSink>> sinks(m);
    std::vector<std::unique_ptr<ModeledSpeedController>> speeds(m);
    std::vector<PolicyCounters> counters_at_start(m);
    for (size_t c = 0; c < m; ++c) {
      SimResult& slice = out_->cores[c];
      slice.policy_name = policies_[c]->name();
      slice.scheduler = policies_[c]->scheduler_kind();
      slice.horizon_ms = options_.horizon_ms;
      for (const OperatingPoint& point : machine_.points()) {
        slice.residency.push_back(PointResidency{point, 0, 0, 0, 0});
      }
      slice.trace.set_capacity_limit(options_.max_trace_segments);
      TraceSink* sink = nullptr;
      if (options_.record_trace) {
        sinks[c] = std::make_unique<TraceRecorderSink>(&slice.trace);
        sink = sinks[c].get();
      }
      accountants[c].BindResidency(&machine_, &slice.residency);
      accountants[c].set_trace_sink(sink);
      speeds[c] = std::make_unique<ModeledSpeedController>(
          &machine_, options_.switch_time_ms, &now_, sink);
      counters_at_start[c] = policies_[c]->counters();
    }
    ready_.BindScheduler(scheduler_.get());
    context_builder_.Bind(&tasks_, &machine_);

    std::vector<std::optional<double>> wakeup(m);
    std::vector<char> was_idle(m, 0);
    {
      PolicyContext ctx;
      BuildContext(accountants, &ctx);
      for (size_t c = 0; c < m; ++c) {
        policies_[c]->OnStart(ctx, *speeds[c]);
      }
      for (size_t c = 0; c < m; ++c) {
        wakeup[c] = policies_[c]->NextWakeupMs(ctx);
      }
    }

    while (now_ < options_.horizon_ms - kTimeEpsMs) {
      // --- Dispatch: the M highest-priority jobs, with core affinity. ---
      std::vector<int> core_job(m, -1);  // index into jobs_, -1 = idle core
      {
        RTDVS_PROF_SCOPE("mp/global/dispatch");
        const std::vector<size_t>& picked = ready_.PickTopK(jobs_, tasks_, m);
        std::vector<char> placed(picked.size(), 0);
        // Pass 1: a job keeps its previous core when that core is free.
        for (size_t p = 0; p < picked.size(); ++p) {
          const int prev = last_core_[picked[p]];
          if (prev >= 0 && core_job[static_cast<size_t>(prev)] < 0) {
            core_job[static_cast<size_t>(prev)] = static_cast<int>(picked[p]);
            placed[p] = 1;
          }
        }
        // Pass 2: remaining jobs fill free cores lowest-index-first in
        // priority order; landing away from the previous core is a migration.
        size_t next_free = 0;
        for (size_t p = 0; p < picked.size(); ++p) {
          if (placed[p]) {
            continue;
          }
          while (core_job[next_free] >= 0) {
            ++next_free;
          }
          core_job[next_free] = static_cast<int>(picked[p]);
          if (last_core_[picked[p]] >= 0 &&
              last_core_[picked[p]] != static_cast<int>(next_free)) {
            ++out_->migrations;
          }
          last_core_[picked[p]] = static_cast<int>(next_free);
        }
      }
      // Preemptions: a job dispatched last segment, still unfinished, that
      // lost its slot this segment (diagnostic; not a divergence-checked
      // counter, but the reference computes it identically).
      std::vector<char> dispatched_now(jobs_.size(), 0);
      for (size_t c = 0; c < m; ++c) {
        if (core_job[c] >= 0) {
          dispatched_now[static_cast<size_t>(core_job[c])] = 1;
        }
      }
      for (size_t i = 0; i < jobs_.size(); ++i) {
        if (dispatched_[i] && !dispatched_now[i] && !jobs_[i].finished) {
          ++cluster.preemptions;
        }
      }
      dispatched_ = dispatched_now;

      // --- Next event: releases, deadlines, wakeups, per-core completions. ---
      double t_next = options_.horizon_ms;
      for (double release : next_release_) {
        t_next = std::min(t_next, release);
      }
      for (const Job& job : jobs_) {
        if (!job.finished && job.deadline_ms > now_ + kTimeEpsMs) {
          t_next = std::min(t_next, job.deadline_ms);
        }
      }
      for (size_t c = 0; c < m; ++c) {
        if (wakeup[c].has_value() && *wakeup[c] > now_ + kTimeEpsMs) {
          t_next = std::min(t_next, *wakeup[c]);
        }
        if (core_job[c] >= 0) {
          const Job& job = jobs_[static_cast<size_t>(core_job[c])];
          double exec_start = std::max(now_, speeds[c]->blocked_until_ms());
          t_next = std::min(t_next, exec_start + job.RemainingActualWork() /
                                                     speeds[c]->current().frequency);
        }
      }
      RTDVS_CHECK_GT(t_next, now_ - kTimeEpsMs)
          << "event horizon moved backwards at t=" << now_;
      t_next = std::min(std::max(t_next, now_), options_.horizon_ms);

      // --- Idle notification, once per idle period per core, only ahead of
      // a segment of real length (a zero-length step between releases due at
      // `now` is not an idle period). ---
      if (t_next > now_ + kTimeEpsMs) {
        PolicyContext ctx;
        bool ctx_built = false;
        for (size_t c = 0; c < m; ++c) {
          if (core_job[c] >= 0) {
            was_idle[c] = 0;
          } else if (!was_idle[c]) {
            if (!ctx_built) {
              BuildContext(accountants, &ctx);
              ctx_built = true;
            }
            policies_[c]->OnIdle(ctx, *speeds[c]);
            was_idle[c] = 1;
          }
        }
      }

      // --- Integrate [now, t_next) on every core. ---
      for (size_t c = 0; c < m; ++c) {
        const OperatingPoint point = speeds[c]->current();
        if (core_job[c] >= 0) {
          Job& job = jobs_[static_cast<size_t>(core_job[c])];
          double exec_start =
              std::clamp(speeds[c]->blocked_until_ms(), now_, t_next);
          accountants[c].RecordSwitchHalt(now_, exec_start, point);
          const double exec_dt = t_next - exec_start;
          if (exec_dt > 0) {
            double work = exec_dt * point.frequency;
            work = std::min(work, job.RemainingActualWork());
            job.executed_work += work;
            cumulative_executed_[static_cast<size_t>(job.task_id)] += work;
            cluster.task_stats[static_cast<size_t>(job.task_id)].executed_work +=
                work;
            accountants[c].RecordExecution(exec_start, t_next, work, job.task_id,
                                           point);
          }
        } else {
          const double halt_end =
              std::clamp(speeds[c]->blocked_until_ms(), now_, t_next);
          accountants[c].RecordSwitchHalt(now_, halt_end, point);
          accountants[c].RecordIdle(halt_end, t_next, point);
        }
      }
      now_ = t_next;
      if (now_ >= options_.horizon_ms - kTimeEpsMs) {
        break;
      }

      // --- State changes due at now: completions (creation order), then
      // misses, then releases (task-id order, one model draw each). ---
      std::vector<int> completed;
      for (Job& job : jobs_) {
        if (!job.finished && job.RemainingActualWork() <= kWorkEps) {
          FinalizeCompletion(&job, &cluster);
          completed.push_back(job.task_id);
        }
      }
      for (Job& job : jobs_) {
        if (job.finished || job.missed || job.deadline_ms > now_ + kTimeEpsMs) {
          continue;
        }
        job.missed = true;
        ++cluster.deadline_misses;
        ++cluster.task_stats[static_cast<size_t>(job.task_id)].deadline_misses;
        if (options_.record_trace) {
          cluster.trace.AddEvent(
              {now_, TraceEventKind::kDeadlineMiss, job.task_id, {}});
        }
        if (options_.miss_policy == MissPolicy::kAbortJob) {
          job.finished = true;
          job.completion_ms = now_;
          ++cluster.aborted;
          ++cluster.task_stats[static_cast<size_t>(job.task_id)].aborted;
        }
      }
      std::vector<int> released;
      ReleaseDueJobs(&cluster, &released);
      PruneFinished();

      // --- Policy callbacks fan out to every core in core order. ---
      PolicyContext ctx;
      BuildContext(accountants, &ctx);
      for (int task_id : completed) {
        for (size_t c = 0; c < m; ++c) {
          policies_[c]->OnTaskCompletion(task_id, ctx, *speeds[c]);
        }
      }
      for (int task_id : released) {
        for (size_t c = 0; c < m; ++c) {
          policies_[c]->OnTaskRelease(task_id, ctx, *speeds[c]);
        }
      }
      for (size_t c = 0; c < m; ++c) {
        if (wakeup[c].has_value() && *wakeup[c] <= now_ + kTimeEpsMs) {
          policies_[c]->OnWakeup(ctx, *speeds[c]);
        }
        wakeup[c] = policies_[c]->NextWakeupMs(ctx);
      }
    }

    for (const Job& job : jobs_) {
      if (!job.finished) {
        ++cluster.unfinished_at_horizon;
        ++cluster.task_stats[static_cast<size_t>(job.task_id)].unfinished;
      }
    }

    // Per-core slices: time/energy/residency/switch totals only; job-level
    // counters live on the cluster result.
    for (size_t c = 0; c < m; ++c) {
      SimResult& slice = out_->cores[c];
      const EngineTotals& totals = accountants[c].totals();
      slice.busy_ms = totals.busy_ms;
      slice.idle_ms = totals.idle_ms;
      slice.switching_ms = totals.switching_ms;
      slice.total_work_executed = totals.work;
      slice.exec_energy = totals.exec_energy;
      slice.idle_energy = totals.idle_energy;
      slice.speed_switches = speeds[c]->switch_count();
      slice.policy_counters =
          policies_[c]->counters().DiffSince(counters_at_start[c]);
      AccumulateSlice(slice, {}, &cluster);
    }
    // Cluster-level §3.2 bound: the per-core bound is convex in work, so an
    // even split of the executed work over M always-on cores lower-bounds
    // any division the scheduler actually produced.
    cluster.lower_bound_energy =
        num_cores_ *
        MinimumExecutionEnergy(
            cluster.total_work_executed / num_cores_, options_.horizon_ms,
            machine_, EnergyModel(0.0, options_.energy_coefficient));
  }

 private:
  void BuildContext(const std::vector<ModelEnergyAccountant>& accountants,
                    PolicyContext* ctx) {
    EngineTotals aggregate;
    for (const ModelEnergyAccountant& accountant : accountants) {
      aggregate.busy_ms += accountant.totals().busy_ms;
      aggregate.idle_ms += accountant.totals().idle_ms;
      aggregate.work += accountant.totals().work;
    }
    context_builder_.Build(
        now_, jobs_, aggregate,
        [this](int id) {
          const auto i = static_cast<size_t>(id);
          return ContextBuilder::TaskSnapshot{
              next_release_[i], cumulative_executed_[i], last_actual_work_[i]};
        },
        ctx);
  }

  void FinalizeCompletion(Job* job, SimResult* cluster) {
    job->finished = true;
    job->completion_ms = now_;
    TaskStats& stats = cluster->task_stats[static_cast<size_t>(job->task_id)];
    ++stats.completions;
    ++cluster->completions;
    const double response = now_ - job->release_ms;
    stats.total_response_ms += response;
    stats.max_response_ms = std::max(stats.max_response_ms, response);
    last_actual_work_[static_cast<size_t>(job->task_id)] = job->actual_work;
    if (options_.record_trace) {
      cluster->trace.AddEvent(
          {now_, TraceEventKind::kCompletion, job->task_id, {}});
    }
  }

  void ReleaseDueJobs(SimResult* cluster, std::vector<int>* released) {
    for (int id = 0; id < tasks_.size(); ++id) {
      const auto i = static_cast<size_t>(id);
      const Task& task = tasks_.task(id);
      while (next_release_[i] <= now_ + kTimeEpsMs) {
        const double fraction =
            exec_model_.DrawFraction(id, next_invocation_[i], rng_);
        RTDVS_CHECK_GT(fraction, 0.0);
        if (fraction > 1.0 + kWorkEps) {
          ++cluster->wcet_overruns;
        }
        Job job;
        job.task_id = id;
        job.invocation = next_invocation_[i];
        job.release_ms = next_release_[i];
        job.deadline_ms = next_release_[i] + task.period_ms;
        job.wcet_work = task.wcet_ms;
        job.actual_work = fraction * task.wcet_ms;
        jobs_.push_back(job);
        last_core_.push_back(-1);
        dispatched_.push_back(0);
        ++next_invocation_[i];
        next_release_[i] += task.period_ms;
        ++cluster->releases;
        ++cluster->task_stats[i].releases;
        if (options_.record_trace) {
          cluster->trace.AddEvent(
              {job.release_ms, TraceEventKind::kRelease, id, {}});
        }
        released->push_back(id);
      }
    }
  }

  void PruneFinished() {
    size_t kept = 0;
    for (size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].finished) {
        continue;
      }
      jobs_[kept] = jobs_[i];
      last_core_[kept] = last_core_[i];
      dispatched_[kept] = dispatched_[i];
      ++kept;
    }
    jobs_.resize(kept);
    last_core_.resize(kept);
    dispatched_.resize(kept);
  }

  TaskSet tasks_;
  MachineSpec machine_;
  SimOptions options_;
  std::vector<DvsPolicy*> policies_;
  ExecTimeModel& exec_model_;
  int num_cores_;
  std::unique_ptr<Scheduler> scheduler_;
  Pcg32 rng_;
  MpSimResult* out_;

  ReadyQueue ready_;
  ContextBuilder context_builder_;
  std::vector<Job> jobs_;  // creation order; finished jobs pruned per event
  // Parallel to jobs_: the core each job last ran on (-1 = never dispatched)
  // and whether it was dispatched in the previous segment.
  std::vector<int> last_core_;
  std::vector<char> dispatched_;
  std::vector<double> next_release_;
  std::vector<int64_t> next_invocation_;
  std::vector<double> cumulative_executed_;
  std::vector<double> last_actual_work_;
  double now_ = 0;
};

JsonValue SliceToJson(const SimResult& slice) {
  JsonValue out = JsonValue::Object();
  out.Set("policy", slice.policy_name);
  out.Set("scheduler", SchedulerKindName(slice.scheduler));
  out.Set("exec_energy", slice.exec_energy);
  out.Set("idle_energy", slice.idle_energy);
  out.Set("total_energy", slice.total_energy());
  out.Set("busy_ms", slice.busy_ms);
  out.Set("idle_ms", slice.idle_ms);
  out.Set("switching_ms", slice.switching_ms);
  out.Set("total_work_executed", slice.total_work_executed);
  out.Set("releases", slice.releases);
  out.Set("completions", slice.completions);
  out.Set("deadline_misses", slice.deadline_misses);
  out.Set("aborted", slice.aborted);
  out.Set("unfinished_at_horizon", slice.unfinished_at_horizon);
  out.Set("speed_switches", slice.speed_switches);
  out.Set("preemptions", slice.preemptions);
  out.Set("lower_bound_energy", slice.lower_bound_energy);
  out.Set("counters", PolicyCountersToJson(slice.policy_counters));
  out.Set("fastpath", FastPathStatsToJson(slice.fastpath));
  JsonValue residency = JsonValue::Array();
  for (const PointResidency& res : slice.residency) {
    JsonValue entry = JsonValue::Object();
    entry.Set("frequency", res.point.frequency);
    entry.Set("voltage", res.point.voltage);
    entry.Set("exec_ms", res.exec_ms);
    entry.Set("idle_ms", res.idle_ms);
    entry.Set("exec_energy", res.exec_energy);
    entry.Set("idle_energy", res.idle_energy);
    residency.Append(std::move(entry));
  }
  out.Set("residency", std::move(residency));
  if (slice.audit.audited) {
    out.Set("audit_ok", slice.audit.ok());
  }
  return out;
}

}  // namespace

MpSimResult RunClusterSimulation(const SimRequest& request,
                                 const std::vector<DvsPolicy*>& policies,
                                 ExecTimeModel& exec_model) {
  const int num_cores = request.cluster.num_cores;
  RTDVS_CHECK_GE(num_cores, 1);
  RTDVS_CHECK(static_cast<int>(policies.size()) == num_cores)
      << "need exactly one policy per core";
  RTDVS_CHECK(!request.tasks.empty()) << "cannot simulate an empty task set";

  if (request.options.profile) {
    // Single-core and partitioned paths enable via Simulator::Run; the
    // global engine drives the components directly, so enable here.
    Profiler::Enable();
  }

  MpSimResult out;
  out.mode = request.mode;
  out.num_cores = num_cores;
  out.cores.resize(static_cast<size_t>(num_cores));
  out.partition.core_of_task.assign(static_cast<size_t>(request.tasks.size()), -1);
  out.partition.core_utilization.assign(static_cast<size_t>(num_cores), 0.0);
  out.partition.core_task_count.assign(static_cast<size_t>(num_cores), 0);

  if (num_cores == 1) {
    // Either mode degenerates to single-processor scheduling at M = 1.
    RunSingleCore(request, policies.front(), exec_model, &out);
  } else if (request.mode == MpMode::kPartitioned) {
    RunPartitioned(request, policies, exec_model, &out);
  } else {
    GlobalClusterEngine(request, policies, exec_model, &out).Run();
  }

  if (out.admitted) {
    out.cluster.policy_name = ClusterPolicyName(policies);
    out.cluster.scheduler = policies.front()->scheduler_kind();
    out.cluster.horizon_ms = request.options.horizon_ms;
    // Fold cluster-level migration accounting into the mergeable counters so
    // sweep profile totals and rtdvs-sim --json report it alongside the
    // per-policy decision counters (always 0 in partitioned mode).
    out.cluster.policy_counters.migrations = out.migrations;
    if (request.options.audit) {
      out.cluster_audit = AuditMpResult(out, request.options);
      out.cluster.audit = out.cluster_audit;
    }
  }
  return out;
}

MpSimResult RunClusterSimulation(const SimRequest& request,
                                 ExecTimeModel& exec_model) {
  const int num_cores = request.cluster.num_cores;
  RTDVS_CHECK(!request.policy_ids.empty());
  RTDVS_CHECK(request.policy_ids.size() == 1 ||
              static_cast<int>(request.policy_ids.size()) == num_cores)
      << "policy_ids must have one entry, or exactly one per core";
  // One instance per core, always: policy bookkeeping (utilization tables,
  // slack accounting, counters) must never be shared between cores.
  std::vector<std::unique_ptr<DvsPolicy>> owned;
  std::vector<DvsPolicy*> raw;
  for (int core = 0; core < num_cores; ++core) {
    const std::string& id =
        request.policy_ids.size() == 1
            ? request.policy_ids.front()
            : request.policy_ids[static_cast<size_t>(core)];
    owned.push_back(MakePolicy(id));
    raw.push_back(owned.back().get());
  }
  return RunClusterSimulation(request, raw, exec_model);
}

JsonValue MpSimResultToJson(const MpSimResult& result) {
  JsonValue doc = JsonValue::Object();
  doc.Set("version", "rtdvs-mpsim-v1");
  doc.Set("mode", MpModeName(result.mode));
  doc.Set("num_cores", result.num_cores);
  doc.Set("admitted", result.admitted);
  doc.Set("migrations", result.migrations);
  JsonValue partition = JsonValue::Object();
  partition.Set("feasible", result.partition.feasible);
  partition.Set("cores_used", result.partition.cores_used);
  if (!result.partition.error.empty()) {
    partition.Set("error", result.partition.error);
  }
  JsonValue assignment = JsonValue::Array();
  for (int core : result.partition.core_of_task) {
    assignment.Append(core);
  }
  partition.Set("core_of_task", std::move(assignment));
  JsonValue utilization = JsonValue::Array();
  for (double u : result.partition.core_utilization) {
    utilization.Append(u);
  }
  partition.Set("core_utilization", std::move(utilization));
  doc.Set("partition", std::move(partition));
  if (!result.admitted) {
    return doc;
  }
  doc.Set("cluster", SliceToJson(result.cluster));
  if (result.cluster_audit.audited) {
    doc.Set("cluster_audit_ok", result.cluster_audit.ok());
  }
  JsonValue cores = JsonValue::Array();
  for (const SimResult& slice : result.cores) {
    cores.Append(SliceToJson(slice));
  }
  doc.Set("cores", std::move(cores));
  return doc;
}

SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        DvsPolicy& policy, ExecTimeModel& exec_model,
                        const SimOptions& options) {
  SimRequest request;
  request.tasks = tasks;
  request.cluster.num_cores = 1;
  request.cluster.machine = machine;
  request.options = options;
  MpSimResult mp = RunClusterSimulation(request, {&policy}, exec_model);
  return std::move(mp.cores.front());
}

SimResult RunSimulation(const TaskSet& tasks, const MachineSpec& machine,
                        const std::string& policy_id, ExecTimeModel& exec_model,
                        const SimOptions& options) {
  std::unique_ptr<DvsPolicy> policy = MakePolicy(policy_id);
  return RunSimulation(tasks, machine, *policy, exec_model, options);
}

}  // namespace rtdvs
