// Chrome trace-event JSON export of a simulation Trace.
//
// The emitted document loads directly into Perfetto (ui.perfetto.dev) or
// chrome://tracing: one track per task with its execution slices, a "cpu"
// track carrying idle/switching slices, a frequency/voltage counter track
// that steps at every operating-point change, and instant events for
// releases, completions, deadline misses and speed changes. Timestamps are
// microseconds (the format's unit); simulation milliseconds scale by 1000.
//
// Every execution slice carries {frequency, voltage, work, energy} args and
// the counter track is derived from the same segments, so the document
// re-integrates exactly to SimResult::exec_energy — the exporter golden test
// enforces this.
#ifndef SRC_SIM_TRACE_EXPORT_H_
#define SRC_SIM_TRACE_EXPORT_H_

#include <string>

namespace rtdvs {

class JsonValue;
class TaskSet;
struct MpSimResult;
struct SimOptions;
struct SimResult;

// Builds the Chrome trace-event document for `result.trace`. `tasks` must be
// the set as simulated (server task included) — track names come from it.
// The top-level "otherData" object echoes the run (policy, horizon, energy
// totals, idle_level, energy_coefficient) and carries the `truncated` flag,
// so a prefix-only trace is never mistaken for a full one.
JsonValue ExportChromeTrace(const SimResult& result, const TaskSet& tasks,
                            const SimOptions& options);

// ExportChromeTrace + write to `path`; returns false on I/O failure.
bool WriteChromeTrace(const SimResult& result, const TaskSet& tasks,
                      const SimOptions& options, const std::string& path);

// Multiprocessor export: one Chrome-trace track group (process, pid = core
// index) per core, each with its own CPU track, task tracks, and frequency
// counter — Perfetto renders the cluster as M grouped cores. Partitioned
// cores draw task names from their own sub-task-set; powered-down cores
// emit an empty "core N: off" group. In global mode job instant events
// (releases, misses, completions) live on one extra "cluster" group (pid =
// num_cores) named from `tasks`, which must be the request's task set.
// Infeasible results export metadata only. otherData echoes the cluster
// run (mode, cores, admitted, migrations, energy totals, truncated flag).
JsonValue ExportChromeTraceMp(const MpSimResult& result, const TaskSet& tasks,
                              const SimOptions& options);

// ExportChromeTraceMp + write to `path`; returns false on I/O failure.
bool WriteChromeTraceMp(const MpSimResult& result, const TaskSet& tasks,
                        const SimOptions& options, const std::string& path);

}  // namespace rtdvs

#endif  // SRC_SIM_TRACE_EXPORT_H_
