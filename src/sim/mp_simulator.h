// Multiprocessor cluster simulation: the redesigned run API.
//
// A SimRequest describes one run — task set, platform (ClusterSpec), the
// scheduling mode, the partition heuristic, one DVS policy id per core, and
// the usual SimOptions — and RunClusterSimulation returns an MpSimResult:
// one SimResult-shaped slice per core plus cluster totals, the partition
// report, and migration counters. The legacy single-core RunSimulation
// overloads (declared in simulator.h) are thin M=1 wrappers over this entry
// point, and M=1 requests are bit-identical to the legacy path by
// construction: the driver routes them straight to the single-core
// Simulator with untouched options.
//
// Partitioned mode (M > 1): tasks are bin-packed by PartitionTasks; each
// non-empty core runs its own single-core Simulator over its sub-task-set
// with an independently constructed DvsPolicy instance (one per core — the
// instances share no bookkeeping) and the per-core RNG stream
//   seed_c = options.seed ^ (0x9e3779b97f4a7c15 * c),
// so core 0 keeps the request seed. Cores the partition leaves empty are
// powered down: their slice reports the whole horizon as idle at the lowest
// operating point with ZERO energy. Infeasible partitions return with
// admitted == false and no simulation performed.
//
// Global mode: one cluster-wide ReadyQueue; at every scheduling point the
// M highest-priority runnable jobs (at most one per task — backlogged
// invocations of one task never run in parallel) are dispatched, one per
// core. Dispatch keeps a job on its previous core when that core is still
// available to it; remaining jobs fill free cores lowest-index-first, and a
// job landing on a different core than it last ran on counts one migration.
// Every core stays powered (idle energy applies); all policies observe the
// cluster-wide PolicyContext and steer only their own core's speed. Global
// scheduling carries no utilization-based deadline guarantee (Dhall's
// effect), so there is no admission test and slices always run. Job-level
// counters (releases, completions, misses, task_stats) live on the cluster
// result; global slices carry time/energy/residency/switch totals only and
// their task_stats stay empty.
//
// The reference oracle (src/sim/reference_sim.h) implements this same
// contract from scratch so the differential fuzzer covers M-core runs.
#ifndef SRC_SIM_MP_SIMULATOR_H_
#define SRC_SIM_MP_SIMULATOR_H_

#include <string>
#include <vector>

#include "src/engine/cluster.h"
#include "src/rt/exec_time_model.h"
#include "src/rt/task.h"
#include "src/sim/simulator.h"

namespace rtdvs {

class JsonValue;

struct SimRequest {
  TaskSet tasks;
  ClusterSpec cluster;
  MpMode mode = MpMode::kPartitioned;
  PartitionHeuristic partition = PartitionHeuristic::kFirstFit;
  // One entry applies to every core; otherwise exactly num_cores entries,
  // one per core. A fresh DvsPolicy instance is constructed per core either
  // way. Global mode requires every policy to share one scheduler kind.
  std::vector<std::string> policy_ids = {"cc_edf"};
  SimOptions options;
};

struct MpSimResult {
  MpMode mode = MpMode::kPartitioned;
  int num_cores = 1;
  // False only when partitioned admission rejected the task set; the slices
  // and cluster totals are then empty/zero and partition.error explains.
  bool admitted = false;
  // Valid in partitioned mode (trivial all-on-core-0 report for M = 1;
  // cores_used == num_cores in global mode).
  PartitionResult partition;

  std::vector<SimResult> cores;  // per-core slices, size num_cores
  // The task set each core simulated, with LOCAL ids (partitioned mode;
  // empty sets for powered-down cores, all tasks on every entry's core).
  // In global mode every core shares the request's task set.
  std::vector<TaskSet> core_tasks;
  // Global ids of each core's tasks: core_global_ids[c][local] = global id.
  std::vector<std::vector<int>> core_global_ids;

  // Cluster totals: energy/time/work/residency sums over slices, job
  // counters summed (partitioned) or held here directly (global), policy
  // counters merged, lower_bound_energy the cluster-level §3.2 bound.
  SimResult cluster;
  int64_t migrations = 0;  // global mode; 0 in partitioned mode
  // Cluster-conservation audit (AuditCheck::kCluster and the cluster lower
  // bound); also copied into cluster.audit. Per-core slices carry their own
  // single-core audits in partitioned mode.
  AuditReport cluster_audit;
};

// Runs the request with per-core policies resolved from request.policy_ids
// via MakePolicy. Aperiodic servers are supported only at num_cores == 1.
MpSimResult RunClusterSimulation(const SimRequest& request,
                                 ExecTimeModel& exec_model);

// As above with caller-owned policies (size num_cores, one per core; they
// are mutated). request.policy_ids is ignored. Lets tests observe policy
// state after the run and backs the legacy single-core wrappers.
MpSimResult RunClusterSimulation(const SimRequest& request,
                                 const std::vector<DvsPolicy*>& policies,
                                 ExecTimeModel& exec_model);

// JSON view of a result ("rtdvs-mpsim-v1"): cluster totals, partition
// report, and per-core slice summaries; used by rtdvs-sim --json.
JsonValue MpSimResultToJson(const MpSimResult& result);

}  // namespace rtdvs

#endif  // SRC_SIM_MP_SIMULATOR_H_
