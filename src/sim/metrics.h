// Result types produced by a simulation run.
#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/operating_point.h"
#include "src/dvs/policy_counters.h"
#include "src/engine/energy_accountant.h"  // PointResidency
#include "src/engine/trace.h"
#include "src/rt/aperiodic.h"
#include "src/rt/scheduler.h"
#include "src/sim/audit.h"

namespace rtdvs {

// Per-task outcome statistics.
struct TaskStats {
  int64_t releases = 0;
  int64_t completions = 0;
  int64_t deadline_misses = 0;
  // Jobs abandoned at their deadline under MissPolicy::kAbortJob.
  int64_t aborted = 0;
  // Jobs still in flight when the horizon cut the run.
  int64_t unfinished = 0;
  double executed_work = 0;
  double max_response_ms = 0;
  double total_response_ms = 0;  // over completed invocations

  double MeanResponseMs() const {
    return completions == 0 ? 0.0 : total_response_ms / static_cast<double>(completions);
  }
};

struct SimResult {
  std::string policy_name;
  SchedulerKind scheduler = SchedulerKind::kEdf;
  double horizon_ms = 0;

  double exec_energy = 0;
  double idle_energy = 0;
  double total_energy() const { return exec_energy + idle_energy; }

  double busy_ms = 0;
  double idle_ms = 0;
  double switching_ms = 0;  // halted during voltage/frequency transitions
  double total_work_executed = 0;

  int64_t releases = 0;
  int64_t completions = 0;
  int64_t deadline_misses = 0;
  // Conservation counters: every released job is eventually completed,
  // aborted (MissPolicy::kAbortJob), or still in flight at the horizon.
  int64_t aborted = 0;
  int64_t unfinished_at_horizon = 0;
  // Invocations whose drawn actual work exceeded the task's WCET (only
  // possible with overrun-permitting exec models, e.g. ColdStartModel with
  // allow_overrun); voids the schedulability guarantee for the run.
  int64_t wcet_overruns = 0;
  int64_t speed_switches = 0;
  int64_t preemptions = 0;

  // Decision counters reported by the DVS policy itself (requests vs actual
  // transitions, slack reclaimed, work deferred, utilization samples);
  // copied from DvsPolicy::counters() at the end of the run.
  PolicyCounters policy_counters;

  // §3.2 theoretical bound for this run's actual workload over the horizon.
  double lower_bound_energy = 0;

  std::vector<PointResidency> residency;
  std::vector<TaskStats> task_stats;
  Trace trace;  // populated only when SimOptions::record_trace

  // Aperiodic server outcome (valid when server_task_id >= 0).
  int server_task_id = -1;
  AperiodicStats aperiodic;

  // SimAudit outcome; audit.audited is false when SimOptions::audit was off.
  AuditReport audit;

  // Short single-line summary for logs and examples.
  std::string Summary() const;
};

}  // namespace rtdvs

#endif  // SRC_SIM_METRICS_H_
