// Result types produced by a simulation run.
#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/operating_point.h"
#include "src/dvs/policy_counters.h"
#include "src/engine/energy_accountant.h"  // PointResidency
#include "src/engine/trace.h"
#include "src/rt/aperiodic.h"
#include "src/rt/scheduler.h"
#include "src/sim/audit.h"

namespace rtdvs {

// Per-task outcome statistics.
struct TaskStats {
  int64_t releases = 0;
  int64_t completions = 0;
  int64_t deadline_misses = 0;
  // Jobs abandoned at their deadline under MissPolicy::kAbortJob.
  int64_t aborted = 0;
  // Jobs still in flight when the horizon cut the run.
  int64_t unfinished = 0;
  double executed_work = 0;
  double max_response_ms = 0;
  double total_response_ms = 0;  // over completed invocations

  double MeanResponseMs() const {
    return completions == 0 ? 0.0 : total_response_ms / static_cast<double>(completions);
  }
};

// How the simulator spent its stepping budget: which analytic fast paths
// served the run and how much simulated time / how many whole hyperperiod
// cycles they covered. Pure execution diagnostics — two runs of the same
// scenario with fast paths toggled produce bit-identical results in every
// OTHER SimResult field while these counters differ, so equality helpers
// (the differential oracle, the forced-on/off suite) deliberately exclude
// them.
struct FastPathStats {
  // Event-loop iterations executed in full (scheduler pick + integration).
  int64_t steps = 0;
  // Idle intervals integrated in closed form by the idle-skip branch
  // (empty ready queue: jump straight to the next release / timer wakeup
  // and charge one idle segment), and the simulated time they covered.
  int64_t idle_skips = 0;
  double idle_skipped_ms = 0;
  // Hyperperiod memoization: whole cycles verified identical during
  // probing, whole cycles fast-forwarded by decision replay, and the
  // replayed step count (steps the slow path would have executed).
  int64_t hyperperiod_cycles_verified = 0;
  int64_t hyperperiod_cycles_replayed = 0;
  int64_t steps_replayed = 0;
  // Why the hyperperiod path never armed for this run ("" when it armed or
  // was disabled via SimOptions::fast_paths).
  std::string hyperperiod_gate;

  // Accumulates the numeric coverage counters (gate reasons are per-run and
  // do not merge) — sweep/bench aggregation across many simulations.
  void MergeFrom(const FastPathStats& other) {
    steps += other.steps;
    idle_skips += other.idle_skips;
    idle_skipped_ms += other.idle_skipped_ms;
    hyperperiod_cycles_verified += other.hyperperiod_cycles_verified;
    hyperperiod_cycles_replayed += other.hyperperiod_cycles_replayed;
    steps_replayed += other.steps_replayed;
  }
};

// JSON view of the coverage counters; includes the gate reason only when
// non-empty (aggregated stats have none). Defined in simulator.cc.
class JsonValue;
JsonValue FastPathStatsToJson(const FastPathStats& stats);

struct SimResult {
  std::string policy_name;
  SchedulerKind scheduler = SchedulerKind::kEdf;
  double horizon_ms = 0;

  double exec_energy = 0;
  double idle_energy = 0;
  double total_energy() const { return exec_energy + idle_energy; }

  double busy_ms = 0;
  double idle_ms = 0;
  double switching_ms = 0;  // halted during voltage/frequency transitions
  double total_work_executed = 0;

  int64_t releases = 0;
  int64_t completions = 0;
  int64_t deadline_misses = 0;
  // Conservation counters: every released job is eventually completed,
  // aborted (MissPolicy::kAbortJob), or still in flight at the horizon.
  int64_t aborted = 0;
  int64_t unfinished_at_horizon = 0;
  // Invocations whose drawn actual work exceeded the task's WCET (only
  // possible with overrun-permitting exec models, e.g. ColdStartModel with
  // allow_overrun); voids the schedulability guarantee for the run.
  int64_t wcet_overruns = 0;
  int64_t speed_switches = 0;
  int64_t preemptions = 0;

  // Decision counters reported by the DVS policy itself (requests vs actual
  // transitions, slack reclaimed, work deferred, utilization samples);
  // copied from DvsPolicy::counters() at the end of the run.
  PolicyCounters policy_counters;

  // §3.2 theoretical bound for this run's actual workload over the horizon.
  double lower_bound_energy = 0;

  std::vector<PointResidency> residency;
  std::vector<TaskStats> task_stats;
  Trace trace;  // populated only when SimOptions::record_trace

  // Aperiodic server outcome (valid when server_task_id >= 0).
  int server_task_id = -1;
  AperiodicStats aperiodic;

  // SimAudit outcome; audit.audited is false when SimOptions::audit was off.
  AuditReport audit;

  // Fast-path coverage accounting (see FastPathStats): excluded from result
  // equality on purpose.
  FastPathStats fastpath;

  // Short single-line summary for logs and examples.
  std::string Summary() const;
};

}  // namespace rtdvs

#endif  // SRC_SIM_METRICS_H_
