// Hyperperiod memoization for the queue-free simulator loop (the second
// analytic fast path of ROADMAP item 2).
//
// For a strictly periodic task set with all phases zero, every multiple of
// the hyperperiod H = lcm(P_1..P_n) is an all-task release boundary. With a
// stationary execution-time model (per-task constant fractions) and a policy
// whose state is rebuilt at such boundaries (DvsPolicy::supports_time_skip),
// the simulation is a candidate for exact repetition: window k+1 replays
// window k shifted by H.
//
// Floating point makes "candidate" load-bearing. Absolute-time arithmetic is
// not translation invariant — fl(B + q) - B can change across binades, and
// release times accumulate rounding through repeated `+= period_ms` — and
// two windows agreeing bitwise does NOT imply the third will (observed in
// practice: non-dyadic periods pass a two-window comparison and drift a low
// bit in window three). Repetition therefore rests on three rails:
//   1. A static exact-arithmetic gate (Simulator::ArmHyperperiod): dyadic
//      task parameters on the 2^-20 ms grid, power-of-two machine
//      frequencies, bounded horizon — conditions under which the run's
//      time/work additions and frequency scalings are exact, making windows
//      genuinely translation invariant.
//   2. Two consecutive whole windows recorded (boundary-relative step
//      offsets, picked task, the policy's externally visible effects) and
//      compared bitwise, offsets included; replay engages only on equality.
//   3. A per-replayed-step re-check of offset and pick against the
//      recording (fail stop, below).
// Realistic random workloads (e.g. the paper-sweep 1 µs-grid periods) fail
// rail 1 and simply run the stepped path — the fast path then costs one
// gate evaluation and is trivially bit-identical. Exact-arithmetic
// workloads (dyadic periods/WCETs, e.g. 2/4/8 ms on a 0.5/1.0 machine)
// verify and engage.
//
// Replay is deliberately conservative: every step still executes the real
// pick and the real segment/energy/release/completion arithmetic (those are
// cheap and authoritative); what it skips is PolicyContext construction and
// the policy callbacks, whose recorded effects — speed requests by machine
// point index, counter mutations by individual addend — are applied instead.
// Per-window counter deltas would NOT be faithful (FP addition is not
// associative), which is why effects are recorded per mutation. Each
// replayed step re-checks its boundary-relative offset and picked task
// against the recording; a mismatch is unrecoverable mid-window (the policy
// missed its callbacks) and fails stop via RTDVS_CHECK rather than ever
// producing a silently different result.
#ifndef SRC_SIM_HYPERPERIOD_H_
#define SRC_SIM_HYPERPERIOD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cpu/machine_spec.h"
#include "src/dvs/policy.h"
#include "src/engine/speed_controller.h"
#include "src/rt/task.h"
#include "src/sim/metrics.h"

namespace rtdvs {

class HyperperiodMemo {
 public:
  enum class Mode : uint8_t {
    kOff,           // never armed (gate failed or fast path disabled)
    kWarmup,        // armed; waiting out the boot window (0, H]
    kRecordFirst,   // recording window (H, 2H]
    kRecordSecond,  // recording window (2H, 3H]
    kReplay,        // verified; replaying whole windows
    kDone,          // disarmed mid-run or out of whole windows
  };

  // What the caller must do after OnStepEnd.
  enum class StepAction : uint8_t {
    kNone,
    // Replay just consumed its last whole window: rebuild the context at
    // now_ and deliver DvsPolicy::OnTimeSkip before stepping on.
    kResyncPolicy,
  };

  // The dyadic time grid the exact-arithmetic gate requires: all task
  // parameters must be integer multiples of 2^-20 ms (and magnitudes must
  // stay under kMaxExactMagnitudeMs = 2^23 ms) so that every release /
  // deadline / boundary addition in the run is exact in double precision —
  // the property that makes hyperperiod windows translation invariant.
  static constexpr double kDyadicGridPerMs = 1048576.0;  // 2^20
  static constexpr double kMaxExactMagnitudeMs = 8388608.0;  // 2^23

  // True when `v` is a non-negative multiple of the dyadic grid within the
  // exact-magnitude bound.
  static bool OnDyadicGrid(double v);
  // True when `f` is a power of two in [2^-10, 1]: division and
  // multiplication by such frequencies only shift exponents, keeping the
  // completion/work arithmetic exact.
  static bool IsExactFrequency(double f);

  // The task set's hyperperiod in ms when every period sits on the dyadic
  // grid and the LCM stays at or under `max_units` grid units; nullopt
  // otherwise.
  static std::optional<double> HyperperiodMs(const TaskSet& tasks,
                                             int64_t max_units);

  // Arms the memo: boundaries at H, 2H, ... with the first whole window
  // (0, H] as warmup. `stats` receives the verified/replayed counters and
  // the disarm reason; it must outlive the memo's use.
  void Arm(double hyperperiod_ms, double horizon_ms, FastPathStats* stats);

  Mode mode() const { return mode_; }
  // True while the loop must call OnStepEnd (warmup, recording, or replay).
  bool active() const { return mode_ != Mode::kOff && mode_ != Mode::kDone; }
  bool replaying() const { return mode_ == Mode::kReplay; }

  // Replay-mode step: verifies the step's boundary-relative offset and
  // picked task against the recording (RTDVS_CHECK on mismatch — see file
  // comment), then applies the recorded effects: counter mutations to the
  // policy, speed requests to the controller. Called at the exact loop
  // position the policy-callback block occupies on the stepped path.
  void ReplayStep(double now_ms, int pick_task, DvsPolicy* policy,
                  ModeledSpeedController* speed, const MachineSpec& machine);

  // End-of-iteration hook: finalizes the step record when recording, and
  // runs the boundary state machine (start/rotate recordings, verify and
  // engage replay, retire or disarm). Needs the policy/controller to bind
  // and unbind the effect taps across transitions.
  StepAction OnStepEnd(double now_ms, int pick_task, DvsPolicy* policy,
                       ModeledSpeedController* speed);

 private:
  // One recorded (or to-be-verified) loop iteration. Ranges index into the
  // owning window's effect buffers.
  struct Step {
    double offset_ms = 0;  // now_ - window_start_ at the end of the step
    int pick_task = -1;    // running job's task id, -1 when idle
    uint32_t effects_begin = 0, effects_end = 0;
    uint32_t speed_begin = 0, speed_end = 0;
  };

  struct Window {
    std::vector<Step> steps;
    std::vector<PolicyCounterEffect> effects;  // counter-mutation tap
    std::vector<int> speed_requests;           // machine point indices tap
    void Clear();
    // Bitwise: double fields compare by bit pattern, not by value.
    bool BitwiseEqual(const Window& other) const;
  };

  void Disarm(const char* reason, DvsPolicy* policy,
              ModeledSpeedController* speed);
  void BeginWindow(size_t index, double start_ms, DvsPolicy* policy,
                   ModeledSpeedController* speed);

  Mode mode_ = Mode::kOff;
  double h_ms_ = 0;
  double horizon_ms_ = 0;
  double window_start_ = 0;
  double next_boundary_ = 0;
  size_t recording_index_ = 0;  // which of win_ the taps feed
  size_t replay_step_ = 0;
  uint32_t effects_mark_ = 0;  // effect-buffer sizes at the last step end
  uint32_t speed_mark_ = 0;
  Window win_[2];
  FastPathStats* stats_ = nullptr;
};

}  // namespace rtdvs

#endif  // SRC_SIM_HYPERPERIOD_H_
