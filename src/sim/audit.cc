#include "src/sim/audit.h"

#include <cmath>

#include "src/cpu/energy_model.h"
#include "src/cpu/machine_spec.h"
#include "src/rt/schedulability.h"
#include "src/sim/mp_simulator.h"
#include "src/sim/simulator.h"
#include "src/util/strings.h"

namespace rtdvs {
namespace {

// Tolerances for re-derived floating-point totals. Each reported total is a
// sum of per-segment contributions; re-deriving it replays the sum in a
// different association order, so the slack scales with the magnitude of
// the quantity, not with machine epsilon alone.
constexpr double kAbsTol = 1e-6;
constexpr double kRelTol = 1e-7;

bool Mismatch(double reported, double derived, double scale) {
  double tol = kAbsTol + kRelTol * std::fabs(scale);
  return std::fabs(reported - derived) > tol;
}

class Auditor {
 public:
  Auditor(const SimResult& result, const AuditInputs& inputs)
      : result_(result), inputs_(inputs) {}

  AuditReport Run() {
    CheckTimePartition();
    CheckResidency();
    CheckTrace();
    CheckJobAccounting();
    CheckRtGuarantee();
    CheckLowerBound();
    report_.audited = true;
    return report_;
  }

 private:
  void Fail(AuditCheck check, std::string message) {
    report_.violations.push_back({check, std::move(message)});
  }

  void Skip(AuditCheck check, const std::string& reason) {
    ++report_.checks_skipped;
    report_.skip_reasons.push_back(
        StrFormat("%s: %s", AuditCheckName(check), reason.c_str()));
  }

  void CheckTimePartition() {
    ++report_.checks_run;
    double covered = result_.busy_ms + result_.idle_ms + result_.switching_ms;
    if (Mismatch(covered, result_.horizon_ms, result_.horizon_ms)) {
      Fail(AuditCheck::kTimePartition,
           StrFormat("busy %.9g + idle %.9g + switching %.9g = %.9g ms != "
                     "horizon %.9g ms",
                     result_.busy_ms, result_.idle_ms, result_.switching_ms,
                     covered, result_.horizon_ms));
    }
    if (result_.busy_ms < -kAbsTol || result_.idle_ms < -kAbsTol ||
        result_.switching_ms < -kAbsTol) {
      Fail(AuditCheck::kTimePartition, "negative time bucket");
    }
  }

  void CheckResidency() {
    ++report_.checks_run;
    double exec_ms = 0, idle_ms = 0, exec_energy = 0, idle_energy = 0;
    for (const auto& res : result_.residency) {
      if (res.exec_ms < -kAbsTol || res.idle_ms < -kAbsTol ||
          res.exec_energy < -kAbsTol || res.idle_energy < -kAbsTol) {
        Fail(AuditCheck::kResidency,
             "negative residency at " + res.point.ToString());
      }
      exec_ms += res.exec_ms;
      idle_ms += res.idle_ms;
      exec_energy += res.exec_energy;
      idle_energy += res.idle_energy;
    }
    if (Mismatch(exec_ms, result_.busy_ms, result_.horizon_ms)) {
      Fail(AuditCheck::kResidency,
           StrFormat("residency exec %.9g ms != busy %.9g ms", exec_ms,
                     result_.busy_ms));
    }
    if (Mismatch(idle_ms, result_.idle_ms, result_.horizon_ms)) {
      Fail(AuditCheck::kResidency,
           StrFormat("residency idle %.9g ms != idle %.9g ms", idle_ms,
                     result_.idle_ms));
    }
    if (Mismatch(exec_energy, result_.exec_energy, result_.exec_energy)) {
      Fail(AuditCheck::kResidency,
           StrFormat("residency exec energy %.9g != exec_energy %.9g",
                     exec_energy, result_.exec_energy));
    }
    if (Mismatch(idle_energy, result_.idle_energy,
                 result_.idle_energy + result_.exec_energy)) {
      Fail(AuditCheck::kResidency,
           StrFormat("residency idle energy %.9g != idle_energy %.9g",
                     idle_energy, result_.idle_energy));
    }
  }

  // Re-integrates the recorded trace and compares against every reported
  // total the trace determines. A truncated trace covers only a prefix of
  // the run, so its checks are downgraded to skipped, never failed.
  void CheckTrace() {
    if (inputs_.options == nullptr || !inputs_.options->record_trace ||
        result_.trace.segments().empty()) {
      Skip(AuditCheck::kTrace, "no trace recorded");
      return;
    }
    if (result_.trace.truncated()) {
      Skip(AuditCheck::kTrace,
           "trace truncated at the segment capacity limit; re-integration "
           "covers only a prefix of the run");
      return;
    }
    ++report_.checks_run;
    const auto& segments = result_.trace.segments();
    double busy_ms = 0, idle_ms = 0, switching_ms = 0;
    double exec_energy = 0, idle_energy = 0, work = 0;
    EnergyModel energy(inputs_.options->idle_level,
                       inputs_.options->energy_coefficient);
    for (size_t i = 0; i < segments.size(); ++i) {
      const TraceSegment& seg = segments[i];
      double dt = seg.end_ms - seg.start_ms;
      if (dt <= 0) {
        Fail(AuditCheck::kTrace,
             StrFormat("segment %zu not monotone: [%.9g, %.9g)", i,
                       seg.start_ms, seg.end_ms));
        return;
      }
      if (i > 0 && Mismatch(seg.start_ms, segments[i - 1].end_ms,
                            result_.horizon_ms)) {
        Fail(AuditCheck::kTrace,
             StrFormat("gap/overlap between segments %zu and %zu: %.9g vs %.9g",
                       i - 1, i, segments[i - 1].end_ms, seg.start_ms));
        return;
      }
      switch (seg.state) {
        case CpuState::kExecuting:
          busy_ms += dt;
          work += dt * seg.point.frequency;
          exec_energy += energy.ExecutionEnergy(dt * seg.point.frequency, seg.point);
          break;
        case CpuState::kIdle:
          idle_ms += dt;
          idle_energy += energy.IdleEnergy(dt, seg.point);
          break;
        case CpuState::kSwitching:
          switching_ms += dt;  // halted: time passes, no energy (§3.1)
          break;
      }
    }
    if (Mismatch(segments.front().start_ms, 0.0, result_.horizon_ms) ||
        Mismatch(segments.back().end_ms, result_.horizon_ms,
                 result_.horizon_ms)) {
      Fail(AuditCheck::kTrace,
           StrFormat("trace spans [%.9g, %.9g), expected [0, %.9g)",
                     segments.front().start_ms, segments.back().end_ms,
                     result_.horizon_ms));
    }
    struct {
      const char* what;
      double reported;
      double derived;
      double scale;
    } totals[] = {
        {"busy_ms", result_.busy_ms, busy_ms, result_.horizon_ms},
        {"idle_ms", result_.idle_ms, idle_ms, result_.horizon_ms},
        {"switching_ms", result_.switching_ms, switching_ms, result_.horizon_ms},
        {"exec_energy", result_.exec_energy, exec_energy, result_.exec_energy},
        {"idle_energy", result_.idle_energy, idle_energy,
         result_.exec_energy + result_.idle_energy},
        {"total_work_executed", result_.total_work_executed, work,
         result_.total_work_executed},
    };
    for (const auto& total : totals) {
      if (Mismatch(total.reported, total.derived, total.scale)) {
        Fail(AuditCheck::kTrace,
             StrFormat("trace re-integration: %s reported %.9g, derived %.9g",
                       total.what, total.reported, total.derived));
      }
    }
  }

  void CheckJobAccounting() {
    ++report_.checks_run;
    int64_t accounted =
        result_.completions + result_.aborted + result_.unfinished_at_horizon;
    if (result_.releases != accounted) {
      Fail(AuditCheck::kJobAccounting,
           StrFormat("releases %lld != completions %lld + aborted %lld + "
                     "in-flight %lld",
                     static_cast<long long>(result_.releases),
                     static_cast<long long>(result_.completions),
                     static_cast<long long>(result_.aborted),
                     static_cast<long long>(result_.unfinished_at_horizon)));
    }
    int64_t releases = 0, completions = 0, aborted = 0, unfinished = 0,
            misses = 0;
    double executed = 0;
    for (size_t id = 0; id < result_.task_stats.size(); ++id) {
      const TaskStats& stats = result_.task_stats[id];
      if (stats.releases !=
          stats.completions + stats.aborted + stats.unfinished) {
        Fail(AuditCheck::kJobAccounting,
             StrFormat("task %zu: releases %lld != completions %lld + "
                       "aborted %lld + in-flight %lld",
                       id, static_cast<long long>(stats.releases),
                       static_cast<long long>(stats.completions),
                       static_cast<long long>(stats.aborted),
                       static_cast<long long>(stats.unfinished)));
      }
      releases += stats.releases;
      completions += stats.completions;
      aborted += stats.aborted;
      unfinished += stats.unfinished;
      misses += stats.deadline_misses;
      executed += stats.executed_work;
    }
    if (releases != result_.releases || completions != result_.completions ||
        aborted != result_.aborted ||
        unfinished != result_.unfinished_at_horizon ||
        misses != result_.deadline_misses) {
      Fail(AuditCheck::kJobAccounting,
           "per-task job counters do not sum to the global counters");
    }
    if (Mismatch(executed, result_.total_work_executed,
                 result_.total_work_executed)) {
      Fail(AuditCheck::kJobAccounting,
           StrFormat("per-task executed work sums to %.9g, reported %.9g",
                     executed, result_.total_work_executed));
    }
  }

  // The paper's central claim (§2, §3.2): RT-DVS policies never trade
  // deadlines for energy. When the policy guarantees deadlines and its
  // scheduler's admission test passes the simulated set at full speed, any
  // reported miss is an accounting or policy bug, not a workload property.
  void CheckRtGuarantee() {
    if (inputs_.tasks == nullptr || inputs_.options == nullptr) {
      Skip(AuditCheck::kRtGuarantee, "task set or options not provided");
      return;
    }
    if (!inputs_.policy_guarantees_deadlines) {
      Skip(AuditCheck::kRtGuarantee, "policy does not guarantee deadlines");
      return;
    }
    if (inputs_.options->switch_time_ms > 0) {
      Skip(AuditCheck::kRtGuarantee,
           "switch_time_ms > 0 voids the schedulability analysis");
      return;
    }
    if (result_.wcet_overruns > 0) {
      Skip(AuditCheck::kRtGuarantee,
           "a WCET overrun was injected, voiding the guarantee");
      return;
    }
    bool admitted = result_.scheduler == SchedulerKind::kEdf
                        ? EdfSchedulable(*inputs_.tasks)
                        : RmSchedulableSufficient(*inputs_.tasks);
    if (!admitted) {
      Skip(AuditCheck::kRtGuarantee,
           "task set not admitted by the schedulability test");
      return;
    }
    ++report_.checks_run;
    if (result_.deadline_misses > 0) {
      Fail(AuditCheck::kRtGuarantee,
           StrFormat("%s on a %s-schedulable set reported %lld deadline "
                     "miss(es)",
                     result_.policy_name.c_str(),
                     SchedulerKindName(result_.scheduler).c_str(),
                     static_cast<long long>(result_.deadline_misses)));
    }
  }

  void CheckLowerBound() {
    ++report_.checks_run;
    double excess = result_.lower_bound_energy - result_.exec_energy;
    if (excess > kAbsTol + kRelTol * std::fabs(result_.exec_energy)) {
      Fail(AuditCheck::kLowerBound,
           StrFormat("lower bound %.9g exceeds execution energy %.9g",
                     result_.lower_bound_energy, result_.exec_energy));
    }
  }

  const SimResult& result_;
  const AuditInputs& inputs_;
  AuditReport report_;
};

}  // namespace

const char* AuditCheckName(AuditCheck check) {
  switch (check) {
    case AuditCheck::kTimePartition:
      return "time-partition";
    case AuditCheck::kResidency:
      return "residency";
    case AuditCheck::kTrace:
      return "trace";
    case AuditCheck::kJobAccounting:
      return "job-accounting";
    case AuditCheck::kRtGuarantee:
      return "rt-guarantee";
    case AuditCheck::kLowerBound:
      return "lower-bound";
    case AuditCheck::kCluster:
      return "cluster";
  }
  return "?";
}

bool AuditReport::Violated(AuditCheck check) const {
  for (const auto& violation : violations) {
    if (violation.check == check) {
      return true;
    }
  }
  return false;
}

std::string AuditReport::Summary() const {
  if (!audited) {
    return "audit: not run";
  }
  std::string out;
  if (ok()) {
    out = StrFormat("audit: OK (%d checks, %d skipped)", checks_run,
                    checks_skipped);
  } else {
    out = StrFormat("audit: %zu violation(s)", violations.size());
    for (const auto& violation : violations) {
      out += StrFormat("\n  [%s] %s", AuditCheckName(violation.check),
                       violation.message.c_str());
    }
  }
  for (const auto& reason : skip_reasons) {
    out += StrFormat("\n  skipped %s", reason.c_str());
  }
  return out;
}

AuditReport AuditSimResult(const SimResult& result, const AuditInputs& inputs) {
  return Auditor(result, inputs).Run();
}

AuditReport AuditMpResult(const MpSimResult& result, const SimOptions& options) {
  AuditReport report;
  auto fail = [&report](const std::string& message) {
    report.violations.push_back({AuditCheck::kCluster, message});
  };
  if (!result.admitted) {
    ++report.checks_skipped;
    report.skip_reasons.push_back("cluster: task set not admitted, nothing ran");
    report.audited = true;
    return report;
  }
  ++report.checks_run;

  // Wall time: every core covers the whole horizon (powered-down cores idle
  // through it), so the slices sum to num_cores * horizon.
  const SimResult& cluster = result.cluster;
  double wall_ms = 0;
  double busy_ms = 0, idle_ms = 0, switching_ms = 0, work = 0;
  double exec_energy = 0, idle_energy = 0;
  int64_t speed_switches = 0;
  int64_t releases = 0, completions = 0, misses = 0, aborted = 0, unfinished = 0;
  for (const SimResult& slice : result.cores) {
    wall_ms += slice.busy_ms + slice.idle_ms + slice.switching_ms;
    busy_ms += slice.busy_ms;
    idle_ms += slice.idle_ms;
    switching_ms += slice.switching_ms;
    work += slice.total_work_executed;
    exec_energy += slice.exec_energy;
    idle_energy += slice.idle_energy;
    speed_switches += slice.speed_switches;
    releases += slice.releases;
    completions += slice.completions;
    misses += slice.deadline_misses;
    aborted += slice.aborted;
    unfinished += slice.unfinished_at_horizon;
  }
  const double expected_wall = result.num_cores * options.horizon_ms;
  if (Mismatch(wall_ms, expected_wall, expected_wall)) {
    fail(StrFormat("per-core wall time sums to %.9g ms, expected cores %d x "
                   "horizon %.9g ms",
                   wall_ms, result.num_cores, options.horizon_ms));
  }
  struct {
    const char* what;
    double reported;
    double derived;
    double scale;
  } totals[] = {
      {"busy_ms", cluster.busy_ms, busy_ms, expected_wall},
      {"idle_ms", cluster.idle_ms, idle_ms, expected_wall},
      {"switching_ms", cluster.switching_ms, switching_ms, expected_wall},
      {"total_work_executed", cluster.total_work_executed, work,
       cluster.total_work_executed},
      {"exec_energy", cluster.exec_energy, exec_energy, cluster.exec_energy},
      {"idle_energy", cluster.idle_energy, idle_energy,
       cluster.exec_energy + cluster.idle_energy},
  };
  for (const auto& total : totals) {
    if (Mismatch(total.reported, total.derived, total.scale)) {
      fail(StrFormat("cluster %s reported %.9g, slice sum %.9g", total.what,
                     total.reported, total.derived));
    }
  }
  if (cluster.speed_switches != speed_switches) {
    fail(StrFormat("cluster speed_switches %lld != slice sum %lld",
                   static_cast<long long>(cluster.speed_switches),
                   static_cast<long long>(speed_switches)));
  }
  if (result.mode == MpMode::kPartitioned) {
    // Job-level counters live on the slices in partitioned mode and must
    // sum to the cluster; migrations are impossible by construction.
    if (cluster.releases != releases || cluster.completions != completions ||
        cluster.deadline_misses != misses || cluster.aborted != aborted ||
        cluster.unfinished_at_horizon != unfinished) {
      fail("partitioned cluster job counters do not sum over the slices");
    }
    if (result.migrations != 0) {
      fail(StrFormat("partitioned run reported %lld migration(s)",
                     static_cast<long long>(result.migrations)));
    }
  } else if (releases != 0 || completions != 0 || misses != 0 || aborted != 0 ||
             unfinished != 0) {
    // Global slices carry no job counters; finding any means a slice was
    // filled by the wrong path.
    fail("global-mode slices carry job counters (cluster-level only)");
  }
  if (cluster.lower_bound_energy >
      cluster.exec_energy + kAbsTol + kRelTol * std::fabs(cluster.exec_energy)) {
    fail(StrFormat("cluster lower bound %.9g exceeds execution energy %.9g",
                   cluster.lower_bound_energy, cluster.exec_energy));
  }
  report.audited = true;
  return report;
}

}  // namespace rtdvs
